//! Genome-scale motif search — the paper's Human Genome Project
//! motivation, on synthetic DNA.
//!
//! Builds a dictionary of sequence motifs (some planted, some random),
//! preprocesses it once, then matches several chromosome-sized texts
//! against it, reporting hits and the measured PRAM work/depth — the
//! quantities Theorem 3.1 bounds.
//!
//! ```sh
//! cargo run --release --example genome_search
//! ```

use pardict::prelude::*;
use pardict::workloads::{dictionary_from_text, dna_text};

fn main() {
    let pram = Pram::par();

    // A reference "genome" and a motif dictionary sampled from it, plus
    // decoys that should rarely match.
    let genome = dna_text(2024, 200_000);
    let mut motifs = dictionary_from_text(7, &genome, 40, 8, 24);
    motifs.extend(pardict::workloads::random_dictionary(
        8,
        10,
        8,
        16,
        Alphabet::dna(),
    ));
    let dict = Dictionary::new(motifs);
    println!(
        "dictionary: {} motifs, d = {} bases, longest {}",
        dict.num_patterns(),
        dict.total_len(),
        dict.max_pattern_len()
    );

    let (matcher, pre) = pram.metered(|p| DictMatcher::build(p, dict.clone(), 99));
    println!(
        "preprocessing: {} work ({:.1} ops/base), depth {}\n",
        pre.work,
        pre.work as f64 / dict.total_len() as f64,
        pre.depth
    );

    // Match three "reads" of different sizes drawn from the genome with
    // mutations (fresh random tails).
    for (label, n, offset) in [
        ("read A", 20_000usize, 1000usize),
        ("read B", 50_000, 60_000),
        ("read C", 100_000, 90_000),
    ] {
        let mut read = genome[offset..offset + n / 2].to_vec();
        read.extend(dna_text(n as u64, n - n / 2));
        let (matches, cost) = pram.metered(|p| matcher.match_text(p, &read));
        matcher
            .check(&pram, &read, &matches)
            .expect("checker must accept");
        let hits = matches.iter_hits().count();
        let longest = matches.iter_hits().map(|(_, m)| m.len).max().unwrap_or(0);
        println!(
            "{label}: n = {n:6}  hits = {hits:6}  longest motif hit = {longest:3}  \
             work/char = {:5.1}  depth = {}",
            cost.work as f64 / n as f64,
            cost.depth
        );
    }

    println!("\nwork/char stays flat as reads grow — Theorem 3.1's O(n) matching work.");
}
