//! Quickstart: the three headline algorithms in one tour.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pardict::prelude::*;

fn main() {
    // A PRAM context: `par()` runs rounds on rayon, `seq()` sequentially.
    // Results and ledger costs are identical either way.
    let pram = Pram::par();

    // --- 1. Dictionary matching (Theorem 3.1) -------------------------
    let dict = Dictionary::new(vec![
        b"he".to_vec(),
        b"she".to_vec(),
        b"his".to_vec(),
        b"hers".to_vec(),
    ]);
    let text = b"ushers and fishers say she sells seashells";
    let (matches, cost) = pram.metered(|p| dictionary_match(p, &dict, text, 42));
    println!(
        "dictionary matching over {:?}:",
        String::from_utf8_lossy(text)
    );
    for (pos, m) in matches.iter_hits() {
        println!(
            "  pos {pos:2}: {:?} (pattern #{}, longest at that position)",
            String::from_utf8_lossy(&dict.patterns()[m.id as usize]),
            m.id
        );
    }
    println!(
        "  [Las Vegas run: {} work, {} depth for n = {}]\n",
        cost.work,
        cost.depth,
        text.len()
    );

    // --- 2. LZ1 / LZ77 compression (Theorems 4.2–4.3) ------------------
    let text = b"a rose is a rose is a rose";
    let tokens = lz1_compress(&pram, text, 7);
    println!("LZ1 parse of {:?}:", String::from_utf8_lossy(text));
    for t in &tokens {
        match t {
            Token::Literal(c) => println!("  literal {:?}", *c as char),
            Token::Copy { src, len } => println!("  copy {len} bytes from position {src}"),
        }
    }
    let roundtrip = lz1_decompress(&pram, &tokens, 9);
    assert_eq!(roundtrip, text);
    println!("  -> {} phrases, decompression round-trips\n", tokens.len());

    // --- 3. Optimal static-dictionary compression (Theorem 5.3) --------
    let dict = Dictionary::new(vec![b"aab".to_vec(), b"abbb".to_vec(), b"b".to_vec()]);
    let matcher = DictMatcher::build(&pram, dict.clone(), 3);
    let text = b"aabbb";
    let optimal = optimal_parse(&pram, &matcher, text).unwrap();
    let greedy = greedy_parse(&pram, &matcher, text).unwrap();
    println!("static parse of {:?}:", String::from_utf8_lossy(text));
    println!(
        "  optimal: {} phrases, greedy: {} phrases",
        optimal.num_phrases(),
        greedy.num_phrases()
    );
    for ph in &optimal.phrases {
        let p = &dict.patterns()[ph.pattern as usize];
        println!(
            "  phrase at {}: {:?}",
            ph.start,
            String::from_utf8_lossy(&p[..ph.len])
        );
    }
    assert!(optimal.num_phrases() < greedy.num_phrases());
}
