//! A tour of the PRAM substrate layer: run the classic primitives and
//! watch the work/depth ledger confirm their textbook bounds.
//!
//! ```sh
//! cargo run --release --example pram_playground
//! ```

use pardict::graph::{EulerTour, Forest};
use pardict::pram::{ceil_log2, list_rank_random_mate, list_rank_wyllie, Pram, SplitMix64};
use pardict::rmq::LinearRmq;
use pardict::suffix::SuffixTree;

fn main() {
    println!(
        "{:<28} {:>9} {:>12} {:>10} {:>8}",
        "primitive", "n", "work", "work/n", "depth"
    );

    let n = 1 << 18;
    let mut rng = SplitMix64::new(5);

    // Prefix sums.
    let pram = Pram::par();
    let xs: Vec<u64> = (0..n as u64).collect();
    let (_, c) = pram.metered(|p| p.scan_exclusive_sum(&xs));
    report("prefix sums (scan)", n, c);

    // List ranking: Wyllie vs random-mate.
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        perm.swap(i, rng.next_below(i as u64 + 1) as usize);
    }
    let mut next = vec![0usize; n];
    for w in perm.windows(2) {
        next[w[0]] = w[1];
    }
    next[perm[n - 1]] = perm[n - 1];
    let pram = Pram::par();
    let (_, c) = pram.metered(|p| list_rank_wyllie(p, &next));
    report("list ranking (Wyllie)", n, c);
    let pram = Pram::par();
    let (_, c) = pram.metered(|p| list_rank_random_mate(p, &next, 3));
    report("list ranking (random-mate)", n, c);

    // Euler tour of a random tree.
    let parent: Vec<usize> = (0..n)
        .map(|v: usize| {
            if v == 0 {
                0
            } else {
                rng.next_below(v as u64) as usize
            }
        })
        .collect();
    let pram = Pram::par();
    let forest = Forest::from_parents(&pram, &parent);
    let (_, c) = pram.metered(|p| EulerTour::build(p, &forest, 8));
    report("Euler tour (list ranking)", n, c);

    // Linear-work RMQ (cartesian tree + ±1 four-russians).
    let vals: Vec<i64> = (0..n).map(|_| rng.next_below(1000) as i64).collect();
    let pram = Pram::par();
    let (_, c) = pram.metered(|p| LinearRmq::new_min(p, &vals, 4));
    report("linear RMQ preprocessing", n, c);

    // Suffix tree (Lemma 2.1 object).
    let text: Vec<u8> = (0..n)
        .map(|_| (rng.next_below(4) + b'A' as u64) as u8)
        .collect();
    let pram = Pram::par();
    let (_, c) = pram.metered(|p| SuffixTree::build(p, &text, 6));
    report("suffix tree (SA+LCP+ANSV)", n, c);

    println!(
        "\nlog2(n) = {}; every depth above is a small multiple of it, and work/n is O(1).",
        ceil_log2(n)
    );
}

fn report(name: &str, n: usize, c: pardict::pram::Cost) {
    println!(
        "{:<28} {:>9} {:>12} {:>10.2} {:>8}",
        name,
        n,
        c.work,
        c.work as f64 / n as f64,
        c.depth
    );
}
