//! A miniature versioned document store — the paper's "databases of
//! strings" motivation, served by delta compression.
//!
//! Stores a chain of document revisions as LZ1 deltas against their
//! predecessor, reports storage totals vs raw and vs independent
//! compression, and reconstructs an arbitrary revision by replaying
//! deltas.
//!
//! ```sh
//! cargo run --release --example version_store
//! ```

use pardict::compress::{encode_tokens, encoded_size};
use pardict::pram::SplitMix64;
use pardict::prelude::*;
use pardict::workloads::{markov_text, Alphabet};

fn main() {
    let pram = Pram::par();
    let alpha = Alphabet::lowercase();
    let mut rng = SplitMix64::new(404);

    // Revision 0, then a chain of edits: splices, appends, point edits.
    let mut revisions = vec![markov_text(1, 20_000, alpha)];
    for r in 1..8usize {
        let prev = revisions[r - 1].clone();
        let mut next = prev.clone();
        match r % 3 {
            0 => {
                // Splice a paragraph out.
                let at = 2000 + rng.next_below(8000) as usize;
                next.drain(at..at + 500);
            }
            1 => {
                // Append fresh content.
                next.extend_from_slice(&markov_text(100 + r as u64, 800, alpha));
            }
            _ => {
                // Scatter point edits.
                for _ in 0..20 {
                    let at = rng.next_below(next.len() as u64) as usize;
                    next[at] = alpha.sample(&mut rng);
                }
            }
        }
        revisions.push(next);
    }

    // Store: full LZ1 for revision 0, deltas afterwards.
    let mut stored: Vec<Vec<Token>> = Vec::new();
    let mut raw_total = 0usize;
    let mut delta_total = 0usize;
    let mut indep_total = 0usize;
    println!("rev |   raw B | indep LZ1 B | delta B | tokens");
    println!("----|---------|-------------|---------|-------");
    for (r, doc) in revisions.iter().enumerate() {
        let indep = lz1_compress(&pram, doc, r as u64);
        let tokens = if r == 0 {
            indep.clone()
        } else {
            delta_compress(&pram, &revisions[r - 1], doc, r as u64)
        };
        let bytes = encoded_size(&tokens);
        raw_total += doc.len();
        delta_total += bytes;
        indep_total += encoded_size(&indep);
        println!(
            "{r:>3} | {:>7} | {:>11} | {:>7} | {:>6}",
            doc.len(),
            encoded_size(&indep),
            bytes,
            tokens.len()
        );
        // The wire format round-trips.
        assert_eq!(
            pardict::compress::decode_tokens_from(
                &encode_tokens(&tokens),
                if r == 0 { 0 } else { revisions[r - 1].len() }
            )
            .unwrap(),
            tokens
        );
        stored.push(tokens);
    }
    println!(
        "\ntotals: raw {raw_total} B, independent LZ1 {indep_total} B, delta chain {delta_total} B"
    );

    // Reconstruct the latest revision by replaying the chain.
    let mut doc = lz1_decompress(&pram, &stored[0], 1);
    for r in 1..stored.len() {
        doc = delta_decompress(&pram, &doc, &stored[r]);
    }
    assert_eq!(&doc, revisions.last().unwrap());
    println!(
        "replayed {} deltas; final revision verified ✔",
        stored.len() - 1
    );
}
