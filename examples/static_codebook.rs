//! Compressing against a fixed codebook (static dictionary, §5).
//!
//! A transmission scenario: sender and receiver share a fixed dictionary
//! of phrases (with the prefix property); messages are encoded as a
//! sequence of dictionary references, and fewer references = fewer bits.
//! This example compares the paper's optimal parser against the greedy
//! and longest-fragment-first heuristics and the exact-but-expensive BFS
//! baseline, on Markov-English-like messages.
//!
//! ```sh
//! cargo run --release --example static_codebook
//! ```

use pardict::prelude::*;
use pardict::workloads::{dictionary_from_text, markov_text};

fn main() {
    let pram = Pram::par();
    let alpha = Alphabet::lowercase();

    // Shared codebook: all single letters (so everything parses) plus
    // phrases harvested from a training corpus.
    let training = markov_text(1, 50_000, alpha);
    let mut words: Vec<Vec<u8>> = (0..alpha.size()).map(|i| vec![alpha.symbol(i)]).collect();
    words.extend(dictionary_from_text(2, &training, 120, 3, 12));
    let dict = Dictionary::new(words);
    let matcher = DictMatcher::build(&pram, dict.clone(), 3);
    println!(
        "codebook: {} words, d = {}\n",
        dict.num_patterns(),
        dict.total_len()
    );

    println!(
        "{:>8}  {:>8} {:>8} {:>8} {:>8}   {:>12} {:>12}",
        "n", "optimal", "greedy", "LFF", "BFS", "opt work", "BFS work"
    );
    for n in [1_000usize, 5_000, 20_000] {
        // Messages are excerpts of the corpus the codebook was trained on
        // (the realistic transmission case), so codebook words hit often.
        let msg = training[n..2 * n].to_vec();
        let (opt, c_opt) = pram.metered(|p| optimal_parse(p, &matcher, &msg));
        let (bfs, c_bfs) = pram.metered(|p| bfs_parse(p, &matcher, &msg));
        let greedy = greedy_parse(&pram, &matcher, &msg);
        let lff = lff_parse(&pram, &matcher, &msg);
        let (opt, bfs, greedy, lff) = (opt.unwrap(), bfs.unwrap(), greedy.unwrap(), lff.unwrap());
        assert_eq!(opt.expand(&dict), msg);
        assert_eq!(opt.num_phrases(), bfs.num_phrases(), "optimality");
        println!(
            "{n:>8}  {:>8} {:>8} {:>8} {:>8}   {:>12} {:>12}",
            opt.num_phrases(),
            greedy.num_phrases(),
            lff.num_phrases(),
            bfs.num_phrases(),
            c_opt.work,
            c_bfs.work
        );
    }
    println!("\noptimal == BFS phrase counts at a fraction of the work (Lemma 5.1/5.2);");
    println!("greedy and LFF pay extra references.");
}
