//! Streaming signature matching with a changing rule set — the adaptive
//! dictionary matching extension ([AF91], cited by the paper).
//!
//! An intrusion-detection-style loop: network "packets" stream through a
//! matcher whose signature set evolves (new threat signatures added, stale
//! ones retired). The adaptive matcher keeps `O(log k)` preprocessed
//! groups and rebuilds only geometrically, so rule changes are cheap
//! compared to full reconstruction.
//!
//! ```sh
//! cargo run --release --example streaming_signatures
//! ```

use pardict::core::AdaptiveDictMatcher;
use pardict::pram::SplitMix64;
use pardict::prelude::*;
use pardict::workloads::{random_text, Alphabet};

fn main() {
    let pram = Pram::par();
    let alpha = Alphabet::lowercase();
    let mut rng = SplitMix64::new(2026);
    let mut adm = AdaptiveDictMatcher::new(7);

    // Seed rules.
    let mut live: Vec<(pardict::core::PatternHandle, Vec<u8>)> = Vec::new();
    for sig in [&b"attack"[..], b"probe", b"xmas", b"sqlmap", b"rooted"] {
        let h = adm.insert(&pram, sig.to_vec());
        live.push((h, sig.to_vec()));
    }

    println!("epoch  rules  groups  packets  hits  (sample)");
    for epoch in 0..6 {
        // Rule churn: one retirement, one or two fresh signatures.
        if live.len() > 3 {
            let k = rng.next_below(live.len() as u64) as usize;
            let (h, sig) = live.swap_remove(k);
            adm.remove(&pram, h);
            println!("  [-] retired {:?}", String::from_utf8_lossy(&sig));
        }
        for _ in 0..=rng.next_below(2) {
            let len = 4 + rng.next_below(5) as usize;
            let sig: Vec<u8> = (0..len).map(|_| alpha.sample(&mut rng)).collect();
            println!("  [+] added   {:?}", String::from_utf8_lossy(&sig));
            let h = adm.insert(&pram, sig.clone());
            live.push((h, sig));
        }

        // A batch of packets; some carry live signatures.
        let mut hits = 0usize;
        let mut sample = String::new();
        let packets = 40;
        for p in 0..packets {
            let mut pkt = random_text(rng.next_u64(), 120, alpha);
            if p % 3 == 0 && !live.is_empty() {
                let (_, sig) = &live[rng.next_below(live.len() as u64) as usize];
                let at = rng.next_below((pkt.len() - sig.len()) as u64) as usize;
                pkt[at..at + sig.len()].copy_from_slice(sig);
            }
            let m = adm.match_text(&pram, &pkt);
            for (i, hit) in m.iter_hits() {
                hits += 1;
                if sample.is_empty() {
                    sample = format!(
                        "pkt{p}@{i}: {:?}",
                        String::from_utf8_lossy(&pkt[i..i + hit.len as usize])
                    );
                }
            }
        }
        println!(
            "{epoch:>5}  {:>5}  {:>6}  {packets:>7}  {hits:>4}  {sample}",
            adm.num_patterns(),
            adm.num_groups(),
        );
    }
    println!("\ngroups stay logarithmic in the rule count; inserts rebuild only the");
    println!("smallest groups (Bentley–Saxe), deletes are tombstones until half dead.");
}
