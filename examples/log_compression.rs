//! Compressing repetitive machine logs with LZ1 — the paper's "large
//! databases need compression" motivation.
//!
//! Synthesizes a log-like corpus (repeated templates with varying fields),
//! compresses it with parallel LZ1, verifies the parallel decompressor,
//! and compares phrase counts and encoded sizes against LZ78 — the
//! LZ1-beats-LZ2 observation from the paper's §1.2 ("LZ1 is known to give
//! better compressions in practice; for example, see Unix compress and
//! gnuzip").
//!
//! ```sh
//! cargo run --release --example log_compression
//! ```

use pardict::compress::{encoded_size, lz78_compress};
use pardict::pram::SplitMix64;
use pardict::prelude::*;

/// A fake but structured log: repeated templates with random fields.
fn synth_log(seed: u64, lines: usize) -> Vec<u8> {
    let mut rng = SplitMix64::new(seed);
    let templates = [
        "INFO request handled path=/api/v1/items status=200 ms=",
        "WARN cache miss key=item: retrying backend=replica ms=",
        "INFO request handled path=/api/v1/users status=200 ms=",
        "ERROR timeout contacting shard=7 attempt=",
    ];
    let mut out = Vec::new();
    for _ in 0..lines {
        let t = templates[rng.next_below(templates.len() as u64) as usize];
        out.extend_from_slice(t.as_bytes());
        let ms = rng.next_below(500);
        out.extend_from_slice(ms.to_string().as_bytes());
        out.push(b'\n');
    }
    out
}

fn main() {
    let pram = Pram::par();
    for lines in [200usize, 1000, 5000] {
        let log = synth_log(11, lines);
        let n = log.len();

        let (tokens, c_comp) = pram.metered(|p| lz1_compress(p, &log, 5));
        let (back, c_dec) = pram.metered(|p| lz1_decompress(p, &tokens, 6));
        assert_eq!(back, log, "round trip");

        let lz78 = lz78_compress(&log);
        let lz1_bytes = encoded_size(&tokens);
        // LZ78 tokens: varint prev + 1 char, approximate with 3 bytes.
        let lz78_bytes = lz78.len() * 3;

        println!(
            "log n = {n:7}: LZ1 {:5} phrases ({:6} B, {:4.1}%)  LZ78 {:5} phrases (~{:6} B, {:4.1}%)",
            tokens.len(),
            lz1_bytes,
            100.0 * lz1_bytes as f64 / n as f64,
            lz78.len(),
            lz78_bytes,
            100.0 * lz78_bytes as f64 / n as f64,
        );
        println!(
            "           compress work/char {:.1} (depth {}), decompress work/char {:.1} (depth {})",
            c_comp.work as f64 / n as f64,
            c_comp.depth,
            c_dec.work as f64 / n as f64,
            c_dec.depth
        );
    }
    println!("\nLZ1 emits fewer phrases than LZ78 on template-heavy data, at linear work.");
}
