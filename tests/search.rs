//! Integration tests for `pardict-search`: grep over a compressed PDZS
//! container must equal dictionary matching over the uncompressed text —
//! including patterns spanning many block boundaries — with block-local
//! ledger charges for range queries and the skip-and-report corruption
//! contract.

use pardict::prelude::*;
use pardict::stream;
use pardict::workloads::markov_text;
use proptest::prelude::*;

fn pack(data: &[u8], block_size: usize) -> Vec<u8> {
    let pram = Pram::seq();
    let cfg = StreamConfig {
        block_size,
        max_in_flight: 4,
    };
    compress_stream(&pram, &mut &data[..], Vec::new(), &cfg)
        .unwrap()
        .0
}

/// All occurrences in the raw text, normalized for comparison.
fn oracle(matcher: &DictMatcher, text: &[u8]) -> Vec<(u64, u32, u32)> {
    let pram = Pram::seq();
    let mut hits: Vec<(u64, u32, u32)> = matcher
        .find_all(&pram, text)
        .into_iter()
        .map(|(p, m)| (p as u64, m.id, m.len))
        .collect();
    hits.sort_unstable();
    hits
}

fn grep_hits(matcher: &DictMatcher, container: &[u8]) -> Vec<(u64, u32, u32)> {
    let pram = Pram::seq();
    let mut rdr = StreamReader::open(std::io::Cursor::new(container)).unwrap();
    let summary = grep_container(&pram, matcher, &mut rdr, &GrepConfig::default()).unwrap();
    assert!(summary.issues.is_empty());
    let mut hits: Vec<(u64, u32, u32)> = summary
        .hits
        .into_iter()
        .map(|h| (h.pos, h.id, h.len))
        .collect();
    hits.sort_unstable();
    hits
}

proptest! {
    /// The headline equivalence: `grep(compress(T), D) ≡ dictionary
    /// matching over T` for arbitrary texts, dictionaries, and block sizes
    /// — block sizes down to 1 byte, so patterns routinely span many
    /// boundaries.
    #[test]
    fn grep_of_compressed_equals_match_of_raw(
        text in prop::collection::vec(prop::sample::select(vec![b'a', b'b', b'c', b'd']), 0..500),
        pats in prop::collection::vec(
            prop::collection::vec(prop::sample::select(vec![b'a', b'b', b'c', b'd']), 1..10),
            1..6,
        ),
        block_size in 1usize..48,
        seed in 0u64..1000,
    ) {
        let dict = Dictionary::new(pats);
        let pram = Pram::seq();
        let matcher = DictMatcher::build(&pram, dict, seed);
        let packed = pack(&text, block_size);
        prop_assert_eq!(grep_hits(&matcher, &packed), oracle(&matcher, &text));
    }

    /// Range grep reports exactly the full-grep hits that start in range,
    /// for every range.
    #[test]
    fn range_grep_equals_filtered_full_grep(
        text in prop::collection::vec(prop::sample::select(vec![b'x', b'y']), 1..400),
        block_size in 1usize..32,
        a_frac in 0usize..10_000,
        b_frac in 0usize..10_000,
    ) {
        let dict = Dictionary::new(vec![b"xy".to_vec(), b"yx".to_vec(), b"xyx".to_vec()]);
        let pram = Pram::seq();
        let matcher = DictMatcher::build(&pram, dict, 7);
        let packed = pack(&text, block_size);

        let n = text.len() as u64;
        let (mut start, mut end) = (a_frac as u64 % (n + 1), b_frac as u64 % (n + 1));
        if start > end {
            std::mem::swap(&mut start, &mut end);
        }

        let full = grep_hits(&matcher, &packed);
        let mut rdr = StreamReader::open(std::io::Cursor::new(&packed)).unwrap();
        let summary =
            grep_range(&pram, &matcher, &mut rdr, start, end, &GrepConfig::default()).unwrap();
        let mut got: Vec<(u64, u32, u32)> = summary
            .hits
            .into_iter()
            .map(|h| (h.pos, h.id, h.len))
            .collect();
        got.sort_unstable();
        let expect: Vec<(u64, u32, u32)> = full
            .into_iter()
            .filter(|&(p, _, _)| p >= start && p < end)
            .collect();
        prop_assert_eq!(got, expect);
    }

    /// Pipelining is invisible to everything but the clock: pipelined grep
    /// and barrier grep return identical hits, identical issue reports,
    /// identical block counts, and **identical ledger costs** under both
    /// `Pram::seq` and `Pram::par` — including on corrupted containers.
    #[test]
    fn pipelined_grep_equals_barrier_grep(
        text in prop::collection::vec(prop::sample::select(vec![b'a', b'b', b'c', b'd']), 1..600),
        pats in prop::collection::vec(
            prop::collection::vec(prop::sample::select(vec![b'a', b'b', b'c', b'd']), 1..8),
            1..5,
        ),
        block_size in 1usize..40,
        wave in 1usize..5,
        corrupt in 0usize..10_000,
    ) {
        let dict = Dictionary::new(pats);
        let build = Pram::seq();
        let matcher = DictMatcher::build(&build, dict, 0xA11);
        let mut packed = pack(&text, block_size);
        // Half the cases flip one payload byte of an arbitrary block: both
        // schedules must report the same issues and skip the same spans.
        if corrupt % 2 == 1 {
            let c = corrupt / 2;
            let rdr = StreamReader::open(std::io::Cursor::new(&packed)).unwrap();
            let entries = rdr.index().entries.clone();
            let e = entries[c % entries.len()];
            if e.comp_len > 0 {
                packed[e.offset as usize + stream::format::RECORD_HEADER_LEN] ^= 0x04;
            }
        }

        let run = |pram: &Pram, pipeline: bool| {
            let cfg = GrepConfig { wave, strict: false, pipeline };
            let mut rdr = StreamReader::open(std::io::Cursor::new(&packed)).unwrap();
            pram.metered(|p| grep_container(p, &matcher, &mut rdr, &cfg).unwrap())
        };
        let (seq_b, seq_b_cost) = run(&Pram::seq(), false);
        let (seq_p, seq_p_cost) = run(&Pram::seq(), true);
        let (par_b, par_b_cost) = run(&Pram::par(), false);
        let (par_p, par_p_cost) = run(&Pram::par(), true);

        prop_assert_eq!(&seq_p.hits, &seq_b.hits);
        prop_assert_eq!(&par_b.hits, &seq_b.hits);
        prop_assert_eq!(&par_p.hits, &seq_b.hits);
        prop_assert_eq!(&seq_p.issues, &seq_b.issues);
        prop_assert_eq!(&par_b.issues, &seq_b.issues);
        prop_assert_eq!(&par_p.issues, &seq_b.issues);
        prop_assert_eq!(seq_p.blocks_searched, seq_b.blocks_searched);
        prop_assert_eq!(par_p.blocks_searched, seq_b.blocks_searched);
        prop_assert_eq!(seq_p_cost, seq_b_cost, "pipelining must not change the ledger");
        prop_assert_eq!(par_b_cost, seq_b_cost, "mode must not change the ledger");
        prop_assert_eq!(par_p_cost, seq_b_cost);
    }
}

/// A pattern longer than two whole blocks must still be found: its
/// occurrences span ≥ 2 boundaries, exercising tail accumulation.
#[test]
fn pattern_spanning_multiple_boundaries_is_found() {
    let needle = b"abracadabra"; // 11 bytes
    let mut text = Vec::new();
    for i in 0..40 {
        text.extend_from_slice(needle);
        text.extend_from_slice(&[b'z'; 3][..(i % 4)]);
    }
    let dict = Dictionary::new(vec![needle.to_vec(), b"cad".to_vec()]);
    let pram = Pram::seq();
    let matcher = DictMatcher::build(&pram, dict, 99);
    // 4-byte blocks: every occurrence of the 11-byte needle crosses at
    // least two block boundaries.
    let packed = pack(&text, 4);
    assert_eq!(grep_hits(&matcher, &packed), oracle(&matcher, &text));
    assert!(
        oracle(&matcher, &text).iter().any(|&(_, id, _)| id == 0),
        "the long needle itself must occur"
    );
}

/// Ledger locality: a grep over a 2-block range must cost work
/// proportional to the covered blocks plus overlap, not the whole
/// container.
#[test]
fn range_grep_work_is_block_local() {
    let data = markov_text(0x5EA_2C4, 64 * 1024, Alphabet::dna());
    let packed = pack(&data, 4096); // 16 blocks
    let dict = Dictionary::new(vec![b"ACGT".to_vec(), b"TTT".to_vec(), b"GATTACA".to_vec()]);
    let build_pram = Pram::seq();
    let matcher = DictMatcher::build(&build_pram, dict, 0xBEEF);
    let mut rdr = StreamReader::open(std::io::Cursor::new(&packed)).unwrap();

    let pram_full = Pram::seq();
    let (_, full) = pram_full
        .metered(|p| grep_container(p, &matcher, &mut rdr, &GrepConfig::default()).unwrap());

    // 10_000..14_000 covers exactly blocks 2 and 3 (plus overlap bytes).
    let pram_range = Pram::seq();
    let (summary, ranged) = pram_range.metered(|p| {
        grep_range(
            p,
            &matcher,
            &mut rdr,
            10_000,
            14_000,
            &GrepConfig::default(),
        )
        .unwrap()
    });
    assert_eq!(summary.blocks_searched, 2, "covering blocks only");
    assert!(
        ranged.work * 6 < full.work,
        "2-of-16-block range grep must cost a fraction of a full grep: {} vs {}",
        ranged.work,
        full.work
    );
}

/// Corruption contract end to end: a payload flip in one block is named,
/// hits outside that block's span all survive, survivors are a subset of
/// the clean hits, and `strict()` turns the same container into a hard
/// error identifying the block.
#[test]
fn corrupt_block_is_skipped_named_and_strict_fails() {
    let data = markov_text(0xC0FF_EE, 8 * 1024, Alphabet::lowercase());
    let block_size = 1024; // 8 blocks
    let mut packed = pack(&data, block_size);
    let dict = Dictionary::new(vec![b"th".to_vec(), b"ing".to_vec(), b"qu".to_vec()]);
    let pram = Pram::seq();
    let matcher = DictMatcher::build(&pram, dict, 3);
    let clean = grep_hits(&matcher, &packed);

    // Flip the first payload byte of block 4.
    let target = {
        let rdr = StreamReader::open(std::io::Cursor::new(&packed)).unwrap();
        let e = rdr.index().entries[4];
        e.offset as usize + stream::format::RECORD_HEADER_LEN
    };
    packed[target] ^= 0x01;

    let mut rdr = StreamReader::open(std::io::Cursor::new(&packed)).unwrap();
    let summary = grep_container(&pram, &matcher, &mut rdr, &GrepConfig::default()).unwrap();
    assert_eq!(summary.issues.len(), 1);
    assert_eq!(summary.issues[0].index, 4, "wrong block named");

    let got: Vec<(u64, u32, u32)> = summary.hits.iter().map(|h| (h.pos, h.id, h.len)).collect();
    // Survivors are a subset of the clean hits…
    for h in &got {
        assert!(clean.contains(h), "phantom hit {h:?}");
    }
    // …and every clean hit not touching block 4's byte span survives.
    let (s4, e4) = (4 * block_size as u64, 5 * block_size as u64);
    for h in clean
        .iter()
        .filter(|&&(p, _, len)| p + u64::from(len) <= s4 || p >= e4)
    {
        assert!(got.contains(h), "lost hit {h:?} outside the corrupt span");
    }

    let strict = grep_container(&pram, &matcher, &mut rdr, &GrepConfig::default().strict());
    assert!(
        matches!(
            strict,
            Err(stream::StreamError::CorruptBlock { index: 4, .. })
        ),
        "strict mode must fail naming block 4: {strict:?}"
    );
}

/// The simulator invariant extended to the search subsystem: `Pram::seq()`
/// and `Pram::par()` produce identical hits and identical ledger charges.
#[test]
fn grep_is_mode_independent() {
    let data = markov_text(0xD00D, 20_000, Alphabet::lowercase());
    let packed = pack(&data, 2048);
    let dict = Dictionary::new(vec![b"the".to_vec(), b"and".to_vec(), b"tion".to_vec()]);
    let seq = Pram::seq();
    let par = Pram::par();
    let matcher = DictMatcher::build(&seq, dict, 11);

    let mut rdr_a = StreamReader::open(std::io::Cursor::new(&packed)).unwrap();
    let (a, ca) =
        seq.metered(|p| grep_container(p, &matcher, &mut rdr_a, &GrepConfig::default()).unwrap());
    let mut rdr_b = StreamReader::open(std::io::Cursor::new(&packed)).unwrap();
    let (b, cb) =
        par.metered(|p| grep_container(p, &matcher, &mut rdr_b, &GrepConfig::default()).unwrap());
    assert_eq!(a.hits, b.hits);
    assert_eq!(ca, cb, "seq and par ledgers must agree");
}
