//! End-to-end tests of the `pardict` CLI binary.

use std::io::Write;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pardict"))
}

fn write_tmp(name: &str, data: &[u8]) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("pardict-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(data).unwrap();
    path
}

#[test]
fn match_lists_longest_hits() {
    let dict = write_tmp("d1.txt", b"he\nshe\nhers\n");
    let text = write_tmp("t1.bin", b"ushers");
    let out = bin()
        .args(["match", "--dict"])
        .arg(&dict)
        .arg(&text)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("1\t1\tshe"), "{stdout}");
    assert!(stdout.contains("2\t2\thers"), "{stdout}");
    // Longest-only: "he" at 2 must NOT be listed by `match`.
    assert!(!stdout.contains("\the\n"), "{stdout}");
}

#[test]
fn grep_lists_all_hits() {
    let dict = write_tmp("d2.txt", b"he\nshe\nhers\n");
    let text = write_tmp("t2.bin", b"ushers");
    let out = bin()
        .args(["grep", "--dict"])
        .arg(&dict)
        .arg(&text)
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("2\t0\the"),
        "grep must include shorter hits: {stdout}"
    );
    assert!(stdout.contains("2\t2\thers"), "{stdout}");
}

#[test]
fn compress_decompress_roundtrip() {
    let data = b"a rose is a rose is a rose, said the rose".repeat(20);
    let input = write_tmp("t3.bin", &data);
    let packed = std::env::temp_dir().join("pardict-cli-tests/t3.plz");
    let unpacked = std::env::temp_dir().join("pardict-cli-tests/t3.out");

    let out = bin()
        .args(["compress"])
        .arg(&input)
        .args(["-o"])
        .arg(&packed)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(std::fs::metadata(&packed).unwrap().len() < data.len() as u64);

    let out = bin()
        .args(["decompress"])
        .arg(&packed)
        .args(["-o"])
        .arg(&unpacked)
        .output()
        .unwrap();
    assert!(out.status.success());
    assert_eq!(std::fs::read(&unpacked).unwrap(), data);
}

#[test]
fn decompress_rejects_garbage() {
    let garbage = write_tmp("t4.plz", &[9, 9, 9]);
    let out = bin().args(["decompress"]).arg(&garbage).output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("tag"), "{err}");
}

#[test]
fn parse_reports_optimal_vs_greedy() {
    let dict = write_tmp("d5.txt", b"aab\nabbb\nb\n");
    let text = write_tmp("t5.bin", b"aabbb");
    let out = bin()
        .args(["parse", "--dict"])
        .arg(&dict)
        .arg(&text)
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("optimal: 2 phrases"), "{stdout}");
    assert!(stdout.contains("greedy would use 3"), "{stdout}");
}

#[test]
fn delta_and_patch_roundtrip() {
    let base_data = b"version one of the document with shared content".repeat(30);
    let mut new_data = base_data.clone();
    new_data.extend_from_slice(b" plus an appendix");
    let base = write_tmp("t6.base", &base_data);
    let new = write_tmp("t6.new", &new_data);
    let delta = std::env::temp_dir().join("pardict-cli-tests/t6.pdz");
    let restored = std::env::temp_dir().join("pardict-cli-tests/t6.out");

    let out = bin()
        .args(["delta"])
        .arg(&base)
        .arg(&new)
        .args(["-o"])
        .arg(&delta)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        std::fs::metadata(&delta).unwrap().len() < 100,
        "delta should be tiny"
    );
    let out = bin()
        .args(["patch"])
        .arg(&base)
        .arg(&delta)
        .args(["-o"])
        .arg(&restored)
        .output()
        .unwrap();
    assert!(out.status.success());
    assert_eq!(std::fs::read(&restored).unwrap(), new_data);
}

#[test]
fn stream_compress_roundtrip_and_cat_range() {
    let data = b"round and round the garden like a teddy bear ".repeat(80); // ~3.7 KB
    let input = write_tmp("t7.bin", &data);
    let packed = std::env::temp_dir().join("pardict-cli-tests/t7.pdzs");
    let unpacked = std::env::temp_dir().join("pardict-cli-tests/t7.out");
    let sliced = std::env::temp_dir().join("pardict-cli-tests/t7.slice");

    let out = bin()
        .args(["compress", "--stream", "--block-size", "512"])
        .arg(&input)
        .args(["-o"])
        .arg(&packed)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let container = std::fs::read(&packed).unwrap();
    assert_eq!(&container[..4], b"PDZS", "missing container magic");
    assert!(container.len() < data.len(), "repetitive data must shrink");
    assert!(String::from_utf8_lossy(&out.stderr).contains("blocks"));

    // decompress auto-detects the container by its magic.
    let out = bin()
        .args(["decompress"])
        .arg(&packed)
        .args(["-o"])
        .arg(&unpacked)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(std::fs::read(&unpacked).unwrap(), data);

    // cat --range serves exactly the requested slice.
    let out = bin()
        .args(["cat", "--range", "700..1500"])
        .arg(&packed)
        .args(["-o"])
        .arg(&sliced)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(std::fs::read(&sliced).unwrap(), &data[700..1500]);

    // Out-of-bounds ranges are a clear error, not a panic.
    let out = bin()
        .args(["cat", "--range", "0..999999999"])
        .arg(&packed)
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("out of bounds"));
}

#[test]
fn multi_block_input_streams_automatically() {
    // 200 KB > the 64 KiB default block size: must stream without --stream.
    let data = b"the quick brown fox jumps over the lazy dog. ".repeat(4600);
    let input = write_tmp("t8.bin", &data);
    let packed = std::env::temp_dir().join("pardict-cli-tests/t8.pdzs");
    let unpacked = std::env::temp_dir().join("pardict-cli-tests/t8.out");

    let out = bin()
        .args(["compress"])
        .arg(&input)
        .args(["-o"])
        .arg(&packed)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("streamed"),
        "large input should take the streaming path: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(&std::fs::read(&packed).unwrap()[..4], b"PDZS");

    let out = bin()
        .args(["decompress"])
        .arg(&packed)
        .args(["-o"])
        .arg(&unpacked)
        .output()
        .unwrap();
    assert!(out.status.success());
    assert_eq!(std::fs::read(&unpacked).unwrap(), data);
}

#[test]
fn corrupt_container_fails_naming_the_block() {
    let data = b"twinkle twinkle little star how I wonder what you are ".repeat(60);
    let input = write_tmp("t9.bin", &data);
    let packed = std::env::temp_dir().join("pardict-cli-tests/t9.pdzs");

    let out = bin()
        .args(["compress", "--stream", "--block-size", "256"])
        .arg(&input)
        .args(["-o"])
        .arg(&packed)
        .output()
        .unwrap();
    assert!(out.status.success());

    // Flip a byte in the middle of the block section.
    let mut container = std::fs::read(&packed).unwrap();
    let mid = container.len() / 2;
    container[mid] ^= 0x20;
    let corrupted = write_tmp("t9.corrupt.pdzs", &container);

    let out = bin().args(["decompress"]).arg(&corrupted).output().unwrap();
    assert!(!out.status.success(), "corruption must fail the exit code");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("block"), "error must name the block: {err}");
}

#[test]
fn oversized_whole_buffer_is_refused_with_guidance() {
    let data = b"this input exceeds the tiny whole-buffer cap set below".repeat(4);
    let input = write_tmp("t10.bin", &data);

    let out = bin()
        .args(["compress", "--whole"])
        .arg(&input)
        .env("PARDICT_MAX_WHOLE", "16")
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("--stream"),
        "error must point at --stream: {err}"
    );
    assert!(err.contains("PARDICT_MAX_WHOLE"), "{err}");

    // Without --whole the same input just streams (the cap only guards
    // the single-buffer parse).
    let out = bin()
        .args(["compress"])
        .arg(&input)
        .env("PARDICT_MAX_WHOLE", "16")
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn grep_container_matches_raw_grep() {
    let data = b"she sells seashells by the seashore; the shells she sells ".repeat(40);
    let input = write_tmp("t11.bin", &data);
    let packed = std::env::temp_dir().join("pardict-cli-tests/t11.pdzs");

    let out = bin()
        .args(["compress", "--stream", "--block-size", "128"])
        .arg(&input)
        .args(["-o"])
        .arg(&packed)
        .output()
        .unwrap();
    assert!(out.status.success());

    // Inline patterns, container input behind --in.
    let zipped = bin()
        .args(["grep", "she", "shell", "--in"])
        .arg(&packed)
        .output()
        .unwrap();
    assert!(
        zipped.status.success(),
        "{}",
        String::from_utf8_lossy(&zipped.stderr)
    );
    // Same patterns over the raw bytes must give byte-identical output.
    let raw = bin()
        .args(["grep", "she", "shell", "--in"])
        .arg(&input)
        .output()
        .unwrap();
    assert!(raw.status.success());
    assert_eq!(zipped.stdout, raw.stdout, "container vs raw grep disagree");
    assert!(!zipped.stdout.is_empty());

    // --count prints one number; --offsets one position per line.
    let count = bin()
        .args(["grep", "she", "--count", "--in"])
        .arg(&packed)
        .output()
        .unwrap();
    assert!(count.status.success());
    let n: usize = String::from_utf8_lossy(&count.stdout)
        .trim()
        .parse()
        .unwrap();
    assert!(n > 0);
    let offsets = bin()
        .args(["grep", "she", "--offsets", "--in"])
        .arg(&packed)
        .output()
        .unwrap();
    assert!(offsets.status.success());
    assert_eq!(String::from_utf8_lossy(&offsets.stdout).lines().count(), n);
}

#[test]
fn grep_corrupt_container_names_block_and_keeps_other_hits() {
    let data = b"abcabcabc-needle-xyzxyzxyz ".repeat(100); // 2.7 KB
    let input = write_tmp("t12.bin", &data);
    let packed = std::env::temp_dir().join("pardict-cli-tests/t12.pdzs");

    let out = bin()
        .args(["compress", "--stream", "--block-size", "256"])
        .arg(&input)
        .args(["-o"])
        .arg(&packed)
        .output()
        .unwrap();
    assert!(out.status.success());

    let clean = bin()
        .args(["grep", "needle", "--offsets", "--in"])
        .arg(&packed)
        .output()
        .unwrap();
    assert!(clean.status.success());
    let clean_offsets: Vec<String> = String::from_utf8_lossy(&clean.stdout)
        .lines()
        .map(str::to_string)
        .collect();
    assert!(clean_offsets.len() > 50);

    // Flip a byte in the middle of the block section.
    let mut container = std::fs::read(&packed).unwrap();
    let mid = container.len() / 2;
    container[mid] ^= 0x40;
    let corrupted = write_tmp("t12.corrupt.pdzs", &container);

    let out = bin()
        .args(["grep", "needle", "--offsets", "--in"])
        .arg(&corrupted)
        .output()
        .unwrap();
    assert!(!out.status.success(), "corruption must fail the exit code");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("block"), "error must name the block: {err}");
    // Matches outside the corrupt block survive: a nonempty strict subset.
    let got: Vec<String> = String::from_utf8_lossy(&out.stdout)
        .lines()
        .map(str::to_string)
        .collect();
    assert!(
        !got.is_empty(),
        "hits outside the corrupt block must survive"
    );
    assert!(got.len() < clean_offsets.len());
    assert!(got.iter().all(|o| clean_offsets.contains(o)));

    // --strict refuses the container outright.
    let out = bin()
        .args(["grep", "needle", "--strict", "--in"])
        .arg(&corrupted)
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("block"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = bin().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

// ---- exit-code contract matrix ----
//
// The CLI's exit status is part of its interface: scripts and CI gate on
// it. One place pins the whole contract — success is 0; *any* detected
// damage is nonzero even when the command still produced best-effort
// output (survivor bytes, partial hit lists); usage errors and missing
// files are nonzero; `chaos` maps a violated oracle to nonzero.

/// Build a small container on disk and corrupt one payload byte in a
/// middle block, returning (clean path, corrupted path).
fn corrupted_container() -> (std::path::PathBuf, std::path::PathBuf) {
    use pardict::stream::layout::ContainerLayout;
    let data: Vec<u8> = b"the quick brown fox jumps over the lazy dog. "
        .repeat(40)
        .to_vec();
    let input = write_tmp("ec-in.bin", &data);
    let clean = std::env::temp_dir().join("pardict-cli-tests/ec.pdzs");
    let out = bin()
        .args(["compress", "--stream", "--block-size", "256"])
        .arg(&input)
        .args(["-o"])
        .arg(&clean)
        .output()
        .unwrap();
    assert!(out.status.success());
    let mut bytes = std::fs::read(&clean).unwrap();
    let layout = ContainerLayout::parse(&bytes).unwrap();
    assert!(layout.num_blocks() >= 3, "need a middle block to corrupt");
    let span = layout.records[1].payload.clone();
    bytes[span.start + span.len() / 2] ^= 0x40;
    let corrupt = write_tmp("ec-corrupt.pdzs", &bytes);
    (clean, corrupt)
}

#[test]
fn exit_code_contract_matrix() {
    let (clean, corrupt) = corrupted_container();
    let dict = write_tmp("ec-dict.txt", b"fox\nlazy\n");
    let code = |out: &std::process::Output| out.status.code().unwrap();

    // Success: clean container, clean operations -> 0.
    let out = bin()
        .args(["grep", "--dict"])
        .arg(&dict)
        .arg(&clean)
        .output()
        .unwrap();
    assert_eq!(code(&out), 0, "{}", String::from_utf8_lossy(&out.stderr));

    // Corrupt container, lenient decompress: survivors are written but
    // the skipped block must surface as a nonzero exit.
    let survivors = std::env::temp_dir().join("pardict-cli-tests/ec-survivors.bin");
    let out = bin()
        .args(["decompress"])
        .arg(&corrupt)
        .args(["-o"])
        .arg(&survivors)
        .output()
        .unwrap();
    assert_eq!(code(&out), 1, "damage must not exit 0");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("corrupt block"), "{stderr}");
    let recovered = std::fs::read(&survivors).unwrap();
    assert!(
        !recovered.is_empty() && recovered.len() < 40 * 45,
        "survivors must be written (got {} bytes)",
        recovered.len()
    );

    // Corrupt container, lenient grep: hits from healthy blocks plus a
    // nonzero exit naming the skipped block.
    let out = bin()
        .args(["grep", "--dict"])
        .arg(&dict)
        .arg(&corrupt)
        .output()
        .unwrap();
    assert_eq!(code(&out), 1);
    assert!(!out.stdout.is_empty(), "healthy-block hits must be printed");

    // Corrupt container, strict grep: fail fast, nonzero.
    let out = bin()
        .args(["grep", "--strict", "--dict"])
        .arg(&dict)
        .arg(&corrupt)
        .output()
        .unwrap();
    assert_eq!(code(&out), 1);

    // Bad flags: unknown command, conflicting flags, unknown chaos flag.
    assert_eq!(code(&bin().args(["frobnicate"]).output().unwrap()), 1);
    let out = bin()
        .args(["grep", "--count", "--offsets", "--dict"])
        .arg(&dict)
        .arg(&clean)
        .output()
        .unwrap();
    assert_eq!(code(&out), 1);
    assert_eq!(code(&bin().args(["chaos", "--what"]).output().unwrap()), 1);

    // Missing files.
    let out = bin()
        .args(["decompress", "/nonexistent/no-such-file.pdzs"])
        .output()
        .unwrap();
    assert_eq!(code(&out), 1);
    let out = bin()
        .args(["grep", "--dict", "/nonexistent/dict.txt"])
        .arg(&clean)
        .output()
        .unwrap();
    assert_eq!(code(&out), 1);

    // Help is a success, not an error.
    assert_eq!(code(&bin().args(["--help"]).output().unwrap()), 0);
}

/// `pardict chaos` exits 0 on a healthy stack and prints a report that is
/// byte-identical across runs of the same seed.
#[test]
fn chaos_subcommand_is_deterministic_and_exits_zero() {
    let run = || {
        bin()
            .args(["chaos", "--seed", "0xBADC0DE", "--rounds", "1", "--no-wire"])
            .output()
            .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(
        a.status.code().unwrap(),
        0,
        "{}",
        String::from_utf8_lossy(&a.stdout)
    );
    assert_eq!(a.stdout, b.stdout, "chaos report must be byte-identical");
    let text = String::from_utf8_lossy(&a.stdout);
    assert!(text.contains("pardict-chaos report (seed 195936478, rounds 1)"));
    assert!(text.contains("verdict:"));
    assert!(text.contains("0 violated"));
}

/// Storage rows of the exit-code matrix: `serve --data-dir` must refuse
/// unusable paths with a nonzero exit, and `--recover-only` must map
/// clean recovery to exit 0 and dropped-data recovery to exit 1 with the
/// report on stdout.
#[test]
fn storage_exit_code_matrix() {
    use pardict::store::{Store, StoreConfig, WAL_FILE};
    let code = |out: &std::process::Output| out.status.code().unwrap();

    // --data-dir pointing at a regular file: environmental, exit 1.
    let file = write_tmp("ec-store-file", b"not a directory");
    let out = bin()
        .args(["serve", "--data-dir"])
        .arg(&file)
        .args(["--recover-only"])
        .output()
        .unwrap();
    assert_eq!(code(&out), 1, "a regular file is not a data dir");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("not a directory"), "{err}");

    // --data-dir with a missing value: usage error, exit 1.
    assert_eq!(
        code(&bin().args(["serve", "--data-dir"]).output().unwrap()),
        1
    );

    // A data dir that cannot be created (parent is a file): exit 1.
    let out = bin()
        .args(["serve", "--data-dir"])
        .arg(file.join("child"))
        .args(["--recover-only"])
        .output()
        .unwrap();
    assert_eq!(code(&out), 1, "uncreatable data dir must fail");

    // Craft a directory whose WAL ends in a torn record: recovery drops
    // the tail, reports it on stdout, and --recover-only exits 1 so
    // operators notice data went missing.
    let dir = std::env::temp_dir().join("pardict-cli-tests/ec-store-torn");
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = StoreConfig {
        sync: false,
        ..StoreConfig::default()
    };
    {
        let mut store = Store::open(&dir, cfg).unwrap();
        store
            .log_publish("alpha", 1, &[b"he".to_vec(), b"she".to_vec()])
            .unwrap();
        store.log_publish("beta", 1, &[b"hers".to_vec()]).unwrap();
    }
    let wal = dir.join(WAL_FILE);
    let len = std::fs::metadata(&wal).unwrap().len();
    std::fs::File::options()
        .write(true)
        .open(&wal)
        .unwrap()
        .set_len(len - 3)
        .unwrap();
    let out = bin()
        .args(["serve", "--data-dir"])
        .arg(&dir)
        .args(["--recover-only"])
        .output()
        .unwrap();
    assert_eq!(code(&out), 1, "dropped tail must exit nonzero");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("TORN-TAIL"), "{stdout}");
    assert!(
        stdout.contains("RECOVERED dicts 1 snapshot 0 wal-replayed 1"),
        "the intact first record must survive: {stdout}"
    );

    // Recovery truncated the untrusted tail, so a second pass over the
    // same directory is clean: exit 0, RECOVERED line, no TORN-TAIL.
    let out = bin()
        .args(["serve", "--data-dir"])
        .arg(&dir)
        .args(["--recover-only"])
        .output()
        .unwrap();
    assert_eq!(
        code(&out),
        0,
        "repaired dir must recover cleanly: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("RECOVERED dicts 1"), "{stdout}");
    assert!(!stdout.contains("TORN-TAIL"), "{stdout}");
}
