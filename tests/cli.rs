//! End-to-end tests of the `pardict` CLI binary.

use std::io::Write;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pardict"))
}

fn write_tmp(name: &str, data: &[u8]) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("pardict-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(data).unwrap();
    path
}

#[test]
fn match_lists_longest_hits() {
    let dict = write_tmp("d1.txt", b"he\nshe\nhers\n");
    let text = write_tmp("t1.bin", b"ushers");
    let out = bin()
        .args(["match", "--dict"])
        .arg(&dict)
        .arg(&text)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("1\t1\tshe"), "{stdout}");
    assert!(stdout.contains("2\t2\thers"), "{stdout}");
    // Longest-only: "he" at 2 must NOT be listed by `match`.
    assert!(!stdout.contains("\the\n"), "{stdout}");
}

#[test]
fn grep_lists_all_hits() {
    let dict = write_tmp("d2.txt", b"he\nshe\nhers\n");
    let text = write_tmp("t2.bin", b"ushers");
    let out = bin()
        .args(["grep", "--dict"])
        .arg(&dict)
        .arg(&text)
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("2\t0\the"),
        "grep must include shorter hits: {stdout}"
    );
    assert!(stdout.contains("2\t2\thers"), "{stdout}");
}

#[test]
fn compress_decompress_roundtrip() {
    let data = b"a rose is a rose is a rose, said the rose".repeat(20);
    let input = write_tmp("t3.bin", &data);
    let packed = std::env::temp_dir().join("pardict-cli-tests/t3.plz");
    let unpacked = std::env::temp_dir().join("pardict-cli-tests/t3.out");

    let out = bin()
        .args(["compress"])
        .arg(&input)
        .args(["-o"])
        .arg(&packed)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(std::fs::metadata(&packed).unwrap().len() < data.len() as u64);

    let out = bin()
        .args(["decompress"])
        .arg(&packed)
        .args(["-o"])
        .arg(&unpacked)
        .output()
        .unwrap();
    assert!(out.status.success());
    assert_eq!(std::fs::read(&unpacked).unwrap(), data);
}

#[test]
fn decompress_rejects_garbage() {
    let garbage = write_tmp("t4.plz", &[9, 9, 9]);
    let out = bin().args(["decompress"]).arg(&garbage).output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("tag"), "{err}");
}

#[test]
fn parse_reports_optimal_vs_greedy() {
    let dict = write_tmp("d5.txt", b"aab\nabbb\nb\n");
    let text = write_tmp("t5.bin", b"aabbb");
    let out = bin()
        .args(["parse", "--dict"])
        .arg(&dict)
        .arg(&text)
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("optimal: 2 phrases"), "{stdout}");
    assert!(stdout.contains("greedy would use 3"), "{stdout}");
}

#[test]
fn delta_and_patch_roundtrip() {
    let base_data = b"version one of the document with shared content".repeat(30);
    let mut new_data = base_data.clone();
    new_data.extend_from_slice(b" plus an appendix");
    let base = write_tmp("t6.base", &base_data);
    let new = write_tmp("t6.new", &new_data);
    let delta = std::env::temp_dir().join("pardict-cli-tests/t6.pdz");
    let restored = std::env::temp_dir().join("pardict-cli-tests/t6.out");

    let out = bin()
        .args(["delta"])
        .arg(&base)
        .arg(&new)
        .args(["-o"])
        .arg(&delta)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        std::fs::metadata(&delta).unwrap().len() < 100,
        "delta should be tiny"
    );
    let out = bin()
        .args(["patch"])
        .arg(&base)
        .arg(&delta)
        .args(["-o"])
        .arg(&restored)
        .output()
        .unwrap();
    assert!(out.status.success());
    assert_eq!(std::fs::read(&restored).unwrap(), new_data);
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = bin().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}
