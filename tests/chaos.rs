//! Chaos tier: deterministic fault injection and differential
//! verification, end to end.
//!
//! These tests drive `pardict::chaos` the way CI does: seeded runs whose
//! reports must be byte-identical per seed, clean on healthy code, and
//! complete — every fault class the planner knows must show up in the
//! report with an oracle verdict. The ledger invariant auditor runs
//! inside every container round (each round executes under both
//! `Pram::seq()` and `Pram::par()`), so a pass here also certifies the
//! cost-model contracts.

use pardict::chaos::{audit_seq_par, run_chaos, ChaosConfig, ChaosProxy, ClientFault};
use pardict::prelude::*;
use pardict::service::{wire, Client, Engine, Metrics, Registry, Server};
use pardict::trace::{TraceConfig, Tracer};
use std::sync::Arc;

#[test]
fn chaos_report_is_byte_identical_per_seed() {
    let cfg = ChaosConfig {
        seed: 0xC4A0_5EED,
        rounds: 2,
        wire: false,
        storage: true,
    };
    let a = run_chaos(&cfg);
    let b = run_chaos(&cfg);
    assert_eq!(a.text, b.text, "same seed must give byte-identical reports");
    assert_eq!(a.checks, b.checks);
    assert!(a.checks > 0);
    assert_eq!(a.violations, 0, "clean stack must pass:\n{}", a.text);
    assert!(a.passed());
}

#[test]
fn different_seeds_give_different_plans() {
    let base = ChaosConfig {
        seed: 1,
        rounds: 1,
        wire: false,
        storage: false,
    };
    let a = run_chaos(&base);
    let b = run_chaos(&ChaosConfig { seed: 2, ..base });
    assert_ne!(
        a.text, b.text,
        "distinct seeds should script distinct faults"
    );
}

/// Every fault class the planner knows appears in the report with a
/// verdict (or an explicit skip naming why), across a few rounds so the
/// corpora vary. These names are the stable vocabulary TESTING.md
/// documents for reproducing failures.
#[test]
fn every_fault_class_is_reported_with_a_verdict() {
    let report = run_chaos(&ChaosConfig {
        seed: 2026,
        rounds: 4,
        wire: false,
        storage: false,
    });
    for class in [
        "payload-bit-flip",
        "payload-burst-flip",
        "record-header-flip",
        "truncate-record",
        "truncate-index",
        "index-footer-flip",
        "trailer-flip",
        "payload-swap",
        "block-reorder",
        "crc-preserving-swap",
    ] {
        assert!(
            report.text.contains(class),
            "fault class {class} missing from report:\n{}",
            report.text
        );
    }
    assert!(
        report.text.contains("ledger audit: seq == par"),
        "ledger auditor verdict missing:\n{}",
        report.text
    );
    assert_eq!(report.violations, 0, "report:\n{}", report.text);
}

/// The wire section: hostile frames against a live server. Every hostile
/// scenario plus the metrics accounting identities must hold.
#[test]
fn wire_chaos_holds_against_a_live_server() {
    let report = run_chaos(&ChaosConfig {
        seed: 7,
        rounds: 0,
        wire: true,
        storage: false,
    });
    for scenario in [
        "malformed-frame",
        "oversized-frame",
        "mid-request-disconnect",
        "truncated-length-prefix",
        "slow-drip",
        "hostile pattern count",
        "torn delta publish",
        "hostile delta count",
        "stale-parent delta",
        "delta publish applies",
        "metrics accounting",
    ] {
        assert!(
            report.text.contains(scenario),
            "wire scenario {scenario} missing from report:\n{}",
            report.text
        );
    }
    assert_eq!(report.violations, 0, "report:\n{}", report.text);
}

/// The storage section: every scripted fault class against a
/// `pardict-store` data directory must appear with a verdict, and a
/// clean stack must violate none of the recovery oracles.
#[test]
fn storage_chaos_holds_on_a_clean_stack() {
    let report = run_chaos(&ChaosConfig {
        seed: 31,
        rounds: 0,
        wire: false,
        storage: true,
    });
    for class in [
        "clean directory recovers",
        "torn-mid-delta",
        "wal-record-bit-flip",
        "truncated-snapshot",
        "stale-temp-leftover",
    ] {
        assert!(
            report.text.contains(class),
            "storage fault class {class} missing from report:\n{}",
            report.text
        );
    }
    assert_eq!(report.violations, 0, "report:\n{}", report.text);
}

/// The auditor is reusable outside `run_chaos`: metered library calls
/// must satisfy the ledger contracts under both modes.
#[test]
fn ledger_auditor_accepts_real_library_work() {
    let (hits, report) = audit_seq_par("lz1 + match", |pram, auditor| {
        let text = pardict::workloads::markov_text(11, 4000, Alphabet::lowercase());
        let tokens = lz1_compress(pram, &text, 0x5EED);
        auditor.step(pram, "compress");
        let back = lz1_decompress(pram, &tokens, 0x5EED);
        assert_eq!(back, text);
        auditor.step(pram, "round-trip");
        let dict = Dictionary::new(vec![b"the".to_vec(), b"ab".to_vec(), b"qzx".to_vec()]);
        dictionary_match(pram, &dict, &text, 0xA5)
            .iter_hits()
            .map(|(i, m)| (i, m.id, m.len))
            .collect::<Vec<_>>()
    })
    .expect("library work must satisfy the ledger contracts");
    assert!(report.cost.work >= report.cost.depth);
    assert!(report.steps >= 3);
    // Not asserting hit counts — the corpus is random; the auditor already
    // proved seq and par agree on them.
    drop(hits);
}

/// Wire chaos against a *traced* engine: every [`ClientFault`] flavour
/// hits a live server whose engine samples 1-in-2 traces. The collector
/// must never panic, the clean requests interleaved with the hostile
/// connections must still answer, and the metrics accounting identity
/// must close at quiescence — tracing is observability, never behaviour.
#[test]
fn traced_engine_survives_wire_chaos_with_sampling_on() {
    let tracer = Tracer::new(TraceConfig {
        sample_one_in: 2,
        seed: 0xC4A0_57E5,
        capacity: 1 << 12,
        deterministic: true,
    });
    let metrics = Arc::new(Metrics::default());
    let registry = Arc::new(Registry::new(Arc::clone(&metrics)));
    let engine = Engine::new_traced(
        pardict::cluster::selftest::engine_config(),
        registry,
        Arc::clone(&metrics),
        Some(Arc::clone(&tracer)),
    );
    engine
        .registry()
        .publish("d", vec![b"ab".to_vec(), b"abc".to_vec(), b"ca".to_vec()])
        .expect("publish");
    let mut server = Server::start(engine.clone(), "127.0.0.1:0").expect("server start");
    let mut proxy = ChaosProxy::start(server.addr()).expect("proxy start");

    let faults = [
        ClientFault::PassThrough,
        ClientFault::CorruptTag,
        ClientFault::OversizeLength,
        ClientFault::TruncateMidFrame,
        ClientFault::DisconnectAfterPrefix,
        ClientFault::SlowDrip,
    ];
    for (round, fault) in faults.iter().cycle().take(18).enumerate() {
        proxy.push_fault(*fault);
        // Hostile connection: the outcome (answer or transport error)
        // depends on the fault; what's asserted is "no panic, no hang".
        if let Ok(mut c) = Client::connect(proxy.addr()) {
            let text = vec![b'a'; 8 + round];
            let _ = c.op_traced(wire::tag::MATCH, "d", &text, 2_000, tracer.begin_trace());
        }
        // Clean traced request on a direct connection: must answer.
        let mut clean = Client::connect(server.addr()).expect("clean connect");
        let reply = clean
            .op_traced(
                wire::tag::GREP,
                "d",
                b"abcabca",
                2_000,
                tracer.begin_trace(),
            )
            .expect("clean transport")
            .expect("clean service reply");
        drop(reply);
    }

    proxy.stop();
    server.stop();
    engine.shutdown();
    metrics
        .check_accounting(true)
        .expect("accounting must close with sampling on");
    // 1-in-2 head sampling on a healthy ring: some spans collected
    // (the clean requests alone guarantee traffic), none dropped.
    let spans = tracer.drain();
    assert!(!spans.is_empty(), "sampled requests must leave spans");
    assert_eq!(tracer.dropped(), 0, "ring is far from full");
}

/// A deliberately tiny collector under overload: the ring keeps its
/// capacity, counts every excess span in `dropped()`, and never blocks
/// the emitting thread. Stored + dropped must equal emitted exactly.
#[test]
fn tiny_collector_counts_drops_without_blocking() {
    let tracer = Tracer::new(TraceConfig {
        sample_one_in: 1,
        seed: 9,
        capacity: 4,
        deterministic: true,
    });
    const EMITTED: usize = 64;
    for _ in 0..EMITTED {
        let ctx = tracer.begin_trace().expect("sample 1-in-1 keeps all");
        drop(tracer.start(ctx, "overload", 0));
    }
    let stored = tracer.drain().len();
    assert!(
        stored <= 4,
        "ring capacity must bound storage, got {stored}"
    );
    assert!(
        tracer.dropped() > 0,
        "overload must be visible in the counter"
    );
    assert_eq!(
        stored as u64 + tracer.dropped(),
        EMITTED as u64,
        "every span is either stored or counted as dropped"
    );
}
