//! Integration tests for the chunked streaming container: round-trips
//! over arbitrary bytes, corruption detection (truncation and bit flips),
//! random-access equivalence, ledger attribution of range reads, and the
//! blockwise approximation bound against whole-buffer LZ1.

use pardict::prelude::*;
use pardict::stream::{self, compress_stream, decompress_stream, is_container, StreamError};
use pardict::workloads::markov_text;
use proptest::prelude::*;

fn pack(data: &[u8], block_size: usize) -> Vec<u8> {
    let pram = Pram::seq();
    let cfg = StreamConfig {
        block_size,
        max_in_flight: 4,
    };
    compress_stream(&pram, &mut &data[..], Vec::new(), &cfg)
        .unwrap()
        .0
}

proptest! {
    /// Arbitrary bytes (NULs included) at arbitrary block sizes round-trip
    /// byte-identically through both decoders.
    #[test]
    fn container_roundtrips_arbitrary_bytes(
        data in prop::collection::vec(any::<u8>(), 0..600),
        block_size in 1usize..300,
    ) {
        let packed = pack(&data, block_size);
        prop_assert!(is_container(&packed) );

        let pram = Pram::seq();
        let (streamed, summary) =
            decompress_stream(&pram, &mut &packed[..], Vec::new()).unwrap();
        prop_assert_eq!(&streamed, &data);
        prop_assert!(summary.issues.is_empty());

        let mut rdr = StreamReader::open(std::io::Cursor::new(&packed)).unwrap();
        let (seeked, issues) = rdr.read_all(&pram).unwrap();
        prop_assert_eq!(&seeked, &data);
        prop_assert!(issues.is_empty());
    }

    /// Truncating the container anywhere must break the seekable open and
    /// never let the streaming decoder return wrong data silently.
    #[test]
    fn truncation_never_passes_silently(
        data in prop::collection::vec(any::<u8>(), 1..400),
        block_size in 1usize..64,
        cut_frac in 0usize..10_000,
    ) {
        let packed = pack(&data, block_size);
        let cut = cut_frac % packed.len(); // strictly shorter than full
        let sliced = &packed[..cut];
        prop_assert!(StreamReader::open(std::io::Cursor::new(sliced)).is_err());
        let pram = Pram::seq();
        match decompress_stream(&pram, &mut &sliced[..], Vec::new()) {
            Err(_) => {}
            Ok((out, summary)) => {
                // Acceptable only when the cut hit the index region (data
                // intact) or the loss was reported per block.
                prop_assert!(
                    out == data || !summary.issues.is_empty() || out.len() < data.len(),
                    "cut {} of {} produced silent wrong data", cut, packed.len()
                );
                if out != data {
                    prop_assert!(
                        !summary.issues.is_empty() || out.len() < data.len(),
                        "wrong data with no report"
                    );
                }
            }
        }
    }

    /// Any single-bit flip anywhere in the container is either rejected
    /// structurally, reported as a block issue, or provably harmless
    /// (identical output) — never silently wrong data.
    #[test]
    fn single_bit_flips_never_pass_silently(
        data in prop::collection::vec(any::<u8>(), 1..400),
        block_size in 1usize..64,
        pos_frac in 0usize..10_000,
        bit in 0usize..8,
    ) {
        let mut packed = pack(&data, block_size);
        let pos = pos_frac % packed.len();
        packed[pos] ^= 1 << bit;

        let pram = Pram::seq();
        match StreamReader::open(std::io::Cursor::new(&packed)) {
            Err(_) => {} // structural detection
            Ok(mut rdr) => {
                let (out, issues) = rdr.read_all(&pram).unwrap();
                prop_assert!(
                    !issues.is_empty() || out == data,
                    "seekable: flipped bit {} at {} passed silently", bit, pos
                );
            }
        }
        match decompress_stream(&pram, &mut &packed[..], Vec::new()) {
            Err(_) => {}
            Ok((out, summary)) => prop_assert!(
                !summary.issues.is_empty() || out == data,
                "streaming: flipped bit {} at {} passed silently", bit, pos
            ),
        }
    }

    /// `read_range` must equal the same slice of the full decompression,
    /// for every range — the `cat --range` correctness contract.
    #[test]
    fn range_reads_equal_full_decode_slices(
        data in prop::collection::vec(any::<u8>(), 0..500),
        block_size in 1usize..48,
        a_frac in 0usize..10_000,
        b_frac in 0usize..10_000,
    ) {
        let packed = pack(&data, block_size);
        let n = data.len() as u64;
        let (mut start, mut end) = (
            a_frac as u64 % (n + 1),
            b_frac as u64 % (n + 1),
        );
        if start > end {
            std::mem::swap(&mut start, &mut end);
        }
        let pram = Pram::seq();
        let mut rdr = StreamReader::open(std::io::Cursor::new(&packed)).unwrap();
        let got = rdr.read_range(&pram, start, end).unwrap();
        prop_assert_eq!(&got, &data[start as usize..end as usize]);
    }
}

/// A flip inside one specific block's payload must name that block.
#[test]
fn payload_flip_reports_the_exact_block() {
    let data: Vec<u8> = (0..1000u32)
        .flat_map(|i| [(i % 250 + 1) as u8, b'q'])
        .collect();
    let block_size = 256; // 8 blocks of 2000 bytes
    let mut packed = pack(&data, block_size);

    // Locate block 5's payload via the clean index, then flip its first byte.
    let target = {
        let rdr = StreamReader::open(std::io::Cursor::new(&packed)).unwrap();
        let e = rdr.index().entries[5];
        assert!(e.comp_len > 0);
        e.offset as usize + stream::format::RECORD_HEADER_LEN
    };
    packed[target] ^= 0x01;

    let pram = Pram::seq();
    let mut rdr = StreamReader::open(std::io::Cursor::new(&packed)).unwrap();
    let (out, issues) = rdr.read_all(&pram).unwrap();
    assert_eq!(issues.len(), 1);
    assert_eq!(issues[0].index, 5, "wrong block named: {:?}", issues[0]);
    assert_eq!(
        out.len() as u64 + u64::from(issues[0].raw_len),
        data.len() as u64
    );

    // The other seven blocks must still be individually readable.
    for i in (0..8).filter(|&i| i != 5) {
        assert!(rdr.read_block(&pram, i).is_ok(), "block {i} unreadable");
    }
    assert!(matches!(
        rdr.read_block(&pram, 5),
        Err(StreamError::CorruptBlock { index: 5, .. })
    ));
}

/// Range reads must be charged block-local work on the ledger — the
/// work-attribution proof that `cat --range` decodes only covering blocks.
#[test]
fn range_read_work_is_block_local() {
    let data = markov_text(0x5EED_CAFE, 64 * 1024, Alphabet::dna());
    let packed = pack(&data, 4096); // 16 blocks
    let mut rdr = StreamReader::open(std::io::Cursor::new(&packed)).unwrap();

    let pram_full = Pram::seq();
    let (_, full) = pram_full.metered(|p| rdr.read_all(p).unwrap());
    let pram_range = Pram::seq();
    let (slice, ranged) = pram_range.metered(|p| rdr.read_range(p, 10_000, 11_000).unwrap());
    assert_eq!(slice, &data[10_000..11_000]);
    assert!(
        ranged.work * 8 < full.work,
        "one-block range read must cost a fraction of a full decode: {} vs {}",
        ranged.work,
        full.work
    );
}

/// On a realistic corpus spanning ≥4 blocks, the blockwise container stays
/// within 15% of the whole-buffer LZ1 size — the Fischer et al.-style
/// approximation bound the pipeline is allowed to pay for parallelism.
#[test]
fn approximation_ratio_within_15_percent() {
    let text = markov_text(0xAB5_712, 128 * 1024, Alphabet::dna());
    let cfg = StreamConfig::with_block_size(32 * 1024); // 4 blocks
    let pram = Pram::par();
    let (streamed, whole) = stream::approximation_sizes(&pram, &text, &cfg);
    assert!(
        (streamed as f64) <= (whole as f64) * 1.15,
        "blockwise {streamed} B vs whole-buffer {whole} B exceeds 15%"
    );
}

/// `slice_container` edge cases: empty ranges are rejected (in block
/// units, with the block count in the error), a single-block slice is a
/// standalone container decoding exactly that block, and a slice over
/// data whose length is an exact multiple of the block size — every
/// block full, the range ending on the final boundary — round-trips.
#[test]
fn slice_container_edge_cases() {
    use pardict::stream::slice_container;
    let pram = Pram::seq();
    let decode = |bytes: &[u8]| {
        let (out, summary) = decompress_stream(&pram, &mut &bytes[..], Vec::new()).unwrap();
        assert!(summary.issues.is_empty());
        out
    };

    // 1000 bytes at block size 250: four blocks, all exactly full, so
    // the container's "last block may be short" invariant is exercised
    // at its boundary (the last block is not short).
    let data = markov_text(0x51_1CE, 1000, Alphabet::lowercase());
    let packed = pack(&data, 250);

    // Empty ranges — both degenerate (a..a) and inverted-by-zero (0..0)
    // — are errors naming block units, not silent empty containers.
    for empty in [0..0, 2..2, 4..4] {
        match slice_container(&packed, empty.clone()) {
            Err(StreamError::RangeOutOfBounds { start, end, len }) => {
                assert_eq!((start, end), (empty.start as u64, empty.end as u64));
                assert_eq!(len, 4, "len must be the block count");
            }
            other => panic!("empty range {empty:?} must be rejected, got {other:?}"),
        }
    }
    // A range past the block count is out of bounds, not clamped.
    assert!(matches!(
        slice_container(&packed, 3..5),
        Err(StreamError::RangeOutOfBounds { .. })
    ));

    // Single-block ranges: each is a valid standalone container holding
    // exactly that block's bytes.
    for i in 0..4 {
        let one = slice_container(&packed, i..i + 1).unwrap();
        assert!(is_container(&one), "block {i} slice must be a container");
        assert_eq!(decode(&one), &data[i * 250..(i + 1) * 250]);
    }

    // Range ending exactly on the final block boundary: the slice is the
    // tail of the data, and slicing the full range reproduces the data.
    assert_eq!(
        decode(&slice_container(&packed, 1..4).unwrap()),
        &data[250..]
    );
    assert_eq!(decode(&slice_container(&packed, 0..4).unwrap()), data);

    // Same boundary case when the original last block IS short: a range
    // ending just before it stops at the boundary of full blocks.
    let ragged = markov_text(0x51_1CF, 1001, Alphabet::lowercase());
    let packed = pack(&ragged, 250); // 5 blocks, last holds 1 byte
    assert_eq!(
        decode(&slice_container(&packed, 2..4).unwrap()),
        &ragged[500..1000]
    );
    assert_eq!(
        decode(&slice_container(&packed, 4..5).unwrap()),
        &ragged[1000..]
    );
}

/// Seq and Par pipelines produce identical containers and identical ledger
/// charges — the simulator invariant extended to the new subsystem.
#[test]
fn stream_output_is_mode_independent() {
    let data = markov_text(0xD1CE, 20_000, Alphabet::lowercase());
    let cfg = StreamConfig {
        block_size: 2048,
        max_in_flight: 4,
    };
    let seq = Pram::seq();
    let par = Pram::par();
    let ((a, sa), ca) =
        seq.metered(|p| compress_stream(p, &mut &data[..], Vec::new(), &cfg).unwrap());
    let ((b, sb), cb) =
        par.metered(|p| compress_stream(p, &mut &data[..], Vec::new(), &cfg).unwrap());
    assert_eq!(a, b);
    assert_eq!(ca, cb);
    assert_eq!(sa.blocks, sb.blocks);
}
