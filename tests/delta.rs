//! Delta tier: incremental dictionary updates against the
//! rebuild-from-scratch oracle.
//!
//! The tentpole invariant: for any seed dictionary and any valid
//! sequence of deltas, chaining [`SegmentedMatcher::apply_delta`] must
//! be *equivalent to a scratch build* of the final pattern set — the
//! same identity, the same patterns in the same global-id order, the
//! same segment structure, byte-identical match results, and identical
//! query-time ledger costs — under both `Pram::seq()` and `Pram::par()`.
//! Segmentation is content-defined (a pure function of the final list),
//! so the two construction paths converge structurally and everything
//! downstream of structure follows by construction; these properties
//! pin that construction down.
//!
//! Deltas are derived from a seed with the crate's own `SplitMix64`
//! rather than nested proptest strategies: each delta is valid relative
//! to the evolving pattern list (removes name present values, the list
//! never empties), which is awkward to express as independent
//! strategies but trivial to script.

use pardict::core::{
    apply_delta_patterns, chain_identity, multiset_identity, DeltaError, DictDelta,
    SegmentedMatcher,
};
use pardict::pram::{Pram, SplitMix64};
use proptest::prelude::*;

/// Derive a seed dictionary of `n` patterns over a small alphabet.
fn derive_patterns(rng: &mut SplitMix64, n: usize) -> Vec<Vec<u8>> {
    (0..n.max(1))
        .map(|_| {
            let len = 1 + rng.next_below(5) as usize;
            (0..len).map(|_| b'a' + rng.next_below(3) as u8).collect()
        })
        .collect()
}

/// Script `n_deltas` valid deltas against `cur`, returning the deltas
/// and the folded final list (computed with `apply_delta_patterns`, the
/// same fold the WAL replay and the registry use).
fn derive_deltas(cur: &mut Vec<Vec<u8>>, rng: &mut SplitMix64, n_deltas: usize) -> Vec<DictDelta> {
    let mut deltas = Vec::with_capacity(n_deltas);
    for _ in 0..n_deltas {
        let mut delta = DictDelta {
            adds: Vec::new(),
            removes: Vec::new(),
        };
        let mut working = cur.clone();
        for _ in 0..rng.next_below(3) {
            if working.len() <= 1 {
                break;
            }
            let v = working[rng.next_below(working.len() as u64) as usize].clone();
            let occurrences = working.iter().filter(|p| **p == v).count();
            if working.len() == occurrences || delta.removes.contains(&v) {
                continue;
            }
            working.retain(|p| *p != v);
            delta.removes.push(v);
        }
        for _ in 0..rng.next_below(4) {
            let len = 1 + rng.next_below(5) as usize;
            let p: Vec<u8> = (0..len).map(|_| b'a' + rng.next_below(3) as u8).collect();
            working.push(p.clone());
            delta.adds.push(p);
        }
        if delta.is_empty() {
            let p = vec![b'a'];
            working.push(p.clone());
            delta.adds.push(p);
        }
        *cur = working;
        deltas.push(delta);
    }
    deltas
}

/// Match `text` on a fresh PRAM of the given mode and return the hits
/// plus the exact ledger cost the query charged.
fn measured_query(
    matcher: &SegmentedMatcher,
    par: bool,
    text: &[u8],
) -> (Vec<(usize, u32, u32)>, pardict::pram::Cost) {
    let pram = if par { Pram::par() } else { Pram::seq() };
    let hits: Vec<(usize, u32, u32)> = matcher
        .find_all(&pram, text)
        .into_iter()
        .map(|(pos, m)| (pos, m.id, m.len))
        .collect();
    (hits, pram.cost())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The oracle: `apply_deltas(seed_dict, deltas)` ≡
    /// `build(final_pattern_set)` — structure, match results, and
    /// query-time ledger costs, in both PRAM modes. Dictionary sizes
    /// straddle the single-segment threshold so both the one-segment
    /// fast path and real multi-segment reuse are exercised.
    #[test]
    fn chained_deltas_equal_scratch_rebuild(
        seed in any::<u64>(),
        n_seed in 1usize..140,
        n_deltas in 1usize..6,
    ) {
        let mut rng = SplitMix64::new(seed);
        let seed_patterns = derive_patterns(&mut rng, n_seed);
        let mut finals = seed_patterns.clone();
        let deltas = derive_deltas(&mut finals, &mut rng, n_deltas);
        let text: Vec<u8> = (0..300).map(|_| b'a' + rng.next_below(3) as u8).collect();

        for par in [false, true] {
            let pram = if par { Pram::par() } else { Pram::seq() };
            let mut chained = SegmentedMatcher::build(&pram, seed_patterns.clone());
            let mut model = seed_patterns.clone();
            for d in &deltas {
                let (next, stats) = chained
                    .apply_delta(&pram, d)
                    .expect("scripted deltas are valid");
                let (folded, counts) = apply_delta_patterns(&model, d).unwrap();
                // The O(|delta|) identity chain equals the scratch
                // multiset identity of the folded list.
                prop_assert_eq!(
                    chain_identity(multiset_identity(&model), d, &counts),
                    multiset_identity(&folded)
                );
                prop_assert!(stats.segments_reused <= stats.segments_total);
                model = folded;
                chained = next;
            }
            prop_assert_eq!(&model, &finals);

            let scratch = SegmentedMatcher::build(&pram, finals.clone());
            prop_assert_eq!(chained.identity(), scratch.identity());
            prop_assert_eq!(chained.patterns(), scratch.patterns());
            prop_assert_eq!(chained.num_segments(), scratch.num_segments());
            prop_assert_eq!(chained.max_pattern_len(), scratch.max_pattern_len());

            // Byte-identical match results and identical query-time
            // ledger costs: same structure, same per-segment seeds, so
            // the two paths are indistinguishable at query time.
            let (hits_a, cost_a) = measured_query(&chained, par, &text);
            let (hits_b, cost_b) = measured_query(&scratch, par, &text);
            prop_assert_eq!(hits_a, hits_b);
            prop_assert_eq!(cost_a, cost_b);

            // And the Las Vegas lane: identical per-segment seeds mean
            // the two paths make the same fallback decisions, so hits,
            // fallback flags, and costs all agree.
            let qa = if par { Pram::par() } else { Pram::seq() };
            let (ma, fell_a) = chained.match_text_verified(&qa, &text);
            let qb = if par { Pram::par() } else { Pram::seq() };
            let (mb, fell_b) = scratch.match_text_verified(&qb, &text);
            prop_assert_eq!(fell_a, fell_b);
            let pairs = |m: &pardict::core::Matches| -> Vec<(usize, u32, u32)> {
                m.iter_hits().map(|(i, h)| (i, h.id, h.len)).collect()
            };
            prop_assert_eq!(pairs(&ma), pairs(&mb));
            prop_assert_eq!(qa.cost(), qb.cost());
        }
    }

    /// Reuse is real: a small delta against a dictionary big enough to
    /// span several segments rebuilds only the touched runs — strictly
    /// fewer than all of them.
    #[test]
    fn small_deltas_reuse_most_segments(seed in any::<u64>()) {
        let mut rng = SplitMix64::new(seed);
        let patterns = derive_patterns(&mut rng, 1200);
        let pram = Pram::seq();
        let base = SegmentedMatcher::build(&pram, patterns);
        prop_assume!(base.num_segments() >= 3);
        let delta = DictDelta {
            adds: vec![b"zzz".to_vec()],
            removes: Vec::new(),
        };
        let (next, stats) = base.apply_delta(&pram, &delta).unwrap();
        prop_assert!(
            stats.segments_reused >= stats.segments_total.saturating_sub(2),
            "appending one pattern may touch at most the final runs: {stats:?}"
        );
        prop_assert!(stats.segments_reused >= 1);
        prop_assert_eq!(next.num_patterns(), base.num_patterns() + 1);
    }

    /// Delta validation is total and precise: removing an absent value
    /// is `RemoveMissing` with the offending index, emptying the
    /// dictionary is `EmptyResult`, and bad adds are named by index —
    /// never a panic, never a half-applied list.
    #[test]
    fn invalid_deltas_are_refused_not_applied(seed in any::<u64>()) {
        let mut rng = SplitMix64::new(seed);
        let patterns = derive_patterns(&mut rng, 8);
        let absent = b"absent-value".to_vec();
        prop_assert!(matches!(
            apply_delta_patterns(&patterns, &DictDelta {
                adds: vec![],
                removes: vec![absent],
            }),
            Err(DeltaError::RemoveMissing { index: 0 })
        ));
        let remove_all = DictDelta {
            adds: vec![],
            removes: {
                let mut vals = patterns.clone();
                vals.sort();
                vals.dedup();
                vals
            },
        };
        prop_assert!(matches!(
            apply_delta_patterns(&patterns, &remove_all),
            Err(DeltaError::EmptyResult)
        ));
        prop_assert!(matches!(
            apply_delta_patterns(&patterns, &DictDelta {
                adds: vec![vec![]],
                removes: vec![],
            }),
            Err(DeltaError::EmptyAdd { index: 0 })
        ));
        prop_assert!(matches!(
            apply_delta_patterns(&patterns, &DictDelta {
                adds: vec![vec![b'a', 0]],
                removes: vec![],
            }),
            Err(DeltaError::NulAdd { index: 0 })
        ));
    }
}
