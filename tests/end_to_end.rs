//! Cross-crate integration tests: every paper result exercised through the
//! public facade, with exact oracles.

use pardict::prelude::*;
use pardict::workloads::{
    dictionary_from_text, dna_text, fibonacci_word, markov_text, periodic_text,
    prefix_heavy_dictionary, random_dictionary, random_text, repetitive_text,
    text_with_planted_matches,
};

#[test]
fn theorem_3_1_matching_equals_aho_corasick_across_workloads() {
    let pram = Pram::seq();
    let cases: Vec<(Dictionary, Vec<u8>)> = vec![
        (
            Dictionary::new(random_dictionary(1, 25, 2, 10, Alphabet::dna())),
            text_with_planted_matches(
                2,
                &random_dictionary(1, 25, 2, 10, Alphabet::dna()),
                1500,
                30,
                Alphabet::dna(),
            ),
        ),
        (
            Dictionary::new(prefix_heavy_dictionary(3, 30, 5, 6, Alphabet::lowercase())),
            markov_text(4, 1200, Alphabet::lowercase()),
        ),
        (
            Dictionary::new(random_dictionary(5, 8, 1, 6, Alphabet::binary())),
            fibonacci_word(1000),
        ),
        (
            Dictionary::new(vec![b"ab".to_vec(), b"ba".to_vec(), b"aba".to_vec()]),
            periodic_text(b"ab", 800),
        ),
    ];
    for (k, (dict, text)) in cases.into_iter().enumerate() {
        let got = dictionary_match(&pram, &dict, &text, 100 + k as u64);
        let want = AhoCorasick::build(&dict).match_text(&text);
        for i in 0..text.len() {
            assert_eq!(
                got.get(i).map(|m| m.len),
                want.get(i).map(|m| m.len),
                "case {k}, position {i}"
            );
        }
    }
}

#[test]
fn theorem_3_1_parallel_mode_matches_sequential_mode() {
    let seq = Pram::seq();
    let par = Pram::par();
    let dict = Dictionary::new(random_dictionary(7, 30, 3, 12, Alphabet::dna()));
    let text = text_with_planted_matches(8, dict.patterns(), 8000, 25, Alphabet::dna());
    let a = dictionary_match(&seq, &dict, &text, 9);
    let b = dictionary_match(&par, &dict, &text, 9);
    assert_eq!(a.as_slice(), b.as_slice());
    // Same algorithm, same charges.
    assert_eq!(seq.cost(), par.cost());
}

#[test]
fn theorems_4_2_4_3_lz1_roundtrip_on_all_corpora() {
    let pram = Pram::seq();
    let corpora: Vec<Vec<u8>> = vec![
        random_text(1, 2000, Alphabet::lowercase()),
        markov_text(2, 3000, Alphabet::dna()),
        dna_text(3, 2500),
        repetitive_text(4, 4000, Alphabet::binary()),
        fibonacci_word(1597),
        periodic_text(b"abcabd", 1800),
    ];
    for (k, text) in corpora.into_iter().enumerate() {
        let tokens = lz1_compress(&pram, &text, 50 + k as u64);
        assert_eq!(
            lz1_decompress(&pram, &tokens, 60 + k as u64),
            text,
            "corpus {k}"
        );
        // The parallel parse must equal the sequential greedy one.
        let seq_tokens = lz77_sequential(&text);
        assert_eq!(tokens.len(), seq_tokens.len(), "corpus {k} phrase count");
        // And the n-log-n baseline.
        let base = lz1_nlogn_baseline(&pram, &text, 70 + k as u64);
        assert_eq!(tokens.len(), base.len(), "corpus {k} vs baseline");
    }
}

#[test]
fn theorem_5_3_optimal_parse_equals_bfs_on_workloads() {
    let pram = Pram::seq();
    for seed in 0..4u64 {
        let alpha = Alphabet::dna();
        let mut words: Vec<Vec<u8>> = (0..alpha.size()).map(|i| vec![alpha.symbol(i)]).collect();
        let training = markov_text(seed, 4000, alpha);
        words.extend(dictionary_from_text(seed + 1, &training, 50, 2, 10));
        let dict = Dictionary::new(words);
        let matcher = DictMatcher::build(&pram, dict.clone(), seed + 2);
        let msg = markov_text(seed + 3, 1500, alpha);

        let opt = optimal_parse(&pram, &matcher, &msg).unwrap();
        let bfs = bfs_parse(&pram, &matcher, &msg).unwrap();
        let greedy = greedy_parse(&pram, &matcher, &msg).unwrap();
        assert_eq!(opt.num_phrases(), bfs.num_phrases(), "seed {seed}");
        assert!(opt.num_phrases() <= greedy.num_phrases());
        assert_eq!(opt.expand(&dict), msg);
    }
}

#[test]
fn substring_matching_locus_lengths_match_oracle() {
    let pram = Pram::seq();
    let dict = Dictionary::new(random_dictionary(21, 20, 3, 15, Alphabet::dna()));
    let matcher = SubstringMatcher::build(&pram, &dict, 22);
    let text = text_with_planted_matches(23, dict.patterns(), 2000, 35, Alphabet::dna());
    let loci = substring_match(&pram, &matcher, &text);
    let ms = pardict::core::matching_statistics_seq(matcher.tree(), &text);
    for i in 0..text.len() {
        assert_eq!(loci[i].len, ms[i].0, "position {i}");
    }
}

#[test]
fn las_vegas_checker_rejects_tampered_output() {
    let pram = Pram::seq();
    let dict = Dictionary::new(random_dictionary(31, 15, 3, 8, Alphabet::dna()));
    let text = text_with_planted_matches(32, dict.patterns(), 600, 30, Alphabet::dna());
    let matcher = DictMatcher::build(&pram, dict.clone(), 33);
    let good = matcher.match_text(&pram, &text);
    assert!(matcher.check(&pram, &text, &good).is_ok());

    // Tamper: claim pattern 0 somewhere it does not occur.
    let p0 = dict.patterns()[0].clone();
    let mut v = good.as_slice().to_vec();
    let mut tampered_at = None;
    for i in 0..text.len() - p0.len() {
        let occurs = &text[i..i + p0.len()] == p0.as_slice();
        if !occurs && v[i].map_or(0, |m| m.len as usize) < p0.len() {
            v[i] = Some(Match {
                id: 0,
                len: p0.len() as u32,
            });
            tampered_at = Some(i);
            break;
        }
    }
    let tampered_at = tampered_at.expect("found a tamper spot");
    let bad = Matches::new(v);
    assert!(
        matcher.check(&pram, &text, &bad).is_err(),
        "tamper at {tampered_at} accepted"
    );
}

#[test]
fn online_and_offline_matchers_agree() {
    let pram = Pram::seq();
    for seed in 0..3u64 {
        let alpha = Alphabet::dna();
        let dict = Dictionary::new(random_dictionary(seed + 60, 25, 2, 12, alpha));
        let text = text_with_planted_matches(seed + 61, dict.patterns(), 1200, 30, alpha);
        let online = dictionary_match(&pram, &dict, &text, seed);
        let offline = dictionary_match_offline(&pram, &dict, &text).unwrap();
        for i in 0..text.len() {
            assert_eq!(
                online.get(i).map(|m| m.len),
                offline.get(i).map(|m| m.len),
                "seed {seed}, position {i}"
            );
        }
    }
}

#[test]
fn delta_compression_roundtrips_against_base() {
    let pram = Pram::seq();
    let base = markov_text(71, 5000, Alphabet::lowercase());
    let mut new = base.clone();
    new.truncate(4000);
    new.extend_from_slice(b" appended release notes ");
    new.extend_from_slice(&base[1000..2000]);
    let tokens = delta_compress(&pram, &base, &new, 72);
    assert_eq!(delta_decompress(&pram, &base, &tokens), new);
    assert!(tokens.len() < 40, "{} tokens", tokens.len());
}

#[test]
fn binary_alphabet_reduction_roundtrip() {
    // Theorem 3.1's constant-alphabet reduction: encode, match, decode.
    use pardict::core::{decode_positions, encode_binary};
    let pram = Pram::seq();
    let alpha = Alphabet::sized(16);
    let patterns = random_dictionary(41, 12, 2, 6, alpha);
    let text = text_with_planted_matches(42, &patterns, 500, 30, alpha);

    let enc_pats: Vec<Vec<u8>> = patterns
        .iter()
        .map(|p| encode_binary(p, 256).data)
        .collect();
    let enc = encode_binary(&text, 256);
    let enc_dict = Dictionary::new(enc_pats);
    let matches = dictionary_match(&pram, &enc_dict, &enc.data, 43);
    let decoded = decode_positions(&matches, enc.bits_per_symbol);

    let want = AhoCorasick::build(&Dictionary::new(patterns)).match_text(&text);
    for i in 0..text.len() {
        assert_eq!(
            decoded.get(i).map(|m| m.len),
            want.get(i).map(|m| m.len),
            "i={i}"
        );
    }
}
