//! Long-running randomized soak tests — `#[ignore]`d by default; run with
//!
//! ```sh
//! cargo test --release --test soak -- --ignored
//! ```

use pardict::pram::SplitMix64;
use pardict::prelude::*;
use pardict::workloads::{
    dictionary_from_text, dna_text, fibonacci_word, markov_text, periodic_text,
    prefix_heavy_dictionary, random_dictionary, random_text, repetitive_text,
    text_with_planted_matches, zipf_text,
};

fn corpora(seed: u64, n: usize) -> Vec<Vec<u8>> {
    vec![
        random_text(seed, n, Alphabet::binary()),
        random_text(seed + 1, n, Alphabet::lowercase()),
        markov_text(seed + 2, n, Alphabet::dna()),
        dna_text(seed + 3, n),
        repetitive_text(seed + 4, n, Alphabet::dna()),
        zipf_text(seed + 5, n, 80, Alphabet::lowercase()),
        fibonacci_word(n),
        periodic_text(b"abcab", n),
    ]
}

#[test]
#[ignore = "soak: minutes of runtime"]
fn dictionary_matching_soak() {
    let pram = Pram::seq();
    let mut rng = SplitMix64::new(2025);
    for round in 0..20u64 {
        let alpha =
            [Alphabet::binary(), Alphabet::dna(), Alphabet::lowercase()][(round % 3) as usize];
        let k = 5 + rng.next_below(40) as usize;
        let maxlen = 2 + rng.next_below(18) as usize;
        let patterns = if round % 2 == 0 {
            random_dictionary(round, k, 1, maxlen, alpha)
        } else {
            prefix_heavy_dictionary(round, k, 3, maxlen, alpha)
        };
        let dict = Dictionary::new(patterns);
        let n = 2000 + rng.next_below(6000) as usize;
        let text = text_with_planted_matches(round + 99, dict.patterns(), n, 30, alpha);
        let got = dictionary_match(&pram, &dict, &text, round);
        let want = AhoCorasick::build(&dict).match_text(&text);
        for i in 0..text.len() {
            assert_eq!(
                got.get(i).map(|m| m.len),
                want.get(i).map(|m| m.len),
                "round {round}, position {i}"
            );
        }
    }
}

#[test]
#[ignore = "soak: minutes of runtime"]
fn lz1_roundtrip_soak() {
    let pram = Pram::seq();
    for (k, text) in corpora(7, 60_000).into_iter().enumerate() {
        let tokens = lz1_compress(&pram, &text, k as u64);
        assert_eq!(
            lz1_decompress(&pram, &tokens, k as u64 + 1),
            text,
            "corpus {k}"
        );
        assert_eq!(tokens.len(), lz77_sequential(&text).len(), "corpus {k}");
        // Wire format survives too.
        let wire = pardict::compress::encode_tokens(&tokens);
        assert_eq!(
            pardict::compress::decode_tokens(&wire).unwrap(),
            tokens,
            "corpus {k}"
        );
    }
}

#[test]
#[ignore = "soak: minutes of runtime"]
fn static_parse_soak() {
    let pram = Pram::seq();
    for seed in 0..8u64 {
        let alpha = Alphabet::dna();
        let corpus = markov_text(seed, 30_000, alpha);
        let mut words: Vec<Vec<u8>> = (0..alpha.size()).map(|i| vec![alpha.symbol(i)]).collect();
        words.extend(dictionary_from_text(seed + 1, &corpus, 100, 2, 16));
        let dict = Dictionary::new(words);
        let matcher = DictMatcher::build(&pram, dict.clone(), seed + 2);
        let msg = &corpus[5000..15_000];
        let opt = optimal_parse(&pram, &matcher, msg).unwrap();
        let bfs = bfs_parse(&pram, &matcher, msg).unwrap();
        assert_eq!(opt.num_phrases(), bfs.num_phrases(), "seed {seed}");
        assert_eq!(opt.expand(&dict), msg);
    }
}

#[test]
#[ignore = "soak: minutes of runtime"]
fn adaptive_churn_soak() {
    use pardict::core::AdaptiveDictMatcher;
    let pram = Pram::seq();
    let mut adm = AdaptiveDictMatcher::new(3);
    let mut rng = SplitMix64::new(11);
    let alpha = Alphabet::dna();
    let text = markov_text(5, 4000, alpha);
    let mut handles = Vec::new();
    for step in 0..150u64 {
        if handles.is_empty() || rng.next_below(5) != 0 {
            let len = 1 + rng.next_below(10) as usize;
            let mut rng2 = SplitMix64::new(step);
            let p: Vec<u8> = (0..len).map(|_| alpha.sample(&mut rng2)).collect();
            handles.push((adm.insert(&pram, p.clone()), p));
        } else {
            let k = rng.next_below(handles.len() as u64) as usize;
            let (h, _) = handles.swap_remove(k);
            adm.remove(&pram, h);
        }
        if step % 10 == 9 {
            let live: Vec<Vec<u8>> = handles.iter().map(|(_, p)| p.clone()).collect();
            let want = pardict::core::brute_force_matches(&Dictionary::new(live), &text);
            let got = adm.match_text(&pram, &text);
            for i in 0..text.len() {
                assert_eq!(
                    got.get(i).map(|m| m.len),
                    want.get(i).map(|m| m.len),
                    "step {step}, position {i}"
                );
            }
        }
    }
}
