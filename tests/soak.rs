//! Long-running randomized soak tests — `#[ignore]`d by default; run with
//!
//! ```sh
//! scripts/soak.sh            # time-budgeted, release mode
//! cargo test --release --test soak -- --ignored
//! ```
//!
//! Each soak is a parameterized driver: the `#[ignore]`d test runs it at
//! full scale (minutes), and an un-ignored `*_smoke` twin runs the same
//! code path at sub-second scale so tier-1 (`cargo test -q`) always
//! exercises a slice of every soak. Seeds are fixed constants, so a soak
//! failure reproduces by rerunning the named test — see TESTING.md.

use pardict::pram::SplitMix64;
use pardict::prelude::*;
use pardict::workloads::{
    dictionary_from_text, dna_text, fibonacci_word, markov_text, periodic_text,
    prefix_heavy_dictionary, random_dictionary, random_text, repetitive_text,
    text_with_planted_matches, zipf_text,
};

fn corpora(seed: u64, n: usize) -> Vec<Vec<u8>> {
    vec![
        random_text(seed, n, Alphabet::binary()),
        random_text(seed + 1, n, Alphabet::lowercase()),
        markov_text(seed + 2, n, Alphabet::dna()),
        dna_text(seed + 3, n),
        repetitive_text(seed + 4, n, Alphabet::dna()),
        zipf_text(seed + 5, n, 80, Alphabet::lowercase()),
        fibonacci_word(n),
        periodic_text(b"abcab", n),
    ]
}

/// Matcher vs Aho–Corasick over randomized dictionaries and planted
/// texts; `rounds` rounds over texts of `base_n..base_n + spread` bytes.
fn run_dictionary_matching(rounds: u64, base_n: usize, spread: u64) {
    let pram = Pram::seq();
    let mut rng = SplitMix64::new(2025);
    for round in 0..rounds {
        let alpha =
            [Alphabet::binary(), Alphabet::dna(), Alphabet::lowercase()][(round % 3) as usize];
        let k = 5 + rng.next_below(40) as usize;
        let maxlen = 2 + rng.next_below(18) as usize;
        let patterns = if round % 2 == 0 {
            random_dictionary(round, k, 1, maxlen, alpha)
        } else {
            prefix_heavy_dictionary(round, k, 3, maxlen, alpha)
        };
        let dict = Dictionary::new(patterns);
        let n = base_n + rng.next_below(spread) as usize;
        let text = text_with_planted_matches(round + 99, dict.patterns(), n, 30, alpha);
        let got = dictionary_match(&pram, &dict, &text, round);
        let want = AhoCorasick::build(&dict).match_text(&text);
        for i in 0..text.len() {
            assert_eq!(
                got.get(i).map(|m| m.len),
                want.get(i).map(|m| m.len),
                "round {round}, position {i}"
            );
        }
    }
}

#[test]
#[ignore = "soak: minutes of runtime"]
fn dictionary_matching_soak() {
    run_dictionary_matching(20, 2000, 6000);
}

#[test]
fn dictionary_matching_soak_smoke() {
    run_dictionary_matching(2, 600, 400);
}

/// LZ1 compress/decompress/wire round-trip over every corpus shape at
/// `n` bytes each.
fn run_lz1_roundtrip(n: usize) {
    let pram = Pram::seq();
    for (k, text) in corpora(7, n).into_iter().enumerate() {
        let tokens = lz1_compress(&pram, &text, k as u64);
        assert_eq!(
            lz1_decompress(&pram, &tokens, k as u64 + 1),
            text,
            "corpus {k}"
        );
        assert_eq!(tokens.len(), lz77_sequential(&text).len(), "corpus {k}");
        // Wire format survives too.
        let wire = pardict::compress::encode_tokens(&tokens);
        assert_eq!(
            pardict::compress::decode_tokens(&wire).unwrap(),
            tokens,
            "corpus {k}"
        );
    }
}

#[test]
#[ignore = "soak: minutes of runtime"]
fn lz1_roundtrip_soak() {
    run_lz1_roundtrip(60_000);
}

#[test]
fn lz1_roundtrip_soak_smoke() {
    run_lz1_roundtrip(3000);
}

/// Optimal vs BFS static parsing over `seeds` seeded corpora of `n`
/// bytes, parsing the middle `msg` slice of each.
fn run_static_parse(seeds: u64, n: usize, msg: std::ops::Range<usize>) {
    let pram = Pram::seq();
    for seed in 0..seeds {
        let alpha = Alphabet::dna();
        let corpus = markov_text(seed, n, alpha);
        let mut words: Vec<Vec<u8>> = (0..alpha.size()).map(|i| vec![alpha.symbol(i)]).collect();
        words.extend(dictionary_from_text(seed + 1, &corpus, 100, 2, 16));
        let dict = Dictionary::new(words);
        let matcher = DictMatcher::build(&pram, dict.clone(), seed + 2);
        let msg = &corpus[msg.clone()];
        let opt = optimal_parse(&pram, &matcher, msg).unwrap();
        let bfs = bfs_parse(&pram, &matcher, msg).unwrap();
        assert_eq!(opt.num_phrases(), bfs.num_phrases(), "seed {seed}");
        assert_eq!(opt.expand(&dict), msg);
    }
}

#[test]
#[ignore = "soak: minutes of runtime"]
fn static_parse_soak() {
    run_static_parse(8, 30_000, 5000..15_000);
}

#[test]
fn static_parse_soak_smoke() {
    run_static_parse(2, 3000, 1000..2000);
}

/// Adaptive matcher under insert/remove churn for `steps` steps over a
/// `text_len`-byte text, cross-checked against brute force every tenth
/// step.
fn run_adaptive_churn(steps: u64, text_len: usize) {
    use pardict::core::AdaptiveDictMatcher;
    let pram = Pram::seq();
    let mut adm = AdaptiveDictMatcher::new(3);
    let mut rng = SplitMix64::new(11);
    let alpha = Alphabet::dna();
    let text = markov_text(5, text_len, alpha);
    let mut handles = Vec::new();
    for step in 0..steps {
        if handles.is_empty() || rng.next_below(5) != 0 {
            let len = 1 + rng.next_below(10) as usize;
            let mut rng2 = SplitMix64::new(step);
            let p: Vec<u8> = (0..len).map(|_| alpha.sample(&mut rng2)).collect();
            handles.push((adm.insert(&pram, p.clone()), p));
        } else {
            let k = rng.next_below(handles.len() as u64) as usize;
            let (h, _) = handles.swap_remove(k);
            adm.remove(&pram, h);
        }
        if step % 10 == 9 {
            let live: Vec<Vec<u8>> = handles.iter().map(|(_, p)| p.clone()).collect();
            let want = pardict::core::brute_force_matches(&Dictionary::new(live), &text);
            let got = adm.match_text(&pram, &text);
            for i in 0..text.len() {
                assert_eq!(
                    got.get(i).map(|m| m.len),
                    want.get(i).map(|m| m.len),
                    "step {step}, position {i}"
                );
            }
        }
    }
}

#[test]
#[ignore = "soak: minutes of runtime"]
fn adaptive_churn_soak() {
    run_adaptive_churn(150, 4000);
}

#[test]
fn adaptive_churn_soak_smoke() {
    run_adaptive_churn(30, 600);
}
