//! Persistence tier: the WAL/snapshot codecs under fuzz, and the
//! crash-recovery contract through the public `pardict::store` surface.
//!
//! The codec properties mirror the container tier's: decoding is total
//! over arbitrary bytes (never a panic, never a giant allocation), and
//! encode∘decode is the identity for every record type. The integration
//! tests then exercise the directory-level contract — publish → reopen
//! → identical state; torn tails dropped, reported, and repaired;
//! compaction folding the WAL into a snapshot that replay skips.

use pardict::store::record::{decode_record_at, encode_record, encode_wal_header};
use pardict::store::{
    decode_snapshot, encode_snapshot, scan_wal, DictState, SnapshotDict, Store, StoreConfig,
    WalRecord, WAL_FILE,
};
use proptest::prelude::*;

fn nosync() -> StoreConfig {
    StoreConfig {
        snapshot_every: 0,
        sync: false,
    }
}

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join("pardict-store-tests")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Arbitrary dictionary names: any UTF-8, including empty and
/// multi-byte code points (the vendored proptest has no string
/// strategies, so map raw code points; surrogates fold to U+FFFD).
fn arb_name() -> impl Strategy<Value = String> {
    prop::collection::vec(any::<u32>(), 0..8).prop_map(|cs| {
        cs.into_iter()
            .map(|c| char::from_u32(c % 0x11_0000).unwrap_or('\u{FFFD}'))
            .collect()
    })
}

/// A generator covering every record kind with arbitrary names and
/// arbitrary pattern bytes (NULs included).
fn arb_record() -> impl Strategy<Value = WalRecord> {
    let publish = (
        arb_name(),
        any::<u64>(),
        prop::collection::vec(prop::collection::vec(any::<u8>(), 0..20), 0..6),
    )
        .prop_map(|(name, version, patterns)| WalRecord::Publish {
            name,
            version,
            patterns,
        });
    let retire = arb_name().prop_map(|name| WalRecord::Retire { name });
    let delta = (
        arb_name(),
        any::<u64>(),
        prop::collection::vec(prop::collection::vec(any::<u8>(), 0..20), 0..4),
        prop::collection::vec(prop::collection::vec(any::<u8>(), 0..20), 0..4),
    )
        .prop_map(|(name, version, adds, removes)| WalRecord::Delta {
            name,
            version,
            adds,
            removes,
        });
    prop_oneof![publish, retire, delta]
}

proptest! {
    /// `scan_wal` is total: arbitrary bytes never panic, and the scan's
    /// own geometry is consistent — the valid end never exceeds the
    /// file, and a reported torn tail accounts for every byte after it.
    #[test]
    fn scan_wal_is_total_over_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..400),
    ) {
        let scan = scan_wal(&bytes);
        prop_assert!(scan.valid_end() <= bytes.len() as u64);
        if let Some(t) = &scan.torn {
            prop_assert_eq!(t.offset + t.dropped_bytes, bytes.len() as u64);
            prop_assert!(t.dropped_bytes > 0);
        }
        if scan.header_issue.is_some() {
            prop_assert!(scan.records.is_empty());
            prop_assert_eq!(scan.valid_end(), 0);
        }
        // Rescanning the trusted prefix must be clean and identical —
        // recovery truncates to valid_end and relies on exactly this.
        if scan.header_issue.is_none() && scan.valid_end() > 0 {
            let again = scan_wal(&bytes[..scan.valid_end() as usize]);
            prop_assert!(again.torn.is_none());
            prop_assert_eq!(again.records, scan.records);
        }
    }

    /// `decode_snapshot` is total over arbitrary bytes: it either
    /// rejects with a reason or returns decoded dictionaries, never
    /// panics.
    #[test]
    fn decode_snapshot_is_total_over_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..400),
    ) {
        match decode_snapshot(&bytes) {
            Ok((_, dicts)) => drop(dicts),
            Err(reason) => prop_assert!(!reason.is_empty()),
        }
    }

    /// encode∘decode is the identity for every record type, both one
    /// frame at a time and through a whole-log scan.
    #[test]
    fn wal_records_roundtrip(
        records in prop::collection::vec((any::<u64>(), arb_record()), 0..8),
    ) {
        let mut log = encode_wal_header(7);
        let mut offsets = Vec::new();
        for (seq, record) in &records {
            offsets.push(log.len());
            log.extend_from_slice(&encode_record(*seq, record).unwrap());
        }

        // Frame-at-a-time decode.
        for ((seq, record), off) in records.iter().zip(&offsets) {
            let (got_seq, got, _) = decode_record_at(&log, *off).unwrap();
            prop_assert_eq!(got_seq, *seq);
            prop_assert_eq!(&got, record);
        }

        // Whole-log scan: same records, same order, clean tail.
        let scan = scan_wal(&log);
        prop_assert!(scan.header_issue.is_none());
        prop_assert!(scan.torn.is_none());
        prop_assert_eq!(scan.generation, 7);
        prop_assert_eq!(scan.records.len(), records.len());
        for (scanned, (seq, record)) in scan.records.iter().zip(&records) {
            prop_assert_eq!(scanned.seq, *seq);
            prop_assert_eq!(&scanned.record, record);
        }
        prop_assert_eq!(scan.valid_end(), log.len() as u64);
    }

    /// Snapshot encode∘decode is the identity, and any strict prefix of
    /// a valid snapshot is rejected (all-or-nothing, unlike the WAL).
    #[test]
    fn snapshots_roundtrip_and_reject_truncation(
        last_seq in any::<u64>(),
        dicts in prop::collection::vec(
            (arb_name(), any::<u64>(),
             prop::collection::vec(prop::collection::vec(any::<u8>(), 0..16), 0..4)),
            0..5,
        ),
        cut_frac in 0usize..10_000,
    ) {
        let dicts: Vec<SnapshotDict> = dicts
            .into_iter()
            .map(|(name, version, patterns)| SnapshotDict { name, version, patterns })
            .collect();
        let bytes = encode_snapshot(last_seq, &dicts).unwrap();
        let (got_seq, got) = decode_snapshot(&bytes).unwrap();
        prop_assert_eq!(got_seq, last_seq);
        prop_assert_eq!(got, dicts);

        let cut = cut_frac % bytes.len(); // strictly shorter than full
        prop_assert!(decode_snapshot(&bytes[..cut]).is_err());
    }

    /// Chopping a valid WAL anywhere inside a record yields exactly the
    /// records before the cut — the torn-tail contract at every byte.
    #[test]
    fn wal_truncation_yields_the_intact_prefix(
        n_records in 1usize..6,
        cut_frac in 0usize..10_000,
    ) {
        let mut log = encode_wal_header(0);
        let mut ends = vec![log.len()];
        for i in 0..n_records {
            let rec = WalRecord::Publish {
                name: format!("d{i}"),
                version: i as u64,
                patterns: vec![vec![b'a'; i + 1]],
            };
            log.extend_from_slice(&encode_record(i as u64 + 1, &rec).unwrap());
            ends.push(log.len());
        }
        let cut = cut_frac % log.len();
        let scan = scan_wal(&log[..cut]);
        let expect_intact = ends.iter().filter(|&&e| e <= cut && e > ends[0]).count();
        if cut < ends[0] {
            prop_assert!(scan.header_issue.is_some());
        } else {
            prop_assert_eq!(scan.records.len(), expect_intact);
            prop_assert_eq!(scan.torn.is_some(), ends.iter().all(|&e| e != cut));
        }
    }
}

/// Publish, retire, republish; drop; reopen: the recovered state is the
/// exact map the writer last held, reported clean.
#[test]
fn reopen_restores_the_exact_state() {
    let dir = scratch("reopen");
    {
        let mut s = Store::open(&dir, nosync()).unwrap();
        s.log_publish("alpha", 1, &[b"he".to_vec(), b"she".to_vec()])
            .unwrap();
        s.log_publish("beta", 1, &[b"hers".to_vec()]).unwrap();
        s.log_retire("alpha").unwrap();
        s.log_publish("alpha", 2, &[b"his".to_vec()]).unwrap();
    }
    let s = Store::open(&dir, nosync()).unwrap();
    assert!(s.recovery().is_clean());
    assert_eq!(s.recovery().wal_replayed, 4);
    let state: Vec<(&str, &DictState)> = s.dicts().collect();
    assert_eq!(
        state,
        vec![
            (
                "alpha",
                &DictState {
                    version: 2,
                    patterns: vec![b"his".to_vec()]
                }
            ),
            (
                "beta",
                &DictState {
                    version: 1,
                    patterns: vec![b"hers".to_vec()]
                }
            ),
        ]
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A torn final record is dropped and reported once, the intact prefix
/// survives, and the repair is durable: the next open is clean.
#[test]
fn torn_tail_is_dropped_reported_and_repaired() {
    let dir = scratch("torn");
    {
        let mut s = Store::open(&dir, nosync()).unwrap();
        s.log_publish("keep", 1, &[b"abc".to_vec()]).unwrap();
        s.log_publish("lost", 1, &[b"def".to_vec()]).unwrap();
    }
    let wal = dir.join(WAL_FILE);
    let len = std::fs::metadata(&wal).unwrap().len();
    std::fs::File::options()
        .write(true)
        .open(&wal)
        .unwrap()
        .set_len(len - 2)
        .unwrap();

    let s = Store::open(&dir, nosync()).unwrap();
    let torn = s.recovery().torn.as_ref().expect("tail must be reported");
    assert!(torn.dropped_bytes > 0);
    assert_eq!(s.recovery().wal_replayed, 1);
    assert!(s.dicts().any(|(n, _)| n == "keep"));
    assert!(!s.dicts().any(|(n, _)| n == "lost"));
    drop(s);

    let s = Store::open(&dir, nosync()).unwrap();
    assert!(s.recovery().is_clean(), "{:?}", s.recovery());
    assert_eq!(s.len(), 1);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Compaction folds the WAL into the snapshot: recovery loads the
/// snapshot, replays only post-snapshot appends, and appends keep
/// working across the generation bump.
#[test]
fn compaction_then_recovery_replays_only_the_tail() {
    let dir = scratch("compact");
    {
        let mut s = Store::open(&dir, nosync()).unwrap();
        for i in 0..5 {
            s.log_publish(&format!("d{i}"), 1, &[vec![b'a' + i as u8]])
                .unwrap();
        }
        s.compact().unwrap();
        s.log_publish("post", 1, &[b"zz".to_vec()]).unwrap();
    }
    let s = Store::open(&dir, nosync()).unwrap();
    let r = s.recovery();
    assert!(r.is_clean(), "{r:?}");
    assert_eq!(r.snapshot_dicts, 5);
    assert_eq!(r.wal_replayed, 1, "only the post-compaction append");
    assert_eq!(r.wal_skipped, 0);
    assert_eq!(r.recovered_dicts, 6);
    assert_eq!(r.wal_generation, 1, "compaction bumps the generation");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// `snapshot_every` compacts automatically, and acknowledged state keeps
/// surviving reopen no matter where the threshold lands.
#[test]
fn automatic_compaction_preserves_state() {
    let dir = scratch("auto");
    let cfg = StoreConfig {
        snapshot_every: 3,
        sync: false,
    };
    {
        let mut s = Store::open(&dir, cfg).unwrap();
        for i in 0..10 {
            s.log_publish(&format!("d{i}"), 1, &[vec![b'x'; i + 1]])
                .unwrap();
        }
    }
    let s = Store::open(&dir, cfg).unwrap();
    assert!(s.recovery().is_clean());
    assert_eq!(s.len(), 10);
    assert!(
        s.recovery().snapshot_dicts >= 3,
        "the threshold must have compacted at least once: {:?}",
        s.recovery()
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Interleaved `Publish`/`Delta`/`Retire` history with a torn tail
/// mid-delta: replay folds every intact record in order — removes
/// first, then adds, version bumped — drops exactly the torn delta,
/// and the repair is durable.
#[test]
fn interleaved_deltas_recover_and_torn_delta_tail_is_dropped() {
    let dir = scratch("delta-interleave");
    {
        let mut s = Store::open(&dir, nosync()).unwrap();
        s.log_publish("alpha", 1, &[b"he".to_vec(), b"she".to_vec()])
            .unwrap();
        s.log_delta("alpha", 2, &[b"hers".to_vec()], &[b"he".to_vec()])
            .unwrap();
        s.log_publish("beta", 1, &[b"his".to_vec()]).unwrap();
        s.log_retire("alpha").unwrap();
        s.log_publish("alpha", 1, &[b"aa".to_vec()]).unwrap();
        s.log_delta("beta", 2, &[b"him".to_vec()], &[]).unwrap();
        // The record the tear lands in: acknowledged, then torn.
        s.log_delta("alpha", 2, &[b"bb".to_vec()], &[]).unwrap();
    }
    let wal = dir.join(WAL_FILE);
    let len = std::fs::metadata(&wal).unwrap().len();
    std::fs::File::options()
        .write(true)
        .open(&wal)
        .unwrap()
        .set_len(len - 2)
        .unwrap();

    let s = Store::open(&dir, nosync()).unwrap();
    let r = s.recovery();
    assert!(r.torn.is_some(), "{r:?}");
    assert_eq!(r.wal_replayed, 6, "{r:?}");
    assert_eq!(r.orphan_deltas, 0, "{r:?}");
    let state: Vec<(&str, &DictState)> = s.dicts().collect();
    assert_eq!(
        state,
        vec![
            (
                "alpha",
                // Retired and republished; the torn delta never lands.
                &DictState {
                    version: 1,
                    patterns: vec![b"aa".to_vec()]
                }
            ),
            (
                "beta",
                // Publish then delta: adds appended after the survivors.
                &DictState {
                    version: 2,
                    patterns: vec![b"his".to_vec(), b"him".to_vec()]
                }
            ),
        ]
    );
    drop(s);

    let s = Store::open(&dir, nosync()).unwrap();
    assert!(s.recovery().is_clean(), "{:?}", s.recovery());
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Compaction folds deltas away: the snapshot holds full folded pattern
/// sets (never delta records), recovery replays only post-compaction
/// appends, and the folded state matches applying the deltas in order.
#[test]
fn compaction_folds_deltas_into_full_snapshots() {
    let dir = scratch("delta-compact");
    {
        let mut s = Store::open(&dir, nosync()).unwrap();
        s.log_publish("d", 1, &[b"aa".to_vec(), b"bb".to_vec()])
            .unwrap();
        s.log_delta("d", 2, &[b"cc".to_vec()], &[b"aa".to_vec()])
            .unwrap();
        s.log_delta("d", 3, &[b"dd".to_vec()], &[]).unwrap();
        s.compact().unwrap();
        s.log_delta("d", 4, &[b"ee".to_vec()], &[b"bb".to_vec()])
            .unwrap();
    }
    // The snapshot on disk decodes to the folded set — no delta records.
    let snap_bytes = std::fs::read(dir.join(pardict::store::SNAPSHOT_FILE)).unwrap();
    let (_, snap_dicts) = decode_snapshot(&snap_bytes).unwrap();
    assert_eq!(snap_dicts.len(), 1);
    assert_eq!(snap_dicts[0].version, 3);
    assert_eq!(
        snap_dicts[0].patterns,
        vec![b"bb".to_vec(), b"cc".to_vec(), b"dd".to_vec()]
    );

    let s = Store::open(&dir, nosync()).unwrap();
    let r = s.recovery();
    assert!(r.is_clean(), "{r:?}");
    assert_eq!(r.snapshot_dicts, 1);
    assert_eq!(r.wal_replayed, 1, "only the post-compaction delta");
    assert_eq!(r.orphan_deltas, 0);
    let state: Vec<(&str, &DictState)> = s.dicts().collect();
    assert_eq!(
        state,
        vec![(
            "d",
            &DictState {
                version: 4,
                patterns: vec![b"cc".to_vec(), b"dd".to_vec(), b"ee".to_vec()]
            }
        )]
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A hand-built "snapshot" smuggling a delta record is rejected whole —
/// compaction always writes folded publishes, so a delta inside one
/// means the file is not ours.
#[test]
fn snapshot_decode_rejects_delta_records() {
    let rec = WalRecord::Delta {
        name: "d".into(),
        version: 2,
        adds: vec![b"x".to_vec()],
        removes: vec![],
    };
    let mut bytes = Vec::new();
    bytes.extend_from_slice(b"PDSN");
    bytes.push(1); // STORE_VERSION
    bytes.extend_from_slice(&[0, 0, 0]);
    bytes.extend_from_slice(&9u64.to_le_bytes()); // last_seq
    bytes.extend_from_slice(&1u32.to_le_bytes()); // count
    bytes.extend_from_slice(&encode_record(0, &rec).unwrap());
    bytes.extend_from_slice(&1u64.to_le_bytes()); // trailer count
    let crc = pardict::core::crc32(&bytes);
    bytes.extend_from_slice(&crc.to_le_bytes());
    bytes.extend_from_slice(b"NSDP");
    let err = decode_snapshot(&bytes).unwrap_err();
    assert!(err.contains("delta record in snapshot"), "{err}");
}

/// WAL bytes appended for a delta are proportional to the delta, not
/// the dictionary: delta-publishing one pattern into a large dictionary
/// must cost a small fixed number of framed bytes, far below a full
/// republish of the same state.
#[test]
fn delta_wal_bytes_are_proportional_to_the_delta() {
    let dir = scratch("delta-bytes");
    let patterns: Vec<Vec<u8>> = (0..2000)
        .map(|i| format!("pat{i:04}").into_bytes())
        .collect();
    let mut s = Store::open(&dir, nosync()).unwrap();
    s.log_publish("big", 1, &patterns).unwrap();
    let full = s.appended_bytes();
    s.log_delta("big", 2, &[b"tiny".to_vec()], &[]).unwrap();
    let delta = s.appended_bytes() - full;
    assert!(
        delta * 100 < full,
        "one-pattern delta appended {delta} bytes vs {full} for the full publish"
    );
    drop(s);
    std::fs::remove_dir_all(&dir).unwrap();
}
