//! Theorem-shaped cost assertions at the workspace level: the paper's
//! bounds, checked as inequalities on the ledger. These are the
//! quick-running cousins of the EXPERIMENTS.md sweeps; they fail the build
//! if a change quietly destroys an asymptotic property.

use pardict::prelude::*;
use pardict::workloads::{markov_text, random_dictionary, text_with_planted_matches};

/// Fit: does `ys[i] / xs[i]` stay (roughly) constant? Returns the max/min
/// ratio spread.
fn flatness(xs: &[usize], ys: &[u64]) -> f64 {
    let per: Vec<f64> = xs
        .iter()
        .zip(ys)
        .map(|(&x, &y)| y as f64 / x as f64)
        .collect();
    let lo = per.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = per.iter().cloned().fold(0.0, f64::max);
    hi / lo
}

#[test]
fn theorem_3_1_matching_work_is_linear_and_depth_logarithmic() {
    let alpha = Alphabet::dna();
    let dict = Dictionary::new(random_dictionary(1, 64, 4, 12, alpha));
    let pram = Pram::seq();
    let matcher = DictMatcher::build(&pram, dict.clone(), 2);
    let ns = [1usize << 11, 1 << 13, 1 << 15];
    let mut works = Vec::new();
    let mut depths = Vec::new();
    for &n in &ns {
        let text = text_with_planted_matches(n as u64, dict.patterns(), n, 25, alpha);
        let (_, c) = pram.metered(|p| matcher.match_text(p, &text));
        works.push(c.work);
        depths.push(c.depth);
    }
    assert!(
        flatness(&ns, &works) < 1.35,
        "matching work/n not flat: {works:?} over {ns:?}"
    );
    // Depth grows at most additively with log n (window count is fixed by
    // d; anchors add log-ish rounds).
    assert!(
        depths[2] < depths[0] + 200,
        "matching depth grew too fast: {depths:?}"
    );
}

#[test]
fn theorem_4_2_compression_work_linear() {
    let ns = [1usize << 12, 1 << 14, 1 << 16];
    let mut works = Vec::new();
    for &n in &ns {
        let pram = Pram::seq();
        let text = markov_text(n as u64, n, Alphabet::dna());
        let (_, c) = pram.metered(|p| lz1_compress(p, &text, 1));
        works.push(c.work);
    }
    // Allow the radix-pass step at 2^16 (documented).
    assert!(
        flatness(&ns, &works) < 1.45,
        "lz1 work/n not flat: {works:?}"
    );
}

#[test]
fn theorem_4_3_decompression_work_linear_depth_log() {
    let ns = [1usize << 12, 1 << 14, 1 << 16];
    let mut works = Vec::new();
    for &n in &ns {
        let pram = Pram::seq();
        let text = markov_text(7, n, Alphabet::dna());
        let tokens = lz1_compress(&pram, &text, 2);
        let (back, c) = pram.metered(|p| lz1_decompress(p, &tokens, 3));
        assert_eq!(back, text);
        works.push(c.work);
        assert!(
            c.depth < 120 * u64::from(pardict::pram::ceil_log2(n)),
            "depth {} too deep at n={n}",
            c.depth
        );
    }
    assert!(
        flatness(&ns, &works) < 1.45,
        "unlz1 work/n not flat: {works:?}"
    );
}

#[test]
fn theorem_5_3_static_parse_work_linear() {
    let alpha = Alphabet::dna();
    let mut words: Vec<Vec<u8>> = (0..alpha.size()).map(|i| vec![alpha.symbol(i)]).collect();
    let training = markov_text(1, 8000, alpha);
    words.extend(pardict::workloads::dictionary_from_text(
        2, &training, 40, 2, 10,
    ));
    let dict = Dictionary::new(words);
    let pram = Pram::seq();
    let matcher = DictMatcher::build(&pram, dict, 3);
    let ns = [1usize << 11, 1 << 13, 1 << 15];
    let mut works = Vec::new();
    for &n in &ns {
        let msg = markov_text(10 + n as u64, n, alpha);
        let (p, c) = pram.metered(|q| optimal_parse(q, &matcher, &msg));
        assert!(p.is_some());
        works.push(c.work);
    }
    assert!(
        flatness(&ns, &works) < 1.35,
        "parse work/n not flat: {works:?}"
    );
}

#[test]
fn seq_and_par_ledgers_are_identical() {
    // The simulation invariant everything else relies on.
    let text = markov_text(9, 20_000, Alphabet::lowercase());
    let s = Pram::seq();
    let p = Pram::par();
    let a = lz1_compress(&s, &text, 4);
    let b = lz1_compress(&p, &text, 4);
    assert_eq!(a, b);
    assert_eq!(s.cost(), p.cost());
}

#[test]
fn preprocessing_depth_is_logarithmic() {
    let alpha = Alphabet::dna();
    let mut depths = Vec::new();
    for dexp in [11u32, 13, 15] {
        let d = 1usize << dexp;
        let dict = Dictionary::new(random_dictionary(d as u64, d / 8, 4, 12, alpha));
        let pram = Pram::seq();
        let (_, c) = pram.metered(|p| DictMatcher::build(p, dict, 5));
        depths.push(c.depth);
    }
    // Depth may grow by a (log-proportional) additive amount per 4x in d,
    // never multiplicatively.
    assert!(
        depths[2] < depths[0] * 2,
        "preprocessing depth grew multiplicatively: {depths:?}"
    );
}
