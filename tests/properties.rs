//! Property-based tests (proptest) over the core invariants.

use pardict::prelude::*;
use proptest::prelude::*;

/// Strategy: NUL-free byte strings over a small alphabet (dense repeats).
fn small_alpha_text(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(prop::sample::select(vec![b'a', b'b', b'c']), 0..max_len)
}

/// Strategy: a non-empty dictionary of 1..8 non-empty patterns.
fn dictionary() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(
        prop::collection::vec(prop::sample::select(vec![b'a', b'b', b'c']), 1..8),
        1..8,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lz1_roundtrips(text in small_alpha_text(300), seed in 0u64..1000) {
        let pram = Pram::seq();
        let tokens = lz1_compress(&pram, &text, seed);
        prop_assert_eq!(lz1_decompress(&pram, &tokens, seed ^ 1), text.clone());
        // Greedy parse: phrase count equals the sequential reference.
        prop_assert_eq!(tokens.len(), lz77_sequential(&text).len());
    }

    #[test]
    fn dictionary_matching_equals_brute_force(
        patterns in dictionary(),
        text in small_alpha_text(200),
        seed in 0u64..1000,
    ) {
        let pram = Pram::seq();
        let dict = Dictionary::new(patterns);
        let got = dictionary_match(&pram, &dict, &text, seed);
        let want = pardict::core::brute_force_matches(&dict, &text);
        for i in 0..text.len() {
            prop_assert_eq!(got.get(i).map(|m| m.len), want.get(i).map(|m| m.len));
        }
    }

    #[test]
    fn suffix_tree_lcp_queries_are_exact(text in small_alpha_text(150), seed in 0u64..100) {
        prop_assume!(!text.is_empty());
        let pram = Pram::seq();
        let st = SuffixTree::build(&pram, &text, seed);
        for i in 0..text.len().min(20) {
            for j in 0..text.len().min(20) {
                let naive = text[i..]
                    .iter()
                    .zip(&text[j..])
                    .take_while(|(a, b)| a == b)
                    .count();
                let got = st.lcp_positions(i, j);
                if i == j {
                    prop_assert_eq!(got, text.len() - i);
                } else {
                    prop_assert_eq!(got, naive);
                }
            }
        }
    }

    #[test]
    fn optimal_parse_is_never_beaten(
        text in small_alpha_text(120),
        extra in prop::collection::vec(
            prop::collection::vec(prop::sample::select(vec![b'a', b'b', b'c']), 2..6), 0..6),
        seed in 0u64..100,
    ) {
        let pram = Pram::seq();
        // Single chars guarantee parseability.
        let mut words = vec![vec![b'a'], vec![b'b'], vec![b'c']];
        words.extend(extra);
        let dict = Dictionary::new(words);
        let matcher = DictMatcher::build(&pram, dict.clone(), seed);
        let opt = optimal_parse(&pram, &matcher, &text).expect("parseable");
        let bfs = bfs_parse(&pram, &matcher, &text).expect("parseable");
        let greedy = greedy_parse(&pram, &matcher, &text).expect("parseable");
        prop_assert_eq!(opt.num_phrases(), bfs.num_phrases());
        prop_assert!(opt.num_phrases() <= greedy.num_phrases());
        prop_assert_eq!(opt.expand(&dict), text.clone());
    }

    #[test]
    fn checker_accepts_truth(
        patterns in dictionary(),
        text in small_alpha_text(150),
        seed in 0u64..100,
    ) {
        let pram = Pram::seq();
        let dict = Dictionary::new(patterns);
        let matcher = DictMatcher::build(&pram, dict.clone(), seed);
        // Aho–Corasick output is ground truth; the checker must accept it.
        let truth = AhoCorasick::build(&dict).match_text(&text);
        prop_assert!(matcher.check(&pram, &text, &truth).is_ok());
    }

    #[test]
    fn lz78_roundtrips(text in small_alpha_text(400)) {
        use pardict::compress::{lz78_compress, lz78_decompress};
        prop_assert_eq!(lz78_decompress(&lz78_compress(&text)), text);
    }

    #[test]
    fn substring_match_lengths_maximal_and_real(
        patterns in dictionary(),
        text in small_alpha_text(120),
        seed in 0u64..100,
    ) {
        let pram = Pram::seq();
        let dict = Dictionary::new(patterns);
        let matcher = SubstringMatcher::build(&pram, &dict, seed);
        let loci = substring_match(&pram, &matcher, &text);
        let dhat = dict.dhat();
        for i in 0..text.len() {
            let len = loci[i].len as usize;
            // Claimed occurrence is real.
            let pos = loci[i].dhat_pos(matcher.tree());
            prop_assert_eq!(&dhat[pos..pos + len], &text[i..i + len]);
            // And maximal: one more character never occurs.
            if i + len < text.len() {
                let longer = &text[i..i + len + 1];
                prop_assert!(
                    !dhat.windows(longer.len()).any(|w| w == longer),
                    "S[{}] not maximal", i
                );
            }
        }
    }
}
