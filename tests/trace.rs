//! Trace tier: structural invariants of the span model, end to end.
//!
//! Three families of guarantees, each checked against live instrumented
//! code (never hand-built span lists):
//!
//! * **Structure** — every child span nests inside its parent's interval,
//!   and children's summed PRAM cost never exceeds their parent's
//!   inclusive cost (zero-cost structural spans excepted).
//! * **Ledger fidelity** — a `Pram::seq` run and a `Pram::par` run of the
//!   same workload export spans reporting identical total work, because
//!   span costs come from the same metered ledger the cost-model tier
//!   certifies.
//! * **Propagation** — trace contexts survive the wire round trip
//!   bit-exactly, and a cluster scatter-gather with a killed backend
//!   yields ONE trace whose scatter and failover-attempt spans all nest
//!   under the router's root span.

use pardict::cluster::{selftest as cluster_selftest, ClusterConfig, Router, RouterServer};
use pardict::prelude::*;
use pardict::service::wire::{self, WireRequest};
use pardict::service::{
    selftest as service_selftest, Client, Engine, Metrics, OpRequest, Registry, Request, Server,
};
use pardict::trace::{export, view, with_scope, TraceConfig, TraceCtx, Tracer};
use pardict::workloads::random_dictionary;
use proptest::prelude::*;
use std::sync::Arc;

/// A deterministic tracer that keeps every trace.
fn tracer(seed: u64) -> Arc<Tracer> {
    Tracer::new(TraceConfig {
        sample_one_in: 1,
        seed,
        capacity: 1 << 14,
        deterministic: true,
    })
}

/// A traced single-node engine (inline execution for determinism).
fn traced_engine(t: &Arc<Tracer>) -> Engine {
    let metrics = Arc::new(Metrics::default());
    let registry = Arc::new(Registry::new(Arc::clone(&metrics)));
    Engine::new_traced(
        cluster_selftest::engine_config(),
        registry,
        metrics,
        Some(Arc::clone(t)),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Children nest inside their parent's interval and their summed
    /// cost stays within the parent's inclusive cost, for live traces
    /// produced by a traced engine over random texts.
    #[test]
    fn spans_nest_and_costs_sum_within_parents(
        text in prop::collection::vec(prop::sample::select(vec![b'a', b'b', b'c']), 1..400),
        which in 0..3u8,
    ) {
        let t = tracer(7);
        let engine = traced_engine(&t);
        engine
            .registry()
            .publish("d", vec![b"ab".to_vec(), b"abc".to_vec(), b"c".to_vec()])
            .expect("publish");
        let op = match which {
            0 => OpRequest::Match { dict: "d".into(), text: text.clone() },
            1 => OpRequest::Grep { dict: "d".into(), text: text.clone() },
            _ => OpRequest::Compress { text: text.clone() },
        };
        let ctx = t.begin_trace();
        prop_assert!(ctx.is_some(), "sample_one_in=1 keeps everything");
        let resp = engine.call(Request::new(op).traced(ctx));
        prop_assert!(resp.result.is_ok(), "{:?}", resp.result);
        engine.shutdown();

        let spans = export::parse_jsonl(&export::export_jsonl(&t.drain())).expect("round trip");
        prop_assert!(!spans.is_empty());
        prop_assert!(view::check_nesting(&spans).is_ok(), "{:?}", view::check_nesting(&spans));
        prop_assert!(view::check_costs(&spans).is_ok(), "{:?}", view::check_costs(&spans));
        // The request's inclusive cost is the metered cost the response
        // reports — the span ledger and the response ledger are one.
        let root = spans.iter().find(|s| s.name == "request").expect("root span");
        prop_assert_eq!(root.work, resp.meta.cost.work);
        prop_assert_eq!(root.depth, resp.meta.cost.depth);
    }

    /// A trace-context wire frame round-trips bit-exactly around any
    /// inner op, for arbitrary trace/parent ids.
    #[test]
    fn traced_frames_round_trip(
        trace in any::<u64>(),
        parent in any::<u64>(),
        tag in prop::sample::select(vec![
            wire::tag::MATCH,
            wire::tag::GREP,
            wire::tag::COMPRESS,
            wire::tag::PARSE,
            wire::tag::GREPZ,
        ]),
        dict_bytes in prop::collection::vec(prop::sample::select(vec![b'a', b'z', b'q']), 1..8),
        text in prop::collection::vec(any::<u8>(), 0..64),
        timeout_ms in any::<u32>(),
    ) {
        let dict = String::from_utf8(dict_bytes).expect("ascii");
        let req = WireRequest::Traced {
            trace,
            parent,
            inner: Box::new(WireRequest::Op { tag, dict, text, timeout_ms }),
        };
        let bytes = req.encode();
        let decoded = WireRequest::decode(&bytes).expect("decode");
        prop_assert_eq!(&decoded, &req);
        prop_assert_eq!(decoded.encode(), bytes, "re-encode is bit-identical");
    }
}

/// `Pram::seq` and `Pram::par` execute the same super-steps, so the
/// traces they emit must report identical total work — the observable
/// form of the work-preservation law the cost-model tier certifies.
#[test]
fn seq_and_par_traces_report_identical_total_work() {
    let patterns = random_dictionary(0x5EC_0411, 12, 3, 8, Alphabet::dna());
    let dict = Dictionary::new(patterns);
    let text: Vec<u8> = (0..4096u32)
        .map(|i| b"ACGT"[(i % 7 % 4) as usize])
        .collect();
    let cfg = StreamConfig::with_block_size(256);
    let (container, _) =
        compress_stream(&Pram::seq(), &mut &text[..], Vec::new(), &cfg).expect("compress");

    let total_work = |pram: &Pram| -> (u64, usize) {
        let t = tracer(3);
        let ctx = t.begin_trace().expect("sampled");
        let matcher = DictMatcher::build(pram, dict.clone(), 0x77);
        with_scope(&t, ctx, || {
            let mut rdr = StreamReader::open(std::io::Cursor::new(&container)).expect("container");
            grep_container(pram, &matcher, &mut rdr, &GrepConfig::default()).expect("grep");
        });
        let spans = t.drain();
        assert!(!spans.is_empty(), "waves must record under the scope");
        assert!(spans.iter().all(|s| s.name == "search-wave"));
        (spans.iter().map(|s| s.cost.work).sum(), spans.len())
    };

    let (seq_work, seq_spans) = total_work(&Pram::seq());
    let (par_work, par_spans) = total_work(&Pram::par());
    assert_eq!(seq_work, par_work, "seq and par traces must agree on work");
    assert_eq!(seq_spans, par_spans, "same wave count either way");
}

/// The acceptance scenario: a cluster `grepz` through a [`RouterServer`]
/// with one backend killed mid-fleet produces ONE exported trace in which
/// every scatter span and every failover-attempt span nests under the
/// router's root `route` span, with the cost invariant holding span-wide.
#[test]
fn cluster_grepz_trace_nests_scatter_and_failover_under_router_root() {
    let shared = tracer(0xC105_7E4A);

    // Three traced backends sharing the router's tracer, so one request's
    // spans — router-side and shard-side — land in one collector.
    let mut engines = Vec::new();
    let mut servers = Vec::new();
    let mut addrs = Vec::new();
    for _ in 0..3 {
        let engine = traced_engine(&shared);
        let server = Server::start(engine.clone(), "127.0.0.1:0").expect("backend start");
        addrs.push(server.addr());
        engines.push(engine);
        servers.push(server);
    }

    let router = Arc::new(Router::new_traced(
        &addrs,
        ClusterConfig::default(),
        Some(Arc::clone(&shared)),
    ));
    let front = RouterServer::start(Arc::clone(&router), "127.0.0.1:0").expect("front start");

    let patterns = random_dictionary(0xFA11_05E5, 16, 3, 8, Alphabet::dna());
    router.publish("corpus", &patterns).expect("publish");

    let text: Vec<u8> = (0..6000u32)
        .map(|i| b"ACGT"[(i % 5 % 4) as usize])
        .collect();
    let cfg = StreamConfig::with_block_size(256);
    let (container, _) =
        compress_stream(&Pram::seq(), &mut &text[..], Vec::new(), &cfg).expect("compress");

    // Kill one backend AFTER publish: the scatter must fail over its
    // ranges to the survivors, recording the dead attempts as spans.
    servers[0].stop();
    engines[0].shutdown();

    // Drain publish/startup spans; the grepz below is then ONE trace.
    let _ = shared.drain();

    let mut client = Client::connect(front.addr()).expect("connect front");
    assert_eq!(
        client.hello().expect("hello") & wire::EXT_TRACE,
        wire::EXT_TRACE,
        "traced router must advertise the trace extension"
    );
    let ctx = shared.begin_trace().expect("sampled");
    let reply = client
        .op_traced(wire::tag::GREPZ, "corpus", &container, 0, Some(ctx))
        .expect("grepz transport")
        .expect("grepz reply");
    match reply {
        wire::WireResponse::ClusterHits {
            degraded, shards, ..
        } => {
            assert!(degraded, "a killed backend must degrade the response");
            assert!(shards >= 2, "scatter must still fan out, got {shards}");
        }
        other => panic!("expected ClusterHits, got {other:?}"),
    }

    let spans = export::parse_jsonl(&export::export_jsonl(&shared.drain())).expect("round trip");
    let traces: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.trace).collect();
    assert_eq!(traces.len(), 1, "one request, one trace: {traces:?}");
    view::check_nesting(&spans).expect("intervals nest");
    view::check_costs(&spans).expect("cost invariant holds");

    let route = spans
        .iter()
        .find(|s| s.name == "route")
        .expect("router root span");
    assert_eq!(
        route.parent, ctx.parent.0,
        "route nests under the client ctx"
    );
    let scatters: Vec<_> = spans.iter().filter(|s| s.name == "scatter").collect();
    assert!(scatters.len() >= 2, "fan-out must record scatter spans");
    assert!(
        scatters.iter().all(|s| s.parent == route.span),
        "every scatter span hangs off the router root"
    );
    let scatter_ids: std::collections::BTreeSet<u64> = scatters.iter().map(|s| s.span).collect();
    let attempts: Vec<_> = spans.iter().filter(|s| s.name == "attempt").collect();
    assert!(
        !attempts.is_empty() && attempts.iter().all(|s| scatter_ids.contains(&s.parent)),
        "attempts nest under scatter spans"
    );
    // The dead backend makes at least one range retry: attempt number
    // (index >> 32) above zero under some scatter span.
    assert!(
        attempts.iter().any(|s| s.index >> 32 > 0),
        "a killed backend must leave failover retry spans: {attempts:?}"
    );
    // Backend request spans nest under the attempts that carried them.
    let attempt_ids: std::collections::BTreeSet<u64> = attempts.iter().map(|s| s.span).collect();
    let backend_requests: Vec<_> = spans.iter().filter(|s| s.name == "request").collect();
    assert!(
        !backend_requests.is_empty()
            && backend_requests
                .iter()
                .all(|s| attempt_ids.contains(&s.parent)),
        "backend request spans hang off router attempt spans"
    );

    drop(front);
    router.shutdown();
    for s in &mut servers[1..] {
        s.stop();
    }
    for e in &engines[1..] {
        e.shutdown();
    }
}

/// The traced selftest is the CI byte-determinism gate; assert its
/// contract here too so a regression fails fast in `cargo test`.
#[test]
fn trace_selftest_export_is_deterministic_and_valid() {
    let opts = service_selftest::TraceRunOptions {
        requests: 20,
        seed: 0xD00D,
        sample_one_in: 2,
    };
    let (summary_a, jsonl_a) = service_selftest::trace_run(&opts).expect("run a");
    let (_, jsonl_b) = service_selftest::trace_run(&opts).expect("run b");
    assert_eq!(jsonl_a, jsonl_b, "same seed, same bytes");
    assert!(summary_a.contains("1-in-2"));
    let spans = export::parse_jsonl(&jsonl_a).expect("valid export");
    view::check_costs(&spans).expect("cost invariant");
    view::check_nesting(&spans).expect("nesting invariant");
}

/// An unsampled context is `None` end to end: nothing records, nothing
/// breaks, and the engine still answers.
#[test]
fn unsampled_requests_record_nothing() {
    let t = Tracer::new(TraceConfig {
        sample_one_in: u32::MAX,
        seed: 9,
        capacity: 1 << 8,
        deterministic: true,
    });
    let engine = traced_engine(&t);
    engine
        .registry()
        .publish("d", vec![b"aa".to_vec()])
        .expect("publish");
    for _ in 0..16 {
        let ctx = t.begin_trace();
        let resp = engine.call(
            Request::new(OpRequest::Match {
                dict: "d".into(),
                text: b"aaaa".to_vec(),
            })
            .traced(ctx),
        );
        assert!(resp.result.is_ok());
    }
    engine.shutdown();
    assert!(
        t.drain().is_empty(),
        "1-in-2^32 sampling must drop effectively everything"
    );
    assert_eq!(
        t.dropped(),
        0,
        "unsampled is not dropped — nothing was offered"
    );
}

/// `TraceCtx` equality is structural — a sanity pin for the propagation
/// tests above.
#[test]
fn trace_ctx_is_plain_data() {
    let a = TraceCtx {
        trace: pardict::trace::TraceId(7),
        parent: pardict::trace::SpanId(9),
    };
    assert_eq!(a, a);
}

/// Mixed-version negotiation: a new client against a **legacy server**
/// whose wire vocabulary predates `TRACED`/`HELLO`/`PUBDELTA` (tags ≥ 11
/// answer "unknown request tag", exactly like an old binary's decoder).
/// The client must cache extension mask 0 from the failed hello, send
/// bit-identical legacy frames from then on — no trace envelopes, no
/// delta frames — and degrade `publish_delta` to a full publish of the
/// fallback pattern set.
#[test]
fn new_client_degrades_cleanly_against_a_legacy_server() {
    use pardict::core::DictDelta;
    use pardict::service::wire::{read_frame, write_frame, WireResponse};
    use std::net::TcpListener;

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    // The mock legacy peer: records every raw request frame, publishes
    // by bumping a per-name version, and rejects post-v10 tags with the
    // same error shape a real old server's decoder produces.
    let server = std::thread::spawn(move || -> Vec<Vec<u8>> {
        let mut frames = Vec::new();
        let (stream, _) = listener.accept().expect("accept");
        let mut reader = stream.try_clone().expect("clone");
        let mut writer = stream;
        let mut versions: std::collections::HashMap<String, u64> = std::collections::HashMap::new();
        while let Ok(Some(payload)) = read_frame(&mut reader) {
            frames.push(payload.clone());
            let resp = match payload.first() {
                Some(&t) if t > wire::tag::DICTS => WireResponse::Error {
                    code: 1,
                    message: format!("malformed request: unknown request tag {t}"),
                },
                _ => match WireRequest::decode(&payload) {
                    Ok(WireRequest::Publish { name, .. }) => {
                        let v = versions.entry(name).or_insert(0);
                        *v += 1;
                        WireResponse::Published {
                            version: *v,
                            cache_hit: false,
                        }
                    }
                    Ok(WireRequest::Ping) => WireResponse::Pong,
                    Ok(other) => WireResponse::Error {
                        code: 1,
                        message: format!("legacy mock cannot serve {other:?}"),
                    },
                    Err(e) => WireResponse::Error {
                        code: 1,
                        message: format!("malformed request: {e}"),
                    },
                },
            };
            if write_frame(&mut writer, &resp.encode()).is_err() {
                break;
            }
        }
        frames
    });

    let v1 = vec![b"ab".to_vec(), b"ca".to_vec()];
    let delta = DictDelta {
        adds: vec![b"abc".to_vec()],
        removes: vec![b"ca".to_vec()],
    };
    let finals = vec![b"ab".to_vec(), b"abc".to_vec()];

    let mut client = Client::connect(addr).expect("connect");
    // Plain publish works against any vintage.
    let (v, _) = client
        .publish("d", v1.clone())
        .expect("publish transport")
        .expect("publish reply");
    assert_eq!(v, 1);
    // publish_delta triggers lazy negotiation (the hello frame the
    // legacy peer refuses), then degrades to a full publish of the
    // fallback set — a second acknowledged version, never a PUBDELTA
    // frame on the wire.
    let (v, _) = client
        .publish_delta("d", 1, &delta, Some(&finals))
        .expect("delta transport")
        .expect("delta fallback reply");
    assert_eq!(v, 2, "fallback must be a full publish of the final set");
    // Without a fallback the degradation is an explicit Unsupported
    // error, not a silent no-op.
    let err = client
        .publish_delta("d", 2, &delta, None)
        .expect_err("no fallback must surface Unsupported");
    assert_eq!(err.kind(), std::io::ErrorKind::Unsupported);
    // A traced op against the legacy peer must go out as the plain
    // legacy frame (mask 0 strips the envelope); the mock answers it
    // with a service-level error, which is not a transport failure.
    let ctx = pardict::trace::TraceCtx {
        trace: pardict::trace::TraceId(7),
        parent: pardict::trace::SpanId(9),
    };
    let reply = client
        .op_traced(wire::tag::MATCH, "d", b"abca", 5, Some(ctx))
        .expect("op transport");
    assert!(reply.is_err(), "mock answers ops with a service error");
    drop(client);

    let frames = server.join().expect("server thread");
    let expect_publish_v1 = WireRequest::Publish {
        name: "d".into(),
        patterns: v1,
    }
    .encode();
    let expect_hello = WireRequest::Hello {
        extensions: wire::EXT_TRACE | wire::EXT_DELTA,
    }
    .encode();
    let expect_publish_finals = WireRequest::Publish {
        name: "d".into(),
        patterns: finals,
    }
    .encode();
    let expect_op = WireRequest::Op {
        tag: wire::tag::MATCH,
        dict: "d".into(),
        text: b"abca".to_vec(),
        timeout_ms: 5,
    }
    .encode();
    assert_eq!(
        frames,
        vec![
            expect_publish_v1,
            expect_hello,
            expect_publish_finals,
            expect_op
        ],
        "every frame after the refused hello must be bit-identical legacy bytes"
    );
    assert!(
        frames
            .iter()
            .all(|f| f[0] != wire::tag::PUBDELTA && f[0] != wire::tag::TRACED),
        "no delta or trace frames may reach a legacy peer"
    );
}
