//! Integration tests for `pardict-cluster`: scatter-gathered container
//! grep must be order- and content-identical to the single-node engine,
//! failover must be deterministic under a seeded kill schedule, and a
//! chaos-poisoned link must be routed around — degraded, never wrong.

use pardict::chaos::{ChaosProxy, ClientFault};
use pardict::cluster::selftest::{self, Options};
use pardict::cluster::{ClusterConfig, ClusterError, Router};
use pardict::prelude::*;
use pardict::service::{OpRequest, Reply, Request, Server, ServiceError};
use pardict::workloads::random_dictionary;
use proptest::prelude::*;
use std::net::SocketAddr;
use std::sync::Arc;

/// Strategy: NUL-free byte strings over a small alphabet (dense repeats).
fn small_alpha_text(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(prop::sample::select(vec![b'a', b'b', b'c']), 0..max_len)
}

/// Strategy: a non-empty dictionary of 1..8 non-empty patterns.
fn dictionary() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(
        prop::collection::vec(prop::sample::select(vec![b'a', b'b', b'c']), 1..8),
        1..8,
    )
}

/// Spin up `n` served backends sharing the selftest engine configuration.
fn backends(n: usize) -> (Vec<pardict::service::Engine>, Vec<Server>, Vec<SocketAddr>) {
    let mut engines = Vec::new();
    let mut servers = Vec::new();
    let mut addrs = Vec::new();
    for _ in 0..n {
        let engine = selftest::new_engine();
        let server = Server::start(engine.clone(), "127.0.0.1:0").expect("backend start");
        addrs.push(server.addr());
        engines.push(engine);
        servers.push(server);
    }
    (engines, servers, addrs)
}

fn teardown(engines: Vec<pardict::service::Engine>, mut servers: Vec<Server>) {
    for s in &mut servers {
        s.stop();
    }
    for e in &engines {
        e.shutdown();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `cluster grepz ≡ single-node grep_container`: for random
    /// dictionaries, texts, shard counts, and block sizes, the routed
    /// scatter-gather answer (hits in pos-asc/len-desc/id-asc order,
    /// version, corrupt-block report) is identical to one engine grepping
    /// the whole container.
    #[test]
    fn cluster_grep_equals_single_node_grep(
        patterns in dictionary(),
        text in small_alpha_text(600),
        shards in 1..=3usize,
        block in 16..64usize,
    ) {
        let (engines, servers, addrs) = backends(shards);
        let oracle = selftest::new_engine();
        let router = Router::new(&addrs, ClusterConfig::default());

        router.publish("d", &patterns).expect("cluster publish");
        oracle.registry().publish("d", patterns.clone()).expect("oracle publish");

        let cfg = StreamConfig::with_block_size(block);
        let (container, _) =
            compress_stream(&Pram::seq(), &mut &text[..], Vec::new(), &cfg).expect("compress");

        let routed = router.grepz("d", &container, 0);
        let oracle_resp = oracle.call(Request::new(OpRequest::GrepContainer {
            dict: "d".into(),
            container,
        }));

        let mut failures = Vec::new();
        selftest::verify_response(0, &routed.result, &oracle_resp.result, &mut failures);
        prop_assert!(failures.is_empty(), "{failures:?}");
        prop_assert!(!routed.degraded, "healthy cluster answered degraded");

        router.shutdown();
        teardown(engines, servers);
        oracle.shutdown();
    }
}

/// Deterministic failover: the same options (and therefore the same
/// seeded kill schedule) must produce a byte-identical degraded summary
/// across independent runs — addresses, timing, and latency are excluded
/// from the contract by construction.
#[test]
fn failover_summary_is_deterministic() {
    let opts = Options {
        requests: 48,
        seed: 11,
    };
    let first = selftest::run(&opts).expect("first run");
    let second = selftest::run(&opts).expect("second run");
    assert_eq!(first.summary, second.summary);
    assert!(first.summary.contains("degraded responses"));
    assert!(first.summary.contains("killed at request 24"));
}

/// Chaos integration: a [`ChaosProxy`] poisoning every new connection to
/// one backend (corrupted first frame) must read as a dead shard. The
/// router never panics, keeps its accounting books closed, answers every
/// request identically to the oracle, and excludes the poisoned shard.
#[test]
fn router_routes_around_poisoned_link() {
    let (engines, servers, addrs) = backends(3);
    let mut proxy = ChaosProxy::start(addrs[0]).expect("proxy start");
    proxy.set_default_fault(ClientFault::CorruptTag);
    let cluster_addrs = vec![proxy.addr(), addrs[1], addrs[2]];

    let oracle = selftest::new_engine();
    let router = Arc::new(Router::new(&cluster_addrs, ClusterConfig::default()));

    // The broadcast publish already meets the poisoned link: the two
    // clean backends ack, the poisoned one reads as down and the summary
    // says degraded — a warning, not an error.
    let patterns = random_dictionary(0xBAD_5EED, 16, 3, 8, Alphabet::dna());
    let published = router
        .publish("corpus", &patterns)
        .expect("cluster publish");
    assert_eq!(published.acks, 2, "clean backends must ack: {published:?}");
    assert!(published.degraded, "poisoned link must degrade the publish");
    oracle
        .registry()
        .publish("corpus", patterns.clone())
        .expect("oracle publish");

    let report = selftest::drive_workload(&router, &oracle, &patterns, 40, 0xBAD_5EED, |_| {});

    assert!(report.failures.is_empty(), "{:?}", report.failures);
    assert_eq!(
        report.degraded_count, 40,
        "every response while a shard is excluded must carry the degraded flag"
    );
    assert!(
        !router.healthy_ids().contains(&0),
        "the poisoned shard must stay excluded"
    );
    assert!(
        router.metrics().per_shard[0].deaths.get() >= 1,
        "the poisoned shard must be charged a death"
    );
    router
        .metrics()
        .check_accounting(true)
        .expect("books must close despite the poisoned link");

    router.shutdown();
    proxy.stop();
    teardown(engines, servers);
    oracle.shutdown();
}

/// Dict-less compress requests rotate round-robin, so with all shards
/// healthy every backend sees traffic, and a routed compress equals the
/// oracle's bytes regardless of which shard served it.
#[test]
fn round_robin_compress_spreads_and_matches_oracle() {
    let (engines, servers, addrs) = backends(3);
    let oracle = selftest::new_engine();
    let router = Router::new(&addrs, ClusterConfig::default());

    let text: Vec<u8> = (0..900u32).map(|i| b'a' + (i % 3) as u8).collect();
    for _ in 0..6 {
        let routed = router.op(pardict::service::wire::tag::COMPRESS, "", &text, 0);
        let oracle_resp = oracle.call(Request::new(OpRequest::Compress { text: text.clone() }));
        match (&routed.result, &oracle_resp.result) {
            (
                Ok(pardict::service::wire::WireResponse::Compressed { payload, .. }),
                Ok(Reply::Compress { payload: want, .. }),
            ) => assert_eq!(payload, want),
            other => panic!("unexpected compress outcome: {other:?}"),
        }
        assert!(!routed.degraded);
    }
    for (id, shard) in router.metrics().per_shard.iter().enumerate() {
        assert!(
            shard.ok.get() >= 2,
            "round-robin skipped shard {id}: {} ok",
            shard.ok.get()
        );
    }

    router.shutdown();
    teardown(engines, servers);
    oracle.shutdown();
}

/// An unknown dictionary comes back as the service's own error through
/// the router, not as a transport failure or a panic.
#[test]
fn unknown_dictionary_is_an_app_error_not_a_failover() {
    let (engines, servers, addrs) = backends(2);
    let router = Router::new(&addrs, ClusterConfig::default());

    let routed = router.op(pardict::service::wire::tag::MATCH, "nope", b"abc", 0);
    match routed.result {
        Err(ClusterError::Service(ServiceError::NoSuchDictionary(msg))) => {
            // The wire decode keeps the rendered message, not the bare name.
            assert!(msg.contains("nope"), "unexpected message {msg:?}");
        }
        other => panic!("expected NoSuchDictionary, got {other:?}"),
    }
    assert!(!routed.degraded, "an app error is not degradation");
    for shard in &router.metrics().per_shard {
        assert_eq!(shard.deaths.get(), 0, "app errors must not kill shards");
    }

    router.shutdown();
    teardown(engines, servers);
}
