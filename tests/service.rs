//! Integration tests for `pardict-service`: the engine must be
//! observationally equivalent to one-shot library calls, including across
//! a mid-stream dictionary hot-swap.

use pardict::prelude::*;
use pardict::service::{
    Engine, EngineConfig, Lane, Metrics, OpRequest, Registry, Reply, Request, ServiceError,
};
use proptest::prelude::*;
use std::sync::Arc;

/// Strategy: NUL-free byte strings over a small alphabet (dense repeats).
fn small_alpha_text(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(prop::sample::select(vec![b'a', b'b', b'c']), 0..max_len)
}

/// Strategy: a non-empty dictionary of 1..8 non-empty patterns.
fn dictionary() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(
        prop::collection::vec(prop::sample::select(vec![b'a', b'b', b'c']), 1..8),
        1..8,
    )
}

/// A deterministic single-threaded engine: callers drain the queue inline,
/// so tests see every batch-size and lane effect without timing races.
fn inline_engine(seq_threshold: usize) -> Engine {
    let metrics = Arc::new(Metrics::default());
    let registry = Arc::new(Registry::new(Arc::clone(&metrics)));
    Engine::new(
        EngineConfig {
            workers: 0,
            queue_depth: 256,
            max_batch: 16,
            seq_threshold,
            stream_threshold: 1 << 16,
        },
        registry,
        metrics,
    )
}

/// Longest-match hit list straight from the library, for comparison.
fn library_hits(patterns: &[Vec<u8>], text: &[u8]) -> Vec<(u64, u32)> {
    let pram = Pram::seq();
    let dict = Dictionary::new(patterns.to_vec());
    dictionary_match(&pram, &dict, text, 0xA5)
        .iter_hits()
        .map(|(i, m)| (i as u64, m.len))
        .collect()
}

fn engine_hits(engine: &Engine, dict: &str, text: &[u8]) -> (u64, Vec<(u64, u32)>) {
    let resp = engine.call(Request::new(OpRequest::Match {
        dict: dict.to_string(),
        text: text.to_vec(),
    }));
    match resp.result.expect("match should succeed") {
        Reply::Match { version, hits } => {
            (version, hits.into_iter().map(|h| (h.pos, h.len)).collect())
        }
        other => panic!("unexpected reply {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Batched `match` responses equal direct `dictionary_match` results,
    /// on both the batched and the sequential-fallback lane.
    #[test]
    fn engine_match_equals_library(
        patterns in dictionary(),
        text in small_alpha_text(200),
    ) {
        // threshold 0: everything batched; threshold usize::MAX: everything
        // on the Aho-Corasick fallback lane. Both must agree with the
        // library.
        for threshold in [0, usize::MAX] {
            let engine = inline_engine(threshold);
            engine.registry().publish("d", patterns.clone()).unwrap();
            let (version, got) = engine_hits(&engine, "d", &text);
            prop_assert_eq!(version, 1);
            prop_assert_eq!(&got, &library_hits(&patterns, &text));
        }
    }

    /// Hot-swap consistency: every reply is computed entirely against the
    /// version it names — answers are never a mix of versions — and after
    /// the swap new requests see the new version.
    #[test]
    fn engine_match_consistent_across_hot_swap(
        pats_v1 in dictionary(),
        pats_v2 in dictionary(),
        text in small_alpha_text(160),
    ) {
        let engine = inline_engine(64);
        engine.registry().publish("d", pats_v1.clone()).unwrap();

        let expect_v1 = library_hits(&pats_v1, &text);
        let expect_v2 = library_hits(&pats_v2, &text);

        let (v_before, got_before) = engine_hits(&engine, "d", &text);
        prop_assert_eq!(v_before, 1);
        prop_assert_eq!(&got_before, &expect_v1);

        // Mid-stream: queue requests, swap the dictionary while they are
        // still pending, then queue more. Each response must match the
        // library output for exactly the version it reports.
        let mk = || Request::new(OpRequest::Match { dict: "d".into(), text: text.clone() });
        let pending: Vec<_> = (0..4).map(|_| engine.submit(mk()).unwrap()).collect();
        engine.registry().publish("d", pats_v2.clone()).unwrap();
        let after: Vec<_> = (0..4).map(|_| engine.submit(mk()).unwrap()).collect();

        for ticket in pending.into_iter().chain(after) {
            let resp = ticket.wait();
            match resp.result.expect("match should succeed") {
                Reply::Match { version, hits } => {
                    let got: Vec<(u64, u32)> =
                        hits.into_iter().map(|h| (h.pos, h.len)).collect();
                    match version {
                        1 => prop_assert_eq!(&got, &expect_v1),
                        2 => prop_assert_eq!(&got, &expect_v2),
                        v => prop_assert!(false, "impossible version {}", v),
                    }
                }
                other => prop_assert!(false, "unexpected reply {:?}", other),
            }
        }

        // A fresh synchronous request must now see version 2.
        let (v_after, got_after) = engine_hits(&engine, "d", &text);
        prop_assert_eq!(v_after, 2);
        prop_assert_eq!(&got_after, &expect_v2);
    }

    /// The engine's `parse` agrees with the library's `optimal_parse`
    /// (phrase count), including the unparseable case.
    #[test]
    fn engine_parse_equals_library(
        patterns in dictionary(),
        text in small_alpha_text(120),
    ) {
        let engine = inline_engine(64);
        engine.registry().publish("d", patterns.clone()).unwrap();
        let pram = Pram::seq();
        let matcher = DictMatcher::build(&pram, Dictionary::new(patterns), 0xA5);
        let want = optimal_parse(&pram, &matcher, &text);

        let resp = engine.call(Request::new(OpRequest::Parse {
            dict: "d".into(),
            text: text.clone(),
        }));
        match (want, resp.result) {
            (Some(p), Ok(Reply::Parse { phrases, .. })) => {
                prop_assert_eq!(phrases as usize, p.num_phrases());
            }
            (None, Err(ServiceError::Unparseable)) => {}
            (want, got) => prop_assert!(
                false,
                "parse disagreement: library {:?} vs engine {:?}",
                want.map(|p| p.num_phrases()),
                got
            ),
        }
    }
}

#[test]
fn per_request_cost_attribution_is_nonzero_and_lane_tagged() {
    let engine = inline_engine(32);
    engine
        .registry()
        .publish("d", vec![b"abra".to_vec(), b"cad".to_vec()])
        .unwrap();

    // Small text: sequential fallback lane.
    let small = engine.call(Request::new(OpRequest::Match {
        dict: "d".into(),
        text: b"abracadabra".to_vec(),
    }));
    assert!(small.result.is_ok());
    assert_eq!(small.meta.lane, Lane::SeqFallback);
    assert!(small.meta.cost.work > 0);

    // Large text: batched PRAM lane, with ledger work at least linear-ish.
    let large = engine.call(Request::new(OpRequest::Match {
        dict: "d".into(),
        text: b"abracadabra".repeat(16),
    }));
    assert!(large.result.is_ok());
    assert_eq!(large.meta.lane, Lane::Batched);
    assert!(large.meta.cost.work > large.meta.cost.depth);
    assert!(large.meta.batch_size >= 1);
}

#[test]
fn selftest_smoke() {
    // A small configuration of the same selftest `pardict serve --selftest`
    // runs, kept cheap for the test suite.
    let opts = pardict::service::selftest::SelftestOptions {
        requests: 64,
        workers: 2,
        clients: 4,
        seed: 11,
    };
    let report = pardict::service::selftest::run(&opts).expect("selftest must pass");
    assert!(report.contains("selftest ok"));
    assert!(report.contains("batches"));
}

// ---- wire-codec fuzz properties (chaos tier's unit-level cousin) ----

use pardict::service::wire::{tag, WireRequest, WireResponse};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Total-function law: decoding arbitrary bytes never panics, and any
    /// value that does decode re-encodes to a semantically equal value
    /// (decode ∘ encode is the identity on decode's image).
    #[test]
    fn wire_decode_is_total_and_round_trips(
        bytes in prop::collection::vec(any::<u8>(), 0..200),
    ) {
        if let Ok(req) = WireRequest::decode(&bytes) {
            prop_assert_eq!(WireRequest::decode(&req.encode()).unwrap(), req);
        }
        if let Ok(resp) = WireResponse::decode(&bytes) {
            prop_assert_eq!(WireResponse::decode(&resp.encode()).unwrap(), resp);
        }
    }

    /// Hostile length claims cannot force over-allocation: any decoded
    /// collection fits in the payload bytes that carried it, no matter
    /// what element count the frame asserts.
    #[test]
    fn wire_decode_never_overallocates(
        claimed in any::<u32>(),
        body in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        // PUBLISH claiming `claimed` patterns followed by `body` bytes.
        let mut p = vec![tag::PUBLISH];
        p.extend_from_slice(&1u32.to_be_bytes());
        p.push(b'd');
        p.extend_from_slice(&claimed.to_be_bytes());
        p.extend_from_slice(&body);
        if let Ok(WireRequest::Publish { patterns, .. }) = WireRequest::decode(&p) {
            // Each pattern costs at least its 4-byte length prefix.
            prop_assert!(patterns.len() <= body.len() / 4);
        }
        // HITS response claiming `claimed` 16-byte hits.
        let mut p = vec![tag::OK, 2 /* ok::HITS */];
        p.extend_from_slice(&1u64.to_be_bytes());
        p.extend_from_slice(&claimed.to_be_bytes());
        p.extend_from_slice(&body);
        if let Ok(WireResponse::Hits { hits, .. }) = WireResponse::decode(&p) {
            prop_assert!(hits.len() <= body.len() / 16);
        }
    }
}

// ---- MetricsSnapshot::merge is a commutative monoid ----

use pardict::pram::SplitMix64;
use pardict::service::{HistogramSnapshot, MetricsSnapshot, OpSnapshot};

/// Derive a snapshot that satisfies every accounting identity from one
/// seed: counters are built bottom-up (per-op outcomes first, completed
/// as their sum, submitted as completed plus an optional backlog), so
/// `check_accounting` holds by construction and the merge properties
/// can be tested against meaningful books, not arbitrary integers.
fn derive_snapshot(seed: u64, quiescent: bool) -> MetricsSnapshot {
    let mut rng = SplitMix64::new(seed);
    let mut next = |bound: u64| rng.next_below(bound);
    let per_op: Vec<OpSnapshot> = (0..next(4))
        .map(|_| {
            let mut buckets: Vec<(u8, u64)> = Vec::new();
            let mut idx = 0u8;
            for _ in 0..next(3) {
                idx += 1 + next(8) as u8;
                buckets.push((idx, 1 + next(50)));
            }
            let outcomes: u64 = buckets.iter().map(|&(_, c)| c).sum();
            let errors = if outcomes == 0 { 0 } else { next(outcomes + 1) };
            let hist = HistogramSnapshot {
                buckets,
                count: outcomes,
                sum: next(10_000),
                max: next(10_000),
            };
            OpSnapshot {
                count: outcomes - errors,
                errors,
                latency_us: hist.clone(),
                work: hist,
            }
        })
        .collect();
    let completed: u64 = per_op.iter().map(|o| o.count + o.errors).sum();
    let (hits, misses) = (next(100), next(100));
    let batches = next(50);
    MetricsSnapshot {
        submitted: completed + if quiescent { 0 } else { next(100) },
        completed,
        rejected_overloaded: next(100),
        deadline_expired: if completed == 0 {
            0
        } else {
            next(completed + 1)
        },
        publishes: hits + misses,
        cache_hits: hits,
        cache_misses: misses,
        batches,
        batched_requests: batches + next(100),
        seq_fallback: next(100),
        stream_lane: next(100),
        grep_lane: next(100),
        retires: next(100),
        store_replayed: next(100),
        store_torn_dropped: next(100),
        store_snapshot_age: next(100),
        per_op,
    }
}

fn merged(a: &MetricsSnapshot, b: &MetricsSnapshot) -> MetricsSnapshot {
    let mut out = a.clone();
    out.merge(b);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `merge` is commutative: router aggregation must not depend on
    /// the order backends answer in.
    #[test]
    fn snapshot_merge_is_commutative(sa in any::<u64>(), sb in any::<u64>()) {
        let a = derive_snapshot(sa, false);
        let b = derive_snapshot(sb, false);
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
    }

    /// `merge` is associative: folding shard answers pairwise in any
    /// grouping gives the same cluster-wide books.
    #[test]
    fn snapshot_merge_is_associative(
        sa in any::<u64>(),
        sb in any::<u64>(),
        sc in any::<u64>(),
    ) {
        let a = derive_snapshot(sa, false);
        let b = derive_snapshot(sb, false);
        let c = derive_snapshot(sc, false);
        prop_assert_eq!(merged(&merged(&a, &b), &c), merged(&a, &merged(&b, &c)));
    }

    /// The default snapshot is the identity element on both sides
    /// (including the ragged `per_op` resize path).
    #[test]
    fn snapshot_merge_has_an_identity_element(s in any::<u64>()) {
        let a = derive_snapshot(s, false);
        prop_assert_eq!(merged(&a, &MetricsSnapshot::default()), a.clone());
        prop_assert_eq!(merged(&MetricsSnapshot::default(), &a), a);
    }

    /// Accounting is preserved: snapshots that each satisfy the
    /// identities still satisfy them merged, in both quiescent and
    /// in-flight forms — the reason a cluster-wide `stats` answer can
    /// be audited exactly like a single node's.
    #[test]
    fn snapshot_merge_preserves_accounting(
        sa in any::<u64>(),
        sb in any::<u64>(),
        quiescent in any::<bool>(),
    ) {
        let a = derive_snapshot(sa, quiescent);
        let b = derive_snapshot(sb, quiescent);
        prop_assert!(a.check_accounting(quiescent).is_ok());
        prop_assert!(b.check_accounting(quiescent).is_ok());
        let m = merged(&a, &b);
        prop_assert!(
            m.check_accounting(quiescent).is_ok(),
            "merged books violate accounting: {:?}",
            m.check_accounting(quiescent)
        );
    }

    /// And a live engine's shipped snapshot passes the same identities
    /// the live counters do — the snapshot is the books, not a summary.
    #[test]
    fn live_snapshot_passes_snapshot_accounting(
        patterns in dictionary(),
        text in small_alpha_text(120),
    ) {
        let engine = inline_engine(0);
        engine.registry().publish("d", patterns).unwrap();
        let resp = engine.call(Request::new(OpRequest::Match {
            dict: "d".into(),
            text: text.to_vec(),
        }));
        prop_assert!(resp.result.is_ok());
        let snap = engine.metrics().snapshot();
        prop_assert!(snap.check_accounting(true).is_ok(), "{:?}", snap.check_accounting(true));
        engine.shutdown();
    }
}
