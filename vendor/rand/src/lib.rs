//! Offline placeholder for `rand`.
//!
//! The crates.io registry is unreachable in this build environment, so the
//! workspace vendors stand-ins for its registry dependencies (see
//! `vendor/README.md`). Nothing in the workspace currently imports `rand`
//! (all randomness flows through `pardict_pram::SplitMix64`), so this crate
//! only has to exist and resolve.
