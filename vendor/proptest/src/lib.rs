//! Offline drop-in for the subset of `proptest` this workspace uses.
//!
//! The crates.io registry is unreachable in this build environment, so the
//! workspace vendors a miniature property-testing framework with proptest's
//! names (see `vendor/README.md`). It generates deterministic pseudo-random
//! inputs from composable [`Strategy`] values and runs each property body
//! for `ProptestConfig::cases` cases. Differences from real proptest:
//!
//! * no shrinking — a failing case panics with the case number and the
//!   deterministic seed, which is enough to replay it;
//! * value generation is a plain function of an internal RNG rather than a
//!   value tree.
//!
//! Supported surface: the `proptest!` macro (with optional
//! `#![proptest_config(..)]`), `prop_assert!`/`prop_assert_eq!`/
//! `prop_assert_ne!`/`prop_assume!`, `prop_oneof!`, `Just`, `any::<T>()`,
//! integer range strategies, tuple strategies, `.prop_map`,
//! `prop::collection::vec`, and `prop::sample::select`.

/// Composable value generators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of test values.
    ///
    /// The associated `Value` mirrors real proptest so signatures like
    /// `impl Strategy<Value = Vec<u8>>` work unchanged.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { base: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            (**self).new_value(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn new_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.base.new_value(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128) - (self.start as i128);
                    (self.start as i128 + (rng.next_u64() as i128).rem_euclid(span)) as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    (lo + (rng.next_u64() as i128).rem_euclid(hi - lo + 1)) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($n:ident $i:tt),+))*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.new_value(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
    }

    /// Object-safe strategy view used by [`Union`] (`prop_oneof!`).
    pub trait DynStrategy<V> {
        /// Generate one value.
        fn dyn_new_value(&self, rng: &mut TestRng) -> V;
    }

    impl<V, S: Strategy<Value = V>> DynStrategy<V> for S {
        fn dyn_new_value(&self, rng: &mut TestRng) -> V {
            self.new_value(rng)
        }
    }

    /// Box a strategy for use in a [`Union`].
    pub fn boxed<V, S: Strategy<Value = V> + 'static>(s: S) -> Box<dyn DynStrategy<V>> {
        Box::new(s)
    }

    /// Uniform choice between alternative strategies (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<Box<dyn DynStrategy<V>>>,
    }

    impl<V> Union<V> {
        /// Build from boxed arms.
        pub fn new(arms: Vec<Box<dyn DynStrategy<V>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Self { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn new_value(&self, rng: &mut TestRng) -> V {
            let k = (rng.next_u64() % self.arms.len() as u64) as usize;
            self.arms[k].dyn_new_value(rng)
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generate one arbitrary value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// Full-domain strategy for `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Admissible element counts for [`vec`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform choice from a fixed list.
    pub struct Select<T: Clone>(Vec<T>);

    /// `prop::sample::select(options)`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            self.0[(rng.next_u64() % self.0.len() as u64) as usize].clone()
        }
    }
}

/// Test execution: config and deterministic RNG.
pub mod test_runner {
    /// Number of cases to run per property.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Cases per property.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` cases per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Deterministic splitmix64 RNG driving value generation.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG seeded from a case-specific seed.
        #[must_use]
        pub fn from_seed(seed: u64) -> Self {
            Self { state: seed }
        }

        /// Next pseudo-random 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `prop::` module alias used by `prop::collection::vec` etc.
    pub mod prop {
        pub use crate::{collection, sample};
    }
}

/// Define property tests. See the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])+
            fn $name:ident($($param:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                for case in 0..config.cases {
                    // Per-case seed: deterministic, distinct across cases.
                    let seed = 0xC0FF_EE00_u64 ^ ((case as u64) << 16);
                    let mut rng = $crate::test_runner::TestRng::from_seed(seed);
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| {
                            let mut run = || -> ::std::result::Result<(), ()> {
                                $(
                                    let $param = $crate::strategy::Strategy::new_value(
                                        &($strategy),
                                        &mut rng,
                                    );
                                )+
                                $body
                                #[allow(unreachable_code)]
                                ::std::result::Result::Ok(())
                            };
                            let _ = run();
                        }),
                    );
                    if let ::std::result::Result::Err(e) = outcome {
                        eprintln!(
                            "proptest case {case} (seed {seed:#x}) of {} failed",
                            stringify!($name),
                        );
                        ::std::panic::resume_unwind(e);
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])+
            fn $name:ident($($param:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $(
                $(#[$meta])+
                fn $name($($param in $strategy),+) $body
            )*
        }
    };
}

/// Assert a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Assert inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        Add(u32),
        Clear,
    }

    fn op() -> impl Strategy<Value = Op> {
        prop_oneof![(0u32..100).prop_map(Op::Add), Just(Op::Clear)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_sizes_respect_range(xs in prop::collection::vec(0u8..10, 2..5)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 5);
            prop_assert!(xs.iter().all(|&x| x < 10));
        }

        #[test]
        fn tuples_and_selects(
            (a, b) in (1u64..50, 0i64..5),
            c in prop::sample::select(vec![b'x', b'y']),
        ) {
            prop_assert!((1..50).contains(&a));
            prop_assert!((0..5).contains(&b));
            prop_assert!(c == b'x' || c == b'y');
        }

        #[test]
        fn assume_skips(n in 0u32..10) {
            prop_assume!(n != 3);
            prop_assert_ne!(n, 3);
        }

        #[test]
        fn oneof_hits_all_arms(ops in prop::collection::vec(op(), 1..40)) {
            for o in ops {
                match o {
                    Op::Add(x) => prop_assert!(x < 100),
                    Op::Clear => {}
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let s = prop::collection::vec(any::<u8>(), 0..32);
        let mut r1 = crate::test_runner::TestRng::from_seed(7);
        let mut r2 = crate::test_runner::TestRng::from_seed(7);
        assert_eq!(s.new_value(&mut r1), s.new_value(&mut r2));
    }
}
