//! Offline drop-in for the subset of `criterion` this workspace uses.
//!
//! The crates.io registry is unreachable in this build environment, so the
//! workspace vendors a minimal wall-clock bench runner with criterion's
//! names (see `vendor/README.md`). Each benchmark runs a short warm-up
//! followed by `sample_size` timed samples and prints median/min to
//! stdout — no statistics engine, HTML reports, or CLI filtering.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level bench context handed to `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== {name}");
        BenchmarkGroup {
            _c: self,
            name: name.to_string(),
            sample_size: 10,
        }
    }
}

/// A named benchmark id, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
        };
        // One untimed warm-up, then the timed samples.
        f(&mut b, input);
        b.samples.clear();
        for _ in 0..self.sample_size {
            f(&mut b, input);
        }
        report(&self.name, &id.label, &mut b.samples);
        self
    }

    /// Run one benchmark with no external input.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
        };
        f(&mut b);
        b.samples.clear();
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        report(&self.name, &id.label, &mut b.samples);
        self
    }

    /// End the group (printing is incremental; nothing left to do).
    pub fn finish(self) {}
}

fn report(group: &str, label: &str, samples: &mut [Duration]) {
    samples.sort_unstable();
    let median = samples.get(samples.len() / 2).copied().unwrap_or_default();
    let min = samples.first().copied().unwrap_or_default();
    println!(
        "{label:<40} median {:>12.3?}  min {:>12.3?}  ({} samples)",
        median,
        min,
        samples.len()
    );
    append_json(group, label, median, min, samples.len());
}

/// When `CRITERION_JSON` names a file, append one JSON line per finished
/// benchmark (`{"bench": "group/label", "median_ns": …, "min_ns": …,
/// "samples": …}`) so scripts can collect machine-readable results without
/// a full stats engine. Silently best-effort: bench output must never fail
/// a run over an unwritable sink.
fn append_json(group: &str, label: &str, median: Duration, min: Duration, samples: usize) {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let escape = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    let line = format!(
        "{{\"bench\":\"{}/{}\",\"median_ns\":{},\"min_ns\":{},\"samples\":{}}}\n",
        escape(group),
        escape(label),
        median.as_nanos(),
        min.as_nanos(),
        samples
    );
    let _ = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| {
            use std::io::Write as _;
            f.write_all(line.as_bytes())
        });
}

/// Timing harness passed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time one execution of `f` (criterion would loop adaptively; one
    /// timed call per sample keeps totals bounded without a stats engine).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let t0 = Instant::now();
        black_box(f());
        self.samples.push(t0.elapsed());
    }
}

/// Collect bench functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
