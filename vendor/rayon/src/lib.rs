//! Offline drop-in for the subset of `rayon` this workspace uses.
//!
//! The crates.io registry is unreachable in this build environment, so the
//! workspace vendors a small data-parallelism layer with rayon's names
//! (see `vendor/README.md`). Unlike a pure sequential shim, parallel
//! iterators here genuinely fan out over `std::thread::scope`: the chain is
//! kept lazy as a random-access pipeline and final operations split the
//! index space into one contiguous chunk per hardware thread. Results are
//! bit-identical to sequential execution (chunks are concatenated in
//! order), matching the PRAM simulator's contract that `Mode::Par` only
//! changes wall-clock, never output or ledger costs.
//!
//! Supported surface (all that the workspace touches):
//!
//! * `(range).into_par_iter()` / `vec.into_par_iter()` (items `Copy`)
//! * `slice.par_iter()` / `slice.par_iter_mut()`
//! * adapters: `.map(f)`, `.enumerate()`, `.flat_map_iter(f)`
//! * drivers: `.collect::<Vec<_>>()`, `.for_each(f)`

use std::num::NonZeroUsize;

/// Everything a `use rayon::prelude::*;` caller expects in scope.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelIterator,
    };
}

/// Inputs shorter than this are evaluated inline: spawning threads costs
/// more than the loop itself.
const SPAWN_THRESHOLD: usize = 4096;

fn num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(16)
}

/// A lazy random-access pipeline: the driver asks for arbitrary contiguous
/// index sub-ranges, which makes chunked multi-threaded evaluation trivial
/// while preserving output order.
pub trait ParallelIterator: Sized + Sync {
    /// Element type produced by the pipeline.
    type Item: Send;

    /// Total number of elements.
    fn pi_len(&self) -> usize;

    /// Evaluate elements `lo..hi` in order into `out`.
    fn eval_chunk(&self, lo: usize, hi: usize, out: &mut Vec<Self::Item>);

    /// Transform each element with `f`.
    fn map<U: Send, F: Fn(Self::Item) -> U + Sync>(self, f: F) -> Map<Self, F> {
        Map { base: self, f }
    }

    /// Pair each element with its index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// Map each element to a serial iterator and flatten, preserving order.
    fn flat_map_iter<U, F>(self, f: F) -> FlatMapIter<Self, F>
    where
        U: IntoIterator,
        U::Item: Send,
        F: Fn(Self::Item) -> U + Sync,
    {
        FlatMapIter { base: self, f }
    }

    /// Evaluate the pipeline across threads, concatenating chunks in order.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_iter(self)
    }

    /// Consume every element with `f`, in parallel chunks.
    fn for_each<F: Fn(Self::Item) + Sync>(self, f: F) {
        let n = self.pi_len();
        run_chunked(n, |lo, hi| {
            let mut buf = Vec::with_capacity(hi - lo);
            self.eval_chunk(lo, hi, &mut buf);
            buf.into_iter().for_each(&f);
        });
    }
}

/// Split `0..n` into one chunk per thread and run `body` on each; falls back
/// to a single inline call for small `n`.
fn run_chunked(n: usize, body: impl Fn(usize, usize) + Sync) {
    let threads = num_threads();
    if n < SPAWN_THRESHOLD || threads == 1 {
        body(0, n);
        return;
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|s| {
        for t in 0..threads {
            let lo = t * chunk;
            let hi = ((t + 1) * chunk).min(n);
            if lo >= hi {
                break;
            }
            let body = &body;
            s.spawn(move || body(lo, hi));
        }
    });
}

/// Ordered parallel collection (rayon's `FromParallelIterator`).
pub trait FromParallelIterator<T: Send>: Sized {
    /// Build `Self` from a parallel pipeline.
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self {
        let n = iter.pi_len();
        let threads = num_threads();
        if n < SPAWN_THRESHOLD || threads == 1 {
            let mut out = Vec::with_capacity(n);
            iter.eval_chunk(0, n, &mut out);
            return out;
        }
        let chunk = n.div_ceil(threads);
        let mut parts: Vec<Vec<T>> = Vec::new();
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for t in 0..threads {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(n);
                if lo >= hi {
                    break;
                }
                let iter = &iter;
                handles.push(s.spawn(move || {
                    let mut buf = Vec::with_capacity(hi - lo);
                    iter.eval_chunk(lo, hi, &mut buf);
                    buf
                }));
            }
            parts = handles.into_iter().map(|h| h.join().unwrap()).collect();
        });
        let mut out = Vec::with_capacity(n);
        for p in parts {
            out.extend(p);
        }
        out
    }
}

// --- sources ----------------------------------------------------------------

/// Pipeline over a `usize` range.
pub struct RangeSource {
    start: usize,
    len: usize,
}

impl ParallelIterator for RangeSource {
    type Item = usize;
    fn pi_len(&self) -> usize {
        self.len
    }
    fn eval_chunk(&self, lo: usize, hi: usize, out: &mut Vec<usize>) {
        out.extend(self.start + lo..self.start + hi);
    }
}

/// Pipeline over shared slice elements.
pub struct SliceSource<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceSource<'a, T> {
    type Item = &'a T;
    fn pi_len(&self) -> usize {
        self.slice.len()
    }
    fn eval_chunk(&self, lo: usize, hi: usize, out: &mut Vec<&'a T>) {
        out.extend(self.slice[lo..hi].iter());
    }
}

/// Pipeline over owned `Copy` elements of a `Vec`.
pub struct VecSource<T> {
    items: Vec<T>,
}

impl<T: Copy + Send + Sync> ParallelIterator for VecSource<T> {
    type Item = T;
    fn pi_len(&self) -> usize {
        self.items.len()
    }
    fn eval_chunk(&self, lo: usize, hi: usize, out: &mut Vec<T>) {
        out.extend_from_slice(&self.items[lo..hi]);
    }
}

// --- adapters ---------------------------------------------------------------

/// See [`ParallelIterator::map`].
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, U, F> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    U: Send,
    F: Fn(B::Item) -> U + Sync,
{
    type Item = U;
    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }
    fn eval_chunk(&self, lo: usize, hi: usize, out: &mut Vec<U>) {
        let mut buf = Vec::with_capacity(hi - lo);
        self.base.eval_chunk(lo, hi, &mut buf);
        out.extend(buf.into_iter().map(&self.f));
    }
}

/// See [`ParallelIterator::enumerate`].
pub struct Enumerate<B> {
    base: B,
}

impl<B: ParallelIterator> ParallelIterator for Enumerate<B> {
    type Item = (usize, B::Item);
    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }
    fn eval_chunk(&self, lo: usize, hi: usize, out: &mut Vec<(usize, B::Item)>) {
        let mut buf = Vec::with_capacity(hi - lo);
        self.base.eval_chunk(lo, hi, &mut buf);
        out.extend(buf.into_iter().enumerate().map(|(k, x)| (lo + k, x)));
    }
}

/// See [`ParallelIterator::flat_map_iter`].
pub struct FlatMapIter<B, F> {
    base: B,
    f: F,
}

impl<B, U, F> ParallelIterator for FlatMapIter<B, F>
where
    B: ParallelIterator,
    U: IntoIterator,
    U::Item: Send,
    F: Fn(B::Item) -> U + Sync,
{
    type Item = U::Item;
    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }
    fn eval_chunk(&self, lo: usize, hi: usize, out: &mut Vec<U::Item>) {
        let mut buf = Vec::with_capacity(hi - lo);
        self.base.eval_chunk(lo, hi, &mut buf);
        for x in buf {
            out.extend((self.f)(x));
        }
    }
}

// --- conversion traits ------------------------------------------------------

/// `into_par_iter()` — owned parallel pipelines.
pub trait IntoParallelIterator {
    /// Pipeline type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Element type.
    type Item: Send;
    /// Convert into a parallel pipeline.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Iter = RangeSource;
    type Item = usize;
    fn into_par_iter(self) -> RangeSource {
        RangeSource {
            start: self.start,
            len: self.end.saturating_sub(self.start),
        }
    }
}

impl<T: Copy + Send + Sync> IntoParallelIterator for Vec<T> {
    type Iter = VecSource<T>;
    type Item = T;
    fn into_par_iter(self) -> VecSource<T> {
        VecSource { items: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Iter = SliceSource<'a, T>;
    type Item = &'a T;
    fn into_par_iter(self) -> SliceSource<'a, T> {
        SliceSource { slice: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Iter = SliceSource<'a, T>;
    type Item = &'a T;
    fn into_par_iter(self) -> SliceSource<'a, T> {
        SliceSource { slice: self }
    }
}

/// `par_iter()` — by-shared-reference pipelines.
pub trait IntoParallelRefIterator<'data> {
    /// Pipeline type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Element type (a shared reference).
    type Item: Send + 'data;
    /// Borrowing parallel pipeline.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, I: 'data + ?Sized> IntoParallelRefIterator<'data> for I
where
    &'data I: IntoParallelIterator,
{
    type Iter = <&'data I as IntoParallelIterator>::Iter;
    type Item = <&'data I as IntoParallelIterator>::Item;
    fn par_iter(&'data self) -> Self::Iter {
        self.into_par_iter()
    }
}

/// `par_iter_mut()` — exclusive-reference pipelines (driver-only: supports
/// `.enumerate().for_each(..)`, the one pattern the workspace uses).
pub trait IntoParallelRefMutIterator<'data> {
    /// Pipeline type.
    type Iter;
    /// Mutably borrowing parallel pipeline.
    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for [T] {
    type Iter = SliceMut<'data, T>;
    fn par_iter_mut(&'data mut self) -> SliceMut<'data, T> {
        SliceMut { slice: self }
    }
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
    type Iter = SliceMut<'data, T>;
    fn par_iter_mut(&'data mut self) -> SliceMut<'data, T> {
        SliceMut {
            slice: self.as_mut_slice(),
        }
    }
}

/// Mutable-slice pipeline; splits with `split_at_mut`, so no unsafe.
pub struct SliceMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> SliceMut<'a, T> {
    /// Pair each element with its index.
    pub fn enumerate(self) -> EnumerateMut<'a, T> {
        EnumerateMut {
            slice: self.slice,
            offset: 0,
        }
    }

    /// Apply `f` to every element in parallel chunks.
    pub fn for_each<F: Fn(&mut T) + Sync>(self, f: F) {
        self.enumerate().for_each(|(_, x)| f(x));
    }
}

/// Enumerated mutable-slice pipeline.
pub struct EnumerateMut<'a, T> {
    slice: &'a mut [T],
    offset: usize,
}

impl<'a, T: Send> EnumerateMut<'a, T> {
    /// Apply `f` to every `(index, &mut element)` in parallel chunks.
    pub fn for_each<F: Fn((usize, &mut T)) + Sync>(self, f: F) {
        let n = self.slice.len();
        let threads = num_threads();
        if n < SPAWN_THRESHOLD || threads == 1 {
            for (i, x) in self.slice.iter_mut().enumerate() {
                f((self.offset + i, x));
            }
            return;
        }
        let chunk = n.div_ceil(threads);
        std::thread::scope(|s| {
            let mut rest = self.slice;
            let mut base = self.offset;
            while !rest.is_empty() {
                let take = chunk.min(rest.len());
                let (head, tail) = rest.split_at_mut(take);
                let f = &f;
                let lo = base;
                s.spawn(move || {
                    for (i, x) in head.iter_mut().enumerate() {
                        f((lo + i, x));
                    }
                });
                rest = tail;
                base += take;
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_map_collect_matches_seq() {
        let n = 100_000;
        let par: Vec<usize> = (0..n).into_par_iter().map(|i| i * 3 + 1).collect();
        let seq: Vec<usize> = (0..n).map(|i| i * 3 + 1).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn slice_enumerate_map_collect() {
        let xs: Vec<u64> = (0..50_000).collect();
        let par: Vec<u64> = xs
            .par_iter()
            .enumerate()
            .map(|(i, &x)| x + i as u64)
            .collect();
        let seq: Vec<u64> = xs.iter().enumerate().map(|(i, &x)| x + i as u64).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn par_iter_mut_enumerate_for_each() {
        let mut a: Vec<u64> = (0..30_000).collect();
        let mut b = a.clone();
        a.par_iter_mut()
            .enumerate()
            .for_each(|(i, x)| *x = *x * 2 + i as u64);
        b.iter_mut()
            .enumerate()
            .for_each(|(i, x)| *x = *x * 2 + i as u64);
        assert_eq!(a, b);
    }

    #[test]
    fn flat_map_iter_preserves_order() {
        let chunks: Vec<(usize, usize)> = (0..9000).map(|i| (i, 3)).collect();
        let par: Vec<usize> = chunks
            .clone()
            .into_par_iter()
            .flat_map_iter(|(i, k)| (0..k).map(move |j| i * 10 + j))
            .collect();
        let seq: Vec<usize> = chunks
            .into_iter()
            .flat_map(|(i, k)| (0..k).map(move |j| i * 10 + j))
            .collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn small_inputs_stay_inline() {
        let par: Vec<usize> = (0..10).into_par_iter().map(|i| i).collect();
        assert_eq!(par, (0..10).collect::<Vec<_>>());
    }
}
