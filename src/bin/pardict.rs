//! `pardict` — command-line front end for the library.
//!
//! ```text
//! pardict match   --dict words.txt text.bin      longest pattern per position
//! pardict grep    --dict words.txt text.bin      all occurrences, one per line
//! pardict compress   in.bin -o out.plz           parallel LZ1 → token stream
//! pardict decompress out.plz -o back.bin         parallel LZ1 inverse
//! pardict parse   --dict words.txt text.bin      §5 optimal static parse stats
//! pardict delta   base.bin new.bin -o out.pdz    differential compression
//! pardict patch   base.bin out.pdz -o new.bin    apply a delta
//! pardict stats   in.bin                         ledger work/depth summary
//! pardict serve   --addr 127.0.0.1:7878          concurrent serving engine
//! pardict serve   --selftest                     in-process serving selftest
//! ```
//!
//! Dictionary files contain one pattern per line (empty lines ignored).
//! Inputs must be NUL-free (byte 0 is the library's sentinel).

use pardict::prelude::*;
use std::io::Write;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("pardict: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        return Err(usage());
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "match" => cmd_match(rest, false),
        "grep" => cmd_match(rest, true),
        "compress" => cmd_compress(rest),
        "decompress" => cmd_decompress(rest),
        "parse" => cmd_parse(rest),
        "delta" => cmd_delta(rest),
        "patch" => cmd_patch(rest),
        "stats" => cmd_stats(rest),
        "serve" => cmd_serve(rest),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{}", usage())),
    }
}

fn usage() -> String {
    "usage: pardict <match|grep|compress|decompress|parse|delta|patch|stats|serve> \
     [--dict FILE] [-o FILE] [INPUT...]\n\
     serve: pardict serve [--addr HOST:PORT] [--dict FILE [--name NAME]] [--workers N]\n\
     \x20       pardict serve --selftest [--requests N] [--workers N]"
        .to_string()
}

/// Parsed flags: (positional args, --dict path, -o path).
type ParsedArgs<'a> = (Vec<&'a str>, Option<String>, Option<String>);

/// Split flags: returns (positional, dict path, output path).
fn split_args(args: &[String]) -> Result<ParsedArgs<'_>, String> {
    let mut pos = Vec::new();
    let mut dict = None;
    let mut out = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--dict" => {
                dict = Some(it.next().ok_or("--dict needs a path")?.clone());
            }
            "-o" | "--output" => {
                out = Some(it.next().ok_or("-o needs a path")?.clone());
            }
            other => pos.push(other),
        }
    }
    Ok((pos, dict, out))
}

fn read_input(pos: &[&str]) -> Result<Vec<u8>, String> {
    let path = pos.first().ok_or("missing input file")?;
    let data = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
    Ok(data)
}

fn read_dict(path: Option<String>) -> Result<Dictionary, String> {
    let path = path.ok_or("this command needs --dict FILE")?;
    let data = std::fs::read(&path).map_err(|e| format!("reading {path}: {e}"))?;
    let patterns: Vec<Vec<u8>> = data
        .split(|&c| c == b'\n')
        .filter(|l| !l.is_empty())
        .map(|l| l.strip_suffix(b"\r").unwrap_or(l).to_vec())
        .collect();
    if patterns.is_empty() {
        return Err(format!("{path}: no patterns"));
    }
    if patterns.iter().any(|p| p.contains(&0)) {
        return Err("patterns must be NUL-free".into());
    }
    Ok(Dictionary::new(patterns))
}

fn write_output(out: Option<String>, data: &[u8]) -> Result<(), String> {
    match out {
        Some(path) => std::fs::write(&path, data).map_err(|e| format!("writing {path}: {e}")),
        None => std::io::stdout()
            .write_all(data)
            .map_err(|e| format!("stdout: {e}")),
    }
}

fn check_text(text: &[u8]) -> Result<(), String> {
    if text.contains(&0) {
        return Err("input contains NUL bytes (reserved for the sentinel)".into());
    }
    Ok(())
}

fn cmd_match(args: &[String], all: bool) -> Result<(), String> {
    let (pos, dict, out) = split_args(args)?;
    let dict = read_dict(dict)?;
    let text = read_input(&pos)?;
    check_text(&text)?;
    let pram = Pram::par();
    let mut buf = Vec::new();
    if all {
        let matcher = DictMatcher::build(&pram, dict.clone(), 0xC11);
        for (i, m) in matcher.find_all(&pram, &text) {
            writeln!(
                buf,
                "{i}\t{}\t{}",
                m.id,
                String::from_utf8_lossy(&dict.patterns()[m.id as usize])
            )
            .map_err(|e| format!("formatting output: {e}"))?;
        }
    } else {
        let matches = dictionary_match(&pram, &dict, &text, 0xC11);
        for (i, m) in matches.iter_hits() {
            writeln!(
                buf,
                "{i}\t{}\t{}",
                m.id,
                String::from_utf8_lossy(&dict.patterns()[m.id as usize])
            )
            .map_err(|e| format!("formatting output: {e}"))?;
        }
    }
    write_output(out, &buf)
}

fn cmd_compress(args: &[String]) -> Result<(), String> {
    let (pos, _, out) = split_args(args)?;
    let text = read_input(&pos)?;
    check_text(&text)?;
    let pram = Pram::par();
    let tokens = lz1_compress(&pram, &text, 0x10);
    let bytes = pardict::compress::encode_tokens(&tokens);
    eprintln!(
        "pardict: {} -> {} bytes ({:.1}%), {} phrases",
        text.len(),
        bytes.len(),
        100.0 * bytes.len() as f64 / text.len().max(1) as f64,
        tokens.len()
    );
    write_output(out, &bytes)
}

fn cmd_decompress(args: &[String]) -> Result<(), String> {
    let (pos, _, out) = split_args(args)?;
    let data = read_input(&pos)?;
    let tokens = pardict::compress::decode_tokens(&data).map_err(|e| e.to_string())?;
    let pram = Pram::par();
    let text = lz1_decompress(&pram, &tokens, 0x11);
    write_output(out, &text)
}

fn cmd_parse(args: &[String]) -> Result<(), String> {
    let (pos, dict, out) = split_args(args)?;
    let dict = read_dict(dict)?;
    let text = read_input(&pos)?;
    check_text(&text)?;
    let pram = Pram::par();
    let matcher = DictMatcher::build(&pram, dict.clone(), 0x12);
    let parse = optimal_parse(&pram, &matcher, &text)
        .ok_or("text is not parseable with this dictionary (add single-symbol words?)")?;
    let greedy = greedy_parse(&pram, &matcher, &text);
    let mut buf = Vec::new();
    writeln!(
        buf,
        "optimal: {} phrases{}",
        parse.num_phrases(),
        match greedy {
            Some(g) => format!(" (greedy would use {})", g.num_phrases()),
            None => " (greedy dead-ends)".to_string(),
        }
    )
    .map_err(|e| format!("formatting output: {e}"))?;
    for ph in &parse.phrases {
        let p = &dict.patterns()[ph.pattern as usize];
        writeln!(
            buf,
            "{}\t{}",
            ph.start,
            String::from_utf8_lossy(&p[..ph.len])
        )
        .map_err(|e| format!("formatting output: {e}"))?;
    }
    write_output(out, &buf)
}

fn cmd_delta(args: &[String]) -> Result<(), String> {
    let (pos, _, out) = split_args(args)?;
    if pos.len() != 2 {
        return Err("delta needs BASE and NEW files".into());
    }
    let base = std::fs::read(pos[0]).map_err(|e| format!("{}: {e}", pos[0]))?;
    let new = std::fs::read(pos[1]).map_err(|e| format!("{}: {e}", pos[1]))?;
    check_text(&base)?;
    check_text(&new)?;
    let pram = Pram::par();
    let tokens = delta_compress(&pram, &base, &new, 0x0D17A);
    let bytes = pardict::compress::encode_tokens(&tokens);
    eprintln!(
        "pardict: delta of {} B against {} B base -> {} B ({} tokens)",
        new.len(),
        base.len(),
        bytes.len(),
        tokens.len()
    );
    write_output(out, &bytes)
}

fn cmd_patch(args: &[String]) -> Result<(), String> {
    let (pos, _, out) = split_args(args)?;
    if pos.len() != 2 {
        return Err("patch needs BASE and DELTA files".into());
    }
    let base = std::fs::read(pos[0]).map_err(|e| format!("{}: {e}", pos[0]))?;
    let data = std::fs::read(pos[1]).map_err(|e| format!("{}: {e}", pos[1]))?;
    let tokens =
        pardict::compress::decode_tokens_from(&data, base.len()).map_err(|e| e.to_string())?;
    let pram = Pram::par();
    let new = delta_decompress(&pram, &base, &tokens);
    write_output(out, &new)
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    use pardict::service::{selftest, Engine, EngineConfig, Metrics, Registry, Server};
    use std::sync::Arc;

    let mut addr = "127.0.0.1:7878".to_string();
    let mut dict_path: Option<String> = None;
    let mut name = "default".to_string();
    let mut workers: Option<usize> = None;
    let mut requests: Option<usize> = None;
    let mut run_selftest = false;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => addr = it.next().ok_or("--addr needs HOST:PORT")?.clone(),
            "--dict" => dict_path = Some(it.next().ok_or("--dict needs a path")?.clone()),
            "--name" => name = it.next().ok_or("--name needs a name")?.clone(),
            "--workers" => {
                workers = Some(
                    it.next()
                        .ok_or("--workers needs a count")?
                        .parse()
                        .map_err(|e| format!("--workers: {e}"))?,
                );
            }
            "--requests" => {
                requests = Some(
                    it.next()
                        .ok_or("--requests needs a count")?
                        .parse()
                        .map_err(|e| format!("--requests: {e}"))?,
                );
            }
            "--selftest" => run_selftest = true,
            other => return Err(format!("serve: unknown flag {other:?}\n{}", usage())),
        }
    }

    if run_selftest {
        let mut opts = selftest::SelftestOptions::default();
        if let Some(r) = requests {
            opts.requests = r;
        }
        if let Some(w) = workers {
            opts.workers = w;
        }
        let report = selftest::run(&opts)?;
        println!("{report}");
        return Ok(());
    }

    let metrics = Arc::new(Metrics::default());
    let registry = Arc::new(Registry::new(Arc::clone(&metrics)));
    let mut cfg = EngineConfig::default();
    if let Some(w) = workers {
        cfg.workers = w.max(1);
    }
    let engine = Engine::new(cfg, Arc::clone(&registry), metrics);

    if let Some(path) = dict_path {
        let dict = read_dict(Some(path))?;
        let patterns = dict.patterns().to_vec();
        let out = registry
            .publish(&name, patterns)
            .map_err(|e| format!("publishing {name}: {e}"))?;
        eprintln!(
            "pardict: serving dictionary {name:?} v{} ({} patterns)",
            out.version,
            dict.num_patterns()
        );
    }

    let server = Server::start(engine, &*addr).map_err(|e| format!("binding {addr}: {e}"))?;
    eprintln!(
        "pardict: listening on {} ({} workers); stop with ^C",
        server.addr(),
        server.engine().config().workers
    );
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let (pos, _, _) = split_args(args)?;
    let text = read_input(&pos)?;
    check_text(&text)?;
    let n = text.len().max(1);
    let pram = Pram::par();
    let (tokens, c1) = pram.metered(|p| lz1_compress(p, &text, 0x13));
    let (_, c2) = pram.metered(|p| lz1_decompress(p, &tokens, 0x14));
    println!("input: {} bytes", text.len());
    println!(
        "LZ1 compress:   {:>12} work ({:>7.1}/char)  depth {:>6}  -> {} phrases",
        c1.work,
        c1.work as f64 / n as f64,
        c1.depth,
        tokens.len()
    );
    println!(
        "LZ1 decompress: {:>12} work ({:>7.1}/char)  depth {:>6}",
        c2.work,
        c2.work as f64 / n as f64,
        c2.depth
    );
    Ok(())
}
