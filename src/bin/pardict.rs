//! `pardict` — command-line front end for the library.
//!
//! ```text
//! pardict match   --dict words.txt text.bin      longest pattern per position
//! pardict grep    --dict words.txt text.bin      all occurrences, one per line
//! pardict grep    PAT... --in data.pdzs          search a compressed container
//! pardict compress   in.bin -o out.plz           parallel LZ1 → token stream
//! pardict compress --stream in.bin -o out.pdzs   chunked parallel → container
//! pardict decompress out.plz -o back.bin         inverse (auto-detects both)
//! pardict cat     --range A..B in.pdzs           random-access container slice
//! pardict parse   --dict words.txt text.bin      §5 optimal static parse stats
//! pardict delta   base.bin new.bin -o out.pdz    differential compression
//! pardict patch   base.bin out.pdz -o new.bin    apply a delta
//! pardict stats   in.bin                         ledger work/depth summary
//! pardict serve   --addr 127.0.0.1:7878          concurrent serving engine
//! pardict serve   --data-dir DIR                 …with crash-safe persistence
//! pardict serve   --data-dir DIR --recover-only  recover, report, and exit
//! pardict serve   --selftest                     in-process serving selftest
//! pardict cluster --backends A,B,C               sharded router front end
//! pardict cluster --selftest                     3-backend failover selftest
//! pardict cluster --smoke                        process-level smoke (SIGKILL)
//! pardict store   --smoke                        kill-and-recover smoke
//! pardict chaos   --seed N --rounds K            fault-injection verification
//! pardict trace   spans.jsonl                    render a trace export
//! ```
//!
//! Dictionary files contain one pattern per line (empty lines ignored).
//! Whole-buffer inputs must be NUL-free (byte 0 is the library's
//! sentinel); the streaming container stores NUL-bearing blocks verbatim,
//! so `compress --stream` accepts arbitrary bytes. Inputs larger than one
//! block stream automatically; `--whole` forces the single-buffer parse
//! (capped at `PARDICT_MAX_WHOLE` bytes, default 64 MiB).

use pardict::prelude::*;
use std::io::Write;
use std::process::ExitCode;

/// Fingerprint seed for whole-buffer CLI (de)compression. The LZ1 wire
/// format is seed-independent — the seed only randomizes internal
/// fingerprints — but compress and decompress historically hard-coded two
/// different magic numbers (0x10/0x11), which read as load-bearing when
/// they were not. One shared named constant removes the trap.
const CLI_LZ1_SEED: u64 = 0xC11_5EED;

/// Whole-buffer inputs above this many bytes are refused with a pointer
/// to `--stream` instead of being slurped into one parse. Overridable via
/// `PARDICT_MAX_WHOLE` for tests and unusual machines.
fn max_whole_bytes() -> u64 {
    std::env::var("PARDICT_MAX_WHOLE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1 << 26)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("pardict: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        return Err(usage());
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "match" => cmd_match(rest),
        "grep" => cmd_grep(rest),
        "compress" => cmd_compress(rest),
        "decompress" => cmd_decompress(rest),
        "cat" => cmd_cat(rest),
        "parse" => cmd_parse(rest),
        "delta" => cmd_delta(rest),
        "patch" => cmd_patch(rest),
        "stats" => cmd_stats(rest),
        "serve" => cmd_serve(rest),
        "cluster" => cmd_cluster(rest),
        "store" => cmd_store(rest),
        "chaos" => cmd_chaos(rest),
        "trace" => cmd_trace(rest),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{}", usage())),
    }
}

fn usage() -> String {
    "usage: pardict <match|grep|compress|decompress|cat|parse|delta|patch|stats|serve|cluster|store|chaos|trace> \
     [--dict FILE] [-o FILE] [INPUT...]\n\
     grep:     pardict grep (--dict FILE IN | PATTERN... --in IN) \
     [--count|--offsets] [--strict] [--wave N] [--barrier]\n\
     \x20         IN may be raw bytes or a .pdzs container (auto-detected)\n\
     compress: pardict compress [--stream|--whole] [--block-size N] IN [-o OUT]\n\
     cat:      pardict cat --range A..B CONTAINER [-o OUT]\n\
     serve: pardict serve [--addr HOST:PORT] [--dict FILE [--name NAME]] [--workers N]\n\
     \x20       pardict serve --data-dir DIR [...]   persist publishes, recover on boot\n\
     \x20       pardict serve --data-dir DIR --recover-only   print the recovery \
     report and exit (1 if data was dropped)\n\
     \x20       pardict serve --selftest [--requests N] [--workers N]\n\
     \x20       pardict serve --selftest --trace-out FILE [--trace-seed N] \
     [--trace-sample N]   deterministic traced run, JSONL export\n\
     cluster: pardict cluster --backends A,B,C [--addr HOST:PORT]   sharded router\n\
     \x20         pardict cluster --selftest [--requests N] [--seed S]\n\
     \x20         pardict cluster --smoke [--requests N] [--seed S]   spawns 3 \
     backends, SIGKILLs one mid-run\n\
     store: pardict store --smoke [--delta] [--dicts N] [--seed S]   spawns a \
     --data-dir backend, SIGKILLs it mid-publish (or mid-delta with --delta), \
     restarts, verifies every acknowledged dict\n\
     chaos: pardict chaos [--seed N] [--rounds K] [--no-wire] [--no-storage]   \
     deterministic fault-injection report (exit 1 on violations)\n\
     trace: pardict trace FILE.jsonl [--slowest N]   summarize a span export \
     (exit 1 on malformed input)"
        .to_string()
}

/// Parsed flags: (positional args, --dict path, -o path).
type ParsedArgs<'a> = (Vec<&'a str>, Option<String>, Option<String>);

/// Split flags: returns (positional, dict path, output path).
fn split_args(args: &[String]) -> Result<ParsedArgs<'_>, String> {
    let mut pos = Vec::new();
    let mut dict = None;
    let mut out = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--dict" => {
                dict = Some(it.next().ok_or("--dict needs a path")?.clone());
            }
            "-o" | "--output" => {
                out = Some(it.next().ok_or("-o needs a path")?.clone());
            }
            other => pos.push(other),
        }
    }
    Ok((pos, dict, out))
}

fn read_input(pos: &[&str]) -> Result<Vec<u8>, String> {
    let path = pos.first().ok_or("missing input file")?;
    let data = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
    Ok(data)
}

fn read_dict(path: Option<String>) -> Result<Dictionary, String> {
    let path = path.ok_or("this command needs --dict FILE")?;
    let data = std::fs::read(&path).map_err(|e| format!("reading {path}: {e}"))?;
    let patterns: Vec<Vec<u8>> = data
        .split(|&c| c == b'\n')
        .filter(|l| !l.is_empty())
        .map(|l| l.strip_suffix(b"\r").unwrap_or(l).to_vec())
        .collect();
    if patterns.is_empty() {
        return Err(format!("{path}: no patterns"));
    }
    if patterns.iter().any(|p| p.contains(&0)) {
        return Err("patterns must be NUL-free".into());
    }
    Ok(Dictionary::new(patterns))
}

fn write_output(out: Option<String>, data: &[u8]) -> Result<(), String> {
    match out {
        Some(path) => std::fs::write(&path, data).map_err(|e| format!("writing {path}: {e}")),
        None => std::io::stdout()
            .write_all(data)
            .map_err(|e| format!("stdout: {e}")),
    }
}

/// True when the file at `path` starts with the PDZS container magic —
/// the one auto-detect shared by `grep`, `decompress`, and `cat`.
fn sniff_container(path: &str) -> Result<bool, String> {
    use std::io::Read as _;
    let mut head = [0u8; 4];
    let mut f = std::fs::File::open(path).map_err(|e| format!("reading {path}: {e}"))?;
    let n = f
        .read(&mut head)
        .map_err(|e| format!("reading {path}: {e}"))?;
    Ok(pardict::stream::is_container(&head[..n]))
}

fn check_text(text: &[u8]) -> Result<(), String> {
    if text.contains(&0) {
        return Err("input contains NUL bytes (reserved for the sentinel)".into());
    }
    Ok(())
}

fn cmd_match(args: &[String]) -> Result<(), String> {
    let (pos, dict, out) = split_args(args)?;
    let dict = read_dict(dict)?;
    let text = read_input(&pos)?;
    check_text(&text)?;
    let pram = Pram::par();
    let mut buf = Vec::new();
    let matches = dictionary_match(&pram, &dict, &text, 0xC11);
    for (i, m) in matches.iter_hits() {
        writeln!(
            buf,
            "{i}\t{}\t{}",
            m.id,
            String::from_utf8_lossy(&dict.patterns()[m.id as usize])
        )
        .map_err(|e| format!("formatting output: {e}"))?;
    }
    write_output(out, &buf)
}

/// `pardict grep`: all occurrences, over raw bytes or a PDZS container
/// (auto-detected). Patterns come from `--dict FILE` (one per line, input
/// as a positional) or inline positionals with the input behind `--in`.
fn cmd_grep(args: &[String]) -> Result<(), String> {
    let mut pos: Vec<&str> = Vec::new();
    let mut dict_path: Option<String> = None;
    let mut input: Option<String> = None;
    let mut out: Option<String> = None;
    let mut count_only = false;
    let mut offsets_only = false;
    let mut strict = false;
    let mut wave: Option<usize> = None;
    let mut barrier = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--dict" => dict_path = Some(it.next().ok_or("--dict needs a path")?.clone()),
            "--in" => input = Some(it.next().ok_or("--in needs a path")?.clone()),
            "-o" | "--output" => out = Some(it.next().ok_or("-o needs a path")?.clone()),
            "--count" => count_only = true,
            "--offsets" => offsets_only = true,
            "--strict" => strict = true,
            "--wave" => {
                let n = it.next().ok_or("--wave needs a block count")?;
                wave = Some(
                    n.parse::<usize>()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or_else(|| format!("--wave {n:?}: need a positive block count"))?,
                );
            }
            "--barrier" => barrier = true,
            other => pos.push(other),
        }
    }
    if count_only && offsets_only {
        return Err("--count and --offsets are mutually exclusive".into());
    }
    let (dict, path) = if let Some(dp) = dict_path {
        if input.is_some() && !pos.is_empty() {
            return Err("with --dict and --in, leave no positional arguments".into());
        }
        let path = match input {
            Some(p) => p,
            None => pos.first().ok_or("missing input file")?.to_string(),
        };
        (read_dict(Some(dp))?, path)
    } else {
        let path = input.ok_or(
            "grep needs --dict FILE with an input path, or inline PATTERNS with --in FILE",
        )?;
        if pos.is_empty() {
            return Err("grep needs at least one pattern (inline or via --dict)".into());
        }
        if pos.iter().any(|p| p.is_empty()) {
            return Err("patterns must be non-empty".into());
        }
        let patterns: Vec<Vec<u8>> = pos.iter().map(|p| p.as_bytes().to_vec()).collect();
        if patterns.iter().any(|p| p.contains(&0)) {
            return Err("patterns must be NUL-free".into());
        }
        (Dictionary::new(patterns), path)
    };

    let pram = Pram::par();
    let matcher = DictMatcher::build(&pram, dict.clone(), 0xC11);
    let mut issues: Vec<String> = Vec::new();
    let hits: Vec<(u64, u32, u32)> = if sniff_container(&path)? {
        let file = std::fs::File::open(&path).map_err(|e| format!("reading {path}: {e}"))?;
        let mut rdr = StreamReader::open(std::io::BufReader::new(file))
            .map_err(|e| format!("{path}: {e}"))?;
        let mut cfg = GrepConfig::default();
        if strict {
            cfg = cfg.strict();
        }
        if let Some(w) = wave {
            cfg.wave = w;
        }
        if barrier {
            cfg = cfg.barrier();
        }
        let summary =
            grep_container(&pram, &matcher, &mut rdr, &cfg).map_err(|e| format!("{path}: {e}"))?;
        issues = summary.issues.iter().map(ToString::to_string).collect();
        summary
            .hits
            .into_iter()
            .map(|h| (h.pos, h.id, h.len))
            .collect()
    } else {
        let text = std::fs::read(&path).map_err(|e| format!("reading {path}: {e}"))?;
        check_text(&text)?;
        matcher
            .find_all(&pram, &text)
            .into_iter()
            .map(|(p, m)| (p as u64, m.id, m.len))
            .collect()
    };

    let mut buf = Vec::new();
    if count_only {
        writeln!(buf, "{}", hits.len()).map_err(|e| format!("formatting output: {e}"))?;
    } else if offsets_only {
        for (p, _, _) in &hits {
            writeln!(buf, "{p}").map_err(|e| format!("formatting output: {e}"))?;
        }
    } else {
        for (p, id, _) in &hits {
            writeln!(
                buf,
                "{p}\t{id}\t{}",
                String::from_utf8_lossy(&dict.patterns()[*id as usize])
            )
            .map_err(|e| format!("formatting output: {e}"))?;
        }
    }
    write_output(out, &buf)?;
    if !issues.is_empty() {
        return Err(format!(
            "{path}: {} corrupt block(s) skipped: {}",
            issues.len(),
            issues.join("; ")
        ));
    }
    Ok(())
}

fn cmd_compress(args: &[String]) -> Result<(), String> {
    let mut pos: Vec<&str> = Vec::new();
    let mut out: Option<String> = None;
    let mut force_stream = false;
    let mut force_whole = false;
    let mut block_size = pardict::stream::DEFAULT_BLOCK_SIZE;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-o" | "--output" => out = Some(it.next().ok_or("-o needs a path")?.clone()),
            "--stream" => force_stream = true,
            "--whole" => force_whole = true,
            "--block-size" => {
                block_size = it
                    .next()
                    .ok_or("--block-size needs a byte count")?
                    .parse()
                    .map_err(|e| format!("--block-size: {e}"))?;
            }
            other => pos.push(other),
        }
    }
    if force_stream && force_whole {
        return Err("--stream and --whole are mutually exclusive".into());
    }
    if block_size == 0 || block_size > pardict::stream::MAX_BLOCK_SIZE {
        return Err(format!(
            "--block-size must be in 1..={}",
            pardict::stream::MAX_BLOCK_SIZE
        ));
    }
    let path = *pos.first().ok_or("missing input file")?;
    let file_len = std::fs::metadata(path)
        .map_err(|e| format!("reading {path}: {e}"))?
        .len();

    // Inputs beyond one block (or beyond the whole-buffer cap) stream by
    // default: bounded memory, parallel blocks, and a random-access
    // container, at a small ratio cost.
    let use_stream = force_stream
        || (!force_whole && (file_len > block_size as u64 || file_len > max_whole_bytes()));
    let pram = Pram::par();

    if use_stream {
        let mut reader = std::io::BufReader::new(
            std::fs::File::open(path).map_err(|e| format!("reading {path}: {e}"))?,
        );
        let cfg = pardict::stream::StreamConfig::with_block_size(block_size);
        let summary = match out {
            Some(ref dest) => {
                let file =
                    std::fs::File::create(dest).map_err(|e| format!("creating {dest}: {e}"))?;
                let (_, summary) = pardict::stream::compress_stream(
                    &pram,
                    &mut reader,
                    std::io::BufWriter::new(file),
                    &cfg,
                )
                .map_err(|e| e.to_string())?;
                summary
            }
            None => {
                let (bytes, summary) =
                    pardict::stream::compress_stream(&pram, &mut reader, Vec::new(), &cfg)
                        .map_err(|e| e.to_string())?;
                write_output(None, &bytes)?;
                summary
            }
        };
        eprintln!(
            "pardict: streamed {} -> {} bytes ({:.1}%), {} blocks ({} stored), {} phrases",
            summary.raw_bytes,
            summary.container_bytes,
            100.0 * summary.container_bytes as f64 / summary.raw_bytes.max(1) as f64,
            summary.blocks,
            summary.stored_blocks,
            summary.phrases
        );
        return Ok(());
    }

    if file_len > max_whole_bytes() {
        return Err(format!(
            "{path} is {file_len} bytes — too large for a single whole-buffer parse \
             (cap {} bytes; set PARDICT_MAX_WHOLE to override). \
             Use `pardict compress --stream` instead.",
            max_whole_bytes()
        ));
    }
    let text = read_input(&pos)?;
    check_text(&text)?;
    let tokens = lz1_compress(&pram, &text, CLI_LZ1_SEED);
    let bytes = pardict::compress::encode_tokens(&tokens);
    eprintln!(
        "pardict: {} -> {} bytes ({:.1}%), {} phrases",
        text.len(),
        bytes.len(),
        100.0 * bytes.len() as f64 / text.len().max(1) as f64,
        tokens.len()
    );
    write_output(out, &bytes)
}

fn cmd_decompress(args: &[String]) -> Result<(), String> {
    let (pos, _, out) = split_args(args)?;
    let path = *pos.first().ok_or("missing input file")?;
    let pram = Pram::par();

    if sniff_container(path)? {
        let file = std::fs::File::open(path).map_err(|e| format!("reading {path}: {e}"))?;
        let mut rdr = StreamReader::open(std::io::BufReader::new(file))
            .map_err(|e| format!("{path}: {e}"))?;
        let (data, issues) = rdr.read_all(&pram).map_err(|e| format!("{path}: {e}"))?;
        write_output(out, &data)?;
        if !issues.is_empty() {
            let list: Vec<String> = issues.iter().map(ToString::to_string).collect();
            return Err(format!(
                "{path}: {} corrupt block(s) skipped: {}",
                issues.len(),
                list.join("; ")
            ));
        }
        return Ok(());
    }

    let data = read_input(&pos)?;
    let tokens = pardict::compress::decode_tokens(&data).map_err(|e| e.to_string())?;
    let text = lz1_decompress(&pram, &tokens, CLI_LZ1_SEED);
    write_output(out, &text)
}

fn cmd_cat(args: &[String]) -> Result<(), String> {
    let mut pos: Vec<&str> = Vec::new();
    let mut out: Option<String> = None;
    let mut range: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-o" | "--output" => out = Some(it.next().ok_or("-o needs a path")?.clone()),
            "--range" => range = Some(it.next().ok_or("--range needs A..B")?.clone()),
            other => pos.push(other),
        }
    }
    let range = range.ok_or("cat needs --range A..B (byte offsets into the decoded stream)")?;
    let (a, b) = range
        .split_once("..")
        .ok_or_else(|| format!("--range {range:?}: expected A..B"))?;
    let start: u64 = a.parse().map_err(|e| format!("--range start: {e}"))?;
    let end: u64 = b.parse().map_err(|e| format!("--range end: {e}"))?;
    let path = *pos.first().ok_or("missing container file")?;
    if !sniff_container(path)? {
        return Err(format!(
            "{path}: not a PDZS container (cat only works on `compress --stream` output)"
        ));
    }

    let file = std::fs::File::open(path).map_err(|e| format!("reading {path}: {e}"))?;
    let mut rdr =
        StreamReader::open(std::io::BufReader::new(file)).map_err(|e| format!("{path}: {e}"))?;
    let pram = Pram::par();
    let data = rdr
        .read_range(&pram, start, end)
        .map_err(|e| format!("{path}: {e}"))?;
    write_output(out, &data)
}

fn cmd_parse(args: &[String]) -> Result<(), String> {
    let (pos, dict, out) = split_args(args)?;
    let dict = read_dict(dict)?;
    let text = read_input(&pos)?;
    check_text(&text)?;
    let pram = Pram::par();
    let matcher = DictMatcher::build(&pram, dict.clone(), 0x12);
    let parse = optimal_parse(&pram, &matcher, &text)
        .ok_or("text is not parseable with this dictionary (add single-symbol words?)")?;
    let greedy = greedy_parse(&pram, &matcher, &text);
    let mut buf = Vec::new();
    writeln!(
        buf,
        "optimal: {} phrases{}",
        parse.num_phrases(),
        match greedy {
            Some(g) => format!(" (greedy would use {})", g.num_phrases()),
            None => " (greedy dead-ends)".to_string(),
        }
    )
    .map_err(|e| format!("formatting output: {e}"))?;
    for ph in &parse.phrases {
        let p = &dict.patterns()[ph.pattern as usize];
        writeln!(
            buf,
            "{}\t{}",
            ph.start,
            String::from_utf8_lossy(&p[..ph.len])
        )
        .map_err(|e| format!("formatting output: {e}"))?;
    }
    write_output(out, &buf)
}

fn cmd_delta(args: &[String]) -> Result<(), String> {
    let (pos, _, out) = split_args(args)?;
    if pos.len() != 2 {
        return Err("delta needs BASE and NEW files".into());
    }
    let base = std::fs::read(pos[0]).map_err(|e| format!("{}: {e}", pos[0]))?;
    let new = std::fs::read(pos[1]).map_err(|e| format!("{}: {e}", pos[1]))?;
    check_text(&base)?;
    check_text(&new)?;
    let pram = Pram::par();
    let tokens = delta_compress(&pram, &base, &new, 0x0D17A);
    let bytes = pardict::compress::encode_tokens(&tokens);
    eprintln!(
        "pardict: delta of {} B against {} B base -> {} B ({} tokens)",
        new.len(),
        base.len(),
        bytes.len(),
        tokens.len()
    );
    write_output(out, &bytes)
}

fn cmd_patch(args: &[String]) -> Result<(), String> {
    let (pos, _, out) = split_args(args)?;
    if pos.len() != 2 {
        return Err("patch needs BASE and DELTA files".into());
    }
    let base = std::fs::read(pos[0]).map_err(|e| format!("{}: {e}", pos[0]))?;
    let data = std::fs::read(pos[1]).map_err(|e| format!("{}: {e}", pos[1]))?;
    let tokens =
        pardict::compress::decode_tokens_from(&data, base.len()).map_err(|e| e.to_string())?;
    let pram = Pram::par();
    let new = delta_decompress(&pram, &base, &tokens);
    write_output(out, &new)
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    use pardict::service::{selftest, Engine, EngineConfig, Metrics, Registry, Server};
    use pardict::store::{Store, StoreConfig};
    use std::sync::Arc;

    let mut addr = "127.0.0.1:7878".to_string();
    let mut dict_path: Option<String> = None;
    let mut name = "default".to_string();
    let mut workers: Option<usize> = None;
    let mut requests: Option<usize> = None;
    let mut run_selftest = false;
    let mut data_dir: Option<String> = None;
    let mut recover_only = false;
    let mut trace_out: Option<String> = None;
    let mut trace_seed: Option<u64> = None;
    let mut trace_sample: Option<u32> = None;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => addr = it.next().ok_or("--addr needs HOST:PORT")?.clone(),
            "--dict" => dict_path = Some(it.next().ok_or("--dict needs a path")?.clone()),
            "--name" => name = it.next().ok_or("--name needs a name")?.clone(),
            "--data-dir" => data_dir = Some(it.next().ok_or("--data-dir needs a path")?.clone()),
            "--recover-only" => recover_only = true,
            "--trace-out" => {
                trace_out = Some(it.next().ok_or("--trace-out needs a path")?.clone());
            }
            "--trace-seed" => {
                let v = it.next().ok_or("--trace-seed needs a number")?;
                trace_seed = Some(parse_seed(v).map_err(|e| format!("--trace-seed: {e}"))?);
            }
            "--trace-sample" => {
                trace_sample = Some(
                    it.next()
                        .ok_or("--trace-sample needs a count")?
                        .parse()
                        .map_err(|e| format!("--trace-sample: {e}"))?,
                );
            }
            "--workers" => {
                workers = Some(
                    it.next()
                        .ok_or("--workers needs a count")?
                        .parse()
                        .map_err(|e| format!("--workers: {e}"))?,
                );
            }
            "--requests" => {
                requests = Some(
                    it.next()
                        .ok_or("--requests needs a count")?
                        .parse()
                        .map_err(|e| format!("--requests: {e}"))?,
                );
            }
            "--selftest" => run_selftest = true,
            other => return Err(format!("serve: unknown flag {other:?}\n{}", usage())),
        }
    }

    if run_selftest {
        // Traced selftest: the deterministic seeded phase, exported as
        // JSONL (byte-identical per seed — CI compares two runs).
        if let Some(path) = trace_out {
            let mut opts = selftest::TraceRunOptions::default();
            if let Some(r) = requests {
                opts.requests = r;
            }
            if let Some(s) = trace_seed {
                opts.seed = s;
            }
            if let Some(k) = trace_sample {
                opts.sample_one_in = k;
            }
            let (summary, jsonl) = selftest::trace_run(&opts)?;
            std::fs::write(&path, jsonl).map_err(|e| format!("writing {path}: {e}"))?;
            print!("{summary}");
            return Ok(());
        }
        let mut opts = selftest::SelftestOptions::default();
        if let Some(r) = requests {
            opts.requests = r;
        }
        if let Some(w) = workers {
            opts.workers = w;
        }
        let report = selftest::run(&opts)?;
        println!("{report}");
        return Ok(());
    }
    if trace_out.is_some() || trace_seed.is_some() || trace_sample.is_some() {
        return Err("serve: --trace-out/--trace-seed/--trace-sample need --selftest".into());
    }

    if recover_only {
        let dir = data_dir.ok_or("--recover-only needs --data-dir DIR")?;
        let store = Store::open(&dir, StoreConfig::default())
            .map_err(|e| format!("opening store {dir}: {e}"))?;
        for line in recovery_lines(store.recovery()) {
            println!("{line}");
        }
        if store.recovery().is_clean() {
            return Ok(());
        }
        return Err(format!(
            "{dir}: recovery dropped untrusted data (see report above)"
        ));
    }

    let metrics = Arc::new(Metrics::default());
    let registry = Arc::new(Registry::new(Arc::clone(&metrics)));
    let mut cfg = EngineConfig::default();
    if let Some(w) = workers {
        cfg.workers = w.max(1);
    }
    let engine = Engine::new(cfg, Arc::clone(&registry), Arc::clone(&metrics));

    // Recover persisted dictionaries before anything publishes, then
    // attach the store so every accepted publish is durable before its
    // acknowledgement leaves the process.
    if let Some(dir) = data_dir {
        let store = Store::open(&dir, StoreConfig::default())
            .map_err(|e| format!("opening store {dir}: {e}"))?;
        let report = store.recovery().clone();
        for line in recovery_lines(&report) {
            eprintln!("pardict: {line}");
        }
        metrics
            .store_replayed
            .add(report.snapshot_dicts + report.wal_replayed);
        if let Some(t) = &report.torn {
            metrics.store_torn_dropped.add(t.dropped_bytes);
        }
        metrics.store_snapshot_age.add(store.since_snapshot());
        let restored: Vec<(String, u64, Vec<Vec<u8>>)> = store
            .dicts()
            .map(|(n, d)| (n.to_string(), d.version, d.patterns.clone()))
            .collect();
        for (dict_name, version, patterns) in restored {
            registry
                .restore(&dict_name, version, patterns)
                .map_err(|e| format!("restoring {dict_name}: {e}"))?;
        }
        registry.attach_store(store);
    }

    if let Some(path) = dict_path {
        let dict = read_dict(Some(path))?;
        let patterns = dict.patterns().to_vec();
        let out = registry
            .publish(&name, patterns)
            .map_err(|e| format!("publishing {name}: {e}"))?;
        eprintln!(
            "pardict: serving dictionary {name:?} v{} ({} patterns)",
            out.version,
            dict.num_patterns()
        );
    }

    let server = Server::start(engine, &*addr).map_err(|e| format!("binding {addr}: {e}"))?;
    // Machine-readable line for harnesses: with `--addr 127.0.0.1:0` the OS
    // picks the port, and this is how a parent process learns it.
    println!("LISTENING {}", server.addr());
    std::io::stdout().flush().ok();
    eprintln!(
        "pardict: listening on {} ({} workers); stop with ^C",
        server.addr(),
        server.engine().config().workers
    );
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

/// Render a [`RecoveryReport`](pardict::store::RecoveryReport) as the
/// CLI's stable machine-readable lines: a `RECOVERED` summary, then one
/// line per thing recovery refused to trust. Deterministic given the
/// directory's bytes — no paths, no timings.
fn recovery_lines(r: &pardict::store::RecoveryReport) -> Vec<String> {
    let mut out = vec![format!(
        "RECOVERED dicts {} snapshot {} wal-replayed {} wal-skipped {} generation {}",
        r.recovered_dicts, r.snapshot_dicts, r.wal_replayed, r.wal_skipped, r.wal_generation
    )];
    if let Some(t) = &r.torn {
        out.push(format!(
            "TORN-TAIL offset {} dropped {} bytes ({})",
            t.offset, t.dropped_bytes, t.reason
        ));
    }
    if let Some(issue) = &r.snapshot_issue {
        out.push(format!("SNAPSHOT-REJECTED {issue}"));
    }
    if r.stale_temp_removed {
        out.push("STALE-TEMP removed".to_string());
    }
    out
}

/// `pardict cluster`: run the sharded router front end, the in-process
/// failover selftest, or the process-level smoke (which SIGKILLs a real
/// child backend mid-run and requires degraded-but-correct responses).
fn cmd_cluster(args: &[String]) -> Result<(), String> {
    use pardict::cluster::{selftest, ClusterConfig, Router, RouterServer};
    use std::net::ToSocketAddrs;
    use std::sync::Arc;

    let mut backends: Option<String> = None;
    let mut addr = "127.0.0.1:7979".to_string();
    let mut run_selftest = false;
    let mut run_smoke = false;
    let mut requests: Option<usize> = None;
    let mut seed: Option<u64> = None;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--backends" => {
                backends = Some(it.next().ok_or("--backends needs ADDR,ADDR,...")?.clone());
            }
            "--addr" => addr = it.next().ok_or("--addr needs HOST:PORT")?.clone(),
            "--selftest" => run_selftest = true,
            "--smoke" => run_smoke = true,
            "--requests" => {
                requests = Some(
                    it.next()
                        .ok_or("--requests needs a count")?
                        .parse()
                        .map_err(|e| format!("--requests: {e}"))?,
                );
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a number")?;
                seed = Some(parse_seed(v).map_err(|e| format!("--seed: {e}"))?);
            }
            other => return Err(format!("cluster: unknown flag {other:?}\n{}", usage())),
        }
    }

    if run_selftest {
        let mut opts = selftest::Options::default();
        if let Some(r) = requests {
            opts.requests = r;
        }
        if let Some(s) = seed {
            opts.seed = s;
        }
        let outcome = selftest::run(&opts)?;
        print!("{}", outcome.summary);
        eprint!("{}", outcome.metrics_report);
        return Ok(());
    }
    if run_smoke {
        return cluster_smoke(requests.unwrap_or(120), seed.unwrap_or(0xC105_7E12));
    }

    let Some(list) = backends else {
        return Err(format!(
            "cluster: need --backends A,B,C (or --selftest / --smoke)\n{}",
            usage()
        ));
    };
    let mut shard_addrs = Vec::new();
    for name in list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let resolved = name
            .to_socket_addrs()
            .map_err(|e| format!("resolving backend {name}: {e}"))?
            .next()
            .ok_or_else(|| format!("no address for backend {name}"))?;
        shard_addrs.push(resolved);
    }
    if shard_addrs.is_empty() {
        return Err("cluster: --backends list is empty".into());
    }

    let router = Arc::new(Router::new(&shard_addrs, ClusterConfig::default()));
    let front = RouterServer::start(Arc::clone(&router), &*addr)
        .map_err(|e| format!("binding {addr}: {e}"))?;
    println!("LISTENING {}", front.addr());
    std::io::stdout().flush().ok();
    eprintln!(
        "pardict: cluster router on {} over {} backends; stop with ^C",
        front.addr(),
        shard_addrs.len()
    );
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

/// Spawn three real `pardict serve` child processes on ephemeral ports,
/// route a seeded mixed workload through a [`pardict::cluster::Router`]
/// while comparing every response against an in-process oracle engine,
/// SIGKILL one child at the halfway mark, and require the run to finish
/// degraded but correct with closed accounting.
fn cluster_smoke(requests: usize, seed: u64) -> Result<(), String> {
    use pardict::cluster::{ClusterConfig, Router};
    use pardict::service::{Engine, EngineConfig, Metrics, Registry};
    use pardict::workloads::random_dictionary;
    use std::io::{BufRead, BufReader};
    use std::net::SocketAddr;
    use std::process::{Child, Command, Stdio};
    use std::sync::Arc;

    let requests = requests.max(8);
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;

    let mut children: Vec<Child> = Vec::new();
    let mut shard_addrs: Vec<SocketAddr> = Vec::new();
    for id in 0..3 {
        let mut child = Command::new(&exe)
            .args(["serve", "--addr", "127.0.0.1:0", "--workers", "2"])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .map_err(|e| format!("spawning backend {id}: {e}"))?;
        let stdout = child.stdout.take().expect("stdout was piped");
        let listening = BufReader::new(stdout)
            .lines()
            .find_map(|line| line.ok()?.strip_prefix("LISTENING ").map(str::to_owned));
        let Some(raw) = listening else {
            let _ = child.kill();
            for c in &mut children {
                let _ = c.kill();
            }
            return Err(format!("backend {id} exited without printing LISTENING"));
        };
        let parsed = raw
            .parse()
            .map_err(|e| format!("backend {id} address {raw:?}: {e}"))?;
        shard_addrs.push(parsed);
        children.push(child);
    }
    eprintln!(
        "pardict: smoke backends up at {shard_addrs:?}; \
         killing backend {} at request {}",
        seed % 3,
        requests / 2
    );

    // Oracle: the exact engine configuration the children run (default
    // config, two workers), so lane selection and payload bytes agree.
    let metrics = Arc::new(Metrics::default());
    let registry = Arc::new(Registry::new(Arc::clone(&metrics)));
    let oracle = Engine::new(
        EngineConfig {
            workers: 2,
            ..EngineConfig::default()
        },
        registry,
        metrics,
    );

    let router = Arc::new(Router::new(&shard_addrs, ClusterConfig::default()));
    let patterns = random_dictionary(seed, 24, 3, 10, Alphabet::dna());
    let result = smoke_drive(&router, &oracle, &patterns, &mut children, requests, seed);

    router.shutdown();
    oracle.shutdown();
    for c in &mut children {
        let _ = c.kill();
        let _ = c.wait();
    }

    let summary = result?;
    print!("{summary}");
    Ok(())
}

/// The driven middle of [`cluster_smoke`], separated so the caller can
/// always tear the children down regardless of which step failed.
fn smoke_drive(
    router: &pardict::cluster::Router,
    oracle: &pardict::service::Engine,
    patterns: &[Vec<u8>],
    children: &mut [std::process::Child],
    requests: usize,
    seed: u64,
) -> Result<String, String> {
    use pardict::cluster::selftest;

    let published = router
        .publish("corpus", patterns)
        .map_err(|e| format!("cluster publish: {e}"))?;
    if published.acks != 3 || published.degraded {
        return Err(format!(
            "publish should reach all 3 backends: {published:?}"
        ));
    }
    oracle
        .registry()
        .publish("corpus", patterns.to_vec())
        .map_err(|e| format!("oracle publish: {e}"))?;

    let kill_at = requests / 2;
    let victim = usize::try_from(seed % 3).expect("mod 3 fits");
    let report = selftest::drive_workload(router, oracle, patterns, requests, seed, |i| {
        if i == kill_at {
            // SIGKILL: no graceful drain. Pooled router connections see a
            // reset; fresh dials are refused. Both must read as a dead
            // shard, never as a wrong answer.
            let _ = children[victim].kill();
            let _ = children[victim].wait();
        }
    });

    let mut failures = report.failures.clone();
    match report.first_degraded {
        Some(first) if first < kill_at => {
            failures.push(format!("request {first}: degraded before the kill"));
        }
        None => failures.push("no degraded responses after SIGKILLing a backend".into()),
        _ => {}
    }
    if report.scatter_shards_max < 2 {
        failures.push(format!(
            "scatter-gather never fanned out (max shards {})",
            report.scatter_shards_max
        ));
    }
    if let Err(e) = router.metrics().check_accounting(true) {
        failures.push(format!("accounting violated: {e}"));
    }
    eprint!("{}", router.report());
    if let Some(first) = failures.first() {
        return Err(format!("{} failures; first: {first}", failures.len()));
    }
    Ok(selftest::render_summary(
        "smoke", requests, seed, victim, kill_at, &report,
    ))
}

/// `pardict store`: the kill-and-recover smoke for the persistence
/// layer. Only `--smoke` is implemented — the store itself has no
/// standalone CLI surface beyond what `serve --data-dir` wires up.
fn cmd_store(args: &[String]) -> Result<(), String> {
    let mut run_smoke = false;
    let mut run_delta = false;
    let mut dicts: usize = 6;
    let mut seed: u64 = 0x0005_704E_5EED;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => run_smoke = true,
            "--delta" => run_delta = true,
            "--dicts" => {
                dicts = it
                    .next()
                    .ok_or("--dicts needs a count")?
                    .parse()
                    .map_err(|e| format!("--dicts: {e}"))?;
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a number")?;
                seed = parse_seed(v).map_err(|e| format!("--seed: {e}"))?;
            }
            other => return Err(format!("store: unknown flag {other:?}\n{}", usage())),
        }
    }
    if !run_smoke {
        return Err(format!(
            "store: need --smoke (persistence rides on `serve --data-dir`)\n{}",
            usage()
        ));
    }
    if run_delta {
        delta_smoke(dicts, seed)
    } else {
        store_smoke(dicts, seed)
    }
}

/// Spawn a `pardict serve --data-dir` child on an ephemeral port and
/// learn its address from the `LISTENING` line.
fn spawn_store_backend(
    exe: &std::path::Path,
    data_dir: &std::path::Path,
) -> Result<(std::process::Child, std::net::SocketAddr), String> {
    use std::io::{BufRead, BufReader};
    use std::process::{Command, Stdio};
    let dir = data_dir
        .to_str()
        .ok_or("data dir path is not UTF-8")?
        .to_string();
    let mut child = Command::new(exe)
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--data-dir",
            &dir,
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .map_err(|e| format!("spawning backend: {e}"))?;
    let stdout = child.stdout.take().expect("stdout was piped");
    let listening = BufReader::new(stdout)
        .lines()
        .find_map(|line| line.ok()?.strip_prefix("LISTENING ").map(str::to_owned));
    let Some(raw) = listening else {
        let _ = child.kill();
        return Err("backend exited without printing LISTENING".into());
    };
    let addr = raw
        .parse()
        .map_err(|e| format!("backend address {raw:?}: {e}"))?;
    Ok((child, addr))
}

/// The kill-and-recover invariant, live: publish half the dictionaries
/// to a `--data-dir` backend and collect their acknowledgements, fire
/// one more publish and SIGKILL the process before reading the reply,
/// restart it from the same directory, and require every *acknowledged*
/// dictionary to come back — right digests, right match answers against
/// an in-process library oracle — before publishing the rest. The
/// summary printed to stdout contains only seed-derived facts, so equal
/// seeds print equal bytes (the raced in-flight publish may or may not
/// land; it is verified for integrity either way but never printed).
/// One smoke dictionary: name, patterns, probe text, oracle hits.
type SmokeSpec = (String, Vec<Vec<u8>>, Vec<u8>, Vec<(u64, u32)>);

fn store_smoke(num_dicts: usize, seed: u64) -> Result<(), String> {
    use pardict::workloads::{random_dictionary, random_text};

    let num_dicts = num_dicts.clamp(2, 64);
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let data_dir = std::env::temp_dir().join(format!(
        "pardict-store-smoke-{seed:016x}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&data_dir);

    // Seed-derived dictionaries, texts, and expected hits (exact-match
    // output is fingerprint-seed-independent, so the library oracle is
    // authoritative for the engine's match lane).
    let specs: Vec<SmokeSpec> = (0..num_dicts)
        .map(|i| {
            let name = format!("dict{i}");
            let patterns = random_dictionary(seed ^ (i as u64), 12, 3, 8, Alphabet::dna());
            let text = random_text(seed.wrapping_add(i as u64), 800, Alphabet::dna());
            let dict = Dictionary::new(patterns.clone());
            let expected: Vec<(u64, u32)> = dictionary_match(&Pram::seq(), &dict, &text, 0xA5)
                .iter_hits()
                .map(|(p, m)| (p as u64, m.len))
                .collect();
            (name, patterns, text, expected)
        })
        .collect();
    let acked = num_dicts / 2;

    let result = store_smoke_drive(&exe, &data_dir, &specs, acked, seed);
    let _ = std::fs::remove_dir_all(&data_dir);
    let summary = result?;
    print!("{summary}");
    Ok(())
}

/// The driven middle of [`store_smoke`], separated so the caller always
/// removes the scratch directory regardless of which step failed.
fn store_smoke_drive(
    exe: &std::path::Path,
    data_dir: &std::path::Path,
    specs: &[SmokeSpec],
    acked: usize,
    seed: u64,
) -> Result<String, String> {
    use pardict::service::registry::content_hash;
    use pardict::service::wire::{tag, write_frame, WireRequest, WireResponse};
    use pardict::service::Client;

    // A closure shared by both phases: one dictionary's match answer
    // must equal the library oracle's.
    let check_match = |client: &mut Client, spec: &SmokeSpec| -> Result<(), String> {
        let (name, _, text, expected) = spec;
        match client
            .op(tag::MATCH, name, text, 0)
            .map_err(|e| format!("{name}: match transport: {e}"))?
        {
            Ok(WireResponse::Hits { hits, .. }) => {
                let got: Vec<(u64, u32)> = hits.iter().map(|h| (h.pos, h.len)).collect();
                if &got == expected {
                    Ok(())
                } else {
                    Err(format!(
                        "{name}: {} hits, oracle says {}",
                        got.len(),
                        expected.len()
                    ))
                }
            }
            Ok(other) => Err(format!("{name}: unexpected reply {other:?}")),
            Err(e) => Err(format!("{name}: match rejected: {e}")),
        }
    };

    // ---- phase 1: publish half, every one acknowledged ----
    let (mut child, addr) = spawn_store_backend(exe, data_dir)?;
    let phase1 = (|| -> Result<(), String> {
        let mut client = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
        for (name, patterns, _, _) in &specs[..acked] {
            match client
                .publish(name, patterns.clone())
                .map_err(|e| format!("{name}: publish transport: {e}"))?
            {
                Ok((1, _)) => {}
                Ok((v, _)) => return Err(format!("{name}: fresh publish at version {v}")),
                Err(e) => return Err(format!("{name}: publish rejected: {e}")),
            }
        }
        // The raced publish: write the request, never read the reply —
        // SIGKILL lands while (or right after) the server handles it.
        let mut raw =
            std::net::TcpStream::connect(addr).map_err(|e| format!("raced connect: {e}"))?;
        let inflight = WireRequest::Publish {
            name: "inflight".into(),
            patterns: specs[0].1.clone(),
        };
        write_frame(&mut raw, &inflight.encode()).map_err(|e| format!("raced write: {e}"))?;
        Ok(())
    })();
    let _ = child.kill();
    let _ = child.wait();
    phase1?;

    // ---- phase 2: restart from the same directory ----
    let (mut child, addr) = spawn_store_backend(exe, data_dir)?;
    let phase2 = (|| -> Result<(), String> {
        let mut client = Client::connect(addr).map_err(|e| format!("reconnect: {e}"))?;
        let digests = client.dicts().map_err(|e| format!("dicts: {e}"))?;
        for (name, patterns, _, _) in &specs[..acked] {
            let want = content_hash(patterns);
            match digests.iter().find(|(n, _, _)| n == name) {
                Some((_, 1, h)) if *h == want => {}
                Some((_, v, h)) => {
                    return Err(format!(
                        "{name}: recovered as v{v} hash {h:#x}, wanted v1 hash {want:#x}"
                    ))
                }
                None => return Err(format!("{name}: acknowledged but not recovered")),
            }
        }
        // The raced publish may or may not have landed; if it did, it
        // must be complete (all-or-nothing), never a torn half.
        if let Some((_, _, h)) = digests.iter().find(|(n, _, _)| n == "inflight") {
            let want = content_hash(&specs[0].1);
            if *h != want {
                return Err(format!(
                    "inflight: recovered with hash {h:#x}, wanted {want:#x} — a torn publish leaked"
                ));
            }
        }
        for spec in &specs[..acked] {
            check_match(&mut client, spec)?;
        }
        // ---- phase 3: the recovered store keeps accepting publishes ----
        for spec in &specs[acked..] {
            let (name, patterns, _, _) = spec;
            match client
                .publish(name, patterns.clone())
                .map_err(|e| format!("{name}: publish transport: {e}"))?
            {
                Ok((1, _)) => {}
                Ok((v, _)) => return Err(format!("{name}: fresh publish at version {v}")),
                Err(e) => return Err(format!("{name}: publish rejected: {e}")),
            }
            check_match(&mut client, spec)?;
        }
        Ok(())
    })();
    let _ = child.kill();
    let _ = child.wait();
    phase2?;

    let total_hits: usize = specs.iter().map(|(_, _, _, e)| e.len()).sum();
    Ok(format!(
        "pardict-store smoke (seed {seed}, dicts {})\n\
         phase-1: {acked} dicts published and acknowledged, then SIGKILL mid-publish\n\
         phase-2: all {acked} acknowledged dicts recovered from the data dir \
         (digests and matches agree with the oracle)\n\
         phase-3: {} more dicts published after recovery; {} oracle hits verified\n\
         store-smoke: ok\n",
        specs.len(),
        specs.len() - acked,
        total_hits,
    ))
}

/// The delta kill-and-recover invariant, live: publish every dictionary
/// at v1, delta-publish each to v2 over the wire (EXT_DELTA path), fire
/// one more raced delta and SIGKILL the backend before reading the
/// reply, restart it from the same directory, and require every
/// *acknowledged* v2 — a WAL replay of `Publish` followed by `Delta`
/// records — to come back with the digest and match answers of the
/// folded pattern set. Like the plain store smoke, the summary prints
/// only seed-derived facts so equal seeds print equal bytes (the raced
/// delta may or may not land; it is checked for all-or-nothing
/// integrity either way but never printed).
fn delta_smoke(num_dicts: usize, seed: u64) -> Result<(), String> {
    use pardict::core::{apply_delta_patterns, DictDelta};
    use pardict::workloads::{random_dictionary, random_text};

    let num_dicts = num_dicts.clamp(2, 64);
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let data_dir = std::env::temp_dir().join(format!(
        "pardict-delta-smoke-{seed:016x}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&data_dir);

    // Seed-derived v1 pattern sets, deltas, and the folded v2 sets the
    // recovered store must answer for. `apply_delta_patterns` is the
    // same fold the registry and the WAL replay use, so the oracle and
    // the system can only disagree if one of them is wrong.
    let mut specs = Vec::with_capacity(num_dicts);
    for i in 0..num_dicts {
        let name = format!("dict{i}");
        let v1 = random_dictionary(seed ^ (i as u64), 12, 3, 8, Alphabet::dna());
        let delta = DictDelta {
            adds: random_dictionary(seed ^ 0xDE17A ^ (i as u64), 3, 3, 8, Alphabet::dna()),
            removes: vec![v1[0].clone()],
        };
        let (v2, _) = apply_delta_patterns(&v1, &delta)
            .map_err(|e| format!("{name}: scripted delta invalid: {e}"))?;
        let text = random_text(seed.wrapping_add(i as u64), 800, Alphabet::dna());
        let dict = Dictionary::new(v2.clone());
        let expected: Vec<(u64, u32)> = dictionary_match(&Pram::seq(), &dict, &text, 0xA5)
            .iter_hits()
            .map(|(p, m)| (p as u64, m.len))
            .collect();
        specs.push((name, v1, delta, v2, text, expected));
    }

    let result = delta_smoke_drive(&exe, &data_dir, &specs, seed);
    let _ = std::fs::remove_dir_all(&data_dir);
    let summary = result?;
    print!("{summary}");
    Ok(())
}

/// One delta-smoke dictionary: name, v1 patterns, delta, folded v2
/// patterns, probe text, oracle hits against v2.
type DeltaSpec = (
    String,
    Vec<Vec<u8>>,
    pardict::core::DictDelta,
    Vec<Vec<u8>>,
    Vec<u8>,
    Vec<(u64, u32)>,
);

/// The driven middle of [`delta_smoke`], separated so the caller always
/// removes the scratch directory regardless of which step failed.
fn delta_smoke_drive(
    exe: &std::path::Path,
    data_dir: &std::path::Path,
    specs: &[DeltaSpec],
    seed: u64,
) -> Result<String, String> {
    use pardict::core::DictDelta;
    use pardict::service::registry::content_hash;
    use pardict::service::wire::{tag, write_frame, WireRequest, WireResponse};
    use pardict::service::Client;

    let check_match = |client: &mut Client, spec: &DeltaSpec| -> Result<(), String> {
        let (name, _, _, _, text, expected) = spec;
        match client
            .op(tag::MATCH, name, text, 0)
            .map_err(|e| format!("{name}: match transport: {e}"))?
        {
            Ok(WireResponse::Hits { hits, .. }) => {
                let got: Vec<(u64, u32)> = hits.iter().map(|h| (h.pos, h.len)).collect();
                if &got == expected {
                    Ok(())
                } else {
                    Err(format!(
                        "{name}: {} hits, oracle says {}",
                        got.len(),
                        expected.len()
                    ))
                }
            }
            Ok(other) => Err(format!("{name}: unexpected reply {other:?}")),
            Err(e) => Err(format!("{name}: match rejected: {e}")),
        }
    };

    // ---- phase 1: publish v1, delta to v2, all acknowledged ----
    let (mut child, addr) = spawn_store_backend(exe, data_dir)?;
    let phase1 = (|| -> Result<(), String> {
        let mut client = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
        for (name, v1, delta, _, _, _) in specs {
            match client
                .publish(name, v1.clone())
                .map_err(|e| format!("{name}: publish transport: {e}"))?
            {
                Ok((1, _)) => {}
                Ok((v, _)) => return Err(format!("{name}: fresh publish at version {v}")),
                Err(e) => return Err(format!("{name}: publish rejected: {e}")),
            }
            match client
                .publish_delta(name, 1, delta, None)
                .map_err(|e| format!("{name}: delta transport: {e}"))?
            {
                Ok((2, _)) => {}
                Ok((v, _)) => return Err(format!("{name}: delta landed at version {v}")),
                Err(e) => return Err(format!("{name}: delta rejected: {e}")),
            }
        }
        // The raced delta: write the request, never read the reply —
        // SIGKILL lands while (or right after) the server handles it.
        // The added pattern is outside the DNA alphabet, so whether it
        // lands or not, the probe-text match answers are unchanged.
        let mut raw =
            std::net::TcpStream::connect(addr).map_err(|e| format!("raced connect: {e}"))?;
        let inflight = WireRequest::PubDelta {
            name: specs[0].0.clone(),
            parent_version: 2,
            adds: vec![b"xyzzy".to_vec()],
            removes: Vec::new(),
        };
        write_frame(&mut raw, &inflight.encode()).map_err(|e| format!("raced write: {e}"))?;
        Ok(())
    })();
    let _ = child.kill();
    let _ = child.wait();
    phase1?;

    // ---- phase 2: restart from the same directory ----
    let (mut child, addr) = spawn_store_backend(exe, data_dir)?;
    let phase2 = (|| -> Result<(), String> {
        let mut client = Client::connect(addr).map_err(|e| format!("reconnect: {e}"))?;
        let digests = client.dicts().map_err(|e| format!("dicts: {e}"))?;
        for (name, _, _, v2, _, _) in specs {
            let want = content_hash(v2);
            let raced = if name == &specs[0].0 {
                // The raced delta may have landed: v3 with the extra
                // pattern folded in is the only other legal state.
                let mut with = v2.clone();
                with.push(b"xyzzy".to_vec());
                Some(content_hash(&with))
            } else {
                None
            };
            match digests.iter().find(|(n, _, _)| n == name) {
                Some((_, 2, h)) if *h == want => {}
                Some((_, 3, h)) if raced == Some(*h) => {}
                Some((_, v, h)) => {
                    return Err(format!(
                        "{name}: recovered as v{v} hash {h:#x}, wanted v2 hash {want:#x} — \
                         a torn delta leaked"
                    ))
                }
                None => return Err(format!("{name}: acknowledged but not recovered")),
            }
        }
        for spec in specs {
            check_match(&mut client, spec)?;
        }
        // ---- phase 3: the recovered store keeps accepting deltas ----
        // One more wire delta against the recovered v2 (again alphabet-
        // disjoint from the probe text, so the oracle hits still hold).
        let (name, _, _, _, _, _) = &specs[1];
        let delta = DictDelta {
            adds: vec![b"zzyzx".to_vec()],
            removes: Vec::new(),
        };
        match client
            .publish_delta(name, 2, &delta, None)
            .map_err(|e| format!("{name}: post-recovery delta transport: {e}"))?
        {
            Ok((3, _)) => {}
            Ok((v, _)) => return Err(format!("{name}: post-recovery delta at version {v}")),
            Err(e) => return Err(format!("{name}: post-recovery delta rejected: {e}")),
        }
        check_match(&mut client, &specs[1])?;
        Ok(())
    })();
    let _ = child.kill();
    let _ = child.wait();
    phase2?;

    let total_hits: usize = specs.iter().map(|(_, _, _, _, _, e)| e.len()).sum();
    Ok(format!(
        "pardict-store delta smoke (seed {seed}, dicts {})\n\
         phase-1: {} dicts published at v1 and delta-published to v2, then SIGKILL mid-delta\n\
         phase-2: all {} acknowledged deltas recovered from the data dir \
         (digests and matches agree with the folded oracle)\n\
         phase-3: post-recovery delta accepted at v3; {total_hits} oracle hits verified\n\
         delta-smoke: ok\n",
        specs.len(),
        specs.len(),
        specs.len(),
    ))
}

/// `pardict chaos`: run the deterministic fault-injection suite and print
/// its report. The report is byte-identical for equal seeds, so a failure
/// in CI reproduces locally from the seed alone.
fn cmd_chaos(args: &[String]) -> Result<(), String> {
    use pardict::chaos::{run_chaos, ChaosConfig};
    let mut cfg = ChaosConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                let v = it.next().ok_or("--seed needs a number")?;
                cfg.seed = parse_seed(v).map_err(|e| format!("--seed: {e}"))?;
            }
            "--rounds" => {
                cfg.rounds = it
                    .next()
                    .ok_or("--rounds needs a count")?
                    .parse()
                    .map_err(|e| format!("--rounds: {e}"))?;
            }
            "--no-wire" => cfg.wire = false,
            "--no-storage" => cfg.storage = false,
            other => return Err(format!("chaos: unknown flag {other:?}\n{}", usage())),
        }
    }
    let report = run_chaos(&cfg);
    print!("{}", report.text);
    if report.violations > 0 {
        return Err(format!(
            "{} of {} chaos oracles violated — reproduce with \
             `pardict chaos --seed {} --rounds {}{}`",
            report.violations,
            report.checks,
            cfg.seed,
            cfg.rounds,
            if cfg.wire { "" } else { " --no-wire" }
        ));
    }
    Ok(())
}

/// `pardict trace FILE.jsonl`: parse a span export and print the viewer
/// report (totals, cost-invariant check, per-stage/per-lane breakdowns,
/// slowest requests, and the slowest trace's span tree). Malformed input
/// is a hard error — exit code 1 — so CI can gate on it.
fn cmd_trace(args: &[String]) -> Result<(), String> {
    use pardict::trace::{export, view};
    let mut pos: Vec<&str> = Vec::new();
    let mut slowest: usize = 5;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--slowest" => {
                slowest = it
                    .next()
                    .ok_or("--slowest needs a count")?
                    .parse()
                    .map_err(|e| format!("--slowest: {e}"))?;
            }
            other => pos.push(other),
        }
    }
    let path = *pos.first().ok_or("trace needs a FILE.jsonl export")?;
    let data = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let spans = export::parse_jsonl(&data).map_err(|e| format!("{path}: {e}"))?;
    print!("{}", view::render_report(&spans, slowest));
    Ok(())
}

/// Seeds accept decimal or `0x`-prefixed hex.
fn parse_seed(s: &str) -> Result<u64, String> {
    let parsed = match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => s.parse(),
    };
    parsed.map_err(|e| e.to_string())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let (pos, _, _) = split_args(args)?;
    let text = read_input(&pos)?;
    check_text(&text)?;
    let n = text.len().max(1);
    let pram = Pram::par();
    let (tokens, c1) = pram.metered(|p| lz1_compress(p, &text, 0x13));
    let (_, c2) = pram.metered(|p| lz1_decompress(p, &tokens, 0x14));
    println!("input: {} bytes", text.len());
    println!(
        "LZ1 compress:   {:>12} work ({:>7.1}/char)  depth {:>6}  -> {} phrases",
        c1.work,
        c1.work as f64 / n as f64,
        c1.depth,
        tokens.len()
    );
    println!(
        "LZ1 decompress: {:>12} work ({:>7.1}/char)  depth {:>6}",
        c2.work,
        c2.work as f64 / n as f64,
        c2.depth
    );
    Ok(())
}
