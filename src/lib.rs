#![warn(missing_docs)]

//! # pardict — optimal parallel dictionary matching and compression
//!
//! A full reproduction of Farach & Muthukrishnan, *Optimal Parallel
//! Dictionary Matching and Compression* (SPAA 1995), on a simulated
//! arbitrary-CRCW PRAM whose ledger measures the quantities the paper's
//! theorems bound — **work** (total operations) and **depth** (parallel
//! time) — while executing on rayon.
//!
//! ## The three headline results
//!
//! * **Dictionary matching (Theorem 3.1)** — preprocess a pattern
//!   dictionary of total size `d`, then find the longest pattern at every
//!   position of a text in `O(n)` work and `O(log d)` depth:
//!
//! ```
//! use pardict::prelude::*;
//!
//! let pram = Pram::seq();
//! let dict = Dictionary::new(vec![b"he".to_vec(), b"she".to_vec(), b"hers".to_vec()]);
//! let matches = dictionary_match(&pram, &dict, b"ushers", 42); // Las Vegas
//! assert_eq!(matches.get(1).unwrap().len, 3); // "she" at position 1
//! assert_eq!(matches.get(2).unwrap().len, 4); // "hers" at position 2
//! ```
//!
//! * **LZ1/LZ77 compression (Theorems 4.2–4.3)** — the greedy-optimal
//!   dynamic-dictionary parse and its inverse, both `O(n)` work:
//!
//! ```
//! use pardict::prelude::*;
//!
//! let pram = Pram::seq();
//! let text = b"abababab";
//! let tokens = lz1_compress(&pram, text, 7);
//! assert!(tokens.len() < text.len());
//! assert_eq!(lz1_decompress(&pram, &tokens, 9), text);
//! ```
//!
//! * **Optimal static-dictionary compression (Theorem 5.3)** — fewest
//!   dictionary references against a prefix-closed dictionary, via
//!   dominating references only:
//!
//! ```
//! use pardict::prelude::*;
//!
//! let pram = Pram::seq();
//! let dict = Dictionary::new(vec![b"aab".to_vec(), b"abbb".to_vec(), b"b".to_vec()]);
//! let matcher = DictMatcher::build(&pram, dict.clone(), 3);
//! let optimal = optimal_parse(&pram, &matcher, b"aabbb").unwrap();
//! let greedy = greedy_parse(&pram, &matcher, b"aabbb").unwrap();
//! assert_eq!(optimal.num_phrases(), 2); // a | abbb
//! assert_eq!(greedy.num_phrases(), 3);  // aab | b | b — greedy is not optimal
//! ```
//!
//! ## Crate map
//!
//! | crate | contents |
//! |---|---|
//! | [`pram`] | work/depth ledger, scans, packs, list ranking, sorting |
//! | [`exec`] | the super-step executor: wave fan-out, per-wave ledger charge and trace span, pipelining, deadlines |
//! | [`fingerprint`] | Karp–Rabin fingerprints mod 2⁶¹−1 |
//! | [`rmq`] | sparse tables, ANSV, cartesian trees, ±1 RMQ, LCA, linear RMQ |
//! | [`veb`] | van Emde Boas predecessor sets |
//! | [`graph`] | forests, Euler tours, connected components |
//! | [`suffix`] | suffix arrays/trees, suffix & Weiner links, LCP oracles |
//! | [`ancestors`] | nearest marked / colored ancestors (§3.2) |
//! | [`core`] | the dictionary matcher (§3) with checker and baselines |
//! | [`compress`] | LZ1, LZ78, optimal static parsing (§4–§5) |
//! | [`workloads`] | seeded synthetic corpora and dictionaries |
//! | [`service`] | concurrent serving: hot-swap registry, batching, metrics |
//! | [`stream`] | chunked parallel LZ1 streaming, framed random-access container |
//! | [`store`] | crash-safe persistent dictionary state: WAL, snapshots, recovery |
//! | [`search`] | block-parallel dictionary matching over compressed containers |
//! | [`chaos`] | deterministic fault injection and differential verification |
//! | [`cluster`] | sharded routing, scatter-gather, failover across service backends |
//! | [`trace`] | ledger-correlated structured tracing: spans, sampling, JSONL export |

pub use pardict_ancestors as ancestors;
pub use pardict_chaos as chaos;
pub use pardict_cluster as cluster;
pub use pardict_compress as compress;
pub use pardict_core as core;
pub use pardict_exec as exec;
pub use pardict_fingerprint as fingerprint;
pub use pardict_graph as graph;
pub use pardict_pram as pram;
pub use pardict_rmq as rmq;
pub use pardict_search as search;
pub use pardict_service as service;
pub use pardict_store as store;
pub use pardict_stream as stream;
pub use pardict_suffix as suffix;
pub use pardict_trace as trace;
pub use pardict_veb as veb;
pub use pardict_workloads as workloads;

/// The most common imports in one place.
pub mod prelude {
    pub use pardict_compress::{
        bfs_parse, delta_compress, delta_decompress, greedy_parse, lff_parse,
        longest_previous_factor, lz1_compress, lz1_decompress, lz1_nlogn_baseline, lz77_sequential,
        lz77_windowed, lz78_compress, lz78_decompress, optimal_parse, Parse, Phrase, Token,
    };
    pub use pardict_core::{
        dictionary_match, dictionary_match_offline, substring_match, AdaptiveDictMatcher,
        AhoCorasick, DictMatcher, Dictionary, Match, Matches, SubstringMatcher,
    };
    pub use pardict_pram::{Cost, Mode, Pram};
    pub use pardict_search::{grep_container, grep_range, GrepConfig, GrepHit, GrepSummary};
    pub use pardict_stream::{compress_stream, decompress_stream, StreamConfig, StreamReader};
    pub use pardict_suffix::SuffixTree;
    pub use pardict_workloads::Alphabet;
}
