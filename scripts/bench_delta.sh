#!/usr/bin/env bash
# Run the delta-publish benches and collect machine-readable results
# into BENCH_PR9.json ({bench_name: {median_ns, min_ns, samples}} plus
# one delta_wal/bytes record comparing WAL framing bytes for a delta
# against a full publish). Offline like ci.sh: everything resolves
# inside the workspace.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

OUT=${1:-BENCH_PR9.json}
JSONL=$(mktemp)
trap 'rm -f "$JSONL"' EXIT

echo "== cargo bench -p pardict-bench --bench delta"
CRITERION_JSON="$JSONL" cargo bench -p pardict-bench --bench delta

echo "== merging results into $OUT"
python3 - "$JSONL" "$OUT" <<'EOF'
import json, sys

jsonl, out = sys.argv[1], sys.argv[2]
merged = {}
with open(jsonl) as f:
    for line in f:
        line = line.strip()
        if not line:
            continue
        rec = json.loads(line)
        name = rec.pop("bench")
        merged[name] = rec
if not merged:
    sys.exit("bench_delta.sh: no benchmark results captured")

# The acceptance gate: one-pattern delta into the 10k dictionary must be
# at least 10x faster than the full republish, at both layers.
for fast, slow in [
    ("delta_publish/apply_delta_1/10000", "delta_publish/full_rebuild/10000"),
    ("delta_registry/publish_delta_1/10000", "delta_registry/full_republish/10000"),
]:
    ratio = merged[slow]["median_ns"] / max(merged[fast]["median_ns"], 1)
    print(f"{slow} / {fast} = {ratio:.1f}x")
    if ratio < 10:
        sys.exit(f"bench_delta.sh: {fast} is only {ratio:.1f}x faster (need >= 10x)")

with open(out, "w") as f:
    json.dump(merged, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"{len(merged)} benches -> {out}")
EOF

echo "bench_delta.sh: done"
