#!/usr/bin/env bash
# Run the super-step executor benches (barrier vs pipelined wave schedules)
# and collect machine-readable results into BENCH_PR10.json
# ({bench_name: {median_ns, min_ns, samples}}).
# Offline like ci.sh: everything resolves inside the workspace.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

OUT=${1:-BENCH_PR10.json}
JSONL=$(mktemp)
trap 'rm -f "$JSONL"' EXIT

echo "== cargo bench -p pardict-bench --bench wave"
CRITERION_JSON="$JSONL" cargo bench -p pardict-bench --bench wave

echo "== merging results into $OUT"
python3 - "$JSONL" "$OUT" <<'EOF'
import json, sys

jsonl, out = sys.argv[1], sys.argv[2]
merged = {}
with open(jsonl) as f:
    for line in f:
        line = line.strip()
        if not line:
            continue
        rec = json.loads(line)
        name = rec.pop("bench")
        merged[name] = rec
if not merged:
    sys.exit("bench_wave.sh: no benchmark results captured")
with open(out, "w") as f:
    json.dump(merged, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"{len(merged)} benches -> {out}")
EOF

echo "bench_wave.sh: done"
