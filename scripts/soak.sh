#!/usr/bin/env bash
# Soak tier: the long-running randomized suites in tests/soak.rs, run in
# release mode under a wall-clock budget. Seeds are fixed constants inside
# the tests, so any failure reproduces by rerunning the named test:
#
#   cargo test --release --test soak -- --ignored <test_name>
#
# Budget is configurable: SOAK_TIME_BUDGET=<seconds> scripts/soak.sh
# (default 1800). A budget overrun exits 124 (timeout's convention) so CI
# can tell "too slow" from "wrong".
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true
BUDGET="${SOAK_TIME_BUDGET:-1800}"

echo "== soak: release build"
cargo build --release --tests

echo "== soak: full suites (budget ${BUDGET}s)"
if ! timeout "$BUDGET" cargo test --release --test soak -- --ignored; then
  status=$?
  if [ "$status" -eq 124 ]; then
    echo "soak.sh: time budget of ${BUDGET}s exceeded" >&2
  else
    echo "soak.sh: soak failure — seeds are fixed in tests/soak.rs;" \
         "rerun the named test to reproduce" >&2
  fi
  exit "$status"
fi

echo "soak.sh: all green"
