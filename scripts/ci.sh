#!/usr/bin/env bash
# Offline CI gate: formatting, lints, release build, and the test suite.
# Must not require network access — all dependencies resolve inside the
# workspace (see vendor/README.md).
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "== cargo build --release"
cargo build --release

echo "== cargo test -q"
cargo test -q

echo "ci.sh: all green"
