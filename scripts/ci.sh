#!/usr/bin/env bash
# Offline CI gate: formatting, lints, release build, and the test suite.
# Must not require network access — all dependencies resolve inside the
# workspace (see vendor/README.md).
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "== cargo build --release"
cargo build --release

echo "== cargo test -q"
cargo test -q

echo "== stream container smoke"
# End-to-end over the release binary: multi-block streaming round-trip,
# random-access slice, and corruption detection with a nonzero exit.
PARDICT=target/release/pardict
SMOKE=$(mktemp -d)
trap 'rm -rf "$SMOKE"' EXIT
seq 1 200000 > "$SMOKE/input.bin"   # ~1.3 MB, NUL-free, ~20 blocks

"$PARDICT" compress --stream "$SMOKE/input.bin" -o "$SMOKE/packed.pdzs"
"$PARDICT" decompress "$SMOKE/packed.pdzs" -o "$SMOKE/roundtrip.bin"
cmp "$SMOKE/input.bin" "$SMOKE/roundtrip.bin"

# cat --range must equal the same slice of the original.
"$PARDICT" cat --range 100000..164096 "$SMOKE/packed.pdzs" -o "$SMOKE/slice.bin"
dd if="$SMOKE/input.bin" of="$SMOKE/slice.want" bs=1 skip=100000 count=64096 status=none
cmp "$SMOKE/slice.bin" "$SMOKE/slice.want"

# Corrupt one byte in the middle (guaranteed change: increment mod 256)
# and require a nonzero exit that names the damaged block.
cp "$SMOKE/packed.pdzs" "$SMOKE/corrupt.pdzs"
SIZE=$(wc -c < "$SMOKE/packed.pdzs")
MID=$((SIZE / 2))
BYTE=$(dd if="$SMOKE/corrupt.pdzs" bs=1 skip="$MID" count=1 status=none | od -An -tu1 | tr -d ' ')
printf "$(printf '\\%03o' $(( (BYTE + 1) % 256 )))" |
  dd of="$SMOKE/corrupt.pdzs" bs=1 seek="$MID" count=1 conv=notrunc status=none
if "$PARDICT" decompress "$SMOKE/corrupt.pdzs" -o /dev/null 2> "$SMOKE/err.txt"; then
  echo "ci.sh: corrupted container decompressed cleanly" >&2
  exit 1
fi
grep -qi "block" "$SMOKE/err.txt"

echo "== compressed-domain grep smoke"
# grep over the container must equal byte-offset grep over the raw bytes
# ("12345" has no self-overlap, so `grep -bo` lists every occurrence).
"$PARDICT" grep 12345 --offsets --in "$SMOKE/packed.pdzs" > "$SMOKE/grep.zip.txt"
grep -bo 12345 "$SMOKE/input.bin" | cut -d: -f1 > "$SMOKE/grep.raw.txt"
cmp "$SMOKE/grep.zip.txt" "$SMOKE/grep.raw.txt"
test -s "$SMOKE/grep.zip.txt"

echo "== executor wave smoke"
# Wave-size independence at the process level: the super-step executor
# must produce byte-identical hits with the wave forced to one block (a
# degenerate 20-wave schedule) and with the barrier schedule, matching
# the default pipelined run above.
"$PARDICT" grep 12345 --offsets --wave 1 --in "$SMOKE/packed.pdzs" > "$SMOKE/grep.w1.txt"
cmp "$SMOKE/grep.zip.txt" "$SMOKE/grep.w1.txt"
"$PARDICT" grep 12345 --offsets --barrier --in "$SMOKE/packed.pdzs" > "$SMOKE/grep.bar.txt"
cmp "$SMOKE/grep.zip.txt" "$SMOKE/grep.bar.txt"

# Same one-byte corruption: nonzero exit naming the damaged block, while
# matches from the intact blocks survive as a subset of the clean offsets.
if "$PARDICT" grep 12345 --offsets --in "$SMOKE/corrupt.pdzs" \
    > "$SMOKE/grep.cor.txt" 2> "$SMOKE/grep.err.txt"; then
  echo "ci.sh: corrupted container grepped cleanly" >&2
  exit 1
fi
grep -qi "block" "$SMOKE/grep.err.txt"
test -s "$SMOKE/grep.cor.txt"
test -z "$(comm -23 <(sort "$SMOKE/grep.cor.txt") <(sort "$SMOKE/grep.raw.txt"))"

echo "== chaos fault-injection smoke"
# Scripted faults + wire chaos + ledger audit, all from one seed. A
# violation exits nonzero and the report reproduces byte-for-byte from
# the seed below.
CHAOS_SEED=2026
CHAOS_ROUNDS=3
if ! "$PARDICT" chaos --seed "$CHAOS_SEED" --rounds "$CHAOS_ROUNDS" \
    > "$SMOKE/chaos.txt" 2> "$SMOKE/chaos.err.txt"; then
  echo "ci.sh: chaos oracles violated — reproduce with:" >&2
  echo "  $PARDICT chaos --seed $CHAOS_SEED --rounds $CHAOS_ROUNDS" >&2
  cat "$SMOKE/chaos.txt" "$SMOKE/chaos.err.txt" >&2
  exit 1
fi
grep -q ", 0 violated" "$SMOKE/chaos.txt"
# Determinism contract: same seed, byte-identical report.
"$PARDICT" chaos --seed "$CHAOS_SEED" --rounds "$CHAOS_ROUNDS" > "$SMOKE/chaos2.txt"
if ! cmp -s "$SMOKE/chaos.txt" "$SMOKE/chaos2.txt"; then
  echo "ci.sh: chaos report not byte-identical for seed $CHAOS_SEED" >&2
  diff "$SMOKE/chaos.txt" "$SMOKE/chaos2.txt" >&2 || true
  exit 1
fi

echo "== cluster smoke"
# In-process failover selftest: 3 backends, seeded mixed workload vs a
# single-node oracle, one backend killed mid-run. Must exit 0 with a
# degraded-but-correct summary, byte-identical across runs of one seed.
CLUSTER_SEED=2026
"$PARDICT" cluster --selftest --requests 60 --seed "$CLUSTER_SEED" \
  > "$SMOKE/cluster.txt" 2> /dev/null
grep -q "cluster selftest ok" "$SMOKE/cluster.txt"
grep -q "degraded responses" "$SMOKE/cluster.txt"
"$PARDICT" cluster --selftest --requests 60 --seed "$CLUSTER_SEED" \
  > "$SMOKE/cluster2.txt" 2> /dev/null
if ! cmp -s "$SMOKE/cluster.txt" "$SMOKE/cluster2.txt"; then
  echo "ci.sh: cluster selftest not byte-identical for seed $CLUSTER_SEED" >&2
  diff "$SMOKE/cluster.txt" "$SMOKE/cluster2.txt" >&2 || true
  exit 1
fi

# Process-level: the router spawns 3 real `pardict serve` children on
# ephemeral ports, routes a mixed workload against an in-process oracle,
# SIGKILLs one child at the halfway mark, and must still exit 0 with the
# degraded flag raised and every answer equal to the oracle's.
"$PARDICT" cluster --smoke --requests 60 --seed 7 \
  > "$SMOKE/cluster.smoke.txt" 2> /dev/null
grep -q "cluster smoke ok" "$SMOKE/cluster.smoke.txt"
grep -q "degraded responses" "$SMOKE/cluster.smoke.txt"

echo "== store crash-recovery smoke"
# Kill-and-recover over the release binary: a `serve --data-dir` child
# acknowledges half the dictionaries, gets SIGKILLed mid-publish, and is
# restarted from the same directory; every acknowledged dictionary must
# come back with the right digests and the right match answers. The
# summary is byte-identical across runs of one seed.
STORE_SEED=2026
"$PARDICT" store --smoke --dicts 6 --seed "$STORE_SEED" \
  > "$SMOKE/store.txt" 2> /dev/null
grep -q "store-smoke: ok" "$SMOKE/store.txt"
grep -q "SIGKILL mid-publish" "$SMOKE/store.txt"
"$PARDICT" store --smoke --dicts 6 --seed "$STORE_SEED" \
  > "$SMOKE/store2.txt" 2> /dev/null
if ! cmp -s "$SMOKE/store.txt" "$SMOKE/store2.txt"; then
  echo "ci.sh: store smoke not byte-identical for seed $STORE_SEED" >&2
  diff "$SMOKE/store.txt" "$SMOKE/store2.txt" >&2 || true
  exit 1
fi

echo "== delta publish smoke"
# The incremental-update twin of the store smoke: publish v1, delta to
# v2 over the wire, SIGKILL mid-delta, restart, and require every
# acknowledged delta to recover to the folded pattern set (digests and
# match answers against the library oracle), then accept another delta.
DELTA_SEED=2027
"$PARDICT" store --smoke --delta --dicts 6 --seed "$DELTA_SEED" \
  > "$SMOKE/delta.txt" 2> /dev/null
grep -q "delta-smoke: ok" "$SMOKE/delta.txt"
grep -q "SIGKILL mid-delta" "$SMOKE/delta.txt"
"$PARDICT" store --smoke --delta --dicts 6 --seed "$DELTA_SEED" \
  > "$SMOKE/delta2.txt" 2> /dev/null
if ! cmp -s "$SMOKE/delta.txt" "$SMOKE/delta2.txt"; then
  echo "ci.sh: delta smoke not byte-identical for seed $DELTA_SEED" >&2
  diff "$SMOKE/delta.txt" "$SMOKE/delta2.txt" >&2 || true
  exit 1
fi

echo "== trace smoke"
# Seeded traced selftest: export must be byte-identical across two runs
# of one seed, the viewer must render it (exit 0), and a malformed file
# must exit 1.
TRACE_SEED=0x7ACE
"$PARDICT" serve --selftest --requests 24 --trace-seed "$TRACE_SEED" \
  --trace-out "$SMOKE/trace.jsonl" > "$SMOKE/trace.txt" 2> /dev/null
grep -q "trace selftest ok" "$SMOKE/trace.txt"
"$PARDICT" serve --selftest --requests 24 --trace-seed "$TRACE_SEED" \
  --trace-out "$SMOKE/trace2.jsonl" > /dev/null 2> /dev/null
if ! cmp -s "$SMOKE/trace.jsonl" "$SMOKE/trace2.jsonl"; then
  echo "ci.sh: trace export not byte-identical for seed $TRACE_SEED" >&2
  diff "$SMOKE/trace.jsonl" "$SMOKE/trace2.jsonl" >&2 || true
  exit 1
fi
"$PARDICT" trace "$SMOKE/trace.jsonl" > "$SMOKE/trace.view.txt"
grep -q "spans" "$SMOKE/trace.view.txt"
echo 'not json' > "$SMOKE/trace.bad.jsonl"
if "$PARDICT" trace "$SMOKE/trace.bad.jsonl" > /dev/null 2> /dev/null; then
  echo "ci.sh: malformed trace file viewed cleanly" >&2
  exit 1
fi

echo "== soak smoke slice"
# The un-ignored *_smoke twins of every soak, in release mode (the full
# #[ignore]d suites run via scripts/soak.sh on their own budget).
cargo test -q --release --test soak

echo "ci.sh: all green"
