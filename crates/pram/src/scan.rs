//! Reductions and prefix scans with the classic work-optimal block structure.
//!
//! A scan over `n` elements uses virtual processors owning blocks of
//! `Θ(log n)` elements: a local pass per block (depth = block length), a
//! Blelloch up/down sweep over the `n / log n` block sums (depth
//! `O(log n)`), and a local downsweep. Total: `O(n)` work, `O(log n)` depth —
//! exactly the envelope the paper's Lemma-level machinery assumes.

use crate::ceil_log2;
use crate::ctx::Pram;
use rayon::prelude::*;

/// Threshold mirroring `ctx::PAR_THRESHOLD` for block-level parallelism.
const PAR_BLOCKS: usize = 8;

impl Pram {
    /// Associative reduction of `xs` with identity `id`.
    ///
    /// `O(n)` work, `O(log n)` depth.
    pub fn reduce<T, F>(&self, xs: &[T], id: T, op: F) -> T
    where
        T: Copy + Send + Sync,
        F: Fn(T, T) -> T + Sync,
    {
        let n = xs.len();
        if n == 0 {
            return id;
        }
        let b = block_len(n);
        let blocks: Vec<&[T]> = xs.chunks(b).collect();
        // Local pass: each virtual processor folds its block.
        self.ledger().charge_work(n as u64);
        self.ledger().charge_depth(b as u64);
        let sums: Vec<T> = if self.mode() == crate::Mode::Par && blocks.len() >= PAR_BLOCKS {
            blocks
                .par_iter()
                .map(|c| c.iter().copied().fold(id, &op))
                .collect()
        } else {
            blocks
                .iter()
                .map(|c| c.iter().copied().fold(id, &op))
                .collect()
        };
        // Tree pass over the block sums.
        self.ledger().charge_work(sums.len() as u64);
        self.ledger()
            .charge_depth(u64::from(ceil_log2(sums.len())).max(1));
        sums.into_iter().fold(id, op)
    }

    /// Exclusive prefix scan: `out[i] = op(xs[0], .., xs[i-1])`, `out[0] = id`.
    ///
    /// `O(n)` work, `O(log n)` depth.
    pub fn scan_exclusive<T, F>(&self, xs: &[T], id: T, op: F) -> Vec<T>
    where
        T: Copy + Send + Sync,
        F: Fn(T, T) -> T + Sync,
    {
        let n = xs.len();
        if n == 0 {
            return Vec::new();
        }
        let b = block_len(n);
        let nblocks = n.div_ceil(b);

        // Phase 1: local block reductions. Depth = block length.
        self.ledger().charge_work(n as u64);
        self.ledger().charge_depth(b as u64);
        let mut sums: Vec<T> = xs
            .chunks(b)
            .map(|c| c.iter().copied().fold(id, &op))
            .collect();

        // Phase 2: Blelloch up/down sweep over the block sums, turning them
        // into exclusive block offsets. Depth = 2·ceil(log2(#blocks)).
        self.exclusive_sweep_in_place(&mut sums, id, &op);

        // Phase 3: local downsweep writing the final prefix values.
        self.ledger().charge_work(n as u64);
        self.ledger().charge_depth(b as u64);
        let emit = |(bi, chunk): (usize, &[T])| -> Vec<T> {
            let mut acc = sums[bi];
            let mut out = Vec::with_capacity(chunk.len());
            for &x in chunk {
                out.push(acc);
                acc = op(acc, x);
            }
            out
        };
        if self.mode() == crate::Mode::Par && nblocks >= PAR_BLOCKS {
            xs.chunks(b)
                .enumerate()
                .collect::<Vec<_>>()
                .into_par_iter()
                .flat_map_iter(emit)
                .collect()
        } else {
            xs.chunks(b).enumerate().flat_map(emit).collect()
        }
    }

    /// Inclusive prefix scan: `out[i] = op(xs[0], .., xs[i])`.
    pub fn scan_inclusive<T, F>(&self, xs: &[T], id: T, op: F) -> Vec<T>
    where
        T: Copy + Send + Sync,
        F: Fn(T, T) -> T + Sync,
    {
        let mut out = self.scan_exclusive(xs, id, &op);
        self.for_each_mut(&mut out, |i, o| *o = op(*o, xs[i]));
        out
    }

    /// Blelloch exclusive up/down sweep over a (block-sums sized) vector.
    ///
    /// The vector is padded to a power of two with identities so both sweeps
    /// are perfectly regular; only tree depth is charged.
    fn exclusive_sweep_in_place<T, F>(&self, a: &mut Vec<T>, id: T, op: &F)
    where
        T: Copy + Send + Sync,
        F: Fn(T, T) -> T + Sync,
    {
        let m = a.len();
        if m == 0 {
            return;
        }
        if m == 1 {
            self.ledger().round(1);
            a[0] = id;
            return;
        }
        let padded = m.next_power_of_two();
        a.resize(padded, id);
        // Upsweep.
        let mut stride = 1usize;
        while stride < padded {
            let width = padded / (2 * stride);
            self.ledger().round(width.max(1) as u64);
            let mut i = 2 * stride - 1;
            while i < padded {
                a[i] = op(a[i - stride], a[i]);
                i += 2 * stride;
            }
            stride *= 2;
        }
        // Downsweep.
        a[padded - 1] = id;
        let mut stride = padded / 2;
        loop {
            let width = padded / (2 * stride);
            self.ledger().round(width.max(1) as u64);
            let mut i = 2 * stride - 1;
            while i < padded {
                let left = a[i - stride];
                let parent = a[i];
                a[i - stride] = parent;
                // Non-commutative order matters: the right child's exclusive
                // prefix is everything before the parent, then the left
                // subtree.
                a[i] = op(parent, left);
                i += 2 * stride;
            }
            if stride == 1 {
                break;
            }
            stride /= 2;
        }
        a.truncate(m);
    }

    /// Exclusive prefix sums of `u64`s.
    pub fn scan_exclusive_sum(&self, xs: &[u64]) -> Vec<u64> {
        self.scan_exclusive(xs, 0u64, |a, b| a + b)
    }

    /// Inclusive prefix sums of `u64`s.
    pub fn scan_inclusive_sum(&self, xs: &[u64]) -> Vec<u64> {
        self.scan_inclusive(xs, 0u64, |a, b| a + b)
    }

    /// Inclusive prefix maxima of `i64`s (Lemma 2.3 companion; used by the
    /// §5 dominating-edge construction).
    pub fn prefix_max_inclusive(&self, xs: &[i64]) -> Vec<i64> {
        self.scan_inclusive(xs, i64::MIN, |a, b| a.max(b))
    }

    /// Total sum (convenience over [`Pram::reduce`]).
    pub fn sum_u64(&self, xs: &[u64]) -> u64 {
        self.reduce(xs, 0u64, |a, b| a + b)
    }

    /// Maximum value, or `None` for an empty slice.
    pub fn max_u64(&self, xs: &[u64]) -> Option<u64> {
        if xs.is_empty() {
            None
        } else {
            Some(self.reduce(xs, 0u64, |a, b| a.max(b)))
        }
    }
}

/// Block length `Θ(log n)` used by the work-optimal primitives.
fn block_len(n: usize) -> usize {
    (ceil_log2(n) as usize).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Mode, Pram};

    fn oracle_exclusive(xs: &[u64]) -> Vec<u64> {
        let mut out = Vec::with_capacity(xs.len());
        let mut acc = 0;
        for &x in xs {
            out.push(acc);
            acc += x;
        }
        out
    }

    #[test]
    fn scan_matches_oracle_various_sizes() {
        let pram = Pram::seq();
        for n in [0usize, 1, 2, 3, 7, 8, 9, 63, 64, 65, 1000, 4096, 5000] {
            let xs: Vec<u64> = (0..n as u64).map(|i| i * 7 % 13).collect();
            assert_eq!(pram.scan_exclusive_sum(&xs), oracle_exclusive(&xs), "n={n}");
        }
    }

    #[test]
    fn inclusive_scan_shifts_exclusive() {
        let pram = Pram::seq();
        let xs: Vec<u64> = (1..=100).collect();
        let inc = pram.scan_inclusive_sum(&xs);
        assert_eq!(inc[0], 1);
        assert_eq!(inc[99], 5050);
    }

    #[test]
    fn par_and_seq_agree() {
        let s = Pram::new(Mode::Seq);
        let p = Pram::new(Mode::Par);
        let xs: Vec<u64> = (0..10_000).map(|i| i % 97).collect();
        assert_eq!(s.scan_exclusive_sum(&xs), p.scan_exclusive_sum(&xs));
        assert_eq!(s.cost(), p.cost());
    }

    #[test]
    fn reduce_sum_and_max() {
        let pram = Pram::seq();
        let xs: Vec<u64> = (0..1000).collect();
        assert_eq!(pram.sum_u64(&xs), 499_500);
        assert_eq!(pram.max_u64(&xs), Some(999));
        assert_eq!(pram.max_u64(&[]), None);
    }

    #[test]
    fn prefix_max_inclusive_works() {
        let pram = Pram::seq();
        let xs = vec![3i64, 1, 4, 1, 5, 9, 2, 6];
        assert_eq!(pram.prefix_max_inclusive(&xs), vec![3, 3, 4, 4, 5, 9, 9, 9]);
    }

    #[test]
    fn scan_work_linear_depth_logarithmic() {
        for n in [1usize << 10, 1 << 14, 1 << 17] {
            let pram = Pram::seq();
            let xs = vec![1u64; n];
            pram.scan_exclusive_sum(&xs);
            let c = pram.cost();
            assert!(
                c.work <= 8 * n as u64,
                "scan work {} not linear in n={n}",
                c.work
            );
            assert!(
                c.depth <= 8 * u64::from(ceil_log2(n)),
                "scan depth {} not logarithmic for n={n}",
                c.depth
            );
        }
    }
}
