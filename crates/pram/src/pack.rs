//! Stream compaction: pack the selected elements of a round's output into a
//! dense array. Flags → prefix sums → scatter: `O(n)` work, `O(log n)` depth.

use crate::ctx::Pram;

impl Pram {
    /// Indices `i` with `flags[i]` set, in increasing order.
    pub fn pack_indices(&self, flags: &[bool]) -> Vec<usize> {
        let ones: Vec<u64> = self.map(flags, |_, &f| u64::from(f));
        let offsets = self.scan_exclusive_sum(&ones);
        let total = offsets.last().map_or(0, |&o| o) + ones.last().map_or(0, |&o| o);
        let mut out = vec![0usize; total as usize];
        self.ledger().round(flags.len() as u64);
        for (i, &f) in flags.iter().enumerate() {
            if f {
                out[offsets[i] as usize] = i;
            }
        }
        out
    }

    /// Dense copy of the elements whose flag is set.
    pub fn pack<T: Copy + Send + Sync>(&self, xs: &[T], flags: &[bool]) -> Vec<T> {
        assert_eq!(xs.len(), flags.len());
        let idx = self.pack_indices(flags);
        self.gather(xs, &idx)
    }

    /// One-round predicate evaluation followed by compaction.
    pub fn filter<T, P>(&self, xs: &[T], pred: P) -> Vec<T>
    where
        T: Copy + Send + Sync,
        P: Fn(usize, &T) -> bool + Sync,
    {
        let flags = self.map(xs, |i, x| pred(i, x));
        self.pack(xs, &flags)
    }
}

#[cfg(test)]
mod tests {
    use crate::{ceil_log2, Pram};

    #[test]
    fn pack_indices_selects_in_order() {
        let pram = Pram::seq();
        let flags = vec![true, false, true, true, false, true];
        assert_eq!(pram.pack_indices(&flags), vec![0, 2, 3, 5]);
    }

    #[test]
    fn pack_empty_and_none_selected() {
        let pram = Pram::seq();
        assert_eq!(pram.pack_indices(&[]), Vec::<usize>::new());
        assert_eq!(pram.pack_indices(&[false, false]), Vec::<usize>::new());
    }

    #[test]
    fn filter_matches_std() {
        let pram = Pram::seq();
        let xs: Vec<u32> = (0..500).collect();
        let got = pram.filter(&xs, |_, &x| x % 7 == 0);
        let want: Vec<u32> = xs.iter().copied().filter(|x| x % 7 == 0).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn pack_cost_envelope() {
        let n = 1 << 15;
        let pram = Pram::seq();
        let flags = vec![true; n];
        pram.pack_indices(&flags);
        let c = pram.cost();
        assert!(c.work <= 12 * n as u64);
        assert!(c.depth <= 10 * u64::from(ceil_log2(n)));
    }
}
