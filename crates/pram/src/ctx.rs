//! The PRAM execution context: wide synchronous rounds over slices.

use crate::ledger::{Cost, Ledger};
use rayon::prelude::*;

/// Execution policy for the wide rounds.
///
/// Both modes produce *identical results and identical ledger costs*; `Par`
/// merely runs each round's body on the rayon thread pool for wall-clock
/// speed. Tests default to `Seq` for determinism of timing-independent
/// behaviour; benches sweep both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mode {
    /// Run rounds as plain sequential loops.
    #[default]
    Seq,
    /// Run rounds on the global rayon pool.
    Par,
}

/// Threshold below which `Par` rounds fall back to sequential loops: rayon
/// task spawning costs more than the loop itself for tiny inputs.
const PAR_THRESHOLD: usize = 2048;

/// The simulated arbitrary-CRCW PRAM.
///
/// All parallel algorithms in the workspace take a `&Pram` and express
/// themselves through its primitives; the embedded [`Ledger`] then reports
/// the work/depth the paper's theorems bound.
#[derive(Debug, Default)]
pub struct Pram {
    ledger: Ledger,
    mode: Mode,
}

impl Pram {
    /// A fresh PRAM with the given execution policy.
    #[must_use]
    pub fn new(mode: Mode) -> Self {
        Self {
            ledger: Ledger::new(),
            mode,
        }
    }

    /// Sequential-execution PRAM (costs identical to `Par`).
    #[must_use]
    pub fn seq() -> Self {
        Self::new(Mode::Seq)
    }

    /// Rayon-backed PRAM.
    #[must_use]
    pub fn par() -> Self {
        Self::new(Mode::Par)
    }

    /// Execution policy.
    #[must_use]
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The cost ledger.
    #[must_use]
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// Accumulated cost so far.
    #[must_use]
    pub fn cost(&self) -> Cost {
        self.ledger.cost()
    }

    /// Run `f` and return its result together with the cost it incurred.
    pub fn metered<R>(&self, f: impl FnOnce(&Self) -> R) -> (R, Cost) {
        let before = self.cost();
        let r = f(self);
        (r, self.cost().since(before))
    }

    #[inline]
    fn run_par(&self, n: usize) -> bool {
        self.mode == Mode::Par && n >= PAR_THRESHOLD
    }

    /// One wide round: `out[i] = f(i)` for `i in 0..n`, depth 1, work `n`.
    pub fn tabulate<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync + Send,
    {
        self.ledger.round(n as u64);
        if self.run_par(n) {
            (0..n).into_par_iter().map(f).collect()
        } else {
            (0..n).map(f).collect()
        }
    }

    /// One wide round mapping a slice: depth 1, work `xs.len()`.
    pub fn map<T, U, F>(&self, xs: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &T) -> U + Sync + Send,
    {
        self.ledger.round(xs.len() as u64);
        if self.run_par(xs.len()) {
            xs.par_iter().enumerate().map(|(i, x)| f(i, x)).collect()
        } else {
            xs.iter().enumerate().map(|(i, x)| f(i, x)).collect()
        }
    }

    /// One wide round with *per-element variable cost*: the closure returns
    /// `(value, ops)` and the ledger is charged the summed `ops` as work and
    /// the **maximum** `ops` as depth (on a PRAM the round lasts as long as
    /// its slowest processor).
    pub fn tabulate_costed<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> (T, u64) + Sync + Send,
    {
        let (out, work, depth): (Vec<T>, u64, u64) = if self.run_par(n) {
            let pairs: Vec<(T, u64)> = (0..n).into_par_iter().map(f).collect();
            let work = pairs.iter().map(|p| p.1).sum();
            let depth = pairs.iter().map(|p| p.1).max().unwrap_or(0);
            (pairs.into_iter().map(|p| p.0).collect(), work, depth)
        } else {
            let mut work = 0u64;
            let mut depth = 0u64;
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                let (v, c) = f(i);
                work += c;
                depth = depth.max(c);
                out.push(v);
            }
            (out, work, depth)
        };
        self.ledger.charge_work(work.max(n as u64));
        self.ledger.charge_depth(depth.max(1));
        out
    }

    /// One wide round updating a mutable slice in place: `f(i, &mut xs[i])`.
    pub fn for_each_mut<T, F>(&self, xs: &mut [T], f: F)
    where
        T: Send + Sync,
        F: Fn(usize, &mut T) + Sync + Send,
    {
        self.ledger.round(xs.len() as u64);
        if self.run_par(xs.len()) {
            xs.par_iter_mut().enumerate().for_each(|(i, x)| f(i, x));
        } else {
            xs.iter_mut().enumerate().for_each(|(i, x)| f(i, x));
        }
    }

    /// Gather round: `out[i] = src[idx[i]]`.
    pub fn gather<T: Copy + Sync + Send>(&self, src: &[T], idx: &[usize]) -> Vec<T> {
        self.map(idx, |_, &j| src[j])
    }

    /// Exclusive-write scatter round: `out[idx[i]] = vals[i]`.
    ///
    /// Callers must guarantee the target indices are distinct (EREW-style
    /// write); this is checked in debug builds.
    pub fn scatter<T: Copy + Send + Sync>(&self, out: &mut [T], idx: &[usize], vals: &[T]) {
        assert_eq!(idx.len(), vals.len());
        #[cfg(debug_assertions)]
        {
            let mut seen = vec![false; out.len()];
            for &j in idx {
                assert!(!seen[j], "scatter target {j} written twice");
                seen[j] = true;
            }
        }
        self.ledger.round(idx.len() as u64);
        // The write targets are distinct, so this is race-free; expressing it
        // through safe rayon requires an indirection, so the Seq path is used
        // for the actual writes and Par mode pre-computes in parallel only
        // when the compiler can't: scatter is memory-bound anyway.
        for (k, &j) in idx.iter().enumerate() {
            out[j] = vals[k];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tabulate_matches_seq_and_par() {
        let s = Pram::seq();
        let p = Pram::par();
        let n = 5000;
        let a = s.tabulate(n, |i| i * i);
        let b = p.tabulate(n, |i| i * i);
        assert_eq!(a, b);
        assert_eq!(s.cost(), p.cost());
    }

    #[test]
    fn map_is_one_round() {
        let pram = Pram::seq();
        let xs = vec![1u32, 2, 3];
        let ys = pram.map(&xs, |i, &x| x + i as u32);
        assert_eq!(ys, vec![1, 3, 5]);
        assert_eq!(pram.cost(), Cost { work: 3, depth: 1 });
    }

    #[test]
    fn tabulate_costed_charges_max_as_depth() {
        let pram = Pram::seq();
        let out = pram.tabulate_costed(4, |i| (i, (i as u64 + 1) * 10));
        assert_eq!(out, vec![0, 1, 2, 3]);
        let c = pram.cost();
        assert_eq!(c.work, 10 + 20 + 30 + 40);
        assert_eq!(c.depth, 40);
    }

    #[test]
    fn gather_scatter_roundtrip() {
        let pram = Pram::seq();
        let src = vec![10, 20, 30, 40];
        let idx = vec![3, 1, 0, 2];
        let g = pram.gather(&src, &idx);
        assert_eq!(g, vec![40, 20, 10, 30]);
        let mut out = vec![0; 4];
        pram.scatter(&mut out, &idx, &g);
        assert_eq!(out, src);
    }

    #[test]
    fn for_each_mut_updates_in_place() {
        let pram = Pram::seq();
        let mut xs = vec![1, 2, 3, 4];
        pram.for_each_mut(&mut xs, |i, x| *x += i as i32);
        assert_eq!(xs, vec![1, 3, 5, 7]);
    }

    #[test]
    fn metered_reports_delta() {
        let pram = Pram::seq();
        pram.tabulate(10, |i| i);
        let (_, cost) = pram.metered(|p| p.tabulate(100, |i| i));
        assert_eq!(
            cost,
            Cost {
                work: 100,
                depth: 1
            }
        );
    }

    #[test]
    fn par_paths_above_threshold_match_seq() {
        // Exercise every Par code path with n > PAR_THRESHOLD.
        let n = 3000;
        let s = Pram::seq();
        let p = Pram::par();
        let xs: Vec<u64> = (0..n as u64).collect();
        assert_eq!(
            s.map(&xs, |i, &x| x * 2 + i as u64),
            p.map(&xs, |i, &x| x * 2 + i as u64)
        );
        assert_eq!(
            s.tabulate_costed(n, |i| (i * 3, 2)),
            p.tabulate_costed(n, |i| (i * 3, 2))
        );
        let mut a = xs.clone();
        let mut b = xs.clone();
        s.for_each_mut(&mut a, |i, x| *x += i as u64);
        p.for_each_mut(&mut b, |i, x| *x += i as u64);
        assert_eq!(a, b);
        assert_eq!(s.cost(), p.cost());
    }

    #[test]
    #[should_panic(expected = "written twice")]
    #[cfg(debug_assertions)]
    fn scatter_rejects_duplicate_targets() {
        let pram = Pram::seq();
        let mut out = vec![0; 3];
        pram.scatter(&mut out, &[1, 1], &[5, 6]);
    }
}
