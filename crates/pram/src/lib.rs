#![warn(missing_docs)]

//! # pardict-pram — an arbitrary-CRCW-PRAM cost simulator
//!
//! The SPAA'95 paper states all of its bounds on the **arbitrary CRCW PRAM**:
//! an algorithm is *work-optimal* if its total operation count matches the
//! best sequential algorithm, and *fast* if its parallel time (the number of
//! dependent rounds, i.e. the **depth** of the computation) is logarithmic.
//!
//! Real PRAMs do not exist, so this crate provides the substitution used by
//! the whole workspace: algorithms are written as sequences of **wide
//! synchronous rounds** executed either sequentially or on a rayon thread
//! pool (the results are identical — only wall-clock differs), while a
//! [`Ledger`] counts the two quantities the paper's theorems actually bound:
//!
//! * **work** — element-operations actually performed, and
//! * **depth** — dependent rounds actually executed (PRAM "time").
//!
//! The crate supplies the classic work-optimal PRAM building blocks used by
//! the paper's algorithms: wide maps, reductions, prefix scans (Blelloch
//! block-sweep, O(n) work / O(log n) depth), stream compaction, pointer
//! jumping, list ranking (Wyllie and work-optimal random-mate), and stable
//! integer sorting (counting/radix rounds).
//!
//! ```
//! use pardict_pram::{Pram, Mode};
//!
//! let pram = Pram::new(Mode::Seq);
//! let xs: Vec<u64> = (0..1024).collect();
//! let prefix = pram.scan_exclusive_sum(&xs);
//! assert_eq!(prefix[3], 0 + 1 + 2);
//! let cost = pram.cost();
//! // Work is linear, depth is logarithmic.
//! assert!(cost.work < 20 * 1024);
//! assert!(cost.depth < 200);
//! ```

mod ctx;
mod jump;
mod ledger;
mod merge;
mod pack;
mod rng;
mod scan;
mod sort;

pub use ctx::{Mode, Pram};
pub use jump::{
    list_rank_random_mate, list_rank_random_mate_full, list_rank_wyllie, list_rank_wyllie_full,
    pointer_jump_roots, ListRanks,
};
pub use ledger::{Cost, Ledger};
pub use rng::SplitMix64;
pub use sort::{radix_sort_by_key, stable_counting_sort_by_key};

/// `ceil(log2(n))` for `n >= 1`; `0` for `n <= 1`.
///
/// Used throughout to size blocks of work-optimal primitives (a virtual
/// processor handles `O(log n)` elements) and to charge tree-round depths.
#[inline]
pub fn ceil_log2(n: usize) -> u32 {
    if n <= 1 {
        0
    } else {
        usize::BITS - (n - 1).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_small_values() {
        assert_eq!(ceil_log2(0), 0);
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(1024), 10);
        assert_eq!(ceil_log2(1025), 11);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn scan_exclusive_matches_fold(xs in prop::collection::vec(0u64..1000, 0..2000)) {
            let pram = Pram::seq();
            let got = pram.scan_exclusive_sum(&xs);
            let mut acc = 0u64;
            for (i, &x) in xs.iter().enumerate() {
                prop_assert_eq!(got[i], acc);
                acc += x;
            }
        }

        #[test]
        fn scan_noncommutative_monoid(xs in prop::collection::vec((1u64..50, 0u64..50), 1..500)) {
            // Affine maps x -> a*x + b under composition (non-commutative).
            const M: u64 = 1_000_000_007;
            let pram = Pram::seq();
            let op = |p: (u64, u64), q: (u64, u64)| ((q.0 * p.0) % M, (q.0 * p.1 + q.1) % M);
            let got = pram.scan_inclusive(&xs, (1, 0), op);
            let mut acc = (1u64, 0u64);
            for (i, &x) in xs.iter().enumerate() {
                acc = op(acc, x);
                prop_assert_eq!(got[i], acc);
            }
        }

        #[test]
        fn radix_sort_sorts_stably(xs in prop::collection::vec((0u64..100, 0u32..1000), 0..1500)) {
            let pram = Pram::seq();
            let got = radix_sort_by_key(&pram, &xs, |&(k, _)| k);
            let mut want = xs.clone();
            want.sort_by_key(|&(k, _)| k); // std stable sort
            prop_assert_eq!(got, want);
        }

        #[test]
        fn merge_by_merges(mut a in prop::collection::vec(0u32..500, 0..800),
                           mut b in prop::collection::vec(0u32..500, 0..800)) {
            a.sort_unstable();
            b.sort_unstable();
            let pram = Pram::seq();
            let got = pram.merge_by(&a, &b, |x, y| x < y);
            let mut want = [a, b].concat();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }

        #[test]
        fn pack_indices_are_the_set_bits(flags in prop::collection::vec(any::<bool>(), 0..1000)) {
            let pram = Pram::seq();
            let got = pram.pack_indices(&flags);
            let want: Vec<usize> = flags.iter().enumerate().filter(|(_, &f)| f).map(|(i, _)| i).collect();
            prop_assert_eq!(got, want);
        }

        #[test]
        fn list_ranking_agrees_with_walk(perm_seed in 0u64..5000, n in 2usize..600) {
            let mut rng = SplitMix64::new(perm_seed);
            let mut perm: Vec<usize> = (0..n).collect();
            for i in (1..n).rev() {
                perm.swap(i, rng.next_below(i as u64 + 1) as usize);
            }
            let mut next = vec![0usize; n];
            for w in perm.windows(2) {
                next[w[0]] = w[1];
            }
            next[perm[n - 1]] = perm[n - 1];
            let pram = Pram::seq();
            let wy = list_rank_wyllie(&pram, &next);
            let rm = list_rank_random_mate(&pram, &next, perm_seed ^ 0xF00);
            prop_assert_eq!(&wy, &rm);
            for (pos, &u) in perm.iter().enumerate() {
                prop_assert_eq!(wy[u], (n - 1 - pos) as u64);
            }
        }
    }
}
