//! Work/depth accounting.

use std::cell::Cell;

/// A snapshot of accumulated PRAM cost.
///
/// `work` is the total number of element-operations executed; `depth` is the
/// number of dependent synchronous rounds (the PRAM time). Both are counted
/// from what the primitives *actually executed*, not from closed-form
/// formulas, so plotting `work / n` and `depth / log n` against `n` gives an
/// empirical check of the paper's optimality claims.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Cost {
    /// Total element-operations.
    pub work: u64,
    /// Dependent rounds (parallel time).
    pub depth: u64,
}

impl Cost {
    /// Component-wise difference `self - earlier`; saturates at zero.
    #[must_use]
    pub fn since(&self, earlier: Cost) -> Cost {
        Cost {
            work: self.work.saturating_sub(earlier.work),
            depth: self.depth.saturating_sub(earlier.depth),
        }
    }

    /// Component-wise sum.
    #[must_use]
    pub fn plus(&self, other: Cost) -> Cost {
        Cost {
            work: self.work + other.work,
            depth: self.depth + other.depth,
        }
    }

    /// True when this cost can account for `other` in both components.
    /// Span-cost bookkeeping relies on this: a parent span's inclusive
    /// cost must dominate the sum of its children's costs.
    #[must_use]
    pub fn dominates(&self, other: Cost) -> bool {
        self.work >= other.work && self.depth >= other.depth
    }
}

/// Interior-mutable work/depth counters.
///
/// The ledger lives on the orchestrating thread: primitives charge bulk
/// costs before/after dispatching their parallel bodies, so no atomics are
/// needed on the hot path (`Cell` keeps the type `!Sync`, which is exactly
/// right — worker threads never see it).
#[derive(Debug, Default)]
pub struct Ledger {
    work: Cell<u64>,
    depth: Cell<u64>,
}

impl Ledger {
    /// A fresh ledger with zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `w` units of work without advancing time.
    #[inline]
    pub fn charge_work(&self, w: u64) {
        self.work.set(self.work.get() + w);
    }

    /// Advance time by `d` rounds without charging work.
    #[inline]
    pub fn charge_depth(&self, d: u64) {
        self.depth.set(self.depth.get() + d);
    }

    /// One synchronous round of width `w`: `w` work, one unit of depth.
    #[inline]
    pub fn round(&self, w: u64) {
        self.charge_work(w);
        self.charge_depth(1);
    }

    /// Current accumulated cost.
    #[inline]
    pub fn cost(&self) -> Cost {
        Cost {
            work: self.work.get(),
            depth: self.depth.get(),
        }
    }

    /// Reset both counters to zero.
    pub fn reset(&self) {
        self.work.set(0);
        self.depth.set(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_charges_work_and_depth() {
        let l = Ledger::new();
        l.round(10);
        l.round(5);
        assert_eq!(l.cost(), Cost { work: 15, depth: 2 });
    }

    #[test]
    fn charge_work_leaves_depth() {
        let l = Ledger::new();
        l.charge_work(7);
        assert_eq!(l.cost(), Cost { work: 7, depth: 0 });
    }

    #[test]
    fn cost_since_subtracts() {
        let l = Ledger::new();
        l.round(10);
        let before = l.cost();
        l.round(3);
        l.round(3);
        let delta = l.cost().since(before);
        assert_eq!(delta, Cost { work: 6, depth: 2 });
    }

    #[test]
    fn reset_zeroes() {
        let l = Ledger::new();
        l.round(10);
        l.reset();
        assert_eq!(l.cost(), Cost::default());
    }

    #[test]
    fn plus_adds() {
        let a = Cost { work: 1, depth: 2 };
        let b = Cost {
            work: 10,
            depth: 20,
        };
        assert_eq!(
            a.plus(b),
            Cost {
                work: 11,
                depth: 22
            }
        );
    }
}
