//! Deterministic pseudo-randomness for randomized PRAM rounds.
//!
//! The random-mate primitives need *per-index, per-round* coin flips that are
//! identical across `Seq` and `Par` execution. A stateless SplitMix64 hash of
//! `(seed, round, index)` provides exactly that without any shared state.

/// SplitMix64: tiny, fast, statistically solid for coin flips and seeds.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Stream seeded by `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix(self.state)
    }

    /// Uniform value in `0..bound` (bound > 0) by multiply-shift.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// The SplitMix64 finalizer as a stateless hash.
#[inline]
#[must_use]
pub fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic coin for `(seed, round, index)`.
#[inline]
#[must_use]
pub fn coin(seed: u64, round: u64, index: usize) -> bool {
    mix(seed ^ round.rotate_left(32) ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)) & 1 == 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(r.next_below(13) < 13);
        }
    }

    #[test]
    fn coins_are_roughly_fair() {
        let heads = (0..10_000).filter(|&i| coin(1, 2, i)).count();
        assert!((4000..6000).contains(&heads), "heads={heads}");
    }

    #[test]
    fn coins_differ_across_rounds() {
        let a: Vec<bool> = (0..64).map(|i| coin(9, 0, i)).collect();
        let b: Vec<bool> = (0..64).map(|i| coin(9, 1, i)).collect();
        assert_ne!(a, b);
    }
}
