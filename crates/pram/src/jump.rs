//! Pointer jumping and list ranking.
//!
//! Three classic tools:
//!
//! * [`pointer_jump_roots`] — resolve every node of a parent forest to its
//!   root by doubling (`O(n log n)` work, `O(log n)` depth). Fine whenever a
//!   log factor is tolerable (the paper's §4.2 uncompression uses the
//!   connected-components route instead when work-optimality matters).
//! * [`list_rank_wyllie`] — Wyllie's list ranking, same envelope.
//! * [`list_rank_random_mate`] — randomized contract-and-replay list ranking:
//!   expected `O(n)` work and `O(log n)` depth, the work-optimal primitive
//!   behind Euler-tour numbering (Lemma 2.1/2.7 machinery).

use crate::ctx::Pram;
use crate::rng::coin;

/// Root of every node in a parent forest (`parent[r] == r` for roots),
/// by pointer doubling. `O(n log n)` work, `O(log n)` depth.
pub fn pointer_jump_roots(pram: &Pram, parent: &[usize]) -> Vec<usize> {
    let n = parent.len();
    let mut p = parent.to_vec();
    loop {
        let next: Vec<usize> = pram.map(&p, |_, &pi| p[pi]);
        let changed = pram.reduce(
            &pram.map(&next, |i, &x| u64::from(x != p[i])),
            0u64,
            |a, b| a + b,
        );
        p = next;
        if changed == 0 {
            break;
        }
        debug_assert!(n > 0);
    }
    p
}

/// Ranks and tails of a union of simple chains.
#[derive(Debug, Clone)]
pub struct ListRanks {
    /// Number of links from each node to the tail of its list.
    pub rank: Vec<u64>,
    /// The tail node of each node's list (a tail `t` has `next[t] == t`).
    pub tail: Vec<usize>,
}

/// Distance (number of links) from each node to the tail of its list.
///
/// `next[t] == t` marks a tail. Wyllie's algorithm: `O(n log n)` work,
/// `O(log n)` depth. Input must be a union of simple chains (no cycles).
pub fn list_rank_wyllie(pram: &Pram, next: &[usize]) -> Vec<u64> {
    list_rank_wyllie_full(pram, next).rank
}

/// Wyllie list ranking also reporting each node's list tail.
pub fn list_rank_wyllie_full(pram: &Pram, next: &[usize]) -> ListRanks {
    let n = next.len();
    let mut rank: Vec<u64> = pram.map(next, |i, &ni| u64::from(ni != i));
    let mut nx = next.to_vec();
    let rounds = crate::ceil_log2(n.max(1)) + 1;
    for _ in 0..rounds {
        let new_rank: Vec<u64> = pram.map(&rank, |i, &r| r + rank[nx[i]]);
        let new_nx: Vec<usize> = pram.map(&nx, |_, &j| nx[j]);
        rank = new_rank;
        nx = new_nx;
    }
    ListRanks { rank, tail: nx }
}

/// Work-optimal randomized list ranking by random-mate contraction.
///
/// Repeatedly splices out an expected constant fraction of nodes (a node `v`
/// is spliced when its predecessor `u` flips heads and `v` flips tails —
/// such splices are provably independent), records each splice, contracts
/// until `n / log n` nodes remain, ranks the remainder with Wyllie, then
/// replays the splices in reverse to fill in every rank. Expected `O(n)`
/// work, `O(log n)` depth. Input must be a union of simple chains.
pub fn list_rank_random_mate(pram: &Pram, next: &[usize], seed: u64) -> Vec<u64> {
    list_rank_random_mate_full(pram, next, seed).rank
}

/// Random-mate list ranking also reporting each node's list tail.
///
/// Same contract and cost envelope as [`list_rank_random_mate`]; the tail is
/// propagated for free through the contraction replay, which is what makes
/// the work-optimal forest-root resolution of §4.2 possible.
pub fn list_rank_random_mate_full(pram: &Pram, next: &[usize], seed: u64) -> ListRanks {
    let n = next.len();
    if n <= 64 {
        return list_rank_wyllie_full(pram, next);
    }

    let mut nx = next.to_vec();
    // Weight of the (contracted) link i -> nx[i]: how many original links it
    // stands for. Tails carry weight 0.
    let mut w: Vec<u64> = pram.map(next, |i, &ni| u64::from(ni != i));
    // pred[j] = unique i with nx[i] == j, or usize::MAX for heads/singletons.
    let mut pred = vec![usize::MAX; n];
    pram.ledger().round(n as u64);
    for (i, &ni) in next.iter().enumerate() {
        if ni != i {
            pred[ni] = i;
        }
    }

    let mut active: Vec<usize> = (0..n).collect();
    let target = (n / (crate::ceil_log2(n) as usize).max(1)).max(64);
    // Each round kills an expected 1/4 of the spliceable nodes; cap rounds
    // defensively (unlucky coins just shift work to the Wyllie base case).
    let max_rounds = 8 * (crate::ceil_log2(n) as u64 + 1);
    let mut events: Vec<Vec<(usize, usize, u64)>> = Vec::new();

    let mut round = 0u64;
    while active.len() > target && round < max_rounds {
        let m = active.len();
        pram.ledger().round(m as u64);
        let mut round_events = Vec::new();
        // Splice v = nx[u] when coin(u) = heads, coin(v) = tails, v not tail.
        // Reads of nx[v], w[v] are stable: v cannot itself splice (tails
        // coin) and nx[v] cannot be spliced (its pred v has tails coin).
        for &u in &active {
            if !coin(seed, round, u) {
                continue;
            }
            let v = nx[u];
            if v == u || nx[v] == v || coin(seed, round, v) {
                continue;
            }
            round_events.push((v, u, w[u]));
            w[u] += w[v];
            let x = nx[v];
            nx[u] = x;
            pred[x] = u;
            // Mark v dead by self-looping its pred entry.
            pred[v] = usize::MAX;
            nx[v] = v;
            w[v] = 0;
        }
        let dead: Vec<bool> = {
            let mut d = vec![false; n];
            for &(v, _, _) in &round_events {
                d[v] = true;
            }
            d
        };
        pram.ledger().round(m as u64);
        active.retain(|&u| !dead[u]);
        events.push(round_events);
        round += 1;
    }

    // Base case: Wyllie on the compacted remainder.
    let m = active.len();
    let mut remap = vec![usize::MAX; n];
    pram.ledger().round(m as u64);
    for (k, &u) in active.iter().enumerate() {
        remap[u] = k;
    }
    let small_next: Vec<usize> = pram.map(&active, |k, &u| {
        let t = remap[nx[u]];
        if t == usize::MAX {
            k
        } else {
            t
        }
    });
    // Wyllie ranks count contracted links; scale by weights instead: run the
    // weighted variant inline.
    let mut rank_small: Vec<u64> = pram.map(&active, |_, &u| w[u]);
    let mut nx_small = small_next;
    let rounds = crate::ceil_log2(m.max(1)) + 1;
    for _ in 0..rounds {
        let nr: Vec<u64> = pram.map(&rank_small, |k, &r| r + rank_small[nx_small[k]]);
        let nn: Vec<usize> = pram.map(&nx_small, |_, &j| nx_small[j]);
        rank_small = nr;
        nx_small = nn;
    }

    let mut rank = vec![0u64; n];
    let mut tail = vec![usize::MAX; n];
    pram.ledger().round(m as u64);
    for (k, &u) in active.iter().enumerate() {
        rank[u] = rank_small[k];
        tail[u] = active[nx_small[k]];
    }

    // Replay splices in reverse: at splice time rank[u] = w_old + rank[v],
    // and v shares u's tail.
    for round_events in events.iter().rev() {
        pram.ledger().round(round_events.len().max(1) as u64);
        for &(v, u, w_old) in round_events {
            rank[v] = rank[u] - w_old;
            tail[v] = tail[u];
        }
    }
    ListRanks { rank, tail }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pram;
    use crate::SplitMix64;

    /// Build `next` for a single chain visiting `perm` in order.
    fn chain_next(perm: &[usize]) -> Vec<usize> {
        let n = perm.len();
        let mut next = vec![0usize; n];
        for w in perm.windows(2) {
            next[w[0]] = w[1];
        }
        next[perm[n - 1]] = perm[n - 1];
        next
    }

    fn oracle_ranks(perm: &[usize]) -> Vec<u64> {
        let n = perm.len();
        let mut rank = vec![0u64; n];
        for (pos, &u) in perm.iter().enumerate() {
            rank[u] = (n - 1 - pos) as u64;
        }
        rank
    }

    fn random_perm(n: usize, seed: u64) -> Vec<usize> {
        let mut rng = SplitMix64::new(seed);
        let mut p: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.next_below(i as u64 + 1) as usize;
            p.swap(i, j);
        }
        p
    }

    #[test]
    fn pointer_jump_finds_roots() {
        let pram = Pram::seq();
        // 0 <- 1 <- 2 <- 3, separate root 4.
        let parent = vec![0, 0, 1, 2, 4];
        assert_eq!(pointer_jump_roots(&pram, &parent), vec![0, 0, 0, 0, 4]);
    }

    #[test]
    fn wyllie_ranks_identity_chain() {
        let pram = Pram::seq();
        let perm: Vec<usize> = (0..100).collect();
        let next = chain_next(&perm);
        assert_eq!(list_rank_wyllie(&pram, &next), oracle_ranks(&perm));
    }

    #[test]
    fn wyllie_ranks_random_chain() {
        let pram = Pram::seq();
        let perm = random_perm(257, 3);
        let next = chain_next(&perm);
        assert_eq!(list_rank_wyllie(&pram, &next), oracle_ranks(&perm));
    }

    #[test]
    fn random_mate_matches_oracle() {
        let pram = Pram::seq();
        for (n, seed) in [(65usize, 1u64), (500, 2), (4096, 3), (10_000, 4)] {
            let perm = random_perm(n, seed);
            let next = chain_next(&perm);
            assert_eq!(
                list_rank_random_mate(&pram, &next, seed * 1000 + 7),
                oracle_ranks(&perm),
                "n={n} seed={seed}"
            );
        }
    }

    #[test]
    fn random_mate_handles_multiple_chains() {
        let pram = Pram::seq();
        // Two chains: 0->1->2 and 3->4; singleton 5.
        let next = vec![1, 2, 2, 4, 4, 5];
        let mut padded = next.clone();
        // Pad to force the contraction path.
        let base = next.len();
        for i in 0..200 {
            let a = base + 2 * i;
            padded.push(a + 1);
            padded.push(a + 1);
        }
        let ranks = list_rank_random_mate(&pram, &padded, 99);
        assert_eq!(&ranks[..6], &[2, 1, 0, 1, 0, 0]);
        for i in 0..200 {
            assert_eq!(ranks[base + 2 * i], 1);
            assert_eq!(ranks[base + 2 * i + 1], 0);
        }
    }

    #[test]
    fn random_mate_work_is_linear() {
        let mut per_elem = Vec::new();
        for n in [1usize << 12, 1 << 15, 1 << 17] {
            let pram = Pram::seq();
            let perm = random_perm(n, 11);
            let next = chain_next(&perm);
            list_rank_random_mate(&pram, &next, 5);
            per_elem.push(pram.cost().work as f64 / n as f64);
        }
        // Work per element must not grow with n (Wyllie's would grow by ~5).
        assert!(
            per_elem[2] < per_elem[0] * 1.5 + 2.0,
            "work/elem grew: {per_elem:?}"
        );
    }
}
