//! Work-optimal parallel merge.
//!
//! Splits one input into `Θ(log n)`-sized chunks, binary-searches each
//! splitter into the other input (one `O(log n)`-deep round), then merges
//! the induced chunk pairs independently. `O(n)` work, `O(log n)` depth.

use crate::ctx::Pram;

impl Pram {
    /// Merge two slices already sorted under `less` into one sorted vector.
    ///
    /// `less(a, b)` must be a strict weak ordering; equal elements keep
    /// `a`-before-`b` order (stable with respect to the pair of inputs).
    pub fn merge_by<T, F>(&self, a: &[T], b: &[T], less: F) -> Vec<T>
    where
        T: Copy + Send + Sync,
        F: Fn(&T, &T) -> bool + Sync + Send,
    {
        let (n, m) = (a.len(), b.len());
        if n == 0 {
            return b.to_vec();
        }
        if m == 0 {
            return a.to_vec();
        }
        let chunk = (crate::ceil_log2(n + m) as usize).max(1);
        let nchunks = n.div_ceil(chunk);

        // Splitter k sits at a[k * chunk]; find how much of b precedes it.
        // For stability, an equal b-element does NOT precede (a wins ties).
        let cuts: Vec<usize> = self.tabulate_costed(nchunks + 1, |k| {
            if k == 0 {
                // Everything in b smaller than a[0] still belongs to the
                // first chunk pair.
                return (0, 1);
            }
            let pos = (k * chunk).min(n);
            if pos == n {
                return (m, 1);
            }
            let pivot = &a[pos];
            // partition_point: first b-index j with !(b[j] < pivot).
            let (mut lo, mut hi) = (0usize, m);
            let mut ops = 1u64;
            while lo < hi {
                let mid = (lo + hi) / 2;
                ops += 1;
                if less(&b[mid], pivot) {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            (lo, ops)
        });

        // Merge chunk pairs independently.
        let pieces: Vec<Vec<T>> = self.tabulate_costed(nchunks, |k| {
            let (alo, ahi) = ((k * chunk).min(n), ((k + 1) * chunk).min(n));
            let (blo, bhi) = (cuts[k], cuts[k + 1]);
            let mut out = Vec::with_capacity(ahi - alo + bhi - blo);
            let (mut i, mut j) = (alo, blo);
            while i < ahi && j < bhi {
                if less(&b[j], &a[i]) {
                    out.push(b[j]);
                    j += 1;
                } else {
                    out.push(a[i]);
                    i += 1;
                }
            }
            out.extend_from_slice(&a[i..ahi]);
            out.extend_from_slice(&b[j..bhi]);
            let cost = out.len() as u64 + 1;
            (out, cost)
        });

        // Concatenate (positions are disjoint and ordered).
        self.ledger().round((n + m) as u64);
        let mut out = Vec::with_capacity(n + m);
        for p in pieces {
            out.extend(p);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SplitMix64;

    #[test]
    fn merges_sorted_runs() {
        let pram = Pram::seq();
        let a: Vec<u32> = (0..100).map(|i| i * 3).collect();
        let b: Vec<u32> = (0..150).map(|i| i * 2 + 1).collect();
        let got = pram.merge_by(&a, &b, |x, y| x < y);
        let mut want = [a, b].concat();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn stability_prefers_a_on_ties() {
        let pram = Pram::seq();
        // Tag elements by source; compare only the key.
        let a: Vec<(u32, char)> = vec![(1, 'a'), (2, 'a'), (2, 'a')];
        let b: Vec<(u32, char)> = vec![(1, 'b'), (2, 'b')];
        let got = pram.merge_by(&a, &b, |x, y| x.0 < y.0);
        assert_eq!(got, vec![(1, 'a'), (1, 'b'), (2, 'a'), (2, 'a'), (2, 'b')]);
    }

    #[test]
    fn empty_sides() {
        let pram = Pram::seq();
        let a: Vec<u32> = vec![1, 2];
        assert_eq!(pram.merge_by(&a, &[], |x, y| x < y), vec![1, 2]);
        assert_eq!(pram.merge_by(&[], &a, |x, y| x < y), vec![1, 2]);
    }

    #[test]
    fn random_merges_match_sort() {
        let pram = Pram::seq();
        let mut rng = SplitMix64::new(8);
        for _ in 0..5 {
            let mut a: Vec<u64> = (0..777).map(|_| rng.next_below(100)).collect();
            let mut b: Vec<u64> = (0..1234).map(|_| rng.next_below(100)).collect();
            a.sort_unstable();
            b.sort_unstable();
            let got = pram.merge_by(&a, &b, |x, y| x < y);
            let mut want = [a, b].concat();
            want.sort_unstable();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn cost_envelope() {
        let pram = Pram::seq();
        let n = 1 << 15;
        let a: Vec<u32> = (0..n as u32).collect();
        let b: Vec<u32> = (0..n as u32).collect();
        pram.merge_by(&a, &b, |x, y| x < y);
        let c = pram.cost();
        assert!(c.work < 10 * 2 * n as u64, "work {}", c.work);
        assert!(
            c.depth < 10 * u64::from(crate::ceil_log2(2 * n)),
            "depth {}",
            c.depth
        );
    }
}
