//! Stable parallel integer sorting: blocked counting-sort rounds and a radix
//! driver.
//!
//! The paper explicitly flags parallel integer sorting as *the* bottleneck
//! for polynomial-size alphabets (an `O(log log d)` work penalty in
//! Theorem 3.2). Our counting sort charges its true cost — `O(n + k·B)` work
//! per pass with `B = n / log n` blocks over `k` buckets — so that penalty is
//! visible in the ledger rather than hidden.

use crate::ceil_log2;
use crate::ctx::Pram;

/// Stable counting sort of `items` by `key(i, &item) ∈ 0..k`.
///
/// Work `O(n + k · n/log n)`, depth `O(log n + log k)`.
pub fn stable_counting_sort_by_key<T, K>(pram: &Pram, items: &[T], k: usize, key: K) -> Vec<T>
where
    T: Clone + Send + Sync,
    K: Fn(usize, &T) -> usize + Sync,
{
    let n = items.len();
    if n <= 1 {
        return items.to_vec();
    }
    assert!(k >= 1);
    let b = (ceil_log2(n) as usize).max(1).max(k / 8 + 1);
    let nblocks = n.div_ceil(b);

    // Per-block histograms (depth = block length, work = n + k·B for init).
    pram.ledger().charge_work((n + k * nblocks) as u64);
    pram.ledger().charge_depth(b as u64);
    let mut counts = vec![0u64; k * nblocks];
    for (bi, chunk) in items.chunks(b).enumerate() {
        for (j, item) in chunk.iter().enumerate() {
            let kk = key(bi * b + j, item);
            debug_assert!(kk < k, "key {kk} out of range 0..{k}");
            counts[kk * nblocks + bi] += 1;
        }
    }

    // Column-major exclusive scan = global stable start offsets.
    let offsets = pram.scan_exclusive_sum(&counts);

    // Scatter pass (stable: each block walks its chunk in order).
    pram.ledger().charge_work(n as u64);
    pram.ledger().charge_depth(b as u64);
    let mut cursors = offsets;
    let mut out: Vec<Option<T>> = vec![None; n];
    for (bi, chunk) in items.chunks(b).enumerate() {
        for (j, item) in chunk.iter().enumerate() {
            let kk = key(bi * b + j, item);
            let pos = cursors[kk * nblocks + bi];
            cursors[kk * nblocks + bi] += 1;
            out[pos as usize] = Some(item.clone());
        }
    }
    out.into_iter()
        .map(|o| o.expect("all slots filled"))
        .collect()
}

/// Stable LSD radix sort by a `u64` key, in 8-bit digit passes.
///
/// The number of passes adapts to the largest key present, so sorting ranks
/// bounded by `n` costs `O(log n / 8)` counting passes.
pub fn radix_sort_by_key<T, K>(pram: &Pram, items: &[T], key: K) -> Vec<T>
where
    T: Clone + Send + Sync,
    K: Fn(&T) -> u64 + Sync,
{
    let n = items.len();
    if n <= 1 {
        return items.to_vec();
    }
    let max_key = pram.reduce(&pram.map(items, |_, it| key(it)), 0u64, |a, b| a.max(b));
    let bits = 64 - max_key.leading_zeros();
    let passes = bits.div_ceil(8).max(1);
    let mut cur = items.to_vec();
    for p in 0..passes {
        let shift = p * 8;
        cur = stable_counting_sort_by_key(pram, &cur, 256, |_, it| {
            ((key(it) >> shift) & 0xFF) as usize
        });
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Pram, SplitMix64};

    #[test]
    fn counting_sort_small_keys() {
        let pram = Pram::seq();
        let xs = vec![3usize, 1, 4, 1, 5, 9, 2, 6, 5, 3];
        let sorted = stable_counting_sort_by_key(&pram, &xs, 10, |_, &x| x);
        let mut want = xs.clone();
        want.sort_unstable();
        assert_eq!(sorted, want);
    }

    #[test]
    fn counting_sort_is_stable() {
        let pram = Pram::seq();
        // (key, original index): stability means ties keep index order.
        let xs: Vec<(usize, usize)> = vec![(1, 0), (0, 1), (1, 2), (0, 3), (1, 4)];
        let sorted = stable_counting_sort_by_key(&pram, &xs, 2, |_, &(k, _)| k);
        assert_eq!(sorted, vec![(0, 1), (0, 3), (1, 0), (1, 2), (1, 4)]);
    }

    #[test]
    fn radix_sorts_random_u64() {
        let pram = Pram::seq();
        let mut rng = SplitMix64::new(17);
        let xs: Vec<u64> = (0..5000).map(|_| rng.next_u64() >> 20).collect();
        let sorted = radix_sort_by_key(&pram, &xs, |&x| x);
        let mut want = xs.clone();
        want.sort_unstable();
        assert_eq!(sorted, want);
    }

    #[test]
    fn radix_handles_zero_and_duplicates() {
        let pram = Pram::seq();
        let xs = vec![0u64, 0, 7, 7, 3];
        assert_eq!(radix_sort_by_key(&pram, &xs, |&x| x), vec![0, 0, 3, 7, 7]);
    }

    #[test]
    fn radix_sort_pairs_lexicographic() {
        let pram = Pram::seq();
        let mut rng = SplitMix64::new(5);
        let xs: Vec<(u32, u32)> = (0..2000)
            .map(|_| (rng.next_below(50) as u32, rng.next_below(50) as u32))
            .collect();
        // Two stable passes: low component first, then high.
        let pass1 = radix_sort_by_key(&pram, &xs, |&(_, b)| u64::from(b));
        let pass2 = radix_sort_by_key(&pram, &pass1, |&(a, _)| u64::from(a));
        let mut want = xs.clone();
        want.sort();
        assert_eq!(pass2, want);
    }

    #[test]
    fn empty_and_singleton() {
        let pram = Pram::seq();
        assert_eq!(
            stable_counting_sort_by_key::<u8, _>(&pram, &[], 4, |_, &x| x as usize),
            Vec::<u8>::new()
        );
        assert_eq!(radix_sort_by_key(&pram, &[42u64], |&x| x), vec![42]);
    }
}
