//! The write-ahead-log record codec.
//!
//! One WAL file is a 16-byte header followed by a run of framed records,
//! reusing the PDZS record discipline from `pardict-stream`: every record
//! carries a length prefix and a CRC-32 over everything the length
//! covers, so a reader can always decide "intact" or "torn" without
//! trusting any byte it has not checked.
//!
//! ```text
//! header   "PDWL" · version u8 · 3×0 · generation u64          (16 B)
//! record   kind u8 · seq u64 · payload_len u32 · crc32 u32     (17 B)
//!          payload[payload_len]
//! ```
//!
//! The CRC covers `kind · seq · payload`, so a bit flip anywhere in a
//! record — framing or body — fails the check. All integers are
//! little-endian, matching the container format. The scanner
//! ([`scan_wal`]) is total: any byte sequence yields a prefix of intact
//! records plus an optional [`TornTail`] describing where and why the
//! log stopped being trustworthy. The first bad record ends the log —
//! nothing after it can be trusted because record boundaries themselves
//! come from the (now suspect) length prefixes.

use pardict_core::crc32;

/// WAL file magic: "PDWL".
pub const WAL_MAGIC: [u8; 4] = *b"PDWL";
/// On-disk format version this build reads and writes.
pub const STORE_VERSION: u8 = 1;
/// Fixed WAL header length in bytes.
pub const WAL_HEADER_LEN: usize = 16;
/// Fixed per-record frame length (before the payload).
pub const FRAME_LEN: usize = 17;
/// Record kind: a dictionary publish (name, version, patterns).
pub const KIND_PUBLISH: u8 = 1;
/// Record kind: a dictionary retire (name).
pub const KIND_RETIRE: u8 = 2;
/// Record kind: an incremental delta against the previous version
/// (name, new version, added patterns, removed patterns). Its on-disk
/// size is proportional to the delta, not the dictionary — the whole
/// point of logging deltas instead of full publishes.
pub const KIND_DELTA: u8 = 3;
/// Hard cap on one record's payload, mirroring the wire codec's frame
/// cap: a hostile length prefix can never drive a giant allocation.
pub const MAX_RECORD_LEN: usize = 64 << 20;

/// One durable dictionary-state transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A dictionary (re)published at an explicit version.
    Publish {
        /// Registry name of the dictionary.
        name: String,
        /// Version the registry assigned to this publish.
        version: u64,
        /// The pattern set, in publish order.
        patterns: Vec<Vec<u8>>,
    },
    /// A dictionary removed from the registry.
    Retire {
        /// Registry name of the dictionary.
        name: String,
    },
    /// An incremental update: removes applied (all occurrences of each
    /// value), then adds appended, against the state the preceding
    /// records left for `name`. Replayed in-order on recovery; folded
    /// away (into the resulting full pattern set) by compaction.
    Delta {
        /// Registry name of the dictionary.
        name: String,
        /// Version the registry assigned to the delta's result.
        version: u64,
        /// Patterns appended, in order.
        adds: Vec<Vec<u8>>,
        /// Pattern values removed (every occurrence of each).
        removes: Vec<Vec<u8>>,
    },
}

impl WalRecord {
    /// The record's kind tag as written to disk.
    pub fn kind(&self) -> u8 {
        match self {
            WalRecord::Publish { .. } => KIND_PUBLISH,
            WalRecord::Retire { .. } => KIND_RETIRE,
            WalRecord::Delta { .. } => KIND_DELTA,
        }
    }

    /// The dictionary name the record is about.
    pub fn name(&self) -> &str {
        match self {
            WalRecord::Publish { name, .. }
            | WalRecord::Retire { name }
            | WalRecord::Delta { name, .. } => name,
        }
    }
}

/// The suffix of a WAL that recovery refused to trust, dropped and
/// reported instead of applied — the log-level analogue of a corrupt
/// stream block's skip-and-report issue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornTail {
    /// Byte offset into the WAL file where the bad record starts.
    pub offset: u64,
    /// Bytes from `offset` to end-of-file, all dropped.
    pub dropped_bytes: u64,
    /// Why the scanner stopped (truncated frame, checksum mismatch, …).
    pub reason: String,
}

impl std::fmt::Display for TornTail {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "torn tail at offset {}: {} ({} bytes dropped)",
            self.offset, self.reason, self.dropped_bytes
        )
    }
}

/// One intact record found by [`scan_wal`], with its position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScannedRecord {
    /// Byte offset of the record's frame within the file.
    pub offset: u64,
    /// Total on-disk length (frame + payload).
    pub len: u64,
    /// The record's sequence number.
    pub seq: u64,
    /// The decoded record.
    pub record: WalRecord,
}

/// Everything a total scan of WAL bytes yields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalScan {
    /// Generation counter from the header (bumped at each compaction).
    pub generation: u64,
    /// The intact prefix of records, in file order.
    pub records: Vec<ScannedRecord>,
    /// Why the header was rejected, if it was (records is then empty).
    pub header_issue: Option<String>,
    /// The untrusted suffix, if the file did not end cleanly.
    pub torn: Option<TornTail>,
}

impl WalScan {
    /// Offset one past the last intact byte — where appends may resume.
    pub fn valid_end(&self) -> u64 {
        if self.header_issue.is_some() {
            return 0;
        }
        self.records
            .last()
            .map_or(WAL_HEADER_LEN as u64, |r| r.offset + r.len)
    }
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn get_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}

pub(crate) fn get_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
}

/// Encode a fresh WAL header for the given generation.
pub fn encode_wal_header(generation: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(WAL_HEADER_LEN);
    out.extend_from_slice(&WAL_MAGIC);
    out.push(STORE_VERSION);
    out.extend_from_slice(&[0, 0, 0]);
    put_u64(&mut out, generation);
    out
}

/// Encode the record payload alone (what the length prefix counts).
fn encode_payload(record: &WalRecord) -> Vec<u8> {
    let mut out = Vec::new();
    match record {
        WalRecord::Publish {
            name,
            version,
            patterns,
        } => {
            put_u32(&mut out, name.len() as u32);
            out.extend_from_slice(name.as_bytes());
            put_u64(&mut out, *version);
            put_u32(&mut out, patterns.len() as u32);
            for p in patterns {
                put_u32(&mut out, p.len() as u32);
                out.extend_from_slice(p);
            }
        }
        WalRecord::Retire { name } => {
            put_u32(&mut out, name.len() as u32);
            out.extend_from_slice(name.as_bytes());
        }
        WalRecord::Delta {
            name,
            version,
            adds,
            removes,
        } => {
            put_u32(&mut out, name.len() as u32);
            out.extend_from_slice(name.as_bytes());
            put_u64(&mut out, *version);
            for list in [adds, removes] {
                put_u32(&mut out, list.len() as u32);
                for p in list {
                    put_u32(&mut out, p.len() as u32);
                    out.extend_from_slice(p);
                }
            }
        }
    }
    out
}

/// Encode one record with its frame. Returns `None` if the payload
/// exceeds [`MAX_RECORD_LEN`] (the caller surfaces that as an error
/// rather than writing a record no reader would accept).
pub fn encode_record(seq: u64, record: &WalRecord) -> Option<Vec<u8>> {
    let payload = encode_payload(record);
    if payload.len() > MAX_RECORD_LEN {
        return None;
    }
    let mut out = Vec::with_capacity(FRAME_LEN + payload.len());
    out.push(record.kind());
    put_u64(&mut out, seq);
    put_u32(&mut out, payload.len() as u32);
    let mut crc_input = Vec::with_capacity(9 + payload.len());
    crc_input.push(record.kind());
    crc_input.extend_from_slice(&seq.to_le_bytes());
    crc_input.extend_from_slice(&payload);
    put_u32(&mut out, crc32(&crc_input));
    out.extend_from_slice(&payload);
    Some(out)
}

/// A bounds-checked payload reader; every getter returns `None` past the
/// end, so decoding is total over arbitrary bytes.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Some(s)
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4).map(get_u32)
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8).map(get_u64)
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// Decode a record payload whose frame (kind + CRC) already checked out.
/// Payload bytes are still untrusted structure: a CRC-valid payload with
/// bad internal framing (possible for adversarial writes, not for our
/// writer) is rejected, never panicked on.
pub fn decode_payload(kind: u8, payload: &[u8]) -> Result<WalRecord, String> {
    let mut c = Cursor::new(payload);
    let name = {
        let n = c.u32().ok_or("payload truncated in name length")? as usize;
        let raw = c.take(n).ok_or("payload truncated in name")?;
        String::from_utf8(raw.to_vec()).map_err(|_| "name is not UTF-8".to_string())?
    };
    let record = match kind {
        KIND_PUBLISH => {
            let version = c.u64().ok_or("payload truncated in version")?;
            let npat = c.u32().ok_or("payload truncated in pattern count")? as usize;
            // Cap the reserve from the untrusted count; push grows it.
            let mut patterns = Vec::with_capacity(npat.min(1024));
            for _ in 0..npat {
                let len = c.u32().ok_or("payload truncated in pattern length")? as usize;
                let raw = c.take(len).ok_or("payload truncated in pattern")?;
                patterns.push(raw.to_vec());
            }
            WalRecord::Publish {
                name,
                version,
                patterns,
            }
        }
        KIND_RETIRE => WalRecord::Retire { name },
        KIND_DELTA => {
            let version = c.u64().ok_or("payload truncated in version")?;
            let mut lists = [Vec::new(), Vec::new()];
            for list in lists.iter_mut() {
                let n = c.u32().ok_or("payload truncated in delta count")? as usize;
                list.reserve(n.min(1024));
                for _ in 0..n {
                    let len = c.u32().ok_or("payload truncated in pattern length")? as usize;
                    let raw = c.take(len).ok_or("payload truncated in pattern")?;
                    list.push(raw.to_vec());
                }
            }
            let [adds, removes] = lists;
            WalRecord::Delta {
                name,
                version,
                adds,
                removes,
            }
        }
        other => return Err(format!("unknown record kind {other}")),
    };
    if !c.done() {
        return Err("trailing bytes after payload".to_string());
    }
    Ok(record)
}

/// Try to decode the single record starting at `offset`. `Ok` carries
/// the record and its total on-disk length; `Err` explains why the bytes
/// at `offset` cannot be a record (which, mid-file, means a torn tail).
pub fn decode_record_at(bytes: &[u8], offset: usize) -> Result<(u64, WalRecord, usize), String> {
    let rest = &bytes[offset..];
    if rest.len() < FRAME_LEN {
        return Err(format!(
            "partial frame ({} of {FRAME_LEN} header bytes)",
            rest.len()
        ));
    }
    let kind = rest[0];
    let seq = get_u64(&rest[1..9]);
    let len = get_u32(&rest[9..13]) as usize;
    let crc = get_u32(&rest[13..17]);
    if len > MAX_RECORD_LEN {
        return Err(format!("payload length {len} exceeds cap"));
    }
    if rest.len() < FRAME_LEN + len {
        return Err(format!(
            "partial payload ({} of {len} bytes)",
            rest.len() - FRAME_LEN
        ));
    }
    let payload = &rest[FRAME_LEN..FRAME_LEN + len];
    let mut crc_input = Vec::with_capacity(9 + len);
    crc_input.push(kind);
    crc_input.extend_from_slice(&seq.to_le_bytes());
    crc_input.extend_from_slice(payload);
    if crc32(&crc_input) != crc {
        return Err("checksum mismatch".to_string());
    }
    let record = decode_payload(kind, payload)?;
    Ok((seq, record, FRAME_LEN + len))
}

/// Scan arbitrary bytes as a WAL. Total: never panics, never errors —
/// damage becomes a `header_issue` or a [`TornTail`] in the result.
pub fn scan_wal(bytes: &[u8]) -> WalScan {
    let mut scan = WalScan {
        generation: 0,
        records: Vec::new(),
        header_issue: None,
        torn: None,
    };
    if bytes.len() < WAL_HEADER_LEN {
        scan.header_issue = Some(format!(
            "file too short for header ({} of {WAL_HEADER_LEN} bytes)",
            bytes.len()
        ));
        return scan;
    }
    if bytes[..4] != WAL_MAGIC {
        scan.header_issue = Some("bad magic".to_string());
        return scan;
    }
    if bytes[4] != STORE_VERSION {
        scan.header_issue = Some(format!("unsupported version {}", bytes[4]));
        return scan;
    }
    if bytes[5..8] != [0, 0, 0] {
        scan.header_issue = Some("reserved header bytes set".to_string());
        return scan;
    }
    scan.generation = get_u64(&bytes[8..16]);
    let mut offset = WAL_HEADER_LEN;
    while offset < bytes.len() {
        match decode_record_at(bytes, offset) {
            Ok((seq, record, len)) => {
                scan.records.push(ScannedRecord {
                    offset: offset as u64,
                    len: len as u64,
                    seq,
                    record,
                });
                offset += len;
            }
            Err(reason) => {
                scan.torn = Some(TornTail {
                    offset: offset as u64,
                    dropped_bytes: (bytes.len() - offset) as u64,
                    reason,
                });
                break;
            }
        }
    }
    scan
}
