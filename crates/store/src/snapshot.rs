//! The compacted snapshot codec.
//!
//! A snapshot is the live dictionary map folded flat: one framed publish
//! record per dictionary (the same frame the WAL uses, with `seq = 0`),
//! bracketed by a header carrying the WAL sequence number the snapshot
//! covers and a trailer whose reversed magic + whole-file CRC make
//! truncation and bit rot detectable — the same double-bracket the PDZS
//! container uses ("PDZS" … "SZDP").
//!
//! ```text
//! header   "PDSN" · version u8 · 3×0 · last_seq u64            (16 B)
//! count    u32
//! entry    framed publish record (see crate::record) × count
//! trailer  count u64 · crc32(everything above) u32 · "NSDP"    (16 B)
//! ```
//!
//! Unlike the WAL — where a torn tail still leaves a usable prefix — a
//! snapshot is all-or-nothing: it is only ever written whole through a
//! temp file and an atomic rename, so any validation failure means the
//! file is not one of ours and recovery falls back to replaying the WAL
//! from an empty state.

use crate::record::{
    decode_record_at, encode_record, get_u32, get_u64, put_u32, put_u64, WalRecord, STORE_VERSION,
};
use pardict_core::crc32;

/// Snapshot file magic: "PDSN".
pub const SNAP_MAGIC: [u8; 4] = *b"PDSN";
/// Snapshot trailer magic: "NSDP" (reversed, so truncation can't fake it).
pub const SNAP_TRAILER_MAGIC: [u8; 4] = *b"NSDP";
/// Fixed snapshot header length in bytes.
pub const SNAP_HEADER_LEN: usize = 16;
/// Fixed snapshot trailer length in bytes.
pub const SNAP_TRAILER_LEN: usize = 16;

/// One dictionary as a snapshot stores it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotDict {
    /// Registry name.
    pub name: String,
    /// Version the registry had assigned at snapshot time.
    pub version: u64,
    /// The pattern set.
    pub patterns: Vec<Vec<u8>>,
}

/// Encode a whole snapshot. `dicts` must already be in the writer's
/// canonical order (the store iterates its map sorted by name, so equal
/// state always produces identical bytes). Returns `None` if any single
/// entry exceeds the record cap.
pub fn encode_snapshot(last_seq: u64, dicts: &[SnapshotDict]) -> Option<Vec<u8>> {
    let mut out = Vec::new();
    out.extend_from_slice(&SNAP_MAGIC);
    out.push(STORE_VERSION);
    out.extend_from_slice(&[0, 0, 0]);
    put_u64(&mut out, last_seq);
    put_u32(&mut out, dicts.len() as u32);
    for d in dicts {
        let rec = WalRecord::Publish {
            name: d.name.clone(),
            version: d.version,
            patterns: d.patterns.clone(),
        };
        out.extend_from_slice(&encode_record(0, &rec)?);
    }
    put_u64(&mut out, dicts.len() as u64);
    let crc = crc32(&out);
    put_u32(&mut out, crc);
    out.extend_from_slice(&SNAP_TRAILER_MAGIC);
    Some(out)
}

/// Decode arbitrary bytes as a snapshot. Total: never panics; any
/// structural problem is an `Err` with a deterministic reason, and the
/// caller treats the whole snapshot as absent.
pub fn decode_snapshot(bytes: &[u8]) -> Result<(u64, Vec<SnapshotDict>), String> {
    if bytes.len() < SNAP_HEADER_LEN + 4 + SNAP_TRAILER_LEN {
        return Err(format!(
            "file too short for snapshot ({} bytes)",
            bytes.len()
        ));
    }
    if bytes[..4] != SNAP_MAGIC {
        return Err("bad magic".to_string());
    }
    if bytes[4] != STORE_VERSION {
        return Err(format!("unsupported version {}", bytes[4]));
    }
    if bytes[5..8] != [0, 0, 0] {
        return Err("reserved header bytes set".to_string());
    }
    let trailer_at = bytes.len() - SNAP_TRAILER_LEN;
    if bytes[trailer_at + 12..] != SNAP_TRAILER_MAGIC {
        return Err("bad trailer magic".to_string());
    }
    let crc_stored = get_u32(&bytes[trailer_at + 8..trailer_at + 12]);
    if crc32(&bytes[..trailer_at + 8]) != crc_stored {
        return Err("trailer checksum mismatch".to_string());
    }
    let last_seq = get_u64(&bytes[8..16]);
    let count = get_u32(&bytes[16..20]) as u64;
    if get_u64(&bytes[trailer_at..trailer_at + 8]) != count {
        return Err("trailer count disagrees with header".to_string());
    }
    let mut dicts = Vec::with_capacity((count as usize).min(1024));
    let mut offset = SNAP_HEADER_LEN + 4;
    for i in 0..count {
        if offset >= trailer_at {
            return Err(format!("entry {i} starts past the trailer"));
        }
        let (_, record, len) = decode_record_at(&bytes[..trailer_at], offset)
            .map_err(|e| format!("entry {i}: {e}"))?;
        match record {
            WalRecord::Publish {
                name,
                version,
                patterns,
            } => dicts.push(SnapshotDict {
                name,
                version,
                patterns,
            }),
            WalRecord::Retire { .. } => {
                return Err(format!("entry {i}: retire record in snapshot"));
            }
            WalRecord::Delta { .. } => {
                // Compaction folds deltas into full pattern sets; a
                // delta in a snapshot means the file was not written by
                // our compactor.
                return Err(format!("entry {i}: delta record in snapshot"));
            }
        }
        offset += len;
    }
    if offset != trailer_at {
        return Err("trailing bytes between entries and trailer".to_string());
    }
    Ok((last_seq, dicts))
}
