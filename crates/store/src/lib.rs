#![warn(missing_docs)]

//! # pardict-store — crash-safe persistent dictionary state
//!
//! The paper's economics make dictionaries the artifact worth keeping:
//! preprocessing costs `O(d)` work once, and every subsequent match call
//! amortizes it (PAPER.md §3). This crate makes that investment survive
//! a crash: a write-ahead log of publish/retire records, periodically
//! folded into a compacted snapshot, with a recovery path that is total
//! over arbitrary bytes.
//!
//! ## On-disk layout
//!
//! ```text
//! data-dir/
//!   wal.log            "PDWL" header · CRC-framed records (appended, fsync'd)
//!   snapshot.pds       "PDSN" header · one record per live dict · "NSDP" trailer
//!   snapshot.pds.tmp   transient; only exists mid-compaction
//! ```
//!
//! ## The contract
//!
//! * **Durability before acknowledgement** — [`Store::log_publish`]
//!   returns only after the record is written and (by default) fsync'd,
//!   so a caller that acknowledges afterwards can honour that
//!   acknowledgement across a crash.
//! * **Atomic snapshots** — compaction writes the whole snapshot to
//!   `snapshot.pds.tmp`, fsyncs, then atomically renames it over
//!   `snapshot.pds`; the WAL is reset only after the rename, and replay
//!   skips records the snapshot already covers (by sequence number), so
//!   every crash point leaves a recoverable directory.
//! * **Torn tails are dropped and reported, never trusted** — recovery
//!   replays snapshot + WAL tail; the first record that fails its frame
//!   or CRC ends the log, and everything after it is truncated away and
//!   described in the [`RecoveryReport`] — the same skip-and-report
//!   discipline `pardict-stream` applies to corrupt blocks, lifted to
//!   the log level.

pub mod error;
pub mod record;
pub mod snapshot;

pub use error::StoreError;
pub use record::{
    scan_wal, ScannedRecord, TornTail, WalRecord, WalScan, KIND_DELTA, KIND_PUBLISH, KIND_RETIRE,
};
pub use snapshot::{decode_snapshot, encode_snapshot, SnapshotDict};

use record::encode_wal_header;
use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// WAL file name inside the data directory.
pub const WAL_FILE: &str = "wal.log";
/// Snapshot file name inside the data directory.
pub const SNAPSHOT_FILE: &str = "snapshot.pds";
/// Transient snapshot temp name; present only mid-compaction.
pub const SNAPSHOT_TMP: &str = "snapshot.pds.tmp";

/// Tunables for a [`Store`].
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// Compact once this many records sit in the WAL (0 = never
    /// automatically; [`Store::compact`] still works).
    pub snapshot_every: u64,
    /// fsync after every append and compaction step. On by default —
    /// turning it off trades the durability contract for speed and is
    /// only meant for benches.
    pub sync: bool,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            snapshot_every: 64,
            sync: true,
        }
    }
}

/// The live value a dictionary name maps to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DictState {
    /// Version the registry assigned at the recorded publish.
    pub version: u64,
    /// The pattern set, in publish order.
    pub patterns: Vec<Vec<u8>>,
}

/// What recovery found and what it refused to trust. Everything here is
/// derived deterministically from the directory's bytes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Dictionaries loaded from the snapshot.
    pub snapshot_dicts: u64,
    /// Sequence number the snapshot covers through.
    pub snapshot_last_seq: u64,
    /// Why the snapshot was rejected, if it was (recovery then replays
    /// the WAL from an empty state).
    pub snapshot_issue: Option<String>,
    /// A `snapshot.pds.tmp` from a crashed compaction was deleted.
    pub stale_temp_removed: bool,
    /// WAL generation (bumped at each compaction).
    pub wal_generation: u64,
    /// WAL records applied on top of the snapshot — the snapshot's age
    /// in records.
    pub wal_replayed: u64,
    /// WAL records skipped because the snapshot already covered their
    /// sequence numbers (a crash landed between rename and WAL reset).
    pub wal_skipped: u64,
    /// Delta records whose dictionary did not exist at replay time —
    /// dropped and counted, never applied (a delta against nothing has
    /// no defined result; this can only happen to adversarial or
    /// hand-edited logs, since the writer orders records).
    pub orphan_deltas: u64,
    /// The untrusted WAL suffix that was dropped, if any.
    pub torn: Option<TornTail>,
    /// Dictionaries live after recovery.
    pub recovered_dicts: u64,
}

impl RecoveryReport {
    /// True when nothing had to be dropped: no torn tail and no rejected
    /// snapshot. A removed stale temp file still counts as clean — it is
    /// the expected residue of a crash during compaction, not data loss.
    pub fn is_clean(&self) -> bool {
        self.torn.is_none() && self.snapshot_issue.is_none()
    }
}

/// A crash-safe dictionary store: in-memory map mirrored by WAL +
/// snapshot in one data directory.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    wal: File,
    state: BTreeMap<String, DictState>,
    next_seq: u64,
    generation: u64,
    since_snapshot: u64,
    appended_bytes: u64,
    cfg: StoreConfig,
    report: RecoveryReport,
}

/// Apply one record to the in-memory map. Returns `false` only for an
/// orphaned delta (no live dictionary to apply it to), which is dropped.
fn apply(state: &mut BTreeMap<String, DictState>, record: &WalRecord) -> bool {
    match record {
        WalRecord::Publish {
            name,
            version,
            patterns,
        } => {
            state.insert(
                name.clone(),
                DictState {
                    version: *version,
                    patterns: patterns.clone(),
                },
            );
            true
        }
        WalRecord::Retire { name } => {
            state.remove(name);
            true
        }
        WalRecord::Delta {
            name,
            version,
            adds,
            removes,
        } => match state.get_mut(name) {
            Some(d) => {
                // Same semantics as the registry: removes drop every
                // occurrence of each value, then adds append in order.
                d.patterns.retain(|p| !removes.iter().any(|r| r == p));
                d.patterns.extend(adds.iter().cloned());
                d.version = *version;
                true
            }
            None => false,
        },
    }
}

impl Store {
    /// Open (creating if needed) the store in `dir` and recover its
    /// state. Total over directory contents: damaged files shrink to
    /// what can be trusted and the rest lands in [`Store::recovery`];
    /// only environmental failures (not a directory, disk errors)
    /// return `Err`.
    pub fn open(dir: impl AsRef<Path>, cfg: StoreConfig) -> Result<Store, StoreError> {
        // Recovery section (inert unless the caller installed an ambient
        // trace scope); recorded on every exit path when it drops.
        let _span = pardict_exec::section("store-recover", 0);
        let dir = dir.as_ref().to_path_buf();
        match fs::metadata(&dir) {
            Ok(m) if !m.is_dir() => return Err(StoreError::NotADirectory(dir)),
            Ok(_) => {}
            Err(_) => fs::create_dir_all(&dir)?,
        }
        let mut report = RecoveryReport::default();

        let tmp = dir.join(SNAPSHOT_TMP);
        if tmp.exists() {
            fs::remove_file(&tmp)?;
            report.stale_temp_removed = true;
        }

        let mut state = BTreeMap::new();
        let mut last_seq = 0u64;
        if let Ok(bytes) = fs::read(dir.join(SNAPSHOT_FILE)) {
            match decode_snapshot(&bytes) {
                Ok((seq, dicts)) => {
                    last_seq = seq;
                    report.snapshot_last_seq = seq;
                    report.snapshot_dicts = dicts.len() as u64;
                    for d in dicts {
                        state.insert(
                            d.name,
                            DictState {
                                version: d.version,
                                patterns: d.patterns,
                            },
                        );
                    }
                }
                Err(reason) => report.snapshot_issue = Some(reason),
            }
        }

        let wal_path = dir.join(WAL_FILE);
        let mut next_seq = last_seq + 1;
        let mut generation = 0u64;
        let mut since_snapshot = 0u64;
        let wal = match fs::read(&wal_path) {
            Ok(bytes) => {
                let scan = scan_wal(&bytes);
                if let Some(issue) = scan.header_issue {
                    // The header itself is untrusted, so the whole file
                    // is: report it as a tail torn at offset 0 and start
                    // a fresh log (snapshot state, if any, survives).
                    report.torn = Some(TornTail {
                        offset: 0,
                        dropped_bytes: bytes.len() as u64,
                        reason: format!("wal header: {issue}"),
                    });
                    let mut f = OpenOptions::new()
                        .write(true)
                        .truncate(true)
                        .open(&wal_path)?;
                    f.write_all(&encode_wal_header(0))?;
                    if cfg.sync {
                        f.sync_data()?;
                    }
                    f
                } else {
                    generation = scan.generation;
                    for r in &scan.records {
                        if r.seq <= last_seq {
                            report.wal_skipped += 1;
                        } else {
                            if !apply(&mut state, &r.record) {
                                report.orphan_deltas += 1;
                            }
                            report.wal_replayed += 1;
                        }
                        next_seq = next_seq.max(r.seq + 1);
                        since_snapshot += 1;
                        // (appended_bytes counts this process's appends
                        // only; replayed records predate the open.)
                    }
                    report.torn = scan.torn.clone();
                    let valid_end = scan.valid_end();
                    let mut f = OpenOptions::new().read(true).write(true).open(&wal_path)?;
                    if bytes.len() as u64 != valid_end {
                        f.set_len(valid_end)?;
                        if cfg.sync {
                            f.sync_data()?;
                        }
                    }
                    f.seek(SeekFrom::End(0))?;
                    f
                }
            }
            Err(_) => {
                let mut f = OpenOptions::new()
                    .create(true)
                    .write(true)
                    .truncate(true)
                    .open(&wal_path)?;
                f.write_all(&encode_wal_header(0))?;
                if cfg.sync {
                    f.sync_data()?;
                }
                f
            }
        };
        report.wal_generation = generation;
        report.recovered_dicts = state.len() as u64;

        Ok(Store {
            dir,
            wal,
            state,
            next_seq,
            generation,
            since_snapshot,
            appended_bytes: 0,
            cfg,
            report,
        })
    }

    /// What recovery found when this store was opened.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.report
    }

    /// The data directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of live dictionaries.
    pub fn len(&self) -> usize {
        self.state.len()
    }

    /// True when no dictionaries are live.
    pub fn is_empty(&self) -> bool {
        self.state.is_empty()
    }

    /// Live dictionaries, sorted by name.
    pub fn dicts(&self) -> impl Iterator<Item = (&str, &DictState)> {
        self.state.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Look up one dictionary's persisted state.
    pub fn get(&self, name: &str) -> Option<&DictState> {
        self.state.get(name)
    }

    /// Sequence number the next append will carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Records currently sitting in the WAL (resets at compaction).
    pub fn since_snapshot(&self) -> u64 {
        self.since_snapshot
    }

    /// Total framed bytes this store has appended to the WAL since it
    /// was opened (not reset by compaction). The bench uses this to show
    /// delta records cost bytes proportional to the delta, not the
    /// dictionary.
    pub fn appended_bytes(&self) -> u64 {
        self.appended_bytes
    }

    fn append(&mut self, record: WalRecord) -> Result<u64, StoreError> {
        let seq = self.next_seq;
        let framed =
            record::encode_record(seq, &record).ok_or_else(|| StoreError::RecordTooLarge {
                name: record.name().to_string(),
                len: usize::MAX,
            })?;
        self.wal.write_all(&framed)?;
        if self.cfg.sync {
            self.wal.sync_data()?;
        }
        self.next_seq += 1;
        self.since_snapshot += 1;
        self.appended_bytes += framed.len() as u64;
        let applied = apply(&mut self.state, &record);
        debug_assert!(applied, "caller must not log a delta for a dead name");
        if self.cfg.snapshot_every > 0 && self.since_snapshot >= self.cfg.snapshot_every {
            self.compact()?;
        }
        Ok(seq)
    }

    /// Durably record a publish. Returns its sequence number only after
    /// the record is on disk (fsync'd unless [`StoreConfig::sync`] is
    /// off) — the caller may acknowledge afterwards.
    pub fn log_publish(
        &mut self,
        name: &str,
        version: u64,
        patterns: &[Vec<u8>],
    ) -> Result<u64, StoreError> {
        self.append(WalRecord::Publish {
            name: name.to_string(),
            version,
            patterns: patterns.to_vec(),
        })
    }

    /// Durably record a retire.
    pub fn log_retire(&mut self, name: &str) -> Result<u64, StoreError> {
        self.append(WalRecord::Retire {
            name: name.to_string(),
        })
    }

    /// Durably record an incremental delta. The record costs bytes
    /// proportional to `adds` + `removes`, not the dictionary, and the
    /// in-memory mirror is updated with the same semantics the registry
    /// used (removes first — every occurrence — then adds appended).
    /// The caller must have validated the delta against a live
    /// dictionary; `version` is the version the result carries.
    pub fn log_delta(
        &mut self,
        name: &str,
        version: u64,
        adds: &[Vec<u8>],
        removes: &[Vec<u8>],
    ) -> Result<u64, StoreError> {
        self.append(WalRecord::Delta {
            name: name.to_string(),
            version,
            adds: adds.to_vec(),
            removes: removes.to_vec(),
        })
    }

    /// Fold the live map into a fresh snapshot and reset the WAL.
    /// Write-temp → fsync → atomic rename → WAL reset; a crash at any
    /// point leaves a directory [`Store::open`] recovers fully (the
    /// rename-before-reset window is covered by sequence-number skips).
    pub fn compact(&mut self) -> Result<(), StoreError> {
        // Compaction section, indexed by the generation being folded away.
        let _span = pardict_exec::section("store-compact", self.generation);
        let last_seq = self.next_seq - 1;
        let dicts: Vec<SnapshotDict> = self
            .state
            .iter()
            .map(|(name, d)| SnapshotDict {
                name: name.clone(),
                version: d.version,
                patterns: d.patterns.clone(),
            })
            .collect();
        let bytes =
            encode_snapshot(last_seq, &dicts).ok_or_else(|| StoreError::RecordTooLarge {
                name: "<snapshot>".to_string(),
                len: usize::MAX,
            })?;
        let tmp = self.dir.join(SNAPSHOT_TMP);
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&bytes)?;
            if self.cfg.sync {
                f.sync_all()?;
            }
        }
        fs::rename(&tmp, self.dir.join(SNAPSHOT_FILE))?;
        if self.cfg.sync {
            // Make the rename itself durable where the platform allows.
            if let Ok(d) = File::open(&self.dir) {
                let _ = d.sync_all();
            }
        }
        self.generation += 1;
        self.wal.set_len(0)?;
        self.wal.seek(SeekFrom::Start(0))?;
        self.wal.write_all(&encode_wal_header(self.generation))?;
        if self.cfg.sync {
            self.wal.sync_data()?;
        }
        self.since_snapshot = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("pardict-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn pats(n: u64) -> Vec<Vec<u8>> {
        vec![format!("pat{n}").into_bytes(), vec![b'x'; 3]]
    }

    fn nosync() -> StoreConfig {
        StoreConfig {
            snapshot_every: 0,
            sync: false,
        }
    }

    #[test]
    fn publish_retire_survive_reopen() {
        let dir = tmp_dir("reopen");
        {
            let mut s = Store::open(&dir, nosync()).unwrap();
            s.log_publish("a", 1, &pats(1)).unwrap();
            s.log_publish("b", 1, &pats(2)).unwrap();
            s.log_publish("a", 2, &pats(3)).unwrap();
            s.log_retire("b").unwrap();
        }
        let s = Store::open(&dir, nosync()).unwrap();
        assert!(s.recovery().is_clean());
        assert_eq!(s.recovery().wal_replayed, 4);
        assert_eq!(s.len(), 1);
        assert_eq!(s.get("a").unwrap().version, 2);
        assert_eq!(s.get("a").unwrap().patterns, pats(3));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_snapshots_and_resets_wal() {
        let dir = tmp_dir("compact");
        {
            let mut s = Store::open(&dir, nosync()).unwrap();
            for i in 0..5 {
                s.log_publish(&format!("d{i}"), 1, &pats(i)).unwrap();
            }
            s.compact().unwrap();
            s.log_publish("after", 1, &pats(99)).unwrap();
        }
        let s = Store::open(&dir, nosync()).unwrap();
        assert!(s.recovery().is_clean());
        assert_eq!(s.recovery().snapshot_dicts, 5);
        assert_eq!(s.recovery().wal_replayed, 1);
        assert_eq!(s.recovery().wal_generation, 1);
        assert_eq!(s.len(), 6);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_dropped_and_reported() {
        let dir = tmp_dir("torn");
        {
            let mut s = Store::open(&dir, nosync()).unwrap();
            s.log_publish("keep", 1, &pats(1)).unwrap();
            s.log_publish("gone", 1, &pats(2)).unwrap();
        }
        // Tear the final record: chop 3 bytes off the file.
        let wal = dir.join(WAL_FILE);
        let len = fs::metadata(&wal).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&wal)
            .unwrap()
            .set_len(len - 3)
            .unwrap();
        let s = Store::open(&dir, nosync()).unwrap();
        let torn = s.recovery().torn.as_ref().expect("tail must be reported");
        assert!(torn.dropped_bytes > 0);
        assert_eq!(s.recovery().wal_replayed, 1);
        assert_eq!(s.len(), 1);
        assert!(s.get("keep").is_some());
        assert!(s.get("gone").is_none());
        // The file was truncated back to the intact prefix, so reopening
        // is clean and appends resume.
        let mut s2 = Store::open(&dir, nosync()).unwrap();
        assert!(s2.recovery().is_clean());
        s2.log_publish("again", 1, &pats(3)).unwrap();
        drop(s2);
        let s3 = Store::open(&dir, nosync()).unwrap();
        assert_eq!(s3.len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_between_rename_and_wal_reset_is_covered() {
        let dir = tmp_dir("renamewin");
        let mut s = Store::open(&dir, nosync()).unwrap();
        s.log_publish("a", 1, &pats(1)).unwrap();
        s.log_publish("b", 1, &pats(2)).unwrap();
        // Simulate the window: snapshot covers both records, but the WAL
        // still holds them (compact minus its WAL-reset step).
        let snap = encode_snapshot(
            s.next_seq() - 1,
            &s.dicts()
                .map(|(n, d)| SnapshotDict {
                    name: n.to_string(),
                    version: d.version,
                    patterns: d.patterns.clone(),
                })
                .collect::<Vec<_>>(),
        )
        .unwrap();
        fs::write(dir.join(SNAPSHOT_FILE), snap).unwrap();
        drop(s);
        let s = Store::open(&dir, nosync()).unwrap();
        assert!(s.recovery().is_clean());
        assert_eq!(s.recovery().snapshot_dicts, 2);
        assert_eq!(s.recovery().wal_skipped, 2, "snapshot covers the WAL");
        assert_eq!(s.recovery().wal_replayed, 0);
        assert_eq!(s.len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_temp_is_removed() {
        let dir = tmp_dir("staletmp");
        drop(Store::open(&dir, nosync()).unwrap());
        fs::write(dir.join(SNAPSHOT_TMP), b"half-written junk").unwrap();
        let s = Store::open(&dir, nosync()).unwrap();
        assert!(s.recovery().stale_temp_removed);
        assert!(!dir.join(SNAPSHOT_TMP).exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn data_dir_that_is_a_file_is_refused() {
        let path = std::env::temp_dir().join(format!("pardict-store-file-{}", std::process::id()));
        fs::write(&path, b"not a dir").unwrap();
        match Store::open(&path, nosync()) {
            Err(StoreError::NotADirectory(_)) => {}
            other => panic!("expected NotADirectory, got {:?}", other.map(|_| ())),
        }
        fs::remove_file(&path).unwrap();
    }
}
