//! Error vocabulary for the persistence layer.
//!
//! The split mirrors `pardict-stream`: an [`StoreError`] is *environmental*
//! (the data directory cannot be used, the disk failed) and aborts the
//! operation, while damaged *content* never becomes an error at all —
//! recovery is total over arbitrary bytes and reports what it dropped
//! through [`crate::RecoveryReport`] instead, the same skip-and-report
//! contract the container decoder honours for corrupt blocks.

use std::fmt;
use std::path::PathBuf;

/// An environmental failure: the store cannot operate at all.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem failure (open, write, fsync, rename).
    Io(std::io::Error),
    /// The configured data directory exists but is not a directory.
    NotADirectory(PathBuf),
    /// A record handed to the append path is unencodable (name or
    /// pattern longer than the framing allows).
    RecordTooLarge {
        /// The dictionary name involved.
        name: String,
        /// Encoded payload size that exceeded [`crate::record::MAX_RECORD_LEN`].
        len: usize,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::NotADirectory(p) => {
                write!(f, "data dir {} is not a directory", p.display())
            }
            StoreError::RecordTooLarge { name, len } => {
                write!(f, "record for dictionary {name:?} too large ({len} bytes)")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}
