//! Nearest marked ancestor (Lemma 2.7).
//!
//! Cut every edge whose upper endpoint is marked; in the resulting forest,
//! each node's tree root is the last node before its chain crosses a marked
//! parent, so `nearest-marked-strict(v) = parent(root_of(v))`. The cut
//! forest's roots are resolved with one Euler tour — expected `O(n)` work,
//! `O(log n)` depth, matching the lemma.

use pardict_graph::{EulerTour, Forest};
use pardict_pram::Pram;

/// Answers nearest-marked-ancestor queries in O(1) after linear-work
/// preprocessing.
#[derive(Debug, Clone)]
pub struct NearestMarkedAncestor {
    /// Nearest marked *proper* ancestor (usize::MAX if none).
    strict: Vec<usize>,
    marked: Vec<bool>,
}

/// Sentinel for "no marked ancestor".
pub const NONE: usize = usize::MAX;

impl NearestMarkedAncestor {
    /// Preprocess `forest` with the given mark bits.
    #[must_use]
    pub fn build(pram: &Pram, forest: &Forest, marked: &[bool], seed: u64) -> Self {
        let n = forest.len();
        assert_eq!(marked.len(), n);
        // Cut below marked nodes.
        let cut_parent: Vec<usize> = pram.tabulate(n, |v| {
            let p = forest.parent(v);
            if p == v || marked[p] {
                v
            } else {
                p
            }
        });
        let cut_forest = Forest::from_parents(pram, &cut_parent);
        let tour = EulerTour::build(pram, &cut_forest, seed ^ 0x9A7C);
        let strict: Vec<usize> = pram.tabulate(n, |v| {
            let r = tour.root_of[v];
            let p = forest.parent(r);
            if p != r && marked[p] {
                p
            } else {
                NONE
            }
        });
        Self {
            strict,
            marked: marked.to_vec(),
        }
    }

    /// Nearest marked proper ancestor of `v`, or [`NONE`].
    #[must_use]
    pub fn strict(&self, v: usize) -> usize {
        self.strict[v]
    }

    /// Nearest marked ancestor of `v`, `v` itself allowed, or [`NONE`].
    #[must_use]
    pub fn inclusive(&self, v: usize) -> usize {
        if self.marked[v] {
            v
        } else {
            self.strict[v]
        }
    }

    /// Whether `v` itself is marked.
    #[must_use]
    pub fn is_marked(&self, v: usize) -> bool {
        self.marked[v]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pardict_pram::{Pram, SplitMix64};

    fn oracle_strict(parent: &[usize], marked: &[bool], v: usize) -> usize {
        let mut u = v;
        while parent[u] != u {
            u = parent[u];
            if marked[u] {
                return u;
            }
        }
        NONE
    }

    fn check(parent: &[usize], marked: &[bool]) {
        let pram = Pram::seq();
        let f = Forest::from_parents(&pram, parent);
        let nma = NearestMarkedAncestor::build(&pram, &f, marked, 3);
        for v in 0..parent.len() {
            let want = oracle_strict(parent, marked, v);
            assert_eq!(nma.strict(v), want, "strict v={v}");
            let want_inc = if marked[v] { v } else { want };
            assert_eq!(nma.inclusive(v), want_inc, "inclusive v={v}");
        }
    }

    #[test]
    fn small_tree() {
        //      0*
        //    /   \
        //   1     2*
        //  / \     \
        // 3   4*    5
        let parent = vec![0, 0, 0, 1, 1, 2];
        let marked = vec![true, false, true, false, true, false];
        check(&parent, &marked);
    }

    #[test]
    fn nothing_marked() {
        let parent = vec![0, 0, 1, 2, 3];
        check(&parent, &[false; 5]);
    }

    #[test]
    fn everything_marked() {
        let parent = vec![0, 0, 1, 2, 3];
        check(&parent, &[true; 5]);
    }

    #[test]
    fn deep_chain_sparse_marks() {
        let n = 800;
        let parent: Vec<usize> = (0..n).map(|v: usize| v.saturating_sub(1)).collect();
        let marked: Vec<bool> = (0..n).map(|v| v % 97 == 3).collect();
        check(&parent, &marked);
    }

    #[test]
    fn random_trees_random_marks() {
        let mut rng = SplitMix64::new(4);
        for _ in 0..5 {
            let n = 300;
            let parent: Vec<usize> = (0..n)
                .map(|v: usize| {
                    if v == 0 {
                        0
                    } else {
                        rng.next_below(v as u64) as usize
                    }
                })
                .collect();
            let marked: Vec<bool> = (0..n).map(|_| rng.next_below(4) == 0).collect();
            check(&parent, &marked);
        }
    }

    #[test]
    fn forest_with_multiple_trees() {
        let parent = vec![0, 0, 1, 3, 3, 4];
        let marked = vec![false, true, false, true, false, false];
        check(&parent, &marked);
    }

    #[test]
    fn linear_work() {
        let mut per_elem = Vec::new();
        for n in [1usize << 13, 1 << 15, 1 << 17] {
            let pram = Pram::seq();
            let mut rng = SplitMix64::new(5);
            let parent: Vec<usize> = (0..n)
                .map(|v: usize| {
                    if v == 0 {
                        0
                    } else {
                        rng.next_below(v as u64) as usize
                    }
                })
                .collect();
            let marked: Vec<bool> = (0..n).map(|_| rng.next_below(8) == 0).collect();
            let f = Forest::from_parents(&pram, &parent);
            let (_, cost) = pram.metered(|p| NearestMarkedAncestor::build(p, &f, &marked, 6));
            per_elem.push(cost.work as f64 / n as f64);
        }
        assert!(
            per_elem[2] < per_elem[0] * 1.5 + 2.0,
            "NMA superlinear: {per_elem:?}"
        );
    }
}
