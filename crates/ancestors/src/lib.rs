#![warn(missing_docs)]

//! # pardict-ancestors — marked and colored ancestor queries
//!
//! Two tree primitives the paper's dictionary matcher is built on:
//!
//! * [`NearestMarkedAncestor`] — Lemma 2.7: given a rooted forest with some
//!   nodes marked, find every node's nearest marked ancestor in `O(n)` work
//!   and `O(log n)` depth (used by Step 2A's pattern-prefix lookup).
//! * [`ColoredAncestors`] / [`ColoredAncestorsNaive`] — §3.2, the paper's
//!   novel primitive: nodes carry *colors* (here: "has an `a`-Weiner-link"),
//!   and `Find(p, c)` returns the nearest ancestor of `p` colored `c`.
//!   The naive variant spends `O(n·|C|)` preprocessing work for `O(1)`
//!   queries; the efficient variant spends `O(n + C)` (C = total color
//!   count) for `O(log log n)` queries via van Emde Boas predecessor search
//!   over Euler-tour numbers — the exact trade-off the paper proves, and
//!   experiment E7's ablation.
//!
//! ```
//! use pardict_pram::Pram;
//! use pardict_graph::Forest;
//! use pardict_ancestors::ColoredAncestors;
//!
//! let pram = Pram::seq();
//! // Path 0 ← 1 ← 2 ← 3; node 0 is red (0), node 2 is blue (1).
//! let f = Forest::from_parents(&pram, &[0, 0, 1, 2]);
//! let ca = ColoredAncestors::build(&pram, &f, &[(0, 0), (2, 1)], 9);
//! assert_eq!(ca.find(3, 0), Some(0)); // nearest red ancestor
//! assert_eq!(ca.find(3, 1), Some(2)); // nearest blue ancestor
//! assert_eq!(ca.find(1, 1), None);
//! ```

mod colored;
mod marked;

pub use colored::{ColoredAncestors, ColoredAncestorsNaive};
pub use marked::NearestMarkedAncestor;

#[cfg(test)]
mod proptests {
    use super::*;
    use pardict_graph::Forest;
    use pardict_pram::{Pram, SplitMix64};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn both_colored_variants_match_chain_walk(
            seed in 0u64..10_000,
            n in 2usize..160,
            ncolors in 1u32..6,
            density in 1u64..4,
        ) {
            let mut rng = SplitMix64::new(seed);
            let parent: Vec<usize> = (0..n)
                .map(|v| if v == 0 { 0 } else { rng.next_below(v as u64) as usize })
                .collect();
            let mut colors = Vec::new();
            for v in 0..n {
                if rng.next_below(4) < density {
                    colors.push((v, rng.next_below(u64::from(ncolors)) as u32));
                }
            }
            let pram = Pram::seq();
            let f = Forest::from_parents(&pram, &parent);
            let fast = ColoredAncestors::build(&pram, &f, &colors, seed);
            let naive = ColoredAncestorsNaive::build(&pram, &f, &colors, seed);
            for _ in 0..50 {
                let p = rng.next_below(n as u64) as usize;
                let c = rng.next_below(u64::from(ncolors)) as u32;
                // Chain-walk oracle.
                let mut want = None;
                let mut u = p;
                loop {
                    if colors.iter().any(|&(w, cc)| w == u && cc == c) {
                        want = Some(u);
                        break;
                    }
                    if parent[u] == u {
                        break;
                    }
                    u = parent[u];
                }
                prop_assert_eq!(fast.find(p, c), want);
                prop_assert_eq!(naive.find(p, c), want);
            }
        }

        #[test]
        fn marked_ancestors_match_chain_walk(seed in 0u64..10_000, n in 1usize..200) {
            let mut rng = SplitMix64::new(seed);
            let parent: Vec<usize> = (0..n)
                .map(|v| if v == 0 { 0 } else { rng.next_below(v as u64) as usize })
                .collect();
            let marked: Vec<bool> = (0..n).map(|_| rng.next_below(3) == 0).collect();
            let pram = Pram::seq();
            let f = Forest::from_parents(&pram, &parent);
            let nma = NearestMarkedAncestor::build(&pram, &f, &marked, seed);
            for v in 0..n {
                let mut u = v;
                let mut want = usize::MAX;
                while parent[u] != u {
                    u = parent[u];
                    if marked[u] {
                        want = u;
                        break;
                    }
                }
                prop_assert_eq!(nma.strict(v), want);
            }
        }
    }
}
