//! Nearest colored ancestors (§3.2) — the paper's novel data structure.
//!
//! Nodes carry colors (several per node allowed); `Find(p, c)` returns the
//! nearest ancestor of `p` (inclusive) colored `c`.
//!
//! **Naive variant** ([`ColoredAncestorsNaive`], the paper's naive skeleton
//! trees): one Lemma 2.7 pass per distinct color — `O(n · |C|)` work,
//! `O(1)` query.
//!
//! **Efficient variant** ([`ColoredAncestors`], the paper's real skeleton
//! trees + van Emde Boas): per color, the colored nodes' Euler-tour
//! entry/exit endpoints go into a vEB set. A query takes the predecessor of
//! `first[p]`: landing on an *entry* endpoint of `u` means `u` encloses `p`
//! (laminarity: had `u`'s interval closed before `p`, its exit endpoint
//! would intervene) — answer `u`; landing on an *exit* endpoint of `w`
//! means the answer is `w`'s own color-parent, precomputed for all colored
//! nodes with one nearest-larger-values pass. Preprocessing `O(n + C)`
//! work; queries `O(log log n)` — exactly the paper's trade-off.

use crate::marked::{NearestMarkedAncestor, NONE as NMA_NONE};
use pardict_graph::{EulerTour, Forest};
use pardict_pram::{radix_sort_by_key, Pram};
use pardict_rmq::{ansv_seq, Side, Strictness};
use pardict_veb::VebTree;
use std::collections::HashMap;

/// The efficient (real-skeleton + vEB) nearest colored ancestor structure.
#[derive(Debug)]
pub struct ColoredAncestors {
    tour: EulerTour,
    /// Per color: endpoint set and metadata.
    per_color: HashMap<u32, PerColor>,
}

#[derive(Debug)]
struct PerColor {
    /// Entry and exit Euler positions of all `c`-colored nodes.
    endpoints: VebTree,
    /// Euler position → the colored node with an endpoint there. The only
    /// possible collision is a leaf's entry with its own exit.
    role: HashMap<u32, u32>,
    /// Color-parent: nearest strictly-enclosing same-colored node.
    up: HashMap<u32, u32>,
}

impl ColoredAncestors {
    /// Build over `forest` with `colors` = (node, color) pairs (a node may
    /// appear with several colors). `O(n + C)` work beyond the Euler tour.
    #[must_use]
    pub fn build(pram: &Pram, forest: &Forest, colors: &[(usize, u32)], seed: u64) -> Self {
        let tour = EulerTour::build(pram, forest, seed ^ 0xC010);
        Self::from_tour(pram, tour, colors)
    }

    /// Build from an existing Euler tour of the forest.
    #[must_use]
    pub fn from_tour(pram: &Pram, tour: EulerTour, colors: &[(usize, u32)]) -> Self {
        // Group the (node, color) pairs by color with a stable radix sort,
        // then slice the groups out sequentially (O(C) work).
        let sorted = radix_sort_by_key(pram, colors, |&(_, c)| u64::from(c));
        pram.ledger().round(sorted.len() as u64);

        let mut per_color: HashMap<u32, PerColor> = HashMap::new();
        let universe = tour.seq.len().max(1);
        let mut i = 0usize;
        while i < sorted.len() {
            let c = sorted[i].1;
            let mut j = i;
            while j < sorted.len() && sorted[j].1 == c {
                j += 1;
            }
            let group = &sorted[i..j];

            // Laminar intervals of this color, ordered by entry position.
            let by_entry = {
                let mut g: Vec<usize> = group.iter().map(|&(v, _)| v).collect();
                g.sort_unstable_by_key(|&v| tour.first[v]);
                g
            };
            pram.ledger().round(group.len() as u64);

            // Color-parents: nearest previous interval (in entry order)
            // whose exit exceeds mine — with laminarity this is exactly the
            // nearest *larger* value on the exit array.
            let lasts: Vec<i64> = by_entry.iter().map(|&v| -(tour.last[v] as i64)).collect();
            let encl = ansv_seq(&lasts, Side::Left, Strictness::Strict);
            pram.ledger().round(group.len() as u64);

            let mut endpoints = VebTree::with_universe(universe);
            let mut role = HashMap::with_capacity(2 * group.len());
            let mut up = HashMap::with_capacity(group.len());
            for (k, &v) in by_entry.iter().enumerate() {
                let (fi, la) = (tour.first[v] as u32, tour.last[v] as u32);
                endpoints.insert(fi);
                endpoints.insert(la);
                role.insert(fi, v as u32);
                role.insert(la, v as u32);
                if encl[k] != usize::MAX {
                    up.insert(v as u32, by_entry[encl[k]] as u32);
                }
            }
            per_color.insert(
                c,
                PerColor {
                    endpoints,
                    role,
                    up,
                },
            );
            i = j;
        }
        Self { tour, per_color }
    }

    /// Nearest ancestor of `p` (inclusive) colored `c`. `O(log log n)`.
    #[must_use]
    pub fn find(&self, p: usize, c: u32) -> Option<usize> {
        let pc = self.per_color.get(&c)?;
        let q = self.tour.first[p] as u32;
        let e = pc.endpoints.predecessor_or_equal(q)?;
        let &v = pc.role.get(&e).expect("endpoint has a role");
        if self.tour.first[v as usize] as u32 <= q && q <= self.tour.last[v as usize] as u32 {
            // Entry endpoint of a still-open interval: v encloses p.
            debug_assert!(self.tour.is_ancestor(v as usize, p));
            Some(v as usize)
        } else {
            // v's interval closed before p: the answer is v's color-parent
            // (no endpoint separates v's exit from p, so the innermost open
            // c-interval at p is exactly the one that enclosed v).
            pc.up.get(&v).map(|&u| u as usize)
        }
    }

    /// The Euler tour used for numbering (shared with callers).
    #[must_use]
    pub fn tour(&self) -> &EulerTour {
        &self.tour
    }
}

/// The naive variant: one Lemma 2.7 structure per distinct color.
/// `O(n · |C|)` preprocessing work, `O(1)` queries.
#[derive(Debug)]
pub struct ColoredAncestorsNaive {
    per_color: HashMap<u32, NearestMarkedAncestor>,
}

impl ColoredAncestorsNaive {
    /// Build over `forest` with `colors` = (node, color) pairs.
    #[must_use]
    pub fn build(pram: &Pram, forest: &Forest, colors: &[(usize, u32)], seed: u64) -> Self {
        let n = forest.len();
        let mut by_color: HashMap<u32, Vec<usize>> = HashMap::new();
        pram.ledger().round(colors.len() as u64);
        for &(v, c) in colors {
            by_color.entry(c).or_default().push(v);
        }
        let mut per_color = HashMap::with_capacity(by_color.len());
        for (c, nodes) in by_color {
            let mut marked = vec![false; n];
            pram.ledger().round(n as u64);
            for v in nodes {
                marked[v] = true;
            }
            per_color.insert(
                c,
                NearestMarkedAncestor::build(pram, forest, &marked, seed ^ u64::from(c)),
            );
        }
        Self { per_color }
    }

    /// Nearest ancestor of `p` (inclusive) colored `c`. `O(1)`.
    #[must_use]
    pub fn find(&self, p: usize, c: u32) -> Option<usize> {
        let nma = self.per_color.get(&c)?;
        let a = nma.inclusive(p);
        if a == NMA_NONE {
            None
        } else {
            Some(a)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pardict_pram::{Pram, SplitMix64};

    fn oracle(parent: &[usize], colors: &[(usize, u32)], p: usize, c: u32) -> Option<usize> {
        let colored = |v: usize| colors.iter().any(|&(w, cc)| w == v && cc == c);
        let mut v = p;
        loop {
            if colored(v) {
                return Some(v);
            }
            if parent[v] == v {
                return None;
            }
            v = parent[v];
        }
    }

    fn check(parent: &[usize], colors: &[(usize, u32)], num_colors: u32) {
        let pram = Pram::seq();
        let f = Forest::from_parents(&pram, parent);
        let fast = ColoredAncestors::build(&pram, &f, colors, 11);
        let naive = ColoredAncestorsNaive::build(&pram, &f, colors, 11);
        for p in 0..parent.len() {
            for c in 0..num_colors {
                let want = oracle(parent, colors, p, c);
                assert_eq!(fast.find(p, c), want, "fast p={p} c={c}");
                assert_eq!(naive.find(p, c), want, "naive p={p} c={c}");
            }
        }
    }

    #[test]
    fn small_tree_two_colors() {
        //      0(c0)
        //    /      \
        //   1(c1)    2
        //  / \        \
        // 3   4(c0,c1) 5
        let parent = vec![0, 0, 0, 1, 1, 2];
        let colors = vec![(0, 0), (1, 1), (4, 0), (4, 1)];
        check(&parent, &colors, 3);
    }

    #[test]
    fn chain_with_alternating_colors() {
        let n = 100;
        let parent: Vec<usize> = (0..n).map(|v: usize| v.saturating_sub(1)).collect();
        let colors: Vec<(usize, u32)> = (0..n).map(|v| (v, (v % 3) as u32)).collect();
        check(&parent, &colors, 4);
    }

    #[test]
    fn unknown_color_returns_none() {
        let pram = Pram::seq();
        let f = Forest::from_parents(&pram, &[0, 0]);
        let fast = ColoredAncestors::build(&pram, &f, &[(1, 7)], 1);
        assert_eq!(fast.find(0, 99), None);
        assert_eq!(fast.find(0, 7), None);
        assert_eq!(fast.find(1, 7), Some(1));
    }

    #[test]
    fn random_trees_random_colors() {
        let mut rng = SplitMix64::new(31);
        for _ in 0..4 {
            let n = 150;
            let parent: Vec<usize> = (0..n)
                .map(|v: usize| {
                    if v == 0 {
                        0
                    } else {
                        rng.next_below(v as u64) as usize
                    }
                })
                .collect();
            let num_colors = 5;
            let mut colors = Vec::new();
            for v in 0..n {
                if rng.next_below(3) == 0 {
                    colors.push((v, rng.next_below(num_colors) as u32));
                }
                if rng.next_below(10) == 0 {
                    colors.push((v, rng.next_below(num_colors) as u32));
                }
            }
            colors.dedup();
            check(&parent, &colors, num_colors as u32);
        }
    }

    #[test]
    fn forest_queries_stay_in_tree() {
        // Two trees; color only in the first.
        let parent = vec![0, 0, 1, 3, 3];
        let colors = vec![(0, 0), (1, 0)];
        check(&parent, &colors, 1);
    }

    #[test]
    fn deep_nesting_same_color() {
        // All nodes one color: answers are the node itself.
        let n = 60;
        let parent: Vec<usize> = (0..n).map(|v: usize| v.saturating_sub(1)).collect();
        let colors: Vec<(usize, u32)> = (0..n).map(|v| (v, 0)).collect();
        check(&parent, &colors, 1);
    }

    #[test]
    fn efficient_work_beats_naive_with_many_colors() {
        let n = 4000usize;
        let mut rng = SplitMix64::new(9);
        let parent: Vec<usize> = (0..n)
            .map(|v: usize| {
                if v == 0 {
                    0
                } else {
                    rng.next_below(v as u64) as usize
                }
            })
            .collect();
        let num_colors = 64u64;
        let mut colors: Vec<(usize, u32)> = Vec::new();
        for v in 0..n {
            if rng.next_below(2) == 0 {
                colors.push((v, rng.next_below(num_colors) as u32));
            }
        }

        let pram_fast = Pram::seq();
        let f = Forest::from_parents(&pram_fast, &parent);
        let before = pram_fast.cost();
        let _ = ColoredAncestors::build(&pram_fast, &f, &colors, 1);
        let fast_work = pram_fast.cost().since(before).work;

        let pram_naive = Pram::seq();
        let f2 = Forest::from_parents(&pram_naive, &parent);
        let before = pram_naive.cost();
        let _ = ColoredAncestorsNaive::build(&pram_naive, &f2, &colors, 1);
        let naive_work = pram_naive.cost().since(before).work;

        assert!(
            fast_work * 4 < naive_work,
            "expected ≥4x preprocessing gap, fast={fast_work} naive={naive_work}"
        );
    }
}
