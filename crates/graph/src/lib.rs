#![warn(missing_docs)]

//! # pardict-graph — parallel graph substrates
//!
//! Supplies the graph machinery the paper leans on:
//!
//! * **Lemma 2.2** (connected components): [`connected_components`] — a
//!   hooking + pointer-jumping CRCW algorithm standing in for Gazit's
//!   randomized optimal one (see DESIGN.md substitution table).
//! * **Rooted forests**: [`Forest`] — parent-array forests with child
//!   adjacency built by stable integer sorting.
//! * **Level ancestors**: [`LevelAncestors`] — jump-pointer level/ kth
//!   ancestor queries (the §4 alternative to Euler-interval tests).
//! * **Euler tours**: [`EulerTour`] — work-optimal tour construction via
//!   random-mate list ranking; yields entry/exit times, ±1 depth sequences
//!   (feeding the O(1) LCA structure in `pardict-rmq`), per-node tree roots
//!   (the §4.2 uncompression primitive), and subtree intervals.
//!
//! ```
//! use pardict_pram::Pram;
//! use pardict_graph::{EulerTour, Forest};
//!
//! let pram = Pram::seq();
//! // 0 ← 1 ← 2 and a second tree {3}.
//! let f = Forest::from_parents(&pram, &[0, 0, 1, 3]);
//! let tour = EulerTour::build(&pram, &f, 7);
//! assert!(tour.is_ancestor(0, 2));
//! assert_eq!(tour.root_of, vec![0, 0, 0, 3]);
//! ```

mod cc;
mod euler;
mod forest;
mod levelanc;
mod rootfix;

pub use cc::connected_components;
pub use euler::EulerTour;
pub use forest::Forest;
pub use levelanc::LevelAncestors;
pub use rootfix::{leaffix, rootfix};

#[cfg(test)]
mod proptests {
    use super::*;
    use pardict_pram::{Pram, SplitMix64};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn rootfix_and_leaffix_match_walks(seed in 0u64..10_000, n in 1usize..250) {
            let mut rng = SplitMix64::new(seed);
            let parent: Vec<usize> = (0..n)
                .map(|v| if v == 0 { 0 } else { rng.next_below(v as u64) as usize })
                .collect();
            let values: Vec<i64> = (0..n).map(|_| rng.next_below(40) as i64 - 20).collect();
            let pram = Pram::seq();
            let f = Forest::from_parents(&pram, &parent);
            let tour = EulerTour::build(&pram, &f, seed);
            let rf = rootfix(&pram, &f, &tour, &values, i64::MIN, |a, b| a.max(b), seed);
            let lf = leaffix(&pram, &f, &tour, &values, i64::MIN, |a, b| a.max(b), seed);
            for v in 0..n {
                // Rootfix oracle: walk to the root.
                let mut acc = values[v];
                let mut u = v;
                while parent[u] != u {
                    u = parent[u];
                    acc = acc.max(values[u]);
                }
                prop_assert_eq!(rf[v], acc, "rootfix at {}", v);
                // Leaffix oracle: subtree max via ancestor scan.
                let mut sub = values[v];
                for w in 0..n {
                    if tour.is_ancestor(v, w) {
                        sub = sub.max(values[w]);
                    }
                }
                prop_assert_eq!(lf[v], sub, "leaffix at {}", v);
            }
        }

        #[test]
        fn euler_entry_exit_are_consistent(seed in 0u64..10_000, n in 1usize..250) {
            let mut rng = SplitMix64::new(seed);
            let parent: Vec<usize> = (0..n)
                .map(|v| if v == 0 { 0 } else { rng.next_below(v as u64) as usize })
                .collect();
            let pram = Pram::seq();
            let f = Forest::from_parents(&pram, &parent);
            let tour = EulerTour::build(&pram, &f, seed);
            for v in 0..n {
                prop_assert_eq!(tour.seq[tour.first[v]], v);
                prop_assert_eq!(tour.seq[tour.last[v]], v);
                prop_assert!(tour.first[v] <= tour.last[v]);
                if parent[v] != v {
                    prop_assert!(tour.is_ancestor(parent[v], v));
                    prop_assert!(!tour.is_ancestor(v, parent[v]));
                }
            }
        }
    }
}
