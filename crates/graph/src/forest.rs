//! Parent-array forests with CSR child adjacency.

use pardict_pram::{radix_sort_by_key, Pram};

/// A rooted forest over nodes `0..n`, stored as a parent array
/// (`parent[r] == r` for roots) plus a CSR child table built with one stable
/// counting-sort round (children of each node appear in increasing id
/// order, which downstream code relies on for determinism).
#[derive(Debug, Clone)]
pub struct Forest {
    parent: Vec<usize>,
    child_off: Vec<usize>,
    child: Vec<usize>,
}

impl Forest {
    /// Build from a parent array. `O(n)` work, `O(log n)` depth.
    ///
    /// # Panics
    /// Panics if `parent` contains an out-of-range entry. Cycles are not
    /// detected here (they would make the Euler tour loop); callers
    /// constructing forests from untrusted data should call
    /// [`Forest::validate_acyclic`].
    #[must_use]
    pub fn from_parents(pram: &Pram, parent: &[usize]) -> Self {
        let n = parent.len();
        assert!(parent.iter().all(|&p| p < n), "parent index out of range");
        // Stable sort node ids by parent: children end up contiguous per
        // parent and in increasing id order.
        let nonroots: Vec<usize> = pram.filter(&(0..n).collect::<Vec<_>>(), |_, &v| parent[v] != v);
        // Radix sort (8-bit passes) keeps depth logarithmic; a single
        // counting sort with n buckets would charge O(n) depth.
        let sorted = if n == 0 {
            Vec::new()
        } else {
            radix_sort_by_key(pram, &nonroots, |&v| parent[v] as u64)
        };
        // Bucket offsets: count children per node, then exclusive scan.
        let ones: Vec<u64> = pram.tabulate(n, |_| 0u64);
        let mut counts = ones;
        pram.ledger().round(sorted.len() as u64);
        for &v in &sorted {
            counts[parent[v]] += 1;
        }
        let off64 = pram.scan_exclusive_sum(&counts);
        let mut child_off: Vec<usize> = off64.iter().map(|&x| x as usize).collect();
        child_off.push(sorted.len());
        Self {
            parent: parent.to_vec(),
            child_off,
            child: sorted,
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True for the empty forest.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Parent of `v` (`v` itself when `v` is a root).
    #[must_use]
    pub fn parent(&self, v: usize) -> usize {
        self.parent[v]
    }

    /// The full parent array.
    #[must_use]
    pub fn parents(&self) -> &[usize] {
        &self.parent
    }

    /// Children of `v`, in increasing id order.
    #[must_use]
    pub fn children(&self, v: usize) -> &[usize] {
        &self.child[self.child_off[v]..self.child_off[v + 1]]
    }

    /// True when `v` is a root.
    #[must_use]
    pub fn is_root(&self, v: usize) -> bool {
        self.parent[v] == v
    }

    /// All roots, in increasing id order.
    #[must_use]
    pub fn roots(&self) -> Vec<usize> {
        (0..self.len()).filter(|&v| self.is_root(v)).collect()
    }

    /// Check that every node reaches a root (no cycles). `O(n)` time.
    ///
    /// # Errors
    /// Returns the id of a node on a cycle if one exists.
    pub fn validate_acyclic(&self) -> Result<(), usize> {
        let n = self.len();
        // 0 = unvisited, 1 = in progress, 2 = done.
        let mut state = vec![0u8; n];
        for start in 0..n {
            if state[start] != 0 {
                continue;
            }
            let mut path = Vec::new();
            let mut v = start;
            loop {
                match state[v] {
                    2 => break,
                    1 => return Err(v),
                    _ => {}
                }
                state[v] = 1;
                path.push(v);
                if self.is_root(v) {
                    break;
                }
                v = self.parent[v];
            }
            for u in path {
                state[u] = 2;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pardict_pram::Pram;

    #[test]
    fn builds_children_in_order() {
        let pram = Pram::seq();
        // Tree: 0 root, children 1,2; 2's children 3,4; root 5 singleton.
        let f = Forest::from_parents(&pram, &[0, 0, 0, 2, 2, 5]);
        assert_eq!(f.children(0), &[1, 2]);
        assert_eq!(f.children(2), &[3, 4]);
        assert_eq!(f.children(1), &[] as &[usize]);
        assert_eq!(f.roots(), vec![0, 5]);
        assert!(f.is_root(5));
        assert!(!f.is_root(3));
    }

    #[test]
    fn empty_forest() {
        let pram = Pram::seq();
        let f = Forest::from_parents(&pram, &[]);
        assert!(f.is_empty());
        assert!(f.roots().is_empty());
        assert_eq!(f.validate_acyclic(), Ok(()));
    }

    #[test]
    fn validate_detects_cycle() {
        let pram = Pram::seq();
        // 1 -> 2 -> 3 -> 1 cycle; Forest::from_parents doesn't check.
        let f = Forest::from_parents(&pram, &[0, 2, 3, 1]);
        assert!(f.validate_acyclic().is_err());
    }

    #[test]
    fn validate_accepts_chain() {
        let pram = Pram::seq();
        let f = Forest::from_parents(&pram, &[0, 0, 1, 2, 3]);
        assert_eq!(f.validate_acyclic(), Ok(()));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_parent() {
        let pram = Pram::seq();
        let _ = Forest::from_parents(&pram, &[0, 7]);
    }
}
