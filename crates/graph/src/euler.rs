//! Euler tours of rooted forests by work-optimal list ranking.
//!
//! The tour of a tree is the classic DFS edge circuit. Building it on a PRAM
//! is the canonical application of list ranking: the successor function of
//! the circuit is computable locally from the child adjacency in O(1) per
//! edge, after which random-mate list ranking assigns every edge its
//! position in expected `O(n)` work and `O(log n)` depth.
//!
//! The resulting arrays power three consumers in this workspace:
//!
//! * the ±1 **depth sequence** feeds the `O(1)` LCA structure of
//!   `pardict-rmq` (Lemmas 2.3/2.6 and the §3.2 skeleton trees);
//! * **entry/exit times** give `O(1)` ancestor tests and subtree intervals
//!   (used by the legal-length table of Step 2A and by nearest marked
//!   ancestors);
//! * **per-node tree roots** resolve a forest's components in linear work —
//!   the step that makes Theorem 4.3 uncompression work-optimal where naive
//!   pointer jumping would pay an extra log factor.

use crate::forest::Forest;
use pardict_pram::{list_rank_random_mate_full, Pram};

/// Euler tour of a rooted forest.
///
/// Trees are laid out one after another (ordered by root id) in a single
/// global sequence; a tree with `k` nodes occupies `2k - 1` slots.
#[derive(Debug, Clone)]
pub struct EulerTour {
    /// Node visited at each tour position (length `2n - #trees`).
    pub seq: Vec<usize>,
    /// Depth of the node at each tour position (root = 0); adjacent
    /// positions within a tree differ by exactly ±1.
    pub depth: Vec<u32>,
    /// First (entry) position of each node.
    pub first: Vec<usize>,
    /// Last (exit) position of each node.
    pub last: Vec<usize>,
    /// Root of the tree containing each node.
    pub root_of: Vec<usize>,
}

impl EulerTour {
    /// Build the tour. Expected `O(n)` work, `O(log n)` depth.
    #[must_use]
    pub fn build(pram: &Pram, forest: &Forest, seed: u64) -> Self {
        let n = forest.len();
        if n == 0 {
            return Self {
                seq: Vec::new(),
                depth: Vec::new(),
                first: Vec::new(),
                last: Vec::new(),
                root_of: Vec::new(),
            };
        }

        // Next sibling of each node (usize::MAX when last child).
        let mut sib_next = vec![usize::MAX; n];
        pram.ledger().round(n as u64);
        for v in 0..n {
            let cs = forest.children(v);
            for w in cs.windows(2) {
                sib_next[w[0]] = w[1];
            }
        }

        // Circuit successor over edge slots: down(v) = 2v, up(v) = 2v + 1.
        let next: Vec<usize> = pram.tabulate(2 * n, |slot| {
            let v = slot >> 1;
            if forest.is_root(v) {
                return slot; // unused slots self-loop
            }
            if slot & 1 == 0 {
                // down(v): descend to first child, else bounce back up.
                match forest.children(v).first() {
                    Some(&c) => 2 * c,
                    None => 2 * v + 1,
                }
            } else {
                // up(v): continue with the next sibling, else climb.
                let u = forest.parent(v);
                if sib_next[v] != usize::MAX {
                    2 * sib_next[v]
                } else if forest.is_root(u) {
                    slot // tail of this tree's tour
                } else {
                    2 * u + 1
                }
            }
        });

        let ranks = list_rank_random_mate_full(pram, &next, seed ^ 0xE01E_47AE);

        // Per-root edge counts and sequence base offsets (trees in root-id
        // order). Roots are a compacted subset; the scan over them is O(n).
        let is_root_flags: Vec<bool> = pram.tabulate(n, |v| forest.is_root(v));
        let roots = pram.pack_indices(&is_root_flags);
        let len_edges_per_root: Vec<u64> =
            pram.map(&roots, |_, &r| match forest.children(r).first() {
                Some(&c) => ranks.rank[2 * c] + 1,
                None => 0,
            });
        let sizes: Vec<u64> = pram.map(&len_edges_per_root, |_, &e| e + 1);
        let bases = pram.scan_exclusive_sum(&sizes);
        let seq_len = (*bases.last().unwrap() + *sizes.last().unwrap()) as usize;

        // Spread per-root data to dense arrays for O(1) lookup by root id.
        let mut seq_base = vec![0usize; n];
        let mut len_edges = vec![0u64; n];
        pram.ledger().round(roots.len() as u64);
        for (k, &r) in roots.iter().enumerate() {
            seq_base[r] = bases[k] as usize;
            len_edges[r] = len_edges_per_root[k];
        }

        // Root of each node: the tail of v's edge list is up(w) with
        // parent(w) = root.
        let root_of: Vec<usize> = pram.tabulate(n, |v| {
            if forest.is_root(v) {
                v
            } else {
                forest.parent(ranks.tail[2 * v] >> 1)
            }
        });

        // Global position of each used edge slot.
        let pos = |slot: usize| -> usize {
            let r = root_of[slot >> 1];
            seq_base[r] + (len_edges[r] - ranks.rank[slot]) as usize
        };

        // Assemble seq and the ±1 delta sequence.
        let mut seq = vec![usize::MAX; seq_len];
        let mut delta = vec![0i64; seq_len];
        pram.ledger().round(roots.len() as u64);
        for &r in &roots {
            seq[seq_base[r]] = r;
        }
        pram.ledger().round(2 * n as u64);
        for slot in 0..2 * n {
            let v = slot >> 1;
            if forest.is_root(v) {
                continue;
            }
            let p = pos(slot);
            if slot & 1 == 0 {
                seq[p] = v;
                delta[p] = 1;
            } else {
                seq[p] = forest.parent(v);
                delta[p] = -1;
            }
        }
        debug_assert!(seq.iter().all(|&v| v != usize::MAX));

        let depth64 = pram.scan_inclusive(&delta, 0i64, |a, b| a + b);
        let depth: Vec<u32> = pram.map(&depth64, |_, &d| {
            debug_assert!(d >= 0);
            d as u32
        });

        // Entry/exit positions.
        let first: Vec<usize> = pram.tabulate(n, |v| {
            if forest.is_root(v) {
                seq_base[v]
            } else {
                pos(2 * v)
            }
        });
        // Last occurrence of v: the return from its last child, or the
        // single occurrence when v is childless.
        let last: Vec<usize> = pram.tabulate(n, |v| match forest.children(v).last() {
            Some(&c) => pos(2 * c + 1),
            None => {
                if forest.is_root(v) {
                    seq_base[v]
                } else {
                    pos(2 * v)
                }
            }
        });

        Self {
            seq,
            depth,
            first,
            last,
            root_of,
        }
    }

    /// Number of nodes in the underlying forest.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.first.len()
    }

    /// Depth of node `v` in its tree (roots have depth 0).
    #[must_use]
    pub fn node_depth(&self, v: usize) -> u32 {
        self.depth[self.first[v]]
    }

    /// O(1) ancestor test (`u` an ancestor of `v`, inclusive). Nodes in
    /// different trees are never ancestors of one another.
    #[must_use]
    pub fn is_ancestor(&self, u: usize, v: usize) -> bool {
        self.first[u] <= self.first[v] && self.last[v] <= self.last[u]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pardict_pram::{Pram, SplitMix64};

    /// Sequential DFS oracle producing (seq, depth) for a forest.
    fn dfs_oracle(forest: &Forest) -> (Vec<usize>, Vec<u32>) {
        let mut seq = Vec::new();
        let mut depth = Vec::new();
        for r in forest.roots() {
            dfs(forest, r, 0, &mut seq, &mut depth);
        }
        (seq, depth)
    }

    fn dfs(f: &Forest, v: usize, d: u32, seq: &mut Vec<usize>, depth: &mut Vec<u32>) {
        seq.push(v);
        depth.push(d);
        for &c in f.children(v) {
            dfs(f, c, d + 1, seq, depth);
            seq.push(v);
            depth.push(d);
        }
    }

    fn random_forest(n: usize, num_roots: usize, seed: u64) -> Vec<usize> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|v| {
                if v < num_roots {
                    v
                } else {
                    rng.next_below(v as u64) as usize
                }
            })
            .collect()
    }

    #[test]
    fn tour_matches_dfs_small() {
        let pram = Pram::seq();
        let f = Forest::from_parents(&pram, &[0, 0, 0, 2, 2, 5]);
        let t = EulerTour::build(&pram, &f, 1);
        let (seq, depth) = dfs_oracle(&f);
        assert_eq!(t.seq, seq);
        assert_eq!(t.depth, depth);
        assert_eq!(t.root_of, vec![0, 0, 0, 0, 0, 5]);
    }

    #[test]
    fn tour_matches_dfs_random() {
        let pram = Pram::seq();
        for (n, roots, seed) in [(30usize, 1usize, 2u64), (200, 5, 3), (3000, 7, 4)] {
            let parent = random_forest(n, roots, seed);
            let f = Forest::from_parents(&pram, &parent);
            let t = EulerTour::build(&pram, &f, seed);
            let (seq, depth) = dfs_oracle(&f);
            assert_eq!(t.seq, seq, "n={n}");
            assert_eq!(t.depth, depth, "n={n}");
        }
    }

    #[test]
    fn entry_exit_bracket_subtrees() {
        let pram = Pram::seq();
        let parent = random_forest(500, 3, 9);
        let f = Forest::from_parents(&pram, &parent);
        let t = EulerTour::build(&pram, &f, 9);
        for v in 0..f.len() {
            assert_eq!(t.seq[t.first[v]], v);
            assert_eq!(t.seq[t.last[v]], v);
            if !f.is_root(v) {
                let p = f.parent(v);
                assert!(t.is_ancestor(p, v));
                assert!(!t.is_ancestor(v, p));
                assert_eq!(t.node_depth(v), t.node_depth(p) + 1);
            }
        }
    }

    #[test]
    fn ancestor_test_cross_tree_is_false() {
        let pram = Pram::seq();
        let f = Forest::from_parents(&pram, &[0, 0, 2, 2]);
        let t = EulerTour::build(&pram, &f, 5);
        assert!(!t.is_ancestor(0, 3));
        assert!(!t.is_ancestor(2, 1));
        assert!(t.is_ancestor(2, 3));
    }

    #[test]
    fn singleton_trees() {
        let pram = Pram::seq();
        let f = Forest::from_parents(&pram, &[0, 1, 2]);
        let t = EulerTour::build(&pram, &f, 5);
        assert_eq!(t.seq, vec![0, 1, 2]);
        assert_eq!(t.depth, vec![0, 0, 0]);
        assert_eq!(t.root_of, vec![0, 1, 2]);
    }

    #[test]
    fn root_of_resolves_deep_chain() {
        let pram = Pram::seq();
        // A path 0 <- 1 <- ... <- 999.
        let n = 1000;
        let parent: Vec<usize> = (0..n).map(|v: usize| v.saturating_sub(1)).collect();
        let f = Forest::from_parents(&pram, &parent);
        let t = EulerTour::build(&pram, &f, 8);
        assert!(t.root_of.iter().all(|&r| r == 0));
        assert_eq!(t.node_depth(n - 1), (n - 1) as u32);
    }

    #[test]
    fn empty_forest() {
        let pram = Pram::seq();
        let f = Forest::from_parents(&pram, &[]);
        let t = EulerTour::build(&pram, &f, 0);
        assert_eq!(t.num_nodes(), 0);
        assert!(t.seq.is_empty());
    }
}
