//! Level ancestors by jump pointers.
//!
//! §4 lists "tree contraction, level ancestors, Euler tour techniques" as
//! interchangeable ways to extract the parse path; the workspace defaults
//! to Euler tours (linear work), and this jump-pointer structure is the
//! level-ancestor alternative: `O(n log n)` preprocessing work/space,
//! `O(log n)` per query, but it answers the more general question "the
//! ancestor of `v` at depth `t`" that interval tests cannot.

use crate::forest::Forest;
use pardict_pram::{ceil_log2, Pram};

/// Jump-pointer level-ancestor structure over a rooted forest.
#[derive(Debug, Clone)]
pub struct LevelAncestors {
    /// `up[k][v]` = the 2^k-th ancestor of `v` (clamped at its root).
    up: Vec<Vec<u32>>,
    depth: Vec<u32>,
}

impl LevelAncestors {
    /// Preprocess. `O(n log n)` work, `O(log n)` depth (each level is one
    /// wide round composing the previous one).
    #[must_use]
    pub fn build(pram: &Pram, forest: &Forest) -> Self {
        let n = forest.len();
        let levels = ceil_log2(n.max(2)) as usize + 1;
        let mut up: Vec<Vec<u32>> = Vec::with_capacity(levels);
        up.push(pram.tabulate(n, |v| forest.parent(v) as u32));
        for k in 1..levels {
            let prev = &up[k - 1];
            up.push(pram.tabulate(n, |v| prev[prev[v] as usize]));
        }
        // Depths by doubling over (parent, +1) pairs.
        let mut depth: Vec<u32> = pram.tabulate(n, |v| u32::from(forest.parent(v) != v));
        let mut ptr: Vec<u32> = up[0].clone();
        for _ in 0..levels {
            let nd: Vec<u32> = pram.tabulate(n, |v| depth[v] + depth[ptr[v] as usize]);
            let np: Vec<u32> = pram.tabulate(n, |v| ptr[ptr[v] as usize]);
            depth = nd;
            ptr = np;
        }
        Self { up, depth }
    }

    /// Depth of `v` (roots have depth 0).
    #[must_use]
    pub fn depth(&self, v: usize) -> usize {
        self.depth[v] as usize
    }

    /// The ancestor of `v` at depth `target`, or `None` if `target`
    /// exceeds `v`'s depth. `O(log n)`.
    #[must_use]
    pub fn level_ancestor(&self, v: usize, target: usize) -> Option<usize> {
        let d = self.depth(v);
        if target > d {
            return None;
        }
        let mut steps = d - target;
        let mut cur = v as u32;
        let mut k = 0;
        while steps > 0 {
            if steps & 1 == 1 {
                cur = self.up[k][cur as usize];
            }
            steps >>= 1;
            k += 1;
        }
        Some(cur as usize)
    }

    /// The `j`-th ancestor of `v` (0 = itself), clamped at the root.
    #[must_use]
    pub fn kth_ancestor(&self, v: usize, j: usize) -> usize {
        let d = self.depth(v);
        self.level_ancestor(v, d.saturating_sub(j))
            .expect("clamped target is valid")
    }

    /// O(log n) ancestor test (cf. the O(1) Euler-interval test).
    #[must_use]
    pub fn is_ancestor(&self, u: usize, v: usize) -> bool {
        self.level_ancestor(v, self.depth(u)) == Some(u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::euler::EulerTour;
    use pardict_pram::{Pram, SplitMix64};

    fn random_forest(n: usize, roots: usize, seed: u64) -> Vec<usize> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|v| {
                if v < roots {
                    v
                } else {
                    rng.next_below(v as u64) as usize
                }
            })
            .collect()
    }

    #[test]
    fn ancestors_on_a_path() {
        let pram = Pram::seq();
        let n = 200;
        let parent: Vec<usize> = (0..n).map(|v: usize| v.saturating_sub(1)).collect();
        let f = Forest::from_parents(&pram, &parent);
        let la = LevelAncestors::build(&pram, &f);
        assert_eq!(la.depth(0), 0);
        assert_eq!(la.depth(n - 1), n - 1);
        assert_eq!(la.level_ancestor(n - 1, 0), Some(0));
        assert_eq!(la.level_ancestor(n - 1, 57), Some(57));
        assert_eq!(la.level_ancestor(10, 11), None);
        assert_eq!(la.kth_ancestor(50, 7), 43);
        assert_eq!(la.kth_ancestor(5, 100), 0);
    }

    #[test]
    fn matches_naive_on_random_forests() {
        let pram = Pram::seq();
        for seed in 0..4u64 {
            let parent = random_forest(300, 3, seed);
            let f = Forest::from_parents(&pram, &parent);
            let la = LevelAncestors::build(&pram, &f);
            let mut rng = SplitMix64::new(seed + 9);
            for _ in 0..500 {
                let v = rng.next_below(300) as usize;
                // Naive chain walk.
                let mut chain = vec![v];
                let mut u = v;
                while parent[u] != u {
                    u = parent[u];
                    chain.push(u);
                }
                assert_eq!(la.depth(v), chain.len() - 1);
                let t = rng.next_below(chain.len() as u64) as usize;
                assert_eq!(
                    la.level_ancestor(v, t),
                    Some(chain[chain.len() - 1 - t]),
                    "v={v} t={t}"
                );
            }
        }
    }

    #[test]
    fn ancestor_test_agrees_with_euler() {
        let pram = Pram::seq();
        let parent = random_forest(400, 2, 11);
        let f = Forest::from_parents(&pram, &parent);
        let la = LevelAncestors::build(&pram, &f);
        let tour = EulerTour::build(&pram, &f, 11);
        let mut rng = SplitMix64::new(12);
        for _ in 0..2000 {
            let u = rng.next_below(400) as usize;
            let v = rng.next_below(400) as usize;
            assert_eq!(la.is_ancestor(u, v), tour.is_ancestor(u, v), "u={u} v={v}");
        }
    }

    #[test]
    fn preprocessing_is_n_log_n() {
        // The documented trade-off vs the Euler tour's O(n).
        let pram = Pram::seq();
        let parent = random_forest(1 << 14, 1, 5);
        let f = Forest::from_parents(&pram, &parent);
        let (_, cost) = pram.metered(|p| LevelAncestors::build(p, &f));
        let n = 1u64 << 14;
        assert!(
            cost.work > 10 * n,
            "expected Θ(n log n) work, got {}",
            cost.work
        );
    }
}
