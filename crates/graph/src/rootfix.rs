//! Work-optimal *rootfix* computations: for every node, fold an associative
//! operation over the values on its root path.
//!
//! For invertible operations (sums) an Euler-tour prefix sum suffices; this
//! module handles **any** associative operation (max, min, argmax pairs…)
//! in `O(n)` work and `O(log² n)` depth via heavy-path rounds:
//!
//! 1. heavy-path decomposition (subtree sizes come free from the Euler
//!    tour; heavy chains are ranked as lists);
//! 2. each path head's *light depth* (number of light edges above it) is an
//!    invertible rootfix — one Euler prefix sum;
//! 3. paths are processed level by level: a path at light depth ℓ seeds
//!    from its head's parent (finished at level ℓ−1) and folds itself with
//!    one segmented scan. Every node is scanned exactly once, and there are
//!    at most `log₂ n` levels.
//!
//! This is what keeps Step 2A's path-maxima inside the paper's linear
//! preprocessing budget (the alternative — pointer doubling — costs
//! `Θ(n log n)`, measured in E12).

use crate::euler::EulerTour;
use crate::forest::Forest;
use pardict_pram::{ceil_log2, list_rank_random_mate_full, radix_sort_by_key, Pram};

/// For every node `v`, the fold `op(values[root], …, values[v])` along the
/// root path (inclusive). `op` must be associative; `id` its identity.
///
/// Expected `O(n)` work, `O(log² n)` depth.
#[must_use]
pub fn rootfix<T, F>(
    pram: &Pram,
    forest: &Forest,
    tour: &EulerTour,
    values: &[T],
    id: T,
    op: F,
    seed: u64,
) -> Vec<T>
where
    T: Copy + Send + Sync,
    F: Fn(T, T) -> T + Sync + Send + Copy,
{
    let n = forest.len();
    assert_eq!(values.len(), n);
    assert_eq!(tour.num_nodes(), n);
    if n == 0 {
        return Vec::new();
    }

    // Subtree sizes from the Euler tour intervals.
    let size = |v: usize| -> usize { (tour.last[v] - tour.first[v]) / 2 + 1 };

    // Heavy child of each node (largest subtree; ties to the smaller id).
    let heavy: Vec<usize> = pram.tabulate_costed(n, |v| {
        let mut best = usize::MAX;
        let mut best_size = 0usize;
        for &c in forest.children(v) {
            let s = size(c);
            if s > best_size {
                best_size = s;
                best = c;
            }
        }
        (best, forest.children(v).len() as u64 + 1)
    });

    // Heavy chains as upward lists: next[v] = parent if v is its parent's
    // heavy child, else v (v is a path head).
    let next: Vec<usize> = pram.tabulate(n, |v| {
        let p = forest.parent(v);
        if p != v && heavy[p] == v {
            p
        } else {
            v
        }
    });
    let ranks = list_rank_random_mate_full(pram, &next, seed ^ 0x500F);
    // rank[v] = distance from v up to its path head; tail[v] = the head.
    let head = ranks.tail;
    let rank = ranks.rank;

    // Light depth of each node's path head: the number of path heads
    // (excluding roots) on the root path — an invertible rootfix, done with
    // two prefix sums over the tour.
    let is_light_head: Vec<u64> =
        pram.tabulate(n, |v| u64::from(head[v] == v && !forest.is_root(v)));
    let tour_len = tour.seq.len();
    let opens: Vec<u64> = pram.tabulate(tour_len, |p| {
        let v = tour.seq[p];
        if tour.first[v] == p {
            is_light_head[v]
        } else {
            0
        }
    });
    let closes: Vec<u64> = pram.tabulate(tour_len, |p| {
        let v = tour.seq[p];
        if tour.last[v] == p {
            is_light_head[v]
        } else {
            0
        }
    });
    let open_pre = pram.scan_inclusive_sum(&opens);
    let close_pre = pram.scan_exclusive_sum(&closes);
    // ld(v) = #opens at positions <= first[v]  -  #closes at positions < first[v].
    let ld: Vec<u64> = pram.tabulate(n, |v| {
        let p = tour.first[v];
        open_pre[p] - close_pre[p]
    });

    // Lay every path out contiguously, heads first, ordered by
    // (light depth, head, rank): one stable radix sort per component key.
    let order: Vec<u32> = (0..n as u32).collect();
    let order = radix_sort_by_key(pram, &order, |&v| rank[v as usize]);
    let order = radix_sort_by_key(pram, &order, |&v| head[v as usize] as u64);
    let order = radix_sort_by_key(pram, &order, |&v| ld[head[v as usize]]);

    // Level boundaries in the sorted layout.
    let max_ld = pram
        .reduce(&ld, 0u64, |a, b| a.max(b))
        .min(ceil_log2(n.max(2)) as u64 + 1);
    let level_start: Vec<usize> = {
        // First index in `order` whose head-ld is >= l, for l = 0..=max+1.
        let lds: Vec<u64> = pram.map(&order, |_, &v| ld[head[v as usize]]);
        let mut starts = vec![order.len(); max_ld as usize + 2];
        pram.ledger().round(order.len() as u64);
        for (i, &l) in lds.iter().enumerate().rev() {
            starts[l as usize] = i;
        }
        // Make monotone (levels with no paths).
        for l in (0..starts.len() - 1).rev() {
            if starts[l] > starts[l + 1] {
                starts[l] = starts[l + 1];
            }
        }
        starts
    };

    // Process levels; each level is one segmented inclusive scan over its
    // slice of `order`, seeded per path from the head's parent.
    let mut out = vec![id; n];
    for l in 0..=max_ld as usize {
        let (lo, hi) = (level_start[l], level_start[l + 1]);
        if lo >= hi {
            continue;
        }
        let slice = &order[lo..hi];
        // Element: (path head as segment id, folded value).
        let elems: Vec<(u32, T)> = pram.map(slice, |_, &v| {
            let v = v as usize;
            let h = head[v];
            let val = if v == h {
                // Seed with the finished value above the light edge.
                let p = forest.parent(h);
                if p == h {
                    values[h]
                } else {
                    op(out[p], values[h])
                }
            } else {
                values[v]
            };
            (h as u32, val)
        });
        let scanned = pram.scan_inclusive(&elems, (u32::MAX, id), |a, b| {
            if a.0 != b.0 {
                b
            } else {
                (b.0, op(a.1, b.1))
            }
        });
        pram.ledger().round(slice.len() as u64);
        for (i, &v) in slice.iter().enumerate() {
            out[v as usize] = scanned[i].1;
        }
    }
    out
}

/// For every node `v`, the fold of `op` over the values in `v`'s subtree.
///
/// The fold order is fixed: `value[v]`, then `v`'s *light* subtrees (in
/// child order), then the heavy subtree — callers using non-commutative
/// operations get that specific order. Same machinery as [`rootfix`], run
/// from the deepest light level upward: expected `O(n)` work, `O(log² n)`
/// depth.
#[must_use]
pub fn leaffix<T, F>(
    pram: &Pram,
    forest: &Forest,
    tour: &EulerTour,
    values: &[T],
    id: T,
    op: F,
    seed: u64,
) -> Vec<T>
where
    T: Copy + Send + Sync,
    F: Fn(T, T) -> T + Sync + Send + Copy,
{
    let n = forest.len();
    assert_eq!(values.len(), n);
    assert_eq!(tour.num_nodes(), n);
    if n == 0 {
        return Vec::new();
    }
    let size = |v: usize| -> usize { (tour.last[v] - tour.first[v]) / 2 + 1 };
    let heavy: Vec<usize> = pram.tabulate_costed(n, |v| {
        let mut best = usize::MAX;
        let mut best_size = 0usize;
        for &c in forest.children(v) {
            let s = size(c);
            if s > best_size {
                best_size = s;
                best = c;
            }
        }
        (best, forest.children(v).len() as u64 + 1)
    });
    let next: Vec<usize> = pram.tabulate(n, |v| {
        let p = forest.parent(v);
        if p != v && heavy[p] == v {
            p
        } else {
            v
        }
    });
    let ranks = list_rank_random_mate_full(pram, &next, seed ^ 0x1EAF);
    let head = ranks.tail;
    let rank = ranks.rank;

    let is_light_head: Vec<u64> =
        pram.tabulate(n, |v| u64::from(head[v] == v && !forest.is_root(v)));
    let tour_len = tour.seq.len();
    let opens: Vec<u64> = pram.tabulate(tour_len, |p| {
        let v = tour.seq[p];
        if tour.first[v] == p {
            is_light_head[v]
        } else {
            0
        }
    });
    let closes: Vec<u64> = pram.tabulate(tour_len, |p| {
        let v = tour.seq[p];
        if tour.last[v] == p {
            is_light_head[v]
        } else {
            0
        }
    });
    let open_pre = pram.scan_inclusive_sum(&opens);
    let close_pre = pram.scan_exclusive_sum(&closes);
    let ld: Vec<u64> = pram.tabulate(n, |v| {
        let p = tour.first[v];
        open_pre[p] - close_pre[p]
    });

    let order: Vec<u32> = (0..n as u32).collect();
    let order = radix_sort_by_key(pram, &order, |&v| rank[v as usize]);
    let order = radix_sort_by_key(pram, &order, |&v| head[v as usize] as u64);
    let order = radix_sort_by_key(pram, &order, |&v| ld[head[v as usize]]);

    let max_ld = pram.reduce(&ld, 0u64, |a, b| a.max(b));
    let level_start: Vec<usize> = {
        let lds: Vec<u64> = pram.map(&order, |_, &v| ld[head[v as usize]]);
        let mut starts = vec![order.len(); max_ld as usize + 2];
        pram.ledger().round(order.len() as u64);
        for (i, &l) in lds.iter().enumerate().rev() {
            starts[l as usize] = i;
        }
        for l in (0..starts.len() - 1).rev() {
            if starts[l] > starts[l + 1] {
                starts[l] = starts[l + 1];
            }
        }
        starts
    };

    let mut out = vec![id; n];
    // Bottom-up over light levels; within a path a *suffix* fold (deepest
    // node first), realised by scanning the level slice in reverse.
    for l in (0..=max_ld as usize).rev() {
        let (lo, hi) = (level_start[l], level_start[l + 1]);
        if lo >= hi {
            continue;
        }
        let slice = &order[lo..hi];
        // combined(u) = value[u] ⊕ (light children's finished leaffixes).
        let combined: Vec<(u32, T)> = pram.tabulate_costed(slice.len(), |t| {
            // Reverse order within the level: suffix fold.
            let v = slice[slice.len() - 1 - t] as usize;
            let mut acc = values[v];
            let mut ops_count = 1u64;
            for &c in forest.children(v) {
                if c != heavy[v] {
                    acc = op(acc, out[c]);
                }
                ops_count += 1;
            }
            ((head[v] as u32, acc), ops_count)
        });
        let scanned = pram.scan_inclusive(&combined, (u32::MAX, id), |a, b| {
            if a.0 != b.0 {
                b
            } else {
                // Deeper path entries appear first in the reversed scan:
                // fold as op(shallower, deeper-accumulated).
                (b.0, op(b.1, a.1))
            }
        });
        pram.ledger().round(slice.len() as u64);
        for (t, state) in scanned.iter().enumerate() {
            let v = slice[slice.len() - 1 - t] as usize;
            out[v] = state.1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pardict_pram::{Pram, SplitMix64};

    fn naive_leaffix(
        parent: &[usize],
        values: &[i64],
        op: impl Fn(i64, i64) -> i64 + Copy,
    ) -> Vec<i64> {
        let n = parent.len();
        // Accumulate children into parents in decreasing-depth order.
        let mut depth = vec![0usize; n];
        for v in 0..n {
            let mut u = v;
            while parent[u] != u {
                u = parent[u];
                depth[v] += 1;
            }
        }
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&v| std::cmp::Reverse(depth[v]));
        let mut out = values.to_vec();
        for &v in &order {
            if parent[v] != v {
                out[parent[v]] = op(out[parent[v]], out[v]);
            }
        }
        out
    }

    fn naive_rootfix<T: Copy>(parent: &[usize], values: &[T], op: impl Fn(T, T) -> T) -> Vec<T> {
        let n = parent.len();
        (0..n)
            .map(|v| {
                let mut chain = vec![v];
                let mut u = v;
                while parent[u] != u {
                    u = parent[u];
                    chain.push(u);
                }
                chain.reverse();
                let mut acc = values[chain[0]];
                for &w in &chain[1..] {
                    acc = op(acc, values[w]);
                }
                acc
            })
            .collect()
    }

    fn check_max_and_sum(parent: &[usize], seed: u64) {
        let pram = Pram::seq();
        let n = parent.len();
        let mut rng = SplitMix64::new(seed);
        let values: Vec<i64> = (0..n).map(|_| rng.next_below(100) as i64 - 50).collect();
        let f = Forest::from_parents(&pram, parent);
        let tour = EulerTour::build(&pram, &f, seed);
        let got_max = rootfix(&pram, &f, &tour, &values, i64::MIN, |a, b| a.max(b), seed);
        assert_eq!(got_max, naive_rootfix(parent, &values, |a, b| a.max(b)));
        let got_sum = rootfix(&pram, &f, &tour, &values, 0, |a, b| a + b, seed);
        assert_eq!(got_sum, naive_rootfix(parent, &values, |a, b| a + b));
    }

    #[test]
    fn path_star_and_balanced() {
        let n = 300;
        // Path.
        let path: Vec<usize> = (0..n).map(|v: usize| v.saturating_sub(1)).collect();
        check_max_and_sum(&path, 1);
        // Star.
        let star: Vec<usize> = (0..n).map(|v| if v == 0 { 0 } else { 0 }).collect();
        check_max_and_sum(&star, 2);
        // Balanced binary.
        let bin: Vec<usize> = (0..n)
            .map(|v| if v == 0 { 0 } else { (v - 1) / 2 })
            .collect();
        check_max_and_sum(&bin, 3);
    }

    #[test]
    fn random_trees_and_forests() {
        let mut rng = SplitMix64::new(9);
        for seed in 0..5u64 {
            let n = 400;
            let roots = 1 + (seed as usize % 3);
            let parent: Vec<usize> = (0..n)
                .map(|v| {
                    if v < roots {
                        v
                    } else {
                        rng.next_below(v as u64) as usize
                    }
                })
                .collect();
            check_max_and_sum(&parent, seed + 20);
        }
    }

    #[test]
    fn noncommutative_op() {
        // String-like op: keep the deepest non-identity label (right bias).
        let parent = vec![0, 0, 1, 1, 0, 4];
        let values: Vec<i64> = vec![0, 7, 0, 9, 0, 3];
        let pram = Pram::seq();
        let f = Forest::from_parents(&pram, &parent);
        let tour = EulerTour::build(&pram, &f, 4);
        let pick_last = |a: i64, b: i64| if b != 0 { b } else { a };
        let got = rootfix(&pram, &f, &tour, &values, 0, pick_last, 4);
        assert_eq!(got, naive_rootfix(&parent, &values, pick_last));
    }

    #[test]
    fn work_is_linear_depth_polylog() {
        let mut per_node = Vec::new();
        for n in [1usize << 13, 1 << 15, 1 << 17] {
            let mut rng = SplitMix64::new(5);
            let parent: Vec<usize> = (0..n)
                .map(|v: usize| {
                    if v == 0 {
                        0
                    } else {
                        rng.next_below(v as u64) as usize
                    }
                })
                .collect();
            let values: Vec<i64> = (0..n).map(|_| rng.next_below(1000) as i64).collect();
            let pram = Pram::seq();
            let f = Forest::from_parents(&pram, &parent);
            let tour = EulerTour::build(&pram, &f, 6);
            let (_, cost) =
                pram.metered(|p| rootfix(p, &f, &tour, &values, i64::MIN, |a, b| a.max(b), 7));
            per_node.push(cost.work as f64 / n as f64);
            let lg = u64::from(ceil_log2(n));
            assert!(cost.depth < 40 * lg * lg, "depth {} at n={n}", cost.depth);
        }
        assert!(
            per_node[2] < per_node[0] * 1.5 + 2.0,
            "rootfix work superlinear: {per_node:?}"
        );
    }

    #[test]
    fn leaffix_matches_naive_on_random_trees() {
        let mut rng = SplitMix64::new(17);
        for seed in 0..5u64 {
            let n = 350;
            let roots = 1 + (seed as usize % 2);
            let parent: Vec<usize> = (0..n)
                .map(|v| {
                    if v < roots {
                        v
                    } else {
                        rng.next_below(v as u64) as usize
                    }
                })
                .collect();
            let values: Vec<i64> = (0..n).map(|_| rng.next_below(50) as i64 - 25).collect();
            let pram = Pram::seq();
            let f = Forest::from_parents(&pram, &parent);
            let tour = EulerTour::build(&pram, &f, seed);
            // Max and sum (commutative: fold order immaterial).
            let got = leaffix(&pram, &f, &tour, &values, i64::MIN, |a, b| a.max(b), seed);
            assert_eq!(got, naive_leaffix(&parent, &values, |a, b| a.max(b)), "max");
            let got = leaffix(&pram, &f, &tour, &values, 0, |a, b| a + b, seed);
            assert_eq!(got, naive_leaffix(&parent, &values, |a, b| a + b), "sum");
        }
    }

    #[test]
    fn leaffix_root_is_whole_tree_fold() {
        let pram = Pram::seq();
        let n = 500;
        let parent: Vec<usize> = (0..n).map(|v: usize| v.saturating_sub(1)).collect();
        let values: Vec<i64> = (0..n as i64).collect();
        let f = Forest::from_parents(&pram, &parent);
        let tour = EulerTour::build(&pram, &f, 2);
        let got = leaffix(&pram, &f, &tour, &values, 0, |a, b| a + b, 2);
        assert_eq!(got[0], (0..n as i64).sum::<i64>());
        assert_eq!(got[n - 1], (n - 1) as i64);
    }

    #[test]
    fn deep_chain_of_heavy_paths() {
        // A "caterpillar" alternating heavy/light edges stresses the level
        // machinery: spine nodes have a big heavy subtree and a light leaf.
        let mut parent = vec![0usize];
        let mut spine = 0usize;
        for _ in 0..60 {
            // light leaf
            parent.push(spine);
            // heavy continuation
            parent.push(spine);
            spine = parent.len() - 1;
        }
        check_max_and_sum(&parent, 31);
    }
}
