//! Parallel connected components (Lemma 2.2).
//!
//! Min-hooking with full shortcutting: each round hooks the larger root of
//! every cross-component edge onto the smaller, then collapses all parent
//! chains by pointer jumping. Converges in `O(log n)` rounds. Work is
//! `O((n + m) log² n)` worst case — Gazit's randomized algorithm achieves
//! `O(m)`, but every consumer in this workspace that needs work-optimality
//! (the §4.2 uncompression forest) goes through the Euler-tour `root_of`
//! path instead; this general-graph routine exists for Lemma 2.2 parity and
//! as a baseline.

use pardict_pram::{pointer_jump_roots, Pram};

/// Component label (the minimum node id in the component) for every node.
///
/// Edges may appear in either orientation and may repeat; self-loops are
/// ignored.
#[must_use]
pub fn connected_components(pram: &Pram, n: usize, edges: &[(usize, usize)]) -> Vec<usize> {
    let mut parent: Vec<usize> = (0..n).collect();
    loop {
        // Hook: arbitrary-CRCW concurrent writes resolved sequentially
        // (min-hooking makes any serialization converge).
        pram.ledger().round(edges.len() as u64);
        let mut changed = false;
        for &(u, v) in edges {
            let (a, b) = (parent[u], parent[v]);
            if a == b {
                continue;
            }
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            if parent[hi] > lo {
                parent[hi] = lo;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        // Shortcut: collapse every chain to its current root.
        parent = pointer_jump_roots(pram, &parent);
    }
    parent
}

#[cfg(test)]
mod tests {
    use super::*;
    use pardict_pram::{Pram, SplitMix64};

    /// Sequential union-find oracle.
    fn oracle(n: usize, edges: &[(usize, usize)]) -> Vec<usize> {
        let mut p: Vec<usize> = (0..n).collect();
        fn find(p: &mut Vec<usize>, x: usize) -> usize {
            if p[x] != x {
                let r = find(p, p[x]);
                p[x] = r;
            }
            p[x]
        }
        for &(u, v) in edges {
            let (ru, rv) = (find(&mut p, u), find(&mut p, v));
            if ru != rv {
                let (lo, hi) = if ru < rv { (ru, rv) } else { (rv, ru) };
                p[hi] = lo;
            }
        }
        // Normalize to minimum label (min-union makes roots minimal).
        (0..n).map(|v| find(&mut p, v)).collect()
    }

    #[test]
    fn two_components() {
        let pram = Pram::seq();
        let labels = connected_components(&pram, 6, &[(0, 1), (1, 2), (3, 4)]);
        assert_eq!(labels, vec![0, 0, 0, 3, 3, 5]);
    }

    #[test]
    fn long_path_converges() {
        let pram = Pram::seq();
        let n = 2000;
        let edges: Vec<(usize, usize)> = (1..n).map(|i| (i - 1, i)).collect();
        let labels = connected_components(&pram, n, &edges);
        assert!(labels.iter().all(|&l| l == 0));
        // Depth must stay polylogarithmic even for a path.
        let d = pram.cost().depth;
        assert!(d < 2500, "depth {d} too large for a path of {n}");
    }

    #[test]
    fn random_graphs_match_union_find() {
        let pram = Pram::seq();
        let mut rng = SplitMix64::new(31);
        for _ in 0..5 {
            let n = 300;
            let m = 200;
            let edges: Vec<(usize, usize)> = (0..m)
                .map(|_| {
                    (
                        rng.next_below(n as u64) as usize,
                        rng.next_below(n as u64) as usize,
                    )
                })
                .collect();
            assert_eq!(connected_components(&pram, n, &edges), oracle(n, &edges));
        }
    }

    #[test]
    fn self_loops_and_duplicates_ignored() {
        let pram = Pram::seq();
        let labels = connected_components(&pram, 3, &[(1, 1), (0, 2), (2, 0), (0, 2)]);
        assert_eq!(labels, vec![0, 1, 0]);
    }

    #[test]
    fn empty_graph() {
        let pram = Pram::seq();
        assert_eq!(connected_components(&pram, 0, &[]), Vec::<usize>::new());
        assert_eq!(connected_components(&pram, 3, &[]), vec![0, 1, 2]);
    }
}
