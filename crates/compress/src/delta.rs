//! Differential (delta) compression against a base version.
//!
//! The paper's motivating databases hold many near-identical strings
//! (document versions, genome assemblies). LZ1 gives delta encoding for
//! free: parse `base · new` but emit phrases only for the `new` part —
//! copies may reference anywhere earlier, so shared chunks become single
//! tokens into `base`. Decoding seeds the output with `base`.
//!
//! Same work/depth envelope as [`crate::lz1_compress`] on `|base| + |new|`.

use crate::lz1::longest_previous_factor_from_tree;
use crate::tokens::Token;
use pardict_pram::{Pram, SplitMix64};
use pardict_suffix::SuffixTree;

/// Compress `new` against `base`: a token stream whose copies may
/// reference the concatenation `base · new` at absolute positions.
#[must_use]
pub fn delta_compress(pram: &Pram, base: &[u8], new: &[u8], seed: u64) -> Vec<Token> {
    if new.is_empty() {
        return Vec::new();
    }
    let mut rng = SplitMix64::new(seed);
    let mut joint = Vec::with_capacity(base.len() + new.len());
    joint.extend_from_slice(base);
    joint.extend_from_slice(new);
    let st = SuffixTree::build(pram, &joint, rng.next_u64());
    let matches = longest_previous_factor_from_tree(pram, &st);

    // Greedy parse of the `new` region only (sequential over phrases, like
    // any LZ emitter; the expensive part above is parallel).
    let mut out = Vec::new();
    let mut i = base.len();
    pram.ledger().charge_depth(1);
    while i < joint.len() {
        let (src, len) = matches[i];
        pram.ledger().charge_work(1);
        if len >= 2 {
            out.push(Token::Copy { src, len });
            i += len as usize;
        } else {
            out.push(Token::Literal(joint[i]));
            i += 1;
        }
    }
    out
}

/// Decode a [`delta_compress`] stream given the same `base`.
#[must_use]
pub fn delta_decompress(pram: &Pram, base: &[u8], tokens: &[Token]) -> Vec<u8> {
    // Sequential reference decoder over the joint coordinate space; the
    // copy graph is a forest over base ∪ new, so the parallel route of
    // lz1_decompress would apply as well — reuse it by prefixing base as
    // literals, then stripping.
    let mut joint: Vec<Token> = base.iter().map(|&c| Token::Literal(c)).collect();
    joint.extend_from_slice(tokens);
    pram.ledger().round(base.len() as u64 + tokens.len() as u64);
    let full = crate::lz1_decompress(pram, &joint, 0xDE17A);
    full[base.len()..].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokens::encoded_size;
    use pardict_pram::SplitMix64;
    use pardict_workloads::{markov_text, random_text, Alphabet};

    #[test]
    fn roundtrip_random_edits() {
        let pram = Pram::seq();
        let mut rng = SplitMix64::new(5);
        let base = markov_text(1, 3000, Alphabet::lowercase());
        for round in 0..4u64 {
            // new = base with a few edits.
            let mut new = base.clone();
            for _ in 0..5 {
                let at = rng.next_below(new.len() as u64) as usize;
                new[at] = Alphabet::lowercase().sample(&mut rng);
            }
            new.extend_from_slice(&random_text(round, 50, Alphabet::lowercase()));
            let tokens = delta_compress(&pram, &base, &new, round);
            assert_eq!(
                delta_decompress(&pram, &base, &tokens),
                new,
                "round {round}"
            );
        }
    }

    #[test]
    fn near_identical_versions_compress_tiny() {
        let pram = Pram::seq();
        let base = markov_text(7, 8000, Alphabet::dna());
        let mut new = base.clone();
        new[4000] = if new[4000] == b'A' { b'C' } else { b'A' };
        let delta = delta_compress(&pram, &base, &new, 1);
        // One edit → a handful of tokens regardless of size.
        assert!(
            delta.len() <= 5,
            "{} tokens for a one-byte edit",
            delta.len()
        );
        let plain = crate::lz1_compress(&pram, &new, 2);
        assert!(
            encoded_size(&delta) * 4 < encoded_size(&plain),
            "delta {} vs plain {}",
            encoded_size(&delta),
            encoded_size(&plain)
        );
        assert_eq!(delta_decompress(&pram, &base, &delta), new);
    }

    #[test]
    fn empty_cases() {
        let pram = Pram::seq();
        assert!(delta_compress(&pram, b"abc", b"", 1).is_empty());
        assert_eq!(delta_decompress(&pram, b"abc", &[]), b"");
        // Empty base degenerates to plain LZ1.
        let text = b"xyxyxyxy";
        let tokens = delta_compress(&pram, b"", text, 2);
        assert_eq!(delta_decompress(&pram, b"", &tokens), text);
    }

    #[test]
    fn unrelated_versions_still_roundtrip() {
        let pram = Pram::seq();
        let base = random_text(1, 1000, Alphabet::binary());
        let new = random_text(2, 1200, Alphabet::lowercase());
        let tokens = delta_compress(&pram, &base, &new, 3);
        assert_eq!(delta_decompress(&pram, &base, &tokens), new);
    }
}
