//! Windowed LZ77 — the practical (gzip-style) sequential variant.
//!
//! The paper's LZ1 references arbitrarily far back; real codecs bound the
//! back-reference distance by a *window* so the decoder needs bounded
//! memory. This module provides the classic hash-chain greedy parser: a
//! chained hash table over 3-byte anchors, longest match within the
//! window, emitted in the same [`Token`] format as the parallel parser
//! (so both decoders apply). With `window >= n` it produces a parse with
//! exactly the greedy phrase lengths of [`crate::lz1_compress`].

use crate::tokens::Token;

/// Minimum match length the hash chains can certify.
const MIN_MATCH: usize = 3;

/// Greedy windowed LZ77. Sequential, expected `O(n + total chain steps)`.
///
/// Copies are emitted only when at least [`MIN_MATCH`] bytes long (matching
/// the `len >= 2` rule of the unbounded parser would need 2-byte anchors;
/// 3 is the classical choice — gzip's). `window == usize::MAX` disables the
/// distance bound.
#[must_use]
pub fn lz77_windowed(text: &[u8], window: usize) -> Vec<Token> {
    let n = text.len();
    let mut out = Vec::new();
    if n == 0 {
        return out;
    }
    assert!(window >= 1, "window must be positive");

    // head[h] = most recent position with anchor hash h; prev[i] = previous
    // position with the same anchor as i.
    const HBITS: u32 = 15;
    let hash = |i: usize| -> usize {
        let x = (u32::from(text[i]) << 16) | (u32::from(text[i + 1]) << 8) | u32::from(text[i + 2]);
        (x.wrapping_mul(0x9E37_79B1) >> (32 - HBITS)) as usize
    };
    let mut head = vec![usize::MAX; 1 << HBITS];
    let mut prev = vec![usize::MAX; n];
    let insert = |i: usize, head: &mut [usize], prev: &mut [usize]| {
        if i + MIN_MATCH <= n {
            let h = hash(i);
            prev[i] = head[h];
            head[h] = i;
        }
    };

    let mut i = 0usize;
    while i < n {
        let mut best_len = 0usize;
        let mut best_src = 0usize;
        if i + MIN_MATCH <= n {
            let lo = i.saturating_sub(window);
            let mut cand = head[hash(i)];
            while cand != usize::MAX && cand >= lo {
                // Extend; allow self-overlap like the unbounded parser.
                let mut l = 0;
                while i + l < n && text[cand + l] == text[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_src = cand;
                }
                cand = prev[cand];
            }
        }
        if best_len >= MIN_MATCH {
            out.push(Token::Copy {
                src: best_src as u32,
                len: best_len as u32,
            });
            for j in i..i + best_len {
                insert(j, &mut head, &mut prev);
            }
            i += best_len;
        } else {
            out.push(Token::Literal(text[i]));
            insert(i, &mut head, &mut prev);
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokens::decode_naive;
    use pardict_workloads::{markov_text, periodic_text, random_text, repetitive_text, Alphabet};

    fn starts_of(tokens: &[Token]) -> Vec<usize> {
        tokens
            .iter()
            .scan(0usize, |acc, t| {
                let s = *acc;
                *acc += t.expanded_len();
                Some(s)
            })
            .collect()
    }

    fn check(text: &[u8], window: usize) {
        let tokens = lz77_windowed(text, window);
        assert_eq!(decode_naive(&tokens), text, "roundtrip");
        // Window constraint honoured.
        let starts = starts_of(&tokens);
        for (t, tok) in tokens.iter().enumerate() {
            if let Token::Copy { src, .. } = *tok {
                let dst = starts[t];
                assert!((src as usize) < dst);
                assert!(dst - src as usize <= window, "window violated");
            }
        }
    }

    #[test]
    fn roundtrips_across_windows() {
        for text in [
            random_text(1, 800, Alphabet::lowercase()),
            markov_text(2, 1000, Alphabet::dna()),
            repetitive_text(3, 1200, Alphabet::binary()),
            periodic_text(b"abcab", 700),
        ] {
            for window in [4usize, 32, 256, usize::MAX] {
                check(&text, window);
            }
        }
    }

    #[test]
    fn unbounded_window_finds_maximal_matches() {
        // With no window bound the hash chains see every prior anchor, so
        // each emitted copy must be the *longest* previous match (greedy),
        // verified against a brute-force oracle.
        let text = repetitive_text(9, 400, Alphabet::dna());
        let tokens = lz77_windowed(&text, usize::MAX);
        let starts = starts_of(&tokens);
        for (t, tok) in tokens.iter().enumerate() {
            if let Token::Copy { src, len } = *tok {
                let i = starts[t];
                // Claimed occurrence is real…
                for k in 0..len as usize {
                    assert_eq!(text[src as usize + k], text[i + k]);
                }
                // …and maximal over all earlier sources.
                let mut best = 0usize;
                for j in 0..i {
                    let mut l = 0;
                    while i + l < text.len() && text[j + l] == text[i + l] {
                        l += 1;
                    }
                    best = best.max(l);
                }
                assert_eq!(len as usize, best, "copy at {i} not maximal");
            }
        }
    }

    #[test]
    fn smaller_windows_compress_worse() {
        let text = repetitive_text(4, 8000, Alphabet::dna());
        let small = lz77_windowed(&text, 64).len();
        let large = lz77_windowed(&text, 4096).len();
        let unbounded = lz77_windowed(&text, usize::MAX).len();
        assert!(large <= small, "larger window can't be worse");
        assert!(unbounded <= large);
        assert!(unbounded < small, "window should matter on repetitive data");
    }

    #[test]
    fn tiny_inputs() {
        check(b"", 16);
        check(b"a", 16);
        check(b"ab", 16);
        check(b"aaa", 1);
    }
}
