//! LZ2 / LZ78 — sequential baseline only.
//!
//! The paper (§1.2) contrasts LZ1 with LZ2: "LZ2 is implemented in practice
//! because of the simplicity of its sequential implementation … while we
//! provide optimal work RNC algorithm for LZ1 compression, LZ2 is
//! P-Complete (hence unlikely to have (R)NC algorithms)". Accordingly, this
//! module offers only the classical sequential trie algorithm, used by the
//! phrase-count comparison table (E9).

use std::collections::HashMap;

/// One LZ78 phrase: the index of a previously emitted phrase (0 = empty)
/// extended by one character.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lz78Token {
    /// Index of the extended phrase (0 is the empty phrase).
    pub prev: u32,
    /// The extension character.
    pub ch: u8,
}

/// Sequential LZ78 compression. `O(n)` expected time.
#[must_use]
pub fn lz78_compress(text: &[u8]) -> Vec<Lz78Token> {
    // Trie as a hash map: (node, char) -> node. Node 0 is the root.
    let mut trie: HashMap<(u32, u8), u32> = HashMap::new();
    let mut next_id = 1u32;
    let mut out = Vec::new();
    let mut cur = 0u32;
    for (idx, &c) in text.iter().enumerate() {
        match trie.get(&(cur, c)) {
            Some(&nxt) if idx + 1 < text.len() => cur = nxt,
            Some(&nxt) => {
                // Last character lands mid-phrase: emit it as the final
                // (possibly duplicate) phrase.
                let _ = nxt;
                out.push(Lz78Token { prev: cur, ch: c });
            }
            None => {
                trie.insert((cur, c), next_id);
                out.push(Lz78Token { prev: cur, ch: c });
                next_id += 1;
                cur = 0;
            }
        }
    }
    out
}

/// Sequential LZ78 decompression.
#[must_use]
pub fn lz78_decompress(tokens: &[Lz78Token]) -> Vec<u8> {
    // phrases[p] = (parent phrase, char); reconstruct by walking up.
    let mut phrases: Vec<(u32, u8)> = Vec::with_capacity(tokens.len() + 1);
    phrases.push((0, 0)); // the empty phrase
    let mut out = Vec::new();
    for t in tokens {
        let mut buf = vec![t.ch];
        let mut p = t.prev;
        while p != 0 {
            let (pp, c) = phrases[p as usize];
            buf.push(c);
            p = pp;
        }
        buf.reverse();
        out.extend_from_slice(&buf);
        phrases.push((t.prev, t.ch));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pardict_workloads::{markov_text, random_text, repetitive_text, Alphabet};

    fn roundtrip(text: &[u8]) {
        let tokens = lz78_compress(text);
        assert_eq!(lz78_decompress(&tokens), text, "roundtrip");
    }

    #[test]
    fn classic() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"aaaaaaaaaa");
        roundtrip(b"abaabbbaababa");
        roundtrip(b"mississippi");
    }

    #[test]
    fn known_parse() {
        // "aaa": phrases "a", "aa"? LZ78: a | aa -> tokens (0,'a'), (1,'a').
        let t = lz78_compress(b"aaa");
        assert_eq!(
            t,
            vec![
                Lz78Token { prev: 0, ch: b'a' },
                Lz78Token { prev: 1, ch: b'a' }
            ]
        );
    }

    #[test]
    fn trailing_partial_phrase() {
        // "aa" then text ends inside a known phrase.
        roundtrip(b"aab aab aab aa".as_ref());
        roundtrip(b"abababab");
    }

    #[test]
    fn corpora() {
        roundtrip(&random_text(1, 500, Alphabet::lowercase()));
        roundtrip(&markov_text(2, 800, Alphabet::dna()));
        roundtrip(&repetitive_text(3, 600, Alphabet::binary()));
    }

    #[test]
    fn repetitive_compresses() {
        let text = repetitive_text(5, 4000, Alphabet::dna());
        let t = lz78_compress(&text);
        assert!(
            t.len() * 2 < text.len(),
            "{} phrases for {}",
            t.len(),
            text.len()
        );
    }
}
