//! LZ1 token representation and size accounting.

/// One LZ1 phrase: a literal character or a copy of `len` bytes from an
/// earlier position `src` (self-overlap allowed, as in the original LZ1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Token {
    /// A single literal byte (the paper's `(α, 0)` phrase).
    Literal(u8),
    /// Copy `len` bytes starting at absolute position `src < dst`.
    Copy {
        /// Absolute source position.
        src: u32,
        /// Number of bytes copied (≥ 2 in parses we emit).
        len: u32,
    },
}

impl Token {
    /// Number of text bytes this token expands to.
    #[must_use]
    pub fn expanded_len(&self) -> usize {
        match *self {
            Token::Literal(_) => 1,
            Token::Copy { len, .. } => len as usize,
        }
    }
}

/// Size in bytes of a simple varint serialization (tag bit + varints), the
/// metric used for the compression-ratio table (E9).
#[must_use]
pub fn encoded_size(tokens: &[Token]) -> usize {
    fn varint_len(mut x: u64) -> usize {
        let mut n = 1;
        while x >= 0x80 {
            x >>= 7;
            n += 1;
        }
        n
    }
    tokens
        .iter()
        .map(|t| match *t {
            Token::Literal(_) => 2,
            Token::Copy { src, len } => 1 + varint_len(u64::from(src)) + varint_len(u64::from(len)),
        })
        .sum()
}

/// Error decoding a serialized token stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended inside a token.
    Truncated,
    /// Unknown token tag byte.
    BadTag(u8),
    /// A copy referenced data at or past its own position.
    BadReference,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "token stream truncated"),
            DecodeError::BadTag(t) => write!(f, "unknown token tag {t:#x}"),
            DecodeError::BadReference => write!(f, "copy references future data"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn push_varint(out: &mut Vec<u8>, mut x: u64) {
    while x >= 0x80 {
        out.push((x as u8) | 0x80);
        x >>= 7;
    }
    out.push(x as u8);
}

fn read_varint(data: &[u8], pos: &mut usize) -> Result<u64, DecodeError> {
    let mut x = 0u64;
    let mut shift = 0u32;
    loop {
        let &b = data.get(*pos).ok_or(DecodeError::Truncated)?;
        *pos += 1;
        x |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            return Ok(x);
        }
        shift += 7;
        if shift > 63 {
            return Err(DecodeError::BadTag(b));
        }
    }
}

/// Serialize a token stream: tag byte 0 = literal + byte, 1 = copy +
/// varint(src) + varint(len). The wire format behind the `pardict` CLI.
#[must_use]
pub fn encode_tokens(tokens: &[Token]) -> Vec<u8> {
    let mut out = Vec::with_capacity(encoded_size(tokens));
    for t in tokens {
        match *t {
            Token::Literal(c) => {
                out.push(0);
                out.push(c);
            }
            Token::Copy { src, len } => {
                out.push(1);
                push_varint(&mut out, u64::from(src));
                push_varint(&mut out, u64::from(len));
            }
        }
    }
    out
}

/// Parse a serialized token stream, validating copy references.
///
/// # Errors
/// Returns a [`DecodeError`] on truncation, bad tags, or forward copies.
pub fn decode_tokens(data: &[u8]) -> Result<Vec<Token>, DecodeError> {
    decode_tokens_from(data, 0)
}

/// [`decode_tokens`] for streams whose output starts at absolute position
/// `origin` (delta streams copy from a pre-existing base of that length).
///
/// # Errors
/// Returns a [`DecodeError`] on truncation, bad tags, or forward copies.
pub fn decode_tokens_from(data: &[u8], origin: usize) -> Result<Vec<Token>, DecodeError> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    let mut expanded = origin as u64;
    while pos < data.len() {
        match data[pos] {
            0 => {
                pos += 1;
                let &c = data.get(pos).ok_or(DecodeError::Truncated)?;
                pos += 1;
                out.push(Token::Literal(c));
                expanded += 1;
            }
            1 => {
                pos += 1;
                let src = read_varint(data, &mut pos)?;
                let len = read_varint(data, &mut pos)?;
                if src >= expanded || len == 0 {
                    return Err(DecodeError::BadReference);
                }
                out.push(Token::Copy {
                    src: u32::try_from(src).map_err(|_| DecodeError::BadReference)?,
                    len: u32::try_from(len).map_err(|_| DecodeError::BadReference)?,
                });
                expanded += len;
            }
            t => return Err(DecodeError::BadTag(t)),
        }
    }
    Ok(out)
}

/// Reference sequential decoder (oracle for the parallel one).
#[must_use]
pub fn decode_naive(tokens: &[Token]) -> Vec<u8> {
    let mut out = Vec::new();
    for t in tokens {
        match *t {
            Token::Literal(c) => out.push(c),
            Token::Copy { src, len } => {
                for k in 0..len as usize {
                    let c = out[src as usize + k];
                    out.push(c);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expanded_lengths() {
        assert_eq!(Token::Literal(b'x').expanded_len(), 1);
        assert_eq!(Token::Copy { src: 0, len: 7 }.expanded_len(), 7);
    }

    #[test]
    fn decode_handles_overlap() {
        // "ab" then copy 4 from 0: classic self-referential run.
        let tokens = vec![
            Token::Literal(b'a'),
            Token::Literal(b'b'),
            Token::Copy { src: 0, len: 4 },
        ];
        assert_eq!(decode_naive(&tokens), b"ababab");
    }

    #[test]
    fn wire_roundtrip() {
        let tokens = vec![
            Token::Literal(b'a'),
            Token::Literal(b'b'),
            Token::Copy { src: 0, len: 4 },
            Token::Copy { src: 3, len: 300 },
        ];
        let bytes = encode_tokens(&tokens);
        assert_eq!(decode_tokens(&bytes).unwrap(), tokens);
        assert_eq!(bytes.len(), encoded_size(&tokens));
    }

    #[test]
    fn decode_rejects_malformed_streams() {
        assert_eq!(decode_tokens(&[0]), Err(DecodeError::Truncated));
        assert_eq!(decode_tokens(&[9]), Err(DecodeError::BadTag(9)));
        // Copy before any expansion.
        assert_eq!(
            decode_tokens(&encode_tokens(&[Token::Copy { src: 0, len: 2 }])),
            Err(DecodeError::BadReference)
        );
        // Forward reference.
        let stream = encode_tokens(&[Token::Literal(b'x'), Token::Copy { src: 5, len: 2 }]);
        assert_eq!(decode_tokens(&stream), Err(DecodeError::BadReference));
        // Truncated varint.
        assert_eq!(decode_tokens(&[1, 0x80]), Err(DecodeError::Truncated));
    }

    #[test]
    fn decode_from_origin_accepts_base_references() {
        let delta = vec![Token::Copy { src: 2, len: 5 }, Token::Literal(b'!')];
        let wire = encode_tokens(&delta);
        // Standalone: invalid (copies from nothing).
        assert_eq!(decode_tokens(&wire), Err(DecodeError::BadReference));
        // With a 10-byte base: fine.
        assert_eq!(decode_tokens_from(&wire, 10).unwrap(), delta);
        // But still rejects references past base + expanded.
        let bad = encode_tokens(&[Token::Copy { src: 10, len: 2 }]);
        assert_eq!(decode_tokens_from(&bad, 10), Err(DecodeError::BadReference));
    }

    #[test]
    fn encoded_size_counts_varints() {
        let tokens = vec![Token::Literal(b'a'), Token::Copy { src: 5, len: 300 }];
        // literal: 2; copy: 1 + 1 (src) + 2 (len 300 needs two 7-bit groups)
        assert_eq!(encoded_size(&tokens), 2 + 4);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn decoder_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
            // Any outcome is fine; panicking is not.
            let _ = decode_tokens(&bytes);
            let _ = decode_tokens_from(&bytes, 1000);
        }

        #[test]
        fn wire_roundtrip_arbitrary_valid_streams(
            phrases in prop::collection::vec((any::<bool>(), 0u32..50, 1u32..20, any::<u8>()), 0..50),
        ) {
            // Build a VALID stream by construction, then round-trip it.
            let mut tokens = Vec::new();
            let mut expanded = 0u32;
            for (is_copy, src_frac, len, byte) in phrases {
                if is_copy && expanded > 0 {
                    let src = src_frac % expanded;
                    tokens.push(Token::Copy { src, len });
                    expanded += len;
                } else {
                    tokens.push(Token::Literal(byte));
                    expanded += 1;
                }
            }
            let wire = encode_tokens(&tokens);
            prop_assert_eq!(decode_tokens(&wire).unwrap(), tokens);
        }
    }
}
