//! Optimal static-dictionary compression (§5, Theorem 5.3).
//!
//! The dictionary has the *prefix property* (every prefix of a pattern is a
//! dictionary word), so a phrase at position `i` may have any length up to
//! `M[i]` — the longest pattern prefix starting there, delivered by the
//! dictionary matcher's Step 2A. The optimal (fewest-phrases) parse is a
//! shortest `0 → n` path in the reference graph `G`; §5's insight is that
//! *dominating* edges suffice (Lemma 5.1), and those form a tree computable
//! from prefix maxima and ranks alone (Lemma 5.2) — `O(n)` work instead of
//! the `O(n³ log² n)` shortest-path machinery of the previous best [AS92].
//!
//! Comparators: [`greedy_parse`] (longest-match-first, sub-optimal),
//! [`lff_parse`] (longest-fragment-first heuristic from the compression
//! literature), and [`bfs_parse`] — an [AS92]-flavoured exact shortest-path
//! baseline whose work is `Θ(Σ M[i])`, the blow-up the paper avoids.

use pardict_core::{Dictionary, PatternScan};
use pardict_graph::{EulerTour, Forest};
use pardict_pram::{ceil_log2, Pram};

/// One phrase of a static parse: `pattern`'s prefix of length `len`
/// starting at text position `start`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Phrase {
    /// Text position where the phrase begins.
    pub start: usize,
    /// Phrase length (a dictionary word by the prefix property).
    pub len: usize,
    /// A pattern whose prefix of length `len` equals the phrase.
    pub pattern: u32,
}

/// A complete parse of a text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Parse {
    /// Phrases in text order, covering the text exactly.
    pub phrases: Vec<Phrase>,
}

impl Parse {
    /// Number of dictionary references (the optimization objective).
    #[must_use]
    pub fn num_phrases(&self) -> usize {
        self.phrases.len()
    }

    /// Reconstruct the text from the dictionary.
    #[must_use]
    pub fn expand(&self, dict: &Dictionary) -> Vec<u8> {
        let mut out = Vec::new();
        for ph in &self.phrases {
            let p = &dict.patterns()[ph.pattern as usize];
            out.extend_from_slice(&p[..ph.len]);
        }
        out
    }
}

/// The per-position longest-pattern-prefix table `M` (with certificates),
/// as plain integers: `(len, pattern)`, `len == 0` when no word starts
/// there.
fn prefix_table<M: PatternScan>(pram: &Pram, matcher: &M, text: &[u8]) -> Vec<(u32, u32)> {
    let raw = matcher.pattern_prefixes(pram, text);
    pram.map(&raw, |_, &o| o.map_or((0, u32::MAX), |(l, t)| (l, t)))
}

/// §5 optimal parse: `O(n)` work, `O(log d + log n)` depth after
/// preprocessing. Returns `None` when the text cannot be parsed (some
/// position starts no dictionary word).
#[must_use]
pub fn optimal_parse<M: PatternScan>(pram: &Pram, matcher: &M, text: &[u8]) -> Option<Parse> {
    let n = text.len();
    if n == 0 {
        return Some(Parse {
            phrases: Vec::new(),
        });
    }
    let m = prefix_table(pram, matcher, text);

    // reach[x] = x + M[x]; inclusive prefix max (value, argmax).
    let reaches: Vec<(u64, u64)> = pram.tabulate(n, |x| ((x + m[x].0 as usize) as u64, x as u64));
    let pm = pram.scan_inclusive(
        &reaches,
        (0, u64::MAX),
        |a, b| if b.0 > a.0 { b } else { a },
    );

    // Lemma 5.2: the dominating edge into y is (L[y], y) with L[y] the
    // first x whose prefix-max reach is ≥ y. Blocked two-pointer ranking
    // over the (non-decreasing) prefix maxima: O(n) work, O(log n) depth.
    let b = (ceil_log2(n + 1) as usize).max(1);
    let nblocks = (n + 1).div_ceil(b);
    let l_blocks: Vec<Vec<usize>> = pram.tabulate_costed(nblocks, |blk| {
        let y_lo = blk * b;
        let y_hi = ((blk + 1) * b).min(n + 1);
        let mut out = Vec::with_capacity(y_hi - y_lo);
        let mut ops = 1u64;
        // First x with pm[x].0 >= y_lo, by binary search.
        let mut x = {
            let (mut lo, mut hi) = (0usize, n);
            while lo < hi {
                let mid = (lo + hi) / 2;
                ops += 1;
                if pm[mid].0 >= y_lo as u64 {
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            lo
        };
        for y in y_lo..y_hi {
            while x < n && pm[x].0 < y as u64 {
                x += 1;
                ops += 1;
            }
            // x = first position with prefix-max reach >= y, or n if none.
            out.push(if x < n && pm[x].0 >= y as u64 {
                x
            } else {
                usize::MAX
            });
            ops += 1;
        }
        (out, ops)
    });
    let mut l_of = vec![usize::MAX; n + 1];
    pram.ledger().round((n + 1) as u64);
    for (blk, v) in l_blocks.iter().enumerate() {
        l_of[blk * b..blk * b + v.len()].copy_from_slice(v);
    }

    // Dominating-edge tree: parent(y) = L[y]; unreachable nodes self-root.
    let parent: Vec<usize> = pram.tabulate(n + 1, |y| {
        if y == 0 {
            0
        } else if l_of[y] == usize::MAX || l_of[y] >= y {
            y
        } else {
            l_of[y]
        }
    });
    let forest = Forest::from_parents(pram, &parent);
    let tour = EulerTour::build(pram, &forest, 0x57A7);
    if tour.root_of[n] != 0 {
        return None; // n not reachable from 0
    }
    let on_path: Vec<bool> = pram.tabulate(n + 1, |v| tour.is_ancestor(v, n));
    let cuts = pram.pack_indices(&on_path); // ascending: 0 = root … n
    debug_assert_eq!(*cuts.first().unwrap(), 0);
    debug_assert_eq!(*cuts.last().unwrap(), n);
    let phrases: Vec<Phrase> = pram.tabulate(cuts.len() - 1, |k| {
        let (x, y) = (cuts[k], cuts[k + 1]);
        debug_assert!(y - x <= m[x].0 as usize);
        Phrase {
            start: x,
            len: y - x,
            pattern: m[x].1,
        }
    });
    Some(Parse { phrases })
}

/// Greedy parse: always take the longest word. Sub-optimal in general —
/// the comparison §5 is about.
#[must_use]
pub fn greedy_parse<M: PatternScan>(pram: &Pram, matcher: &M, text: &[u8]) -> Option<Parse> {
    let n = text.len();
    let m = prefix_table(pram, matcher, text);
    let mut phrases = Vec::new();
    let mut i = 0;
    pram.ledger().charge_depth(1);
    while i < n {
        let (len, pat) = m[i];
        if len == 0 {
            return None;
        }
        phrases.push(Phrase {
            start: i,
            len: len as usize,
            pattern: pat,
        });
        i += len as usize;
        pram.ledger().charge_work(1);
    }
    Some(Parse { phrases })
}

/// Longest-fragment-first heuristic (another classical sub-optimal scheme
/// the paper's introduction cites): place the longest fragments first,
/// then parse the gaps greedily.
#[must_use]
pub fn lff_parse<M: PatternScan>(pram: &Pram, matcher: &M, text: &[u8]) -> Option<Parse> {
    let n = text.len();
    let m = prefix_table(pram, matcher, text);
    // Positions by decreasing fragment length.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_unstable_by_key(|&i| std::cmp::Reverse(m[i].0));
    pram.ledger()
        .charge_work((n as u64) * u64::from(ceil_log2(n.max(2))));
    pram.ledger().charge_depth(u64::from(ceil_log2(n.max(2))));

    let mut covered = vec![false; n];
    let mut placed: Vec<Phrase> = Vec::new();
    for &i in &order {
        let len = m[i].0 as usize;
        if len == 0 {
            break;
        }
        if covered[i..i + len].iter().any(|&c| c) {
            continue;
        }
        pram.ledger().charge_work(len as u64);
        covered[i..i + len].fill(true);
        placed.push(Phrase {
            start: i,
            len,
            pattern: m[i].1,
        });
    }
    // Parse the gaps greedily, capping phrases at the gap boundary.
    let mut i = 0;
    while i < n {
        if covered[i] {
            i += 1;
            continue;
        }
        let mut gap_end = i;
        while gap_end < n && !covered[gap_end] {
            gap_end += 1;
        }
        let mut j = i;
        while j < gap_end {
            let len = (m[j].0 as usize).min(gap_end - j);
            if len == 0 {
                return None;
            }
            placed.push(Phrase {
                start: j,
                len,
                pattern: m[j].1,
            });
            pram.ledger().charge_work(1);
            j += len;
        }
        i = gap_end;
    }
    placed.sort_unstable_by_key(|p| p.start);
    Some(Parse { phrases: placed })
}

/// Exact shortest-path parse over the *full* reference graph — the
/// [AS92]-style baseline. Work `Θ(Σ M[i])` (quadratic in the worst case),
/// charged honestly; exists as the E6 comparator and the optimality
/// oracle.
#[must_use]
pub fn bfs_parse<M: PatternScan>(pram: &Pram, matcher: &M, text: &[u8]) -> Option<Parse> {
    let n = text.len();
    let m = prefix_table(pram, matcher, text);
    let mut dist = vec![u32::MAX; n + 1];
    let mut from = vec![usize::MAX; n + 1];
    dist[0] = 0;
    let mut work = 0u64;
    for x in 0..n {
        if dist[x] == u32::MAX {
            continue;
        }
        let reach = m[x].0 as usize;
        work += reach as u64 + 1;
        for y in x + 1..=x + reach {
            if dist[y] == u32::MAX {
                dist[y] = dist[x] + 1;
                from[y] = x;
            }
        }
    }
    pram.ledger().charge_work(work);
    pram.ledger()
        .charge_depth(u64::from(dist[n].min(n as u32)) + 1);
    if n > 0 && dist[n] == u32::MAX {
        return None;
    }
    let mut phrases = Vec::new();
    let mut y = n;
    while y > 0 {
        let x = from[y];
        phrases.push(Phrase {
            start: x,
            len: y - x,
            pattern: m[x].1,
        });
        y = x;
    }
    phrases.reverse();
    Some(Parse { phrases })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pardict_core::DictMatcher;
    use pardict_workloads::{markov_text, prefix_heavy_dictionary, random_text, Alphabet};

    /// A dictionary guaranteed to parse any text over `alpha`: all single
    /// symbols plus some longer words.
    fn parseable_dict(seed: u64, alpha: Alphabet, words: usize) -> Dictionary {
        let mut patterns: Vec<Vec<u8>> = (0..alpha.size()).map(|i| vec![alpha.symbol(i)]).collect();
        patterns.extend(prefix_heavy_dictionary(seed, words, 3, 5, alpha));
        Dictionary::new(patterns)
    }

    fn check_parse(parse: &Parse, dict: &Dictionary, text: &[u8]) {
        assert_eq!(parse.expand(dict), text, "expansion");
        let mut pos = 0;
        for ph in &parse.phrases {
            assert_eq!(ph.start, pos);
            pos += ph.len;
        }
        assert_eq!(pos, text.len());
    }

    #[test]
    fn optimal_matches_bfs_and_beats_heuristics() {
        for seed in 0..5u64 {
            let pram = Pram::seq();
            let alpha = Alphabet::dna();
            let dict = parseable_dict(seed, alpha, 12);
            let matcher = DictMatcher::build(&pram, dict.clone(), seed);
            let text = markov_text(seed + 40, 300, alpha);
            let opt = optimal_parse(&pram, &matcher, &text).expect("parseable");
            let bfs = bfs_parse(&pram, &matcher, &text).expect("parseable");
            let greedy = greedy_parse(&pram, &matcher, &text).expect("parseable");
            let lff = lff_parse(&pram, &matcher, &text).expect("parseable");
            check_parse(&opt, &dict, &text);
            check_parse(&bfs, &dict, &text);
            check_parse(&greedy, &dict, &text);
            check_parse(&lff, &dict, &text);
            assert_eq!(
                opt.num_phrases(),
                bfs.num_phrases(),
                "optimality (seed {seed})"
            );
            assert!(opt.num_phrases() <= greedy.num_phrases());
            assert!(opt.num_phrases() <= lff.num_phrases());
        }
    }

    #[test]
    fn greedy_is_strictly_suboptimal_sometimes() {
        // Prefix closure of {aab, abbb, b}: greedy takes "aab" and is
        // forced into aab|b|b (3 phrases); optimal parses a|abbb (2).
        let pram = Pram::seq();
        let dict = Dictionary::new(vec![b"aab".to_vec(), b"abbb".to_vec(), b"b".to_vec()]);
        let matcher = DictMatcher::build(&pram, dict.clone(), 3);
        let text = b"aabbb";
        let opt = optimal_parse(&pram, &matcher, text).unwrap();
        let greedy = greedy_parse(&pram, &matcher, text).unwrap();
        assert_eq!(opt.num_phrases(), 2);
        assert_eq!(greedy.num_phrases(), 3);
        check_parse(&opt, &dict, text);

        // Without the single-character word, greedy dead-ends entirely
        // while the optimal parse still exists.
        let dict2 = Dictionary::new(vec![b"aab".to_vec(), b"abbb".to_vec()]);
        let matcher2 = DictMatcher::build(&pram, dict2.clone(), 4);
        assert!(greedy_parse(&pram, &matcher2, text).is_none());
        let opt2 = optimal_parse(&pram, &matcher2, text).unwrap();
        assert_eq!(opt2.num_phrases(), 2);
        check_parse(&opt2, &dict2, text);
    }

    #[test]
    fn unparseable_text_returns_none() {
        let pram = Pram::seq();
        let dict = Dictionary::new(vec![b"ab".to_vec(), b"a".to_vec()]);
        let matcher = DictMatcher::build(&pram, dict, 4);
        assert!(optimal_parse(&pram, &matcher, b"abb").is_none());
        assert!(greedy_parse(&pram, &matcher, b"abb").is_none());
        assert!(bfs_parse(&pram, &matcher, b"abb").is_none());
    }

    #[test]
    fn empty_text() {
        let pram = Pram::seq();
        let dict = Dictionary::new(vec![b"a".to_vec()]);
        let matcher = DictMatcher::build(&pram, dict, 5);
        let p = optimal_parse(&pram, &matcher, b"").unwrap();
        assert_eq!(p.num_phrases(), 0);
    }

    #[test]
    fn optimal_work_linear_bfs_work_superlinear() {
        let alpha = Alphabet::binary();
        let mut opt_per_char = Vec::new();
        let mut bfs_per_char = Vec::new();
        for n in [1usize << 11, 1 << 13, 1 << 15] {
            let pram = Pram::seq();
            let dict = parseable_dict(9, alpha, 30);
            let matcher = DictMatcher::build(&pram, dict, 10);
            let text = random_text(n as u64, n, alpha);
            let (_, c_opt) = pram.metered(|p| optimal_parse(p, &matcher, &text));
            let (_, c_bfs) = pram.metered(|p| bfs_parse(p, &matcher, &text));
            opt_per_char.push(c_opt.work as f64 / n as f64);
            bfs_per_char.push(c_bfs.work as f64 / n as f64);
        }
        assert!(
            opt_per_char[2] < opt_per_char[0] * 1.5 + 4.0,
            "optimal parse superlinear: {opt_per_char:?}"
        );
        let _ = bfs_per_char; // BFS work depends on match density; shown in E6.
    }
}
