//! LZ1 (LZ77) compression and uncompression (§4, Theorems 4.2 and 4.3).
//!
//! **Compression.** Lemma 4.1 reduces the greedy (optimal) parse to suffix
//! tree quantities: with `Lmin[v]` = smallest text position below `v`, the
//! longest previous match of suffix `i` is `(Lmin[A[i]], depth(A[i]))`
//! where `A[i]` is the deepest ancestor of leaf `i` whose `Lmin` is not `i`
//! itself. `A[i]` falls out of one nearest-marked-ancestor pass (mark nodes
//! whose `Lmin` differs from their parent's), and the parse positions are
//! the ancestors of node 0 in the jump tree `i → i + max(k_i, 1)` — an
//! Euler-tour ancestor test. Everything is `O(n)` work, polylog depth.
//!
//! **Uncompression.** Prefix sums place the phrases; each copied position
//! points at its source (strictly earlier, even for self-overlapping
//! copies), so the pointers form a forest whose roots are literals; one
//! Euler tour resolves every position's literal in `O(n)` work — the route
//! that avoids pointer-jumping's extra log factor.

use crate::tokens::Token;
use pardict_graph::{EulerTour, Forest};
use pardict_pram::{Pram, SplitMix64};
use pardict_rmq::{LinearRmq, SparseTable};
use pardict_suffix::SuffixTree;

/// Longest-previous-factor (LPF) array: for every position `i`, the
/// longest substring starting at `i` that also occurs starting at some
/// `src < i`, as `(src, len)` (`len = 0` when `text[i]` is a first
/// occurrence). Work-optimal (Lemma 4.1); the quantity LZ1 greedily
/// consumes, exposed for stringology consumers.
#[must_use]
pub fn longest_previous_factor(pram: &Pram, text: &[u8], seed: u64) -> Vec<(u32, u32)> {
    if text.is_empty() {
        return Vec::new();
    }
    let st = SuffixTree::build(pram, text, seed);
    previous_matches(pram, &st)
}

/// [`longest_previous_factor`] from a pre-built suffix tree — lets callers
/// (and experiment E4) separate the shared tree-construction cost from the
/// Lemma 4.1 match-table computation itself.
#[must_use]
pub fn longest_previous_factor_from_tree(pram: &Pram, st: &SuffixTree) -> Vec<(u32, u32)> {
    previous_matches(pram, st)
}

/// Longest previous match for every position: `(src, len)` with
/// `src < i`, maximal `len` (0 if none). Work-optimal (Lemma 4.1).
fn previous_matches(pram: &Pram, st: &SuffixTree) -> Vec<(u32, u32)> {
    let n = st.text().len();
    let m = st.num_leaves();
    let n_nodes = st.num_nodes();

    // Lmin per node: range-min of leaf positions over the leaf interval.
    let pos_sa: Vec<i64> = pram.tabulate(m, |k| st.leaf_pos(k) as i64);
    let rmq = LinearRmq::new_min(pram, &pos_sa, 0xA11CE);
    let lmin: Vec<u32> = pram.tabulate(n_nodes, |v| {
        let (lo, hi) = st.leaf_range(v);
        pos_sa[rmq.query(lo, hi)] as u32
    });

    // Mark chain tops: nodes whose Lmin differs from their parent's.
    let marked: Vec<bool> = pram.tabulate(n_nodes, |v| {
        let p = st.parent(v);
        p == v || lmin[p] != lmin[v]
    });
    let nma = pardict_ancestors::NearestMarkedAncestor::build(pram, st.forest(), &marked, 0x17EE);

    pram.tabulate(n, |i| {
        let leaf = st.leaf_node(i);
        let top = nma.inclusive(leaf);
        debug_assert_ne!(top, usize::MAX);
        let a = st.parent(top);
        if st.str_depth(a) == 0 || top == a {
            (0, 0) // no previous occurrence: literal
        } else {
            (lmin[a], st.str_depth(a) as u32)
        }
    })
}

/// Parallel LZ1 compression (Theorem 4.2): `O(n)` work, polylog depth.
#[must_use]
pub fn lz1_compress(pram: &Pram, text: &[u8], seed: u64) -> Vec<Token> {
    let n = text.len();
    if n == 0 {
        return Vec::new();
    }
    let mut rng = SplitMix64::new(seed);
    let st = SuffixTree::build(pram, text, rng.next_u64());
    let matches = previous_matches(pram, &st);
    emit_tokens(pram, text, &matches, rng.next_u64())
}

/// Turn per-position longest previous matches into the greedy parse.
fn emit_tokens(pram: &Pram, text: &[u8], matches: &[(u32, u32)], seed: u64) -> Vec<Token> {
    let n = text.len();
    // Jump tree: i -> i + max(len, 1); n is the root.
    let parent: Vec<usize> = pram.tabulate(n + 1, |i| {
        if i == n {
            n
        } else {
            (i + (matches[i].1 as usize).max(1)).min(n)
        }
    });
    let forest = Forest::from_parents(pram, &parent);
    let tour = EulerTour::build(pram, &forest, seed);
    // Parse positions: ancestors of node 0 (except the root n).
    let on_path: Vec<bool> = pram.tabulate(n, |v| tour.is_ancestor(v, 0));
    let cuts = pram.pack_indices(&on_path);
    pram.map(&cuts, |_, &i| {
        let (src, len) = matches[i];
        if len >= 2 {
            Token::Copy { src, len }
        } else {
            Token::Literal(text[i])
        }
    })
}

/// Parallel LZ1 uncompression (Theorem 4.3): `O(n)` work, polylog depth.
/// `n` (the decoded length) is assumed known, as in the paper.
#[must_use]
pub fn lz1_decompress(pram: &Pram, tokens: &[Token], seed: u64) -> Vec<u8> {
    // Phrase start offsets by prefix sums.
    let lens: Vec<u64> = pram.map(tokens, |_, t| t.expanded_len() as u64);
    let starts = pram.scan_exclusive_sum(&lens);
    let n = (starts.last().copied().unwrap_or(0) + lens.last().copied().unwrap_or(0)) as usize;
    if n == 0 {
        return Vec::new();
    }

    // For every position: its phrase index, via a prefix-max scan over
    // scattered phrase starts.
    let mut start_marks = vec![(0u64, u64::MAX); n];
    pram.ledger().round(tokens.len() as u64);
    for (t, &s) in starts.iter().enumerate() {
        start_marks[s as usize] = (1, t as u64);
    }
    let block_of =
        pram.scan_inclusive(
            &start_marks,
            (0u64, u64::MAX),
            |a, b| {
                if b.0 == 1 {
                    b
                } else {
                    a
                }
            },
        );

    // Copy-forest: every copied position points at its (strictly earlier)
    // source; literal positions are roots carrying the character.
    let parent: Vec<usize> = pram.tabulate(n, |i| {
        let t = block_of[i].1 as usize;
        match tokens[t] {
            Token::Literal(_) => i,
            Token::Copy { src, .. } => src as usize + (i - starts[t] as usize),
        }
    });
    let forest = Forest::from_parents(pram, &parent);
    let tour = EulerTour::build(pram, &forest, seed ^ 0xDEC0);
    pram.tabulate(n, |i| {
        let root = tour.root_of[i];
        let t = block_of[root].1 as usize;
        match tokens[t] {
            Token::Literal(c) => c,
            Token::Copy { .. } => unreachable!("forest roots are literals"),
        }
    })
}

/// Pointer-jumping uncompression — the ablation partner for
/// [`lz1_decompress`]: identical output, but the copy forest is resolved by
/// repeated doubling (`O(n log n)` work, `O(log n)` depth) instead of one
/// Euler tour. Experiment E12 measures the log-factor gap that makes the
/// Euler route the Theorem 4.3 choice.
#[must_use]
pub fn lz1_decompress_jump(pram: &Pram, tokens: &[Token]) -> Vec<u8> {
    let lens: Vec<u64> = pram.map(tokens, |_, t| t.expanded_len() as u64);
    let starts = pram.scan_exclusive_sum(&lens);
    let n = (starts.last().copied().unwrap_or(0) + lens.last().copied().unwrap_or(0)) as usize;
    if n == 0 {
        return Vec::new();
    }
    let mut start_marks = vec![(0u64, u64::MAX); n];
    pram.ledger().round(tokens.len() as u64);
    for (t, &s) in starts.iter().enumerate() {
        start_marks[s as usize] = (1, t as u64);
    }
    let block_of =
        pram.scan_inclusive(
            &start_marks,
            (0u64, u64::MAX),
            |a, b| {
                if b.0 == 1 {
                    b
                } else {
                    a
                }
            },
        );
    let parent: Vec<usize> = pram.tabulate(n, |i| {
        let t = block_of[i].1 as usize;
        match tokens[t] {
            Token::Literal(_) => i,
            Token::Copy { src, .. } => src as usize + (i - starts[t] as usize),
        }
    });
    let roots = pardict_pram::pointer_jump_roots(pram, &parent);
    pram.tabulate(n, |i| {
        let t = block_of[roots[i]].1 as usize;
        match tokens[t] {
            Token::Literal(c) => c,
            Token::Copy { .. } => unreachable!("forest roots are literals"),
        }
    })
}

/// Sequential LZ77: the classical greedy left-to-right parse, using the
/// suffix tree's previous-match table position by position. The
/// sequential-work baseline for E4.
#[must_use]
pub fn lz77_sequential(text: &[u8]) -> Vec<Token> {
    let n = text.len();
    if n == 0 {
        return Vec::new();
    }
    let pram = Pram::seq();
    let st = SuffixTree::build(&pram, text, 0x5E9);
    let matches = previous_matches(&pram, &st);
    let mut out = Vec::new();
    let mut i = 0;
    while i < n {
        let (src, len) = matches[i];
        if len >= 2 {
            out.push(Token::Copy { src, len });
            i += len as usize;
        } else {
            out.push(Token::Literal(text[i]));
            i += 1;
        }
    }
    out
}

/// Previous-best parallel envelope (`O(n log n)` work, `O(log n)` depth):
/// every position independently finds its longest previous match by binary
/// searching the suffix array for the nearest earlier-position suffix.
/// Exact — doubles as the oracle for [`lz1_compress`]'s match table.
#[must_use]
pub fn lz1_nlogn_baseline(pram: &Pram, text: &[u8], seed: u64) -> Vec<Token> {
    let n = text.len();
    if n == 0 {
        return Vec::new();
    }
    let st = SuffixTree::build(pram, text, seed);
    let m = st.num_leaves();
    // Range-min over suffix-array *values* (positions).
    let sa_vals: Vec<i64> = pram.tabulate(m, |k| st.sa()[k] as i64);
    let sa_min = SparseTable::new_min(pram, &sa_vals);
    // Range-min over the LCP array for O(1) lcp between SA positions.
    let lcp_vals: Vec<i64> = pram.tabulate(m, |k| i64::from(st.lcp()[k]));
    let lcp_min = SparseTable::new_min(pram, &lcp_vals);
    let lcp_between = |a: usize, b: usize| -> usize {
        // a < b in SA order.
        lcp_min.query_value(a + 1, b) as usize
    };

    let matches: Vec<(u32, u32)> = pram.tabulate_costed(n, |i| {
        let r = st.leaf_node(i);
        let mut ops = 2u64;
        let mut best: (u32, u32) = (0, 0);
        // Nearest SA position left of r with value < i: binary search on
        // range minima.
        if r > 0 && sa_min.query_value(0, r - 1) < i as i64 {
            let (mut lo, mut hi) = (0usize, r - 1);
            while lo < hi {
                let mid = (lo + hi).div_ceil(2);
                ops += 1;
                if sa_min.query_value(mid, r - 1) < i as i64 {
                    lo = mid;
                } else {
                    hi = mid - 1;
                }
            }
            let l = lcp_between(lo, r).min(n - i) as u32;
            if l > best.1 {
                best = (st.sa()[lo], l);
            }
        }
        if r + 1 < m && sa_min.query_value(r + 1, m - 1) < i as i64 {
            let (mut lo, mut hi) = (r + 1, m - 1);
            while lo < hi {
                let mid = (lo + hi) / 2;
                ops += 1;
                if sa_min.query_value(r + 1, mid) < i as i64 {
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            let l = lcp_between(r, lo).min(n - i) as u32;
            if l > best.1 {
                best = (st.sa()[lo], l);
            }
        }
        (best, ops)
    });
    emit_tokens(pram, text, &matches, seed ^ 0xBA5E)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokens::decode_naive;
    use pardict_workloads::{
        dna_text, fibonacci_word, markov_text, periodic_text, random_text, repetitive_text,
        Alphabet,
    };

    /// Greedy-parse oracle by brute force longest previous match.
    fn oracle_parse(text: &[u8]) -> Vec<Token> {
        let n = text.len();
        let mut out = Vec::new();
        let mut i = 0;
        while i < n {
            let mut best = (0usize, 0usize);
            for j in 0..i {
                let mut l = 0;
                while i + l < n && text[j + l] == text[i + l] {
                    l += 1;
                }
                if l > best.1 {
                    best = (j, l);
                }
            }
            if best.1 >= 2 {
                out.push(Token::Copy {
                    src: best.0 as u32,
                    len: best.1 as u32,
                });
                i += best.1;
            } else {
                out.push(Token::Literal(text[i]));
                i += 1;
            }
        }
        out
    }

    fn token_lens(ts: &[Token]) -> Vec<usize> {
        ts.iter().map(Token::expanded_len).collect()
    }

    fn check_roundtrip(text: &[u8]) {
        let pram = Pram::seq();
        let tokens = lz1_compress(&pram, text, 99);
        // Phrase boundaries must match the greedy oracle (the parse is
        // unique in lengths; sources may differ among equally long
        // matches).
        assert_eq!(token_lens(&tokens), token_lens(&oracle_parse(text)), "lens");
        // Every copy token must be a real earlier occurrence.
        let starts: Vec<usize> = tokens
            .iter()
            .scan(0usize, |acc, t| {
                let s = *acc;
                *acc += t.expanded_len();
                Some(s)
            })
            .collect();
        for (t, tok) in tokens.iter().enumerate() {
            if let Token::Copy { src, len } = *tok {
                let dst = starts[t];
                assert!((src as usize) < dst);
                for k in 0..len as usize {
                    assert_eq!(text[src as usize + k], text[dst + k], "copy content");
                }
            }
        }
        // Round-trips, both decoders.
        assert_eq!(decode_naive(&tokens), text);
        assert_eq!(lz1_decompress(&pram, &tokens, 3), text);
        // Baseline agrees.
        let base = lz1_nlogn_baseline(&pram, text, 7);
        assert_eq!(token_lens(&base), token_lens(&tokens), "baseline lens");
        // Sequential agrees.
        assert_eq!(token_lens(&lz77_sequential(text)), token_lens(&tokens));
    }

    #[test]
    fn classic_strings() {
        check_roundtrip(b"");
        check_roundtrip(b"a");
        check_roundtrip(b"aaaaaaa");
        check_roundtrip(b"abcabcabc");
        check_roundtrip(b"mississippi");
        check_roundtrip(b"yabbadabbadoo");
    }

    #[test]
    fn synthetic_corpora() {
        check_roundtrip(&random_text(1, 300, Alphabet::lowercase()));
        check_roundtrip(&markov_text(2, 400, Alphabet::dna()));
        check_roundtrip(&dna_text(3, 350));
        check_roundtrip(&repetitive_text(4, 500, Alphabet::binary()));
        check_roundtrip(&fibonacci_word(233));
        check_roundtrip(&periodic_text(b"abcab", 200));
    }

    #[test]
    fn self_referential_runs() {
        // "aaaa…": phrase 2 copies from position 0 with overlap.
        let text = vec![b'a'; 100];
        let pram = Pram::seq();
        let tokens = lz1_compress(&pram, &text, 5);
        assert_eq!(tokens.len(), 2);
        assert!(matches!(tokens[1], Token::Copy { src: 0, len: 99 }));
        assert_eq!(lz1_decompress(&pram, &tokens, 1), text);
    }

    #[test]
    fn pointer_jump_decoder_agrees_and_shows_log_growth() {
        // The honest ablation: the doubling decoder's work/char grows with
        // the copy-chain depth (Θ(n log n) worst case) while the Euler
        // route stays flat — even though the Euler route's *constant* is
        // larger at laptop sizes (recorded in E12).
        let mut jump_per = Vec::new();
        let mut euler_per = Vec::new();
        for n in [1usize << 8, 1 << 12, 1 << 16] {
            // All-equal text: copy chains as deep as they get.
            let text = vec![b'z'; n];
            let pram = Pram::seq();
            let tokens = lz1_compress(&pram, &text, 3);
            let p1 = Pram::seq();
            let (a, c_euler) = p1.metered(|p| lz1_decompress(p, &tokens, 4));
            let p2 = Pram::seq();
            let (b, c_jump) = p2.metered(|p| lz1_decompress_jump(p, &tokens));
            assert_eq!(a, text);
            assert_eq!(b, text);
            jump_per.push(c_jump.work as f64 / n as f64);
            euler_per.push(c_euler.work as f64 / n as f64);
        }
        assert!(
            jump_per[2] > jump_per[0] * 1.5,
            "doubling work/char should grow with chain depth: {jump_per:?}"
        );
        assert!(
            euler_per[2] < euler_per[0] * 1.5 + 4.0,
            "euler work/char should stay flat: {euler_per:?}"
        );
    }

    #[test]
    fn lpf_matches_brute_force() {
        let pram = Pram::seq();
        let text = markov_text(5, 300, Alphabet::dna());
        let lpf = longest_previous_factor(&pram, &text, 6);
        for i in 0..text.len() {
            let mut best = 0usize;
            for j in 0..i {
                let mut l = 0;
                while i + l < text.len() && text[j + l] == text[i + l] {
                    l += 1;
                }
                best = best.max(l);
            }
            assert_eq!(lpf[i].1 as usize, best, "LPF at {i}");
            if best > 0 {
                let (src, len) = (lpf[i].0 as usize, lpf[i].1 as usize);
                assert!(src < i);
                assert_eq!(&text[src..src + len], &text[i..i + len]);
            }
        }
        assert!(longest_previous_factor(&pram, b"", 1).is_empty());
    }

    #[test]
    fn compression_work_is_linear() {
        let mut per_char = Vec::new();
        for n in [1usize << 12, 1 << 14, 1 << 16] {
            let pram = Pram::seq();
            let text = markov_text(9, n, Alphabet::dna());
            let (_, cost) = pram.metered(|p| lz1_compress(p, &text, 2));
            per_char.push(cost.work as f64 / n as f64);
        }
        assert!(
            per_char[2] < per_char[0] * 1.6 + 4.0,
            "lz1 work superlinear: {per_char:?}"
        );
    }

    #[test]
    fn decompression_work_linear_depth_logarithmic() {
        let mut per_char = Vec::new();
        for n in [1usize << 12, 1 << 14, 1 << 16] {
            let pram = Pram::seq();
            let text = repetitive_text(11, n, Alphabet::dna());
            let tokens = lz1_compress(&pram, &text, 4);
            let (out, cost) = pram.metered(|p| lz1_decompress(p, &tokens, 6));
            assert_eq!(out, text);
            per_char.push(cost.work as f64 / n as f64);
            let lg = u64::from(pardict_pram::ceil_log2(n));
            assert!(cost.depth < 200 * lg, "depth {} at n={n}", cost.depth);
        }
        assert!(
            per_char[2] < per_char[0] * 1.5 + 4.0,
            "unlz1 work superlinear: {per_char:?}"
        );
    }
}
