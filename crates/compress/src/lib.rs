#![warn(missing_docs)]

//! # pardict-compress — work-optimal parallel compression (SPAA'95 §4–§5)
//!
//! * **LZ1 / LZ77 (§4)** — [`lz1_compress`] produces the greedy (provably
//!   optimal) dynamic-dictionary parse in `O(n)` work and polylog depth via
//!   the suffix-tree `min-leaf` trick of Lemma 4.1; [`lz1_decompress`]
//!   reverses it work-optimally by resolving the copy forest with one Euler
//!   tour (Theorem 4.3). Baselines: [`lz77_sequential`] (the classical
//!   sequential algorithm) and [`lz1_nlogn_baseline`] (the previous-best
//!   `O(n log n)`-work parallel envelope, also an exact oracle).
//! * **LZ2 / LZ78** — [`lz78_compress`]/[`lz78_decompress`], sequential
//!   only: the paper cites its P-completeness as the reason no fast
//!   parallel version exists.
//! * **Static dictionary compression (§5)** — [`optimal_parse`] computes a
//!   fewest-phrases parse against a prefix-closed dictionary in `O(n)` work
//!   using only *dominating* references (Lemma 5.2: prefix maxima + ranks —
//!   no shortest-path machinery), with [`greedy_parse`],
//!   [`lff_parse`], and the general-BFS [`bfs_parse`] (the [AS92]-style
//!   work-heavy route) as comparators.
//!
//! ```
//! use pardict_pram::Pram;
//! use pardict_compress::{lz1_compress, lz1_decompress, encode_tokens, decode_tokens};
//!
//! let pram = Pram::seq();
//! let text = b"tick tock tick tock tick";
//! let tokens = lz1_compress(&pram, text, 1);
//! let wire = encode_tokens(&tokens);
//! let back = lz1_decompress(&pram, &decode_tokens(&wire).unwrap(), 2);
//! assert_eq!(back, text);
//! ```

mod delta;
pub(crate) mod lz1;
mod lz78;
mod static_parse;
mod tokens;
mod window;

pub use delta::{delta_compress, delta_decompress};
pub use lz1::{
    longest_previous_factor, longest_previous_factor_from_tree, lz1_compress, lz1_decompress,
    lz1_decompress_jump, lz1_nlogn_baseline, lz77_sequential,
};
pub use lz78::{lz78_compress, lz78_decompress, Lz78Token};
pub use static_parse::{bfs_parse, greedy_parse, lff_parse, optimal_parse, Parse, Phrase};
pub use tokens::{
    decode_naive, decode_tokens, decode_tokens_from, encode_tokens, encoded_size, DecodeError,
    Token,
};
pub use window::lz77_windowed;
