//! Request/response vocabulary shared by the engine, wire codec, and server.

use pardict_pram::Cost;
use pardict_trace::TraceCtx;
use std::time::{Duration, Instant};

/// The five operation families the service batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Longest pattern per text position (Theorem 3.1).
    Match = 0,
    /// Every pattern occurrence (`find_all`).
    Grep = 1,
    /// Parallel LZ1 compression (§4).
    Compress = 2,
    /// Optimal static-dictionary parse (§5).
    Parse = 3,
    /// Every pattern occurrence inside a compressed PDZS container,
    /// searched without materializing the decoded text.
    GrepContainer = 4,
}

/// Number of [`OpKind`] variants (sizing per-op metric arrays).
pub const NUM_OPS: usize = 5;

impl OpKind {
    /// Stable display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Match => "match",
            OpKind::Grep => "grep",
            OpKind::Compress => "compress",
            OpKind::Parse => "parse",
            OpKind::GrepContainer => "grepz",
        }
    }

    /// All kinds, in wire-tag order.
    #[must_use]
    pub fn all() -> [OpKind; NUM_OPS] {
        [
            OpKind::Match,
            OpKind::Grep,
            OpKind::Compress,
            OpKind::Parse,
            OpKind::GrepContainer,
        ]
    }
}

/// One operation against the service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpRequest {
    /// Longest pattern at every position of `text` against dictionary `dict`.
    Match {
        /// Registered dictionary name.
        dict: String,
        /// Text to match (NUL-free).
        text: Vec<u8>,
    },
    /// All pattern occurrences in `text` against dictionary `dict`.
    Grep {
        /// Registered dictionary name.
        dict: String,
        /// Text to search (NUL-free).
        text: Vec<u8>,
    },
    /// LZ1-compress `text` (no dictionary needed).
    Compress {
        /// Text to compress (NUL-free).
        text: Vec<u8>,
    },
    /// Fewest-phrases static parse of `text` against dictionary `dict`.
    Parse {
        /// Registered dictionary name.
        dict: String,
        /// Text to parse (NUL-free).
        text: Vec<u8>,
    },
    /// All pattern occurrences in the decoded stream of a PDZS
    /// `container`, searched block-parallel without full decompression.
    /// Container bytes are binary — the NUL check does not apply.
    GrepContainer {
        /// Registered dictionary name.
        dict: String,
        /// A complete PDZS container.
        container: Vec<u8>,
    },
}

impl OpRequest {
    /// The operation family.
    #[must_use]
    pub fn kind(&self) -> OpKind {
        match self {
            OpRequest::Match { .. } => OpKind::Match,
            OpRequest::Grep { .. } => OpKind::Grep,
            OpRequest::Compress { .. } => OpKind::Compress,
            OpRequest::Parse { .. } => OpKind::Parse,
            OpRequest::GrepContainer { .. } => OpKind::GrepContainer,
        }
    }

    /// The subject payload (raw text, or container bytes for
    /// [`OpRequest::GrepContainer`]).
    #[must_use]
    pub fn text(&self) -> &[u8] {
        match self {
            OpRequest::Match { text, .. }
            | OpRequest::Grep { text, .. }
            | OpRequest::Compress { text }
            | OpRequest::Parse { text, .. } => text,
            OpRequest::GrepContainer { container, .. } => container,
        }
    }

    /// The dictionary name, when the op needs one.
    #[must_use]
    pub fn dict_name(&self) -> Option<&str> {
        match self {
            OpRequest::Match { dict, .. }
            | OpRequest::Grep { dict, .. }
            | OpRequest::Parse { dict, .. }
            | OpRequest::GrepContainer { dict, .. } => Some(dict),
            OpRequest::Compress { .. } => None,
        }
    }
}

/// A submitted operation plus its admission-control envelope.
#[derive(Debug, Clone)]
pub struct Request {
    /// The operation.
    pub op: OpRequest,
    /// Absolute deadline; requests past it are rejected instead of executed.
    pub deadline: Option<Instant>,
    /// Trace context this request's spans nest under (`None` = untraced,
    /// either because tracing is off or head-sampling skipped it).
    pub trace: Option<TraceCtx>,
}

impl Request {
    /// Request without a deadline.
    #[must_use]
    pub fn new(op: OpRequest) -> Self {
        Self {
            op,
            deadline: None,
            trace: None,
        }
    }

    /// Request that must start executing within `timeout` from now.
    #[must_use]
    pub fn with_timeout(op: OpRequest, timeout: Duration) -> Self {
        Self {
            op,
            deadline: Some(Instant::now() + timeout),
            trace: None,
        }
    }

    /// Attach a trace context.
    #[must_use]
    pub fn traced(mut self, trace: Option<TraceCtx>) -> Self {
        self.trace = trace;
        self
    }
}

/// One reported occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hit {
    /// Text position.
    pub pos: u64,
    /// Pattern index in the dictionary.
    pub id: u32,
    /// Pattern length.
    pub len: u32,
}

/// Successful operation payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// Longest match per position (positions with no match omitted).
    Match {
        /// Dictionary version that served the request.
        version: u64,
        /// One hit per position with a match.
        hits: Vec<Hit>,
    },
    /// All occurrences.
    Grep {
        /// Dictionary version that served the request.
        version: u64,
        /// Every `(position, pattern)` occurrence.
        hits: Vec<Hit>,
    },
    /// LZ1 token stream.
    Compress {
        /// `encode_tokens` wire bytes.
        payload: Vec<u8>,
        /// Number of LZ1 phrases.
        phrases: u32,
    },
    /// Optimal static parse summary.
    Parse {
        /// Dictionary version that served the request.
        version: u64,
        /// Fewest-phrases count.
        phrases: u32,
        /// Greedy comparator phrase count, when greedy terminates.
        greedy_phrases: Option<u32>,
    },
    /// All occurrences inside a compressed container.
    GrepContainer {
        /// Dictionary version that served the request.
        version: u64,
        /// Every `(position, pattern)` occurrence, positions in the
        /// decoded stream.
        hits: Vec<Hit>,
        /// Indexes of blocks that failed verification and were skipped;
        /// matches are suppressed only in their spans.
        corrupt_blocks: Vec<u64>,
    },
}

impl Reply {
    /// The dictionary version a reply was computed against, if any.
    #[must_use]
    pub fn version(&self) -> Option<u64> {
        match self {
            Reply::Match { version, .. }
            | Reply::Grep { version, .. }
            | Reply::Parse { version, .. }
            | Reply::GrepContainer { version, .. } => Some(*version),
            Reply::Compress { .. } => None,
        }
    }
}

/// Why the service declined or failed a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// Submission queue is full; retry with backoff.
    Overloaded,
    /// The request's deadline passed before execution started.
    DeadlineExceeded,
    /// The engine is shutting down.
    ShuttingDown,
    /// No dictionary registered under this name.
    NoSuchDictionary(String),
    /// The text cannot be parsed with this dictionary (§5 needs coverage).
    Unparseable,
    /// Malformed request (empty dictionary, NUL bytes, …).
    BadRequest(String),
    /// The persistent store refused or failed the write, so the state
    /// change was not applied — an acknowledgement would have promised
    /// durability the disk did not deliver.
    Storage(String),
}

impl ServiceError {
    /// Stable wire code.
    #[must_use]
    pub fn code(&self) -> u8 {
        match self {
            ServiceError::Overloaded => 1,
            ServiceError::DeadlineExceeded => 2,
            ServiceError::ShuttingDown => 3,
            ServiceError::NoSuchDictionary(_) => 4,
            ServiceError::Unparseable => 5,
            ServiceError::BadRequest(_) => 6,
            ServiceError::Storage(_) => 7,
        }
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Overloaded => write!(f, "overloaded: submission queue full"),
            ServiceError::DeadlineExceeded => write!(f, "deadline exceeded before execution"),
            ServiceError::ShuttingDown => write!(f, "service shutting down"),
            ServiceError::NoSuchDictionary(name) => write!(f, "no dictionary named {name:?}"),
            ServiceError::Unparseable => write!(f, "text not parseable with this dictionary"),
            ServiceError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServiceError::Storage(msg) => write!(f, "storage failure: {msg}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// Which execution path served a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lane {
    /// Batched PRAM path (`Pram::par()` + Theorem 3.1 matcher).
    Batched = 0,
    /// Sequential small-request fallback (Aho–Corasick baseline).
    SeqFallback = 1,
    /// Chunked streaming pipeline for large compression payloads
    /// (block-parallel LZ1, framed container output).
    Stream = 2,
    /// Compressed-domain search lane: block-parallel grep over a PDZS
    /// container without full decompression.
    Grep = 3,
}

impl Lane {
    /// Stable label, used as the span lane tag in trace exports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Lane::Batched => "batched",
            Lane::SeqFallback => "seq-fallback",
            Lane::Stream => "stream",
            Lane::Grep => "grep",
        }
    }
}

/// Per-request accounting surfaced with every response.
#[derive(Debug, Clone, Copy)]
pub struct ResponseMeta {
    /// Ledger cost attributed to this request.
    pub cost: Cost,
    /// Number of requests in the batch that served this one.
    pub batch_size: u32,
    /// Time spent queued before a worker picked the request up.
    pub queued: Duration,
    /// Execution time inside the worker.
    pub exec: Duration,
    /// Execution path taken.
    pub lane: Lane,
}

impl Default for ResponseMeta {
    fn default() -> Self {
        Self {
            cost: Cost::default(),
            batch_size: 0,
            queued: Duration::ZERO,
            exec: Duration::ZERO,
            lane: Lane::Batched,
        }
    }
}

/// Outcome of one request: payload or error, plus accounting.
#[derive(Debug, Clone)]
pub struct Response {
    /// Payload or failure.
    pub result: Result<Reply, ServiceError>,
    /// Ledger/batch/latency attribution.
    pub meta: ResponseMeta,
}

impl Response {
    /// An error response with default accounting (pre-execution rejects).
    #[must_use]
    pub fn rejected(err: ServiceError) -> Self {
        Self {
            result: Err(err),
            meta: ResponseMeta::default(),
        }
    }
}

/// Reject texts containing the suffix-tree sentinel byte.
pub(crate) fn check_text(text: &[u8]) -> Result<(), ServiceError> {
    if text.contains(&0) {
        return Err(ServiceError::BadRequest(
            "text contains NUL bytes (reserved for the sentinel)".into(),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_kind_round_trips_names() {
        for k in OpKind::all() {
            assert!(!k.name().is_empty());
        }
    }

    #[test]
    fn request_deadline_is_in_the_future() {
        let r = Request::with_timeout(
            OpRequest::Compress {
                text: b"x".to_vec(),
            },
            Duration::from_secs(5),
        );
        assert!(r.deadline.unwrap() > Instant::now());
    }

    #[test]
    fn nul_text_is_rejected() {
        assert!(check_text(b"ok").is_ok());
        assert!(check_text(&[1, 0, 2]).is_err());
    }
}
