//! Lock-free service metrics: counters and log₂-bucket histograms.
//!
//! Everything here is `AtomicU64`-based so the hot path (worker threads,
//! submission) never takes a lock to record an observation. Histograms
//! bucket by `ceil(log2(value))`, which is coarse but monotone — good
//! enough for p50/p95 reporting without allocation or locking.

use crate::types::{OpKind, NUM_OPS};
use std::sync::atomic::{AtomicU64, Ordering};

/// A monotone lock-free counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: bucket `i` holds values in `(2^(i-1), 2^i]`,
/// bucket 0 holds zero; 64 covers the full `u64` range.
const BUCKETS: usize = 65;

/// Lock-free log₂-bucket histogram with exact count/sum/max.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: [(); BUCKETS].map(|()| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            // ceil(log2(value)) + 1, so bucket i covers (2^(i-2), 2^(i-1)].
            (64 - (value - 1).leading_zeros()) as usize + 1
        }
    }

    /// Upper bound of bucket `i` (inclusive).
    fn bucket_upper(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64.checked_shl((i - 1) as u32).unwrap_or(u64::MAX)
        }
    }

    /// Record one observation.
    pub fn record(&self, value: u64) {
        let b = Self::bucket_of(value).min(BUCKETS - 1);
        self.buckets[b].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Exact mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> u64 {
        self.sum
            .load(Ordering::Relaxed)
            .checked_div(self.count())
            .unwrap_or(0)
    }

    /// Exact maximum observed value.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Bucket-upper-bound estimate of quantile `q` in `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return Self::bucket_upper(i).min(self.max());
            }
        }
        self.max()
    }

    /// A point-in-time, mergeable copy.
    ///
    /// Counters are read individually with relaxed ordering, so a snapshot
    /// taken while observations race may be momentarily inconsistent
    /// (e.g. `count` a hair behind the bucket sum); quiescent snapshots
    /// are exact.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let c = b.load(Ordering::Relaxed);
                (c > 0).then_some((i as u8, c))
            })
            .collect();
        HistogramSnapshot {
            buckets,
            count: self.count(),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max(),
        }
    }
}

/// A point-in-time copy of one [`Histogram`], mergeable across processes.
///
/// Buckets are stored sparsely as `(bucket index, count)` pairs in
/// ascending index order — the form the `stats` wire op ships, sized by
/// occupancy rather than the full 65-bucket array. Merging histograms
/// from different backends is exact: log₂ buckets align by construction,
/// so a cluster-wide quantile degrades no further than a single node's.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Non-empty `(bucket, count)` pairs, ascending by bucket.
    pub buckets: Vec<(u8, u64)>,
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Maximum observation.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Fold `other` into `self` (exact on counts/sums, max of maxes).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        let mut merged: Vec<(u8, u64)> = Vec::with_capacity(self.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        while let (Some(&&(ia, ca)), Some(&&(ib, cb))) = (a.peek(), b.peek()) {
            match ia.cmp(&ib) {
                std::cmp::Ordering::Less => {
                    merged.push((ia, ca));
                    a.next();
                }
                std::cmp::Ordering::Greater => {
                    merged.push((ib, cb));
                    b.next();
                }
                std::cmp::Ordering::Equal => {
                    merged.push((ia, ca + cb));
                    a.next();
                    b.next();
                }
            }
        }
        merged.extend(a.copied());
        merged.extend(b.copied());
        self.buckets = merged;
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Exact mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Bucket-upper-bound estimate of quantile `q` in `[0, 1]`, matching
    /// [`Histogram::quantile`].
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(i, c) in &self.buckets {
            seen += c;
            if seen >= rank {
                return Histogram::bucket_upper(i as usize).min(self.max);
            }
        }
        self.max
    }
}

/// Per-operation counters and distributions.
#[derive(Debug, Default)]
pub struct OpStats {
    /// Successful completions.
    pub count: Counter,
    /// Failed completions (errors surfaced to the caller).
    pub errors: Counter,
    /// End-to-end latency (submission → response), microseconds.
    pub latency_us: Histogram,
    /// Ledger work attributed to the request.
    pub work: Histogram,
    /// Ledger depth attributed to the request.
    pub depth: Histogram,
}

/// All service metrics; shared via `Arc` between registry, engine, server.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Requests accepted into the queue.
    pub submitted: Counter,
    /// Requests that produced a response (success or error).
    pub completed: Counter,
    /// Requests rejected at submission because the queue was full.
    pub rejected_overloaded: Counter,
    /// Requests whose deadline expired before execution.
    pub deadline_expired: Counter,
    /// Dictionary publishes (including republish of identical content).
    pub publishes: Counter,
    /// Publishes served from the preprocessing cache.
    pub cache_hits: Counter,
    /// Publishes that had to build a matcher.
    pub cache_misses: Counter,
    /// Batches executed by workers.
    pub batches: Counter,
    /// Requests executed through batches (sum of batch sizes).
    pub batched_requests: Counter,
    /// Requests served on the sequential small-request fallback lane.
    pub seq_fallback: Counter,
    /// Compress requests routed through the chunked streaming pipeline.
    pub stream_lane: Counter,
    /// Container-grep requests served on the compressed-domain search lane.
    pub grep_lane: Counter,
    /// Compressed-size ÷ raw-size per Compress request, in percent (a 40
    /// means the payload shrank to 40% of the input).
    pub compress_ratio_pct: Histogram,
    /// Dictionaries retired (removed from the registry).
    pub retires: Counter,
    /// Records replayed from the durable store at boot (snapshot entries
    /// plus WAL records applied).
    pub store_replayed: Counter,
    /// Bytes dropped from a torn WAL tail at boot (0 on a clean boot).
    pub store_torn_dropped: Counter,
    /// Snapshot age at boot: WAL records that had accumulated on top of
    /// the last compacted snapshot.
    pub store_snapshot_age: Counter,
    /// Per-operation stats, indexed by [`OpKind`].
    pub per_op: [OpStats; NUM_OPS],
}

impl Metrics {
    /// Stats slot for one operation family.
    #[must_use]
    pub fn op(&self, kind: OpKind) -> &OpStats {
        &self.per_op[kind as usize]
    }

    /// Verify the cross-counter accounting identities that hold on any
    /// correctly-behaving engine, returning the first violated identity.
    ///
    /// With `quiescent = false` only the always-true inequalities are
    /// checked (safe to call while requests are in flight). With
    /// `quiescent = true` — no submissions racing and every ticket
    /// answered — the exact identities must hold too: every accepted
    /// request produced exactly one response and exactly one per-op
    /// observation. This is the contract the chaos harness leans on:
    /// hostile frames may be rejected before submission, but nothing that
    /// was *accepted* may vanish from the books.
    ///
    /// # Errors
    /// A human-readable description of the first violated identity.
    pub fn check_accounting(&self, quiescent: bool) -> Result<(), String> {
        let submitted = self.submitted.get();
        let completed = self.completed.get();
        if completed > submitted {
            return Err(format!(
                "completed {completed} exceeds submitted {submitted}"
            ));
        }
        let mut per_op_total = 0u64;
        for kind in OpKind::all() {
            let s = self.op(kind);
            let outcomes = s.count.get() + s.errors.get();
            per_op_total += outcomes;
            for (name, h) in [
                ("latency", &s.latency_us),
                ("work", &s.work),
                ("depth", &s.depth),
            ] {
                if h.count() != outcomes {
                    return Err(format!(
                        "{}: {} samples {} != outcomes {}",
                        kind.name(),
                        name,
                        h.count(),
                        outcomes
                    ));
                }
            }
        }
        if per_op_total != completed {
            return Err(format!(
                "per-op outcomes {per_op_total} != completed {completed}"
            ));
        }
        let publishes = self.publishes.get();
        let cached = self.cache_hits.get() + self.cache_misses.get();
        if cached != publishes {
            return Err(format!(
                "cache hits+misses {cached} != publishes {publishes}"
            ));
        }
        if self.batched_requests.get() < self.batches.get() {
            return Err(format!(
                "batched-requests {} below batches {} (empty batch?)",
                self.batched_requests.get(),
                self.batches.get()
            ));
        }
        if self.deadline_expired.get() > completed {
            return Err(format!(
                "deadline-expired {} exceeds completed {completed}",
                self.deadline_expired.get()
            ));
        }
        if quiescent && submitted != completed {
            return Err(format!(
                "quiescent but submitted {submitted} != completed {completed}"
            ));
        }
        Ok(())
    }

    /// A point-in-time, wire-shippable copy of every counter plus the
    /// per-op latency/work histograms — what the `stats` wire op returns
    /// so a cluster router can aggregate backend books without parsing
    /// report text. Depth histograms stay node-local: they describe one
    /// PRAM's schedule and do not merge meaningfully across machines.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            submitted: self.submitted.get(),
            completed: self.completed.get(),
            rejected_overloaded: self.rejected_overloaded.get(),
            deadline_expired: self.deadline_expired.get(),
            publishes: self.publishes.get(),
            cache_hits: self.cache_hits.get(),
            cache_misses: self.cache_misses.get(),
            batches: self.batches.get(),
            batched_requests: self.batched_requests.get(),
            seq_fallback: self.seq_fallback.get(),
            stream_lane: self.stream_lane.get(),
            grep_lane: self.grep_lane.get(),
            retires: self.retires.get(),
            store_replayed: self.store_replayed.get(),
            store_torn_dropped: self.store_torn_dropped.get(),
            store_snapshot_age: self.store_snapshot_age.get(),
            per_op: OpKind::all()
                .iter()
                .map(|&k| {
                    let s = self.op(k);
                    OpSnapshot {
                        count: s.count.get(),
                        errors: s.errors.get(),
                        latency_us: s.latency_us.snapshot(),
                        work: s.work.snapshot(),
                    }
                })
                .collect(),
        }
    }

    /// Plain-text report of every counter and per-op distribution.
    #[must_use]
    pub fn report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "== pardict-service metrics ==");
        let _ = writeln!(
            out,
            "requests:  submitted {}  completed {}  overloaded {}  deadline-expired {}",
            self.submitted.get(),
            self.completed.get(),
            self.rejected_overloaded.get(),
            self.deadline_expired.get(),
        );
        let _ = writeln!(
            out,
            "registry:  publishes {}  cache-hits {}  cache-misses {}  retires {}",
            self.publishes.get(),
            self.cache_hits.get(),
            self.cache_misses.get(),
            self.retires.get(),
        );
        let _ = writeln!(
            out,
            "storage:   replayed {}  torn-dropped-bytes {}  snapshot-age {}",
            self.store_replayed.get(),
            self.store_torn_dropped.get(),
            self.store_snapshot_age.get(),
        );
        let batches = self.batches.get();
        let batched = self.batched_requests.get();
        let mean_batch = batched.checked_div(batches).unwrap_or(0);
        let _ = writeln!(
            out,
            "batching:  batches {}  batched-requests {}  mean-batch {}  seq-fallback {}  stream-lane {}  grep-lane {}",
            batches,
            batched,
            mean_batch,
            self.seq_fallback.get(),
            self.stream_lane.get(),
            self.grep_lane.get(),
        );
        let r = &self.compress_ratio_pct;
        let _ = writeln!(
            out,
            "compress:  ratio%-p50 {}  ratio%-p95 {}  ratio%-mean {}  ratio%-max {}  samples {}",
            r.quantile(0.50),
            r.quantile(0.95),
            r.mean(),
            r.max(),
            r.count(),
        );
        let _ = writeln!(
            out,
            "{:<10} {:>8} {:>7} | {:>9} {:>9} {:>9} | {:>12} {:>9}",
            "op", "count", "errors", "lat-p50us", "lat-p95us", "lat-max", "work-mean", "depth-p95",
        );
        for kind in OpKind::all() {
            let s = self.op(kind);
            let _ = writeln!(
                out,
                "{:<10} {:>8} {:>7} | {:>9} {:>9} {:>9} | {:>12} {:>9}",
                kind.name(),
                s.count.get(),
                s.errors.get(),
                s.latency_us.quantile(0.50),
                s.latency_us.quantile(0.95),
                s.latency_us.max(),
                s.work.mean(),
                s.depth.quantile(0.95),
            );
        }
        out
    }
}

/// One operation family's slice of a [`MetricsSnapshot`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpSnapshot {
    /// Successful completions.
    pub count: u64,
    /// Failed completions.
    pub errors: u64,
    /// End-to-end latency distribution, microseconds.
    pub latency_us: HistogramSnapshot,
    /// Ledger work distribution.
    pub work: HistogramSnapshot,
}

impl OpSnapshot {
    /// Fold `other` into `self`.
    pub fn merge(&mut self, other: &OpSnapshot) {
        self.count += other.count;
        self.errors += other.errors;
        self.latency_us.merge(&other.latency_us);
        self.work.merge(&other.work);
    }
}

/// A point-in-time copy of a node's [`Metrics`], shippable over the wire
/// and mergeable into cluster-wide aggregates (see [`Metrics::snapshot`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests that produced a response.
    pub completed: u64,
    /// Requests rejected because the queue was full.
    pub rejected_overloaded: u64,
    /// Requests whose deadline expired before execution.
    pub deadline_expired: u64,
    /// Dictionary publishes.
    pub publishes: u64,
    /// Publishes served from the preprocessing cache.
    pub cache_hits: u64,
    /// Publishes that built a matcher.
    pub cache_misses: u64,
    /// Batches executed.
    pub batches: u64,
    /// Requests executed through batches.
    pub batched_requests: u64,
    /// Sequential-fallback-lane requests.
    pub seq_fallback: u64,
    /// Streaming-lane compress requests.
    pub stream_lane: u64,
    /// Container-grep-lane requests.
    pub grep_lane: u64,
    /// Dictionaries retired.
    pub retires: u64,
    /// Records replayed from the durable store at boot.
    pub store_replayed: u64,
    /// Bytes dropped from a torn WAL tail at boot.
    pub store_torn_dropped: u64,
    /// WAL records that sat on top of the last snapshot at boot.
    pub store_snapshot_age: u64,
    /// Per-operation stats in [`OpKind::all`] order.
    pub per_op: Vec<OpSnapshot>,
}

impl MetricsSnapshot {
    /// Fold `other` into `self`: counters add, histograms merge
    /// bucket-wise. Ragged `per_op` lengths extend to the longer side.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        self.submitted += other.submitted;
        self.completed += other.completed;
        self.rejected_overloaded += other.rejected_overloaded;
        self.deadline_expired += other.deadline_expired;
        self.publishes += other.publishes;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.batches += other.batches;
        self.batched_requests += other.batched_requests;
        self.seq_fallback += other.seq_fallback;
        self.stream_lane += other.stream_lane;
        self.grep_lane += other.grep_lane;
        self.retires += other.retires;
        self.store_replayed += other.store_replayed;
        self.store_torn_dropped += other.store_torn_dropped;
        self.store_snapshot_age += other.store_snapshot_age;
        if self.per_op.len() < other.per_op.len() {
            self.per_op
                .resize(other.per_op.len(), OpSnapshot::default());
        }
        for (mine, theirs) in self.per_op.iter_mut().zip(&other.per_op) {
            mine.merge(theirs);
        }
    }

    /// The accounting identities of [`Metrics::check_accounting`],
    /// checked on a shipped snapshot. Every identity is a linear
    /// equation or an inequality between summed counters, so snapshots
    /// that each pass also pass after [`MetricsSnapshot::merge`] — the
    /// property the cluster router's aggregate books rely on.
    ///
    /// # Errors
    /// A human-readable description of the first violated identity.
    pub fn check_accounting(&self, quiescent: bool) -> Result<(), String> {
        if self.completed > self.submitted {
            return Err(format!(
                "completed {} exceeds submitted {}",
                self.completed, self.submitted
            ));
        }
        let mut per_op_total = 0u64;
        for (i, s) in self.per_op.iter().enumerate() {
            let outcomes = s.count + s.errors;
            per_op_total += outcomes;
            for (name, h) in [("latency", &s.latency_us), ("work", &s.work)] {
                if h.count != outcomes {
                    return Err(format!(
                        "op {i}: {name} samples {} != outcomes {outcomes}",
                        h.count
                    ));
                }
                let bucketed: u64 = h.buckets.iter().map(|&(_, c)| c).sum();
                if bucketed != h.count {
                    return Err(format!(
                        "op {i}: {name} buckets hold {bucketed} of {} samples",
                        h.count
                    ));
                }
            }
        }
        if per_op_total != self.completed {
            return Err(format!(
                "per-op outcomes {per_op_total} != completed {}",
                self.completed
            ));
        }
        let cached = self.cache_hits + self.cache_misses;
        if cached != self.publishes {
            return Err(format!(
                "cache hits+misses {cached} != publishes {}",
                self.publishes
            ));
        }
        if self.batched_requests < self.batches {
            return Err(format!(
                "batched-requests {} below batches {} (empty batch?)",
                self.batched_requests, self.batches
            ));
        }
        if self.deadline_expired > self.completed {
            return Err(format!(
                "deadline-expired {} exceeds completed {}",
                self.deadline_expired, self.completed
            ));
        }
        if quiescent && self.submitted != self.completed {
            return Err(format!(
                "quiescent but submitted {} != completed {}",
                self.submitted, self.completed
            ));
        }
        Ok(())
    }

    /// Plain-text rendering in the same shape as [`Metrics::report`],
    /// headed by `title`.
    #[must_use]
    pub fn report(&self, title: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "== {title} ==");
        let _ = writeln!(
            out,
            "requests:  submitted {}  completed {}  overloaded {}  deadline-expired {}",
            self.submitted, self.completed, self.rejected_overloaded, self.deadline_expired,
        );
        let _ = writeln!(
            out,
            "registry:  publishes {}  cache-hits {}  cache-misses {}  retires {}",
            self.publishes, self.cache_hits, self.cache_misses, self.retires,
        );
        let _ = writeln!(
            out,
            "storage:   replayed {}  torn-dropped-bytes {}  snapshot-age {}",
            self.store_replayed, self.store_torn_dropped, self.store_snapshot_age,
        );
        let _ = writeln!(
            out,
            "batching:  batches {}  batched-requests {}  seq-fallback {}  stream-lane {}  grep-lane {}",
            self.batches, self.batched_requests, self.seq_fallback, self.stream_lane, self.grep_lane,
        );
        let _ = writeln!(
            out,
            "{:<10} {:>8} {:>7} | {:>9} {:>9} {:>9} | {:>12}",
            "op", "count", "errors", "lat-p50us", "lat-p95us", "lat-max", "work-mean",
        );
        for (i, s) in self.per_op.iter().enumerate() {
            let name = OpKind::all().get(i).map_or("op?", |k| k.name());
            let _ = writeln!(
                out,
                "{:<10} {:>8} {:>7} | {:>9} {:>9} {:>9} | {:>12}",
                name,
                s.count,
                s.errors,
                s.latency_us.quantile(0.50),
                s.latency_us.quantile(0.95),
                s.latency_us.max,
                s.work.mean(),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn histogram_buckets_are_monotone() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 3);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(5), 4);
        for v in 1..4096u64 {
            assert!(Histogram::bucket_of(v) >= Histogram::bucket_of(v - 1));
            assert!(v <= Histogram::bucket_upper(Histogram::bucket_of(v)));
        }
    }

    #[test]
    fn histogram_quantiles_bound_observations() {
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.mean(), 500);
        let p50 = h.quantile(0.5);
        // Bucket upper bound for 500 is 512.
        assert!((500..=512).contains(&p50), "p50 = {p50}");
        assert_eq!(h.quantile(1.0), 1000);
        assert!(h.quantile(0.95) >= 950 / 2);
    }

    #[test]
    fn report_mentions_every_op() {
        let m = Metrics::default();
        m.op(OpKind::Match).count.inc();
        m.op(OpKind::Match).latency_us.record(123);
        let r = m.report();
        for kind in OpKind::all() {
            assert!(r.contains(kind.name()), "missing {} in:\n{r}", kind.name());
        }
    }

    #[test]
    fn accounting_identities_hold_and_violations_surface() {
        let m = Metrics::default();
        assert!(m.check_accounting(true).is_ok());
        // One clean completed match.
        m.submitted.inc();
        m.completed.inc();
        let s = m.op(OpKind::Match);
        s.count.inc();
        s.latency_us.record(10);
        s.work.record(100);
        s.depth.record(5);
        assert!(m.check_accounting(true).is_ok());
        // A submission still in flight: fine lenient, flagged quiescent.
        m.submitted.inc();
        assert!(m.check_accounting(false).is_ok());
        assert!(m.check_accounting(true).is_err());
        // A completion that skipped its per-op books is always an error.
        m.completed.inc();
        assert!(m.check_accounting(false).is_err());
    }

    #[test]
    fn histogram_snapshot_matches_live_and_merges_exactly() {
        let (a, b, both) = (
            Histogram::default(),
            Histogram::default(),
            Histogram::default(),
        );
        for v in [0u64, 1, 5, 900, 17] {
            a.record(v);
            both.record(v);
        }
        for v in [3u64, 5, 1 << 40] {
            b.record(v);
            both.record(v);
        }
        let sa = a.snapshot();
        assert_eq!(sa.count, a.count());
        assert_eq!(sa.max, a.max());
        assert_eq!(sa.mean(), a.mean());
        for q in [0.0, 0.5, 0.95, 1.0] {
            assert_eq!(sa.quantile(q), a.quantile(q), "q={q}");
        }
        let mut merged = sa;
        merged.merge(&b.snapshot());
        assert_eq!(merged, both.snapshot(), "merge must equal combined stream");
    }

    #[test]
    fn metrics_snapshot_merges_and_reports() {
        let m = Metrics::default();
        m.submitted.add(3);
        m.completed.add(3);
        m.op(OpKind::Grep).count.add(2);
        m.op(OpKind::Grep).latency_us.record(40);
        let mut total = m.snapshot();
        total.merge(&m.snapshot());
        assert_eq!(total.submitted, 6);
        assert_eq!(total.per_op[OpKind::Grep as usize].count, 4);
        assert_eq!(total.per_op[OpKind::Grep as usize].latency_us.count, 2);
        let r = total.report("merged backends");
        assert!(r.contains("merged backends"), "{r}");
        assert!(r.contains("grep"), "{r}");
    }

    #[test]
    fn compression_ratio_histogram_reaches_the_report() {
        let m = Metrics::default();
        m.compress_ratio_pct.record(38); // 38% of raw size
        m.compress_ratio_pct.record(90);
        assert_eq!(m.compress_ratio_pct.count(), 2);
        assert_eq!(m.compress_ratio_pct.mean(), 64);
        assert_eq!(m.compress_ratio_pct.max(), 90);
        let r = m.report();
        assert!(r.contains("ratio%"), "missing ratio line in:\n{r}");
        assert!(r.contains("samples 2"), "missing sample count in:\n{r}");
    }
}
