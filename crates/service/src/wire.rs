//! Length-prefixed binary framing for `pardict serve`.
//!
//! Built on `std` only (the registry is unreachable, so no serde/tokio):
//! each frame is a `u32` big-endian byte length followed by that many
//! payload bytes. The first payload byte is a tag selecting the message
//! kind; integers are big-endian, byte strings are `u32` length-prefixed.
//! Responses repeat a tag so decoding is context-free.

use crate::types::{Hit, Reply, Response, ServiceError};
use std::io::{self, Read, Write};

/// Refuse frames larger than this (64 MiB) instead of allocating blindly.
pub const MAX_FRAME: u32 = 64 << 20;

/// Request tags (first payload byte, client → server).
pub mod tag {
    /// Publish a dictionary: `name, count, patterns…`.
    pub const PUBLISH: u8 = 1;
    /// Match: `dict, text, timeout_ms`.
    pub const MATCH: u8 = 2;
    /// Grep: `dict, text, timeout_ms`.
    pub const GREP: u8 = 3;
    /// Compress: `text, timeout_ms`.
    pub const COMPRESS: u8 = 4;
    /// Parse: `dict, text, timeout_ms`.
    pub const PARSE: u8 = 5;
    /// Fetch the plain-text metrics report.
    pub const METRICS: u8 = 6;
    /// Liveness probe.
    pub const PING: u8 = 7;
    /// Container grep: `dict, container bytes, timeout_ms`.
    pub const GREPZ: u8 = 8;
    /// Fetch a structured [`MetricsSnapshot`](crate::metrics::MetricsSnapshot)
    /// (the router's aggregation feed; `METRICS` stays the human report).
    pub const STATS: u8 = 9;
    /// List installed dictionaries as `(name, version, content hash)`
    /// digests — how a cluster router learns what a backend recovered
    /// from its local store before deciding what to replay.
    pub const DICTS: u8 = 10;
    /// Trace-context wrapper: `trace id, parent span id, inner request`.
    /// Only sent after the peer advertised [`super::EXT_TRACE`] in a
    /// `HELLO` exchange — a pre-extension peer answers it with a clean
    /// "unknown request tag" error, never a misparse.
    pub const TRACED: u8 = 11;
    /// Extension negotiation: `u32` bitmask of extensions the sender
    /// speaks; the reply carries the receiver's mask.
    pub const HELLO: u8 = 12;
    /// Delta publish: `name, parent_version, adds…, removes…`. Only sent
    /// after the peer advertised [`super::EXT_DELTA`] in a `HELLO`
    /// exchange; a pre-extension peer answers it with a clean "unknown
    /// request tag" error and the client falls back to a full `PUBLISH`.
    pub const PUBDELTA: u8 = 13;
    /// Response: success payload follows.
    pub const OK: u8 = 0x80;
    /// Response: error code + message follow.
    pub const ERR: u8 = 0x81;
}

/// Extension bit: the peer accepts [`tag::TRACED`] request wrappers.
pub const EXT_TRACE: u32 = 1;

/// Extension bit: the peer accepts [`tag::PUBDELTA`] requests.
pub const EXT_DELTA: u32 = 2;

/// Read one frame; `Ok(None)` on clean EOF at a frame boundary.
///
/// # Errors
/// I/O errors, oversized frames, or EOF mid-frame.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds {MAX_FRAME}"),
        ));
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf)?;
    Ok(Some(buf))
}

/// Write one frame.
///
/// # Errors
/// I/O errors or a payload larger than [`MAX_FRAME`].
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&l| l <= MAX_FRAME)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "frame too large"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

// ---- payload primitives ----

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_be_bytes());
    out.extend_from_slice(b);
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn err(msg: &str) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
    }

    fn u8(&mut self) -> io::Result<u8> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or_else(|| Self::err("truncated payload"))?;
        self.pos += 1;
        Ok(b)
    }

    fn u32(&mut self) -> io::Result<u32> {
        let end = self.pos + 4;
        let s = self
            .buf
            .get(self.pos..end)
            .ok_or_else(|| Self::err("truncated u32"))?;
        self.pos = end;
        Ok(u32::from_be_bytes(s.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> io::Result<u64> {
        let end = self.pos + 8;
        let s = self
            .buf
            .get(self.pos..end)
            .ok_or_else(|| Self::err("truncated u64"))?;
        self.pos = end;
        Ok(u64::from_be_bytes(s.try_into().expect("8 bytes")))
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Decode a `u32` element count, bounded by the bytes actually left in
    /// the payload: a well-formed payload carries at least `min_entry`
    /// bytes per element, so any larger claim is hostile. Rejecting here —
    /// before `Vec::with_capacity` — caps every pre-allocation at
    /// `remaining / min_entry` elements no matter what the frame claims.
    fn count(&mut self, min_entry: usize, what: &str) -> io::Result<usize> {
        let n = self.u32()? as usize;
        if n > self.remaining() / min_entry {
            return Err(Self::err(&format!("{what} count exceeds payload")));
        }
        Ok(n)
    }

    fn bytes(&mut self) -> io::Result<Vec<u8>> {
        let len = self.u32()? as usize;
        let end = self.pos + len;
        let s = self
            .buf
            .get(self.pos..end)
            .ok_or_else(|| Self::err("truncated byte string"))?;
        self.pos = end;
        Ok(s.to_vec())
    }

    fn string(&mut self) -> io::Result<String> {
        String::from_utf8(self.bytes()?).map_err(|_| Self::err("invalid UTF-8"))
    }

    fn finish(&self) -> io::Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(Self::err("trailing bytes in payload"))
        }
    }
}

// ---- request codec ----

/// A decoded client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireRequest {
    /// Install `patterns` under `name`.
    Publish {
        /// Dictionary name.
        name: String,
        /// Pattern set.
        patterns: Vec<Vec<u8>>,
    },
    /// Advance `name` from `parent_version` by a delta: `removes`
    /// dropped (every occurrence of each value), then `adds` appended.
    /// The frame costs bytes proportional to the delta, not the
    /// dictionary.
    PubDelta {
        /// Dictionary name.
        name: String,
        /// Version the delta applies against; the server rejects the
        /// request if its current version differs.
        parent_version: u64,
        /// Patterns appended, in order.
        adds: Vec<Vec<u8>>,
        /// Pattern values removed.
        removes: Vec<Vec<u8>>,
    },
    /// An operation; `timeout_ms == 0` means no deadline.
    Op {
        /// Which operation (`tag::MATCH` … `tag::PARSE`, `tag::GREPZ`).
        tag: u8,
        /// Dictionary name (empty for compress).
        dict: String,
        /// Subject text (container bytes for `tag::GREPZ`).
        text: Vec<u8>,
        /// Deadline budget in milliseconds; 0 = none.
        timeout_ms: u32,
    },
    /// Fetch the metrics report.
    Metrics,
    /// Fetch a structured metrics snapshot.
    Stats,
    /// List installed dictionary digests.
    Dicts,
    /// Liveness probe.
    Ping,
    /// Extension negotiation: the sender's extension bitmask.
    Hello {
        /// Bitmask of [`EXT_TRACE`]-style extension bits.
        extensions: u32,
    },
    /// A request wrapped with propagated trace context. Never nests.
    Traced {
        /// Trace id the inner request belongs to.
        trace: u64,
        /// Span id on the sender the receiver's spans nest under.
        parent: u64,
        /// The wrapped request (any non-`Traced`, non-`Hello` request).
        inner: Box<WireRequest>,
    },
}

impl WireRequest {
    /// Encode to a frame payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            WireRequest::Publish { name, patterns } => {
                out.push(tag::PUBLISH);
                put_bytes(&mut out, name.as_bytes());
                put_u32(&mut out, patterns.len() as u32);
                for p in patterns {
                    put_bytes(&mut out, p);
                }
            }
            WireRequest::PubDelta {
                name,
                parent_version,
                adds,
                removes,
            } => {
                out.push(tag::PUBDELTA);
                put_bytes(&mut out, name.as_bytes());
                put_u64(&mut out, *parent_version);
                for list in [adds, removes] {
                    put_u32(&mut out, list.len() as u32);
                    for p in list {
                        put_bytes(&mut out, p);
                    }
                }
            }
            WireRequest::Op {
                tag: t,
                dict,
                text,
                timeout_ms,
            } => {
                out.push(*t);
                put_bytes(&mut out, dict.as_bytes());
                put_bytes(&mut out, text);
                put_u32(&mut out, *timeout_ms);
            }
            WireRequest::Metrics => out.push(tag::METRICS),
            WireRequest::Stats => out.push(tag::STATS),
            WireRequest::Dicts => out.push(tag::DICTS),
            WireRequest::Ping => out.push(tag::PING),
            WireRequest::Hello { extensions } => {
                out.push(tag::HELLO);
                put_u32(&mut out, *extensions);
            }
            WireRequest::Traced {
                trace,
                parent,
                inner,
            } => {
                out.push(tag::TRACED);
                put_u64(&mut out, *trace);
                put_u64(&mut out, *parent);
                out.extend_from_slice(&inner.encode());
            }
        }
        out
    }

    /// Decode a frame payload.
    ///
    /// # Errors
    /// `InvalidData` on unknown tags or malformed payloads.
    pub fn decode(payload: &[u8]) -> io::Result<Self> {
        let mut c = Cursor::new(payload);
        let t = c.u8()?;
        let req = match t {
            tag::PUBLISH => {
                let name = c.string()?;
                // Each pattern costs at least its 4-byte length prefix.
                let n = c.count(4, "pattern")?;
                let mut patterns = Vec::with_capacity(n);
                for _ in 0..n {
                    patterns.push(c.bytes()?);
                }
                WireRequest::Publish { name, patterns }
            }
            tag::PUBDELTA => {
                let name = c.string()?;
                let parent_version = c.u64()?;
                let mut lists = [Vec::new(), Vec::new()];
                for list in lists.iter_mut() {
                    let n = c.count(4, "delta pattern")?;
                    list.reserve(n);
                    for _ in 0..n {
                        list.push(c.bytes()?);
                    }
                }
                let [adds, removes] = lists;
                WireRequest::PubDelta {
                    name,
                    parent_version,
                    adds,
                    removes,
                }
            }
            tag::MATCH | tag::GREP | tag::COMPRESS | tag::PARSE | tag::GREPZ => WireRequest::Op {
                tag: t,
                dict: c.string()?,
                text: c.bytes()?,
                timeout_ms: c.u32()?,
            },
            tag::METRICS => WireRequest::Metrics,
            tag::STATS => WireRequest::Stats,
            tag::DICTS => WireRequest::Dicts,
            tag::PING => WireRequest::Ping,
            tag::HELLO => WireRequest::Hello {
                extensions: c.u32()?,
            },
            tag::TRACED => {
                let trace = c.u64()?;
                let parent = c.u64()?;
                // The rest of the payload is one complete inner request;
                // its own decode enforces the trailing-bytes check.
                let inner = WireRequest::decode(&payload[c.pos..])?;
                if matches!(
                    inner,
                    WireRequest::Traced { .. } | WireRequest::Hello { .. }
                ) {
                    return Err(Cursor::err("trace wrapper cannot nest"));
                }
                c.pos = payload.len();
                WireRequest::Traced {
                    trace,
                    parent,
                    inner: Box::new(inner),
                }
            }
            other => return Err(Cursor::err(&format!("unknown request tag {other}"))),
        };
        c.finish()?;
        Ok(req)
    }
}

// ---- response codec ----

/// A decoded server response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireResponse {
    /// Publish succeeded.
    Published {
        /// Installed version.
        version: u64,
        /// Whether the build came from the preprocessing cache.
        cache_hit: bool,
    },
    /// Match/grep hits.
    Hits {
        /// Dictionary version that served the request.
        version: u64,
        /// Occurrences.
        hits: Vec<Hit>,
    },
    /// Compression result.
    Compressed {
        /// `encode_tokens` bytes.
        payload: Vec<u8>,
        /// LZ1 phrase count.
        phrases: u32,
    },
    /// Parse result.
    Parsed {
        /// Dictionary version that served the request.
        version: u64,
        /// Optimal phrase count.
        phrases: u32,
        /// Greedy phrase count, `u32::MAX` encoding `None`.
        greedy_phrases: Option<u32>,
    },
    /// Container-grep hits plus any skipped corrupt blocks.
    ContainerHits {
        /// Dictionary version that served the request.
        version: u64,
        /// Occurrences, positions in the decoded stream.
        hits: Vec<Hit>,
        /// Zero-based indexes of blocks skipped as corrupt.
        corrupt_blocks: Vec<u64>,
    },
    /// Container-grep hits served by a cluster router: the merged
    /// scatter-gather result plus the degraded-mode flag the single-node
    /// reply has no room for.
    ClusterHits {
        /// Maximum dictionary version among the shards that answered.
        version: u64,
        /// True when the reply was served with at least one backend
        /// excluded or after an in-flight failover — results are complete
        /// from the surviving shards, but capacity is reduced.
        degraded: bool,
        /// Number of shards that contributed block ranges.
        shards: u32,
        /// Occurrences, positions in the decoded stream.
        hits: Vec<Hit>,
        /// Zero-based indexes of blocks skipped as corrupt (container
        /// coordinates, deduplicated, ascending).
        corrupt_blocks: Vec<u64>,
    },
    /// Installed dictionary digests: `(name, version, content hash)`,
    /// sorted by name.
    DictList(Vec<(String, u64, u64)>),
    /// Metrics report text.
    MetricsReport(String),
    /// Structured metrics snapshot.
    Stats(crate::metrics::MetricsSnapshot),
    /// Ping reply.
    Pong,
    /// Extension negotiation reply: the receiver's extension bitmask.
    Hello {
        /// Bitmask of [`EXT_TRACE`]-style extension bits.
        extensions: u32,
    },
    /// Service error.
    Error {
        /// [`ServiceError::code`] value.
        code: u8,
        /// Human-readable message.
        message: String,
    },
}

/// Sub-tags for OK responses.
mod ok {
    pub const PUBLISHED: u8 = 1;
    pub const HITS: u8 = 2;
    pub const COMPRESSED: u8 = 3;
    pub const PARSED: u8 = 4;
    pub const METRICS: u8 = 5;
    pub const PONG: u8 = 6;
    pub const CONTAINER_HITS: u8 = 7;
    pub const STATS: u8 = 8;
    pub const CLUSTER_HITS: u8 = 9;
    pub const DICTS: u8 = 10;
    pub const HELLO: u8 = 11;
}

fn put_hits(out: &mut Vec<u8>, hits: &[Hit]) {
    put_u32(out, hits.len() as u32);
    for h in hits {
        put_u64(out, h.pos);
        put_u32(out, h.id);
        put_u32(out, h.len);
    }
}

fn get_hits(c: &mut Cursor<'_>) -> io::Result<Vec<Hit>> {
    let n = c.count(16, "hit")?;
    let mut hits = Vec::with_capacity(n);
    for _ in 0..n {
        hits.push(Hit {
            pos: c.u64()?,
            id: c.u32()?,
            len: c.u32()?,
        });
    }
    Ok(hits)
}

fn put_histogram(out: &mut Vec<u8>, h: &crate::metrics::HistogramSnapshot) {
    put_u64(out, h.count);
    put_u64(out, h.sum);
    put_u64(out, h.max);
    put_u32(out, h.buckets.len() as u32);
    for &(b, c) in &h.buckets {
        out.push(b);
        put_u64(out, c);
    }
}

fn get_histogram(c: &mut Cursor<'_>) -> io::Result<crate::metrics::HistogramSnapshot> {
    let (count, sum, max) = (c.u64()?, c.u64()?, c.u64()?);
    let n = c.count(9, "histogram bucket")?;
    let mut buckets = Vec::with_capacity(n);
    for _ in 0..n {
        buckets.push((c.u8()?, c.u64()?));
    }
    Ok(crate::metrics::HistogramSnapshot {
        buckets,
        count,
        sum,
        max,
    })
}

fn put_snapshot(out: &mut Vec<u8>, s: &crate::metrics::MetricsSnapshot) {
    for v in [
        s.submitted,
        s.completed,
        s.rejected_overloaded,
        s.deadline_expired,
        s.publishes,
        s.cache_hits,
        s.cache_misses,
        s.batches,
        s.batched_requests,
        s.seq_fallback,
        s.stream_lane,
        s.grep_lane,
        s.retires,
        s.store_replayed,
        s.store_torn_dropped,
        s.store_snapshot_age,
    ] {
        put_u64(out, v);
    }
    put_u32(out, s.per_op.len() as u32);
    for op in &s.per_op {
        put_u64(out, op.count);
        put_u64(out, op.errors);
        put_histogram(out, &op.latency_us);
        put_histogram(out, &op.work);
    }
}

fn get_snapshot(c: &mut Cursor<'_>) -> io::Result<crate::metrics::MetricsSnapshot> {
    let mut s = crate::metrics::MetricsSnapshot::default();
    for slot in [
        &mut s.submitted,
        &mut s.completed,
        &mut s.rejected_overloaded,
        &mut s.deadline_expired,
        &mut s.publishes,
        &mut s.cache_hits,
        &mut s.cache_misses,
        &mut s.batches,
        &mut s.batched_requests,
        &mut s.seq_fallback,
        &mut s.stream_lane,
        &mut s.grep_lane,
        &mut s.retires,
        &mut s.store_replayed,
        &mut s.store_torn_dropped,
        &mut s.store_snapshot_age,
    ] {
        *slot = c.u64()?;
    }
    // Each op carries at least two counters and two empty histograms.
    let n = c.count(16 + 2 * 28, "per-op stats")?;
    for _ in 0..n {
        s.per_op.push(crate::metrics::OpSnapshot {
            count: c.u64()?,
            errors: c.u64()?,
            latency_us: get_histogram(c)?,
            work: get_histogram(c)?,
        });
    }
    Ok(s)
}

impl WireResponse {
    /// Encode to a frame payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            WireResponse::Error { code, message } => {
                out.push(tag::ERR);
                out.push(*code);
                put_bytes(&mut out, message.as_bytes());
            }
            WireResponse::Published { version, cache_hit } => {
                out.push(tag::OK);
                out.push(ok::PUBLISHED);
                put_u64(&mut out, *version);
                out.push(u8::from(*cache_hit));
            }
            WireResponse::Hits { version, hits } => {
                out.push(tag::OK);
                out.push(ok::HITS);
                put_u64(&mut out, *version);
                put_hits(&mut out, hits);
            }
            WireResponse::Compressed { payload, phrases } => {
                out.push(tag::OK);
                out.push(ok::COMPRESSED);
                put_u32(&mut out, *phrases);
                put_bytes(&mut out, payload);
            }
            WireResponse::Parsed {
                version,
                phrases,
                greedy_phrases,
            } => {
                out.push(tag::OK);
                out.push(ok::PARSED);
                put_u64(&mut out, *version);
                put_u32(&mut out, *phrases);
                put_u32(&mut out, greedy_phrases.unwrap_or(u32::MAX));
            }
            WireResponse::ContainerHits {
                version,
                hits,
                corrupt_blocks,
            } => {
                out.push(tag::OK);
                out.push(ok::CONTAINER_HITS);
                put_u64(&mut out, *version);
                put_hits(&mut out, hits);
                put_u32(&mut out, corrupt_blocks.len() as u32);
                for b in corrupt_blocks {
                    put_u64(&mut out, *b);
                }
            }
            WireResponse::ClusterHits {
                version,
                degraded,
                shards,
                hits,
                corrupt_blocks,
            } => {
                out.push(tag::OK);
                out.push(ok::CLUSTER_HITS);
                put_u64(&mut out, *version);
                out.push(u8::from(*degraded));
                put_u32(&mut out, *shards);
                put_hits(&mut out, hits);
                put_u32(&mut out, corrupt_blocks.len() as u32);
                for b in corrupt_blocks {
                    put_u64(&mut out, *b);
                }
            }
            WireResponse::DictList(dicts) => {
                out.push(tag::OK);
                out.push(ok::DICTS);
                put_u32(&mut out, dicts.len() as u32);
                for (name, version, hash) in dicts {
                    put_bytes(&mut out, name.as_bytes());
                    put_u64(&mut out, *version);
                    put_u64(&mut out, *hash);
                }
            }
            WireResponse::MetricsReport(s) => {
                out.push(tag::OK);
                out.push(ok::METRICS);
                put_bytes(&mut out, s.as_bytes());
            }
            WireResponse::Stats(s) => {
                out.push(tag::OK);
                out.push(ok::STATS);
                put_snapshot(&mut out, s);
            }
            WireResponse::Pong => {
                out.push(tag::OK);
                out.push(ok::PONG);
            }
            WireResponse::Hello { extensions } => {
                out.push(tag::OK);
                out.push(ok::HELLO);
                put_u32(&mut out, *extensions);
            }
        }
        out
    }

    /// Decode a frame payload.
    ///
    /// # Errors
    /// `InvalidData` on unknown tags or malformed payloads.
    pub fn decode(payload: &[u8]) -> io::Result<Self> {
        let mut c = Cursor::new(payload);
        let resp = match c.u8()? {
            tag::ERR => WireResponse::Error {
                code: c.u8()?,
                message: c.string()?,
            },
            tag::OK => match c.u8()? {
                ok::PUBLISHED => WireResponse::Published {
                    version: c.u64()?,
                    cache_hit: c.u8()? != 0,
                },
                ok::HITS => WireResponse::Hits {
                    version: c.u64()?,
                    hits: get_hits(&mut c)?,
                },
                ok::COMPRESSED => WireResponse::Compressed {
                    phrases: c.u32()?,
                    payload: c.bytes()?,
                },
                ok::PARSED => WireResponse::Parsed {
                    version: c.u64()?,
                    phrases: c.u32()?,
                    greedy_phrases: match c.u32()? {
                        u32::MAX => None,
                        g => Some(g),
                    },
                },
                ok::CONTAINER_HITS => {
                    let version = c.u64()?;
                    let hits = get_hits(&mut c)?;
                    let nb = c.count(8, "corrupt-block")?;
                    let mut corrupt_blocks = Vec::with_capacity(nb);
                    for _ in 0..nb {
                        corrupt_blocks.push(c.u64()?);
                    }
                    WireResponse::ContainerHits {
                        version,
                        hits,
                        corrupt_blocks,
                    }
                }
                ok::CLUSTER_HITS => {
                    let version = c.u64()?;
                    let degraded = c.u8()? != 0;
                    let shards = c.u32()?;
                    let hits = get_hits(&mut c)?;
                    let nb = c.count(8, "corrupt-block")?;
                    let mut corrupt_blocks = Vec::with_capacity(nb);
                    for _ in 0..nb {
                        corrupt_blocks.push(c.u64()?);
                    }
                    WireResponse::ClusterHits {
                        version,
                        degraded,
                        shards,
                        hits,
                        corrupt_blocks,
                    }
                }
                ok::DICTS => {
                    // Each digest costs at least a 4-byte name prefix
                    // plus two u64s.
                    let n = c.count(20, "dictionary digest")?;
                    let mut dicts = Vec::with_capacity(n);
                    for _ in 0..n {
                        dicts.push((c.string()?, c.u64()?, c.u64()?));
                    }
                    WireResponse::DictList(dicts)
                }
                ok::METRICS => WireResponse::MetricsReport(c.string()?),
                ok::STATS => WireResponse::Stats(get_snapshot(&mut c)?),
                ok::PONG => WireResponse::Pong,
                ok::HELLO => WireResponse::Hello {
                    extensions: c.u32()?,
                },
                other => return Err(Cursor::err(&format!("unknown ok sub-tag {other}"))),
            },
            other => return Err(Cursor::err(&format!("unknown response tag {other}"))),
        };
        c.finish()?;
        Ok(resp)
    }

    /// Convert an engine [`Response`] to its wire form.
    #[must_use]
    pub fn from_engine(resp: &Response) -> Self {
        match &resp.result {
            Err(e) => WireResponse::Error {
                code: e.code(),
                message: e.to_string(),
            },
            Ok(Reply::Match { version, hits }) | Ok(Reply::Grep { version, hits }) => {
                WireResponse::Hits {
                    version: *version,
                    hits: hits.clone(),
                }
            }
            Ok(Reply::Compress { payload, phrases }) => WireResponse::Compressed {
                payload: payload.clone(),
                phrases: *phrases,
            },
            Ok(Reply::Parse {
                version,
                phrases,
                greedy_phrases,
            }) => WireResponse::Parsed {
                version: *version,
                phrases: *phrases,
                greedy_phrases: *greedy_phrases,
            },
            Ok(Reply::GrepContainer {
                version,
                hits,
                corrupt_blocks,
            }) => WireResponse::ContainerHits {
                version: *version,
                hits: hits.clone(),
                corrupt_blocks: corrupt_blocks.clone(),
            },
        }
    }
}

/// Recover a [`ServiceError`] from a wire error `(code, message)` pair.
#[must_use]
pub fn error_from_wire(code: u8, message: &str) -> ServiceError {
    match code {
        1 => ServiceError::Overloaded,
        2 => ServiceError::DeadlineExceeded,
        3 => ServiceError::ShuttingDown,
        4 => ServiceError::NoSuchDictionary(message.to_string()),
        5 => ServiceError::Unparseable,
        7 => ServiceError::Storage(message.to_string()),
        _ => ServiceError::BadRequest(message.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME + 1).to_be_bytes());
        assert!(read_frame(&mut &buf[..]).is_err());
    }

    #[test]
    fn requests_round_trip() {
        let reqs = [
            WireRequest::Publish {
                name: "corpus".into(),
                patterns: vec![b"ana".to_vec(), b"ban".to_vec()],
            },
            WireRequest::Op {
                tag: tag::MATCH,
                dict: "corpus".into(),
                text: b"banana".to_vec(),
                timeout_ms: 250,
            },
            WireRequest::Op {
                tag: tag::COMPRESS,
                dict: String::new(),
                text: b"aaaa".to_vec(),
                timeout_ms: 0,
            },
            WireRequest::Op {
                tag: tag::GREPZ,
                dict: "corpus".into(),
                text: vec![0x50, 0x44, 0x5A, 0x53, 0x00, 0xFF], // binary container bytes
                timeout_ms: 100,
            },
            WireRequest::Metrics,
            WireRequest::Stats,
            WireRequest::Dicts,
            WireRequest::Ping,
            WireRequest::PubDelta {
                name: "corpus".into(),
                parent_version: 3,
                adds: vec![b"new".to_vec()],
                removes: vec![b"ana".to_vec(), b"ban".to_vec()],
            },
            WireRequest::PubDelta {
                name: "corpus".into(),
                parent_version: 1,
                adds: vec![],
                removes: vec![b"ana".to_vec()],
            },
        ];
        for req in reqs {
            assert_eq!(WireRequest::decode(&req.encode()).unwrap(), req);
        }
    }

    #[test]
    fn responses_round_trip() {
        let resps = [
            WireResponse::Published {
                version: 7,
                cache_hit: true,
            },
            WireResponse::Hits {
                version: 2,
                hits: vec![
                    Hit {
                        pos: 0,
                        id: 1,
                        len: 3,
                    },
                    Hit {
                        pos: 9,
                        id: 0,
                        len: 2,
                    },
                ],
            },
            WireResponse::Compressed {
                payload: vec![1, 2, 3],
                phrases: 3,
            },
            WireResponse::Parsed {
                version: 1,
                phrases: 4,
                greedy_phrases: None,
            },
            WireResponse::ContainerHits {
                version: 3,
                hits: vec![Hit {
                    pos: 70000,
                    id: 2,
                    len: 5,
                }],
                corrupt_blocks: vec![1, 4],
            },
            WireResponse::ClusterHits {
                version: 5,
                degraded: true,
                shards: 3,
                hits: vec![Hit {
                    pos: 11,
                    id: 7,
                    len: 2,
                }],
                corrupt_blocks: vec![0],
            },
            WireResponse::Stats({
                let m = crate::metrics::Metrics::default();
                m.submitted.add(9);
                m.completed.add(9);
                m.op(crate::types::OpKind::Match).count.add(9);
                m.op(crate::types::OpKind::Match).latency_us.record(123);
                m.op(crate::types::OpKind::Match).work.record(4096);
                m.snapshot()
            }),
            WireResponse::DictList(vec![
                ("alpha".into(), 3, 0xDEAD_BEEF),
                ("beta".into(), 1, 42),
            ]),
            WireResponse::MetricsReport("ok".into()),
            WireResponse::Pong,
            WireResponse::Error {
                code: 1,
                message: "overloaded".into(),
            },
        ];
        for resp in resps {
            assert_eq!(WireResponse::decode(&resp.encode()).unwrap(), resp);
        }
    }

    #[test]
    fn hostile_counts_are_bounded_by_remaining_bytes() {
        // A short PUBLISH frame claiming u32::MAX patterns must be
        // rejected at the count, before any allocation can happen.
        let mut p = vec![tag::PUBLISH];
        put_bytes(&mut p, b"d");
        put_u32(&mut p, u32::MAX);
        assert!(WireRequest::decode(&p).is_err());
        // A PUBDELTA frame claiming u32::MAX adds.
        let mut p = vec![tag::PUBDELTA];
        put_bytes(&mut p, b"d");
        put_u64(&mut p, 1);
        put_u32(&mut p, u32::MAX);
        assert!(WireRequest::decode(&p).is_err());
        // A HITS response claiming more 16-byte hits than remain.
        let mut p = vec![tag::OK, ok::HITS];
        put_u64(&mut p, 1);
        put_u32(&mut p, 1000);
        assert!(WireResponse::decode(&p).is_err());
        // A CONTAINER_HITS corrupt-block count larger than remaining / 8.
        let mut p = vec![tag::OK, ok::CONTAINER_HITS];
        put_u64(&mut p, 1);
        put_u32(&mut p, 0);
        put_u32(&mut p, 50);
        put_u64(&mut p, 0);
        assert!(WireResponse::decode(&p).is_err());
    }

    #[test]
    fn malformed_payloads_error_cleanly() {
        assert!(WireRequest::decode(&[]).is_err());
        assert!(WireRequest::decode(&[99]).is_err());
        assert!(WireRequest::decode(&[tag::MATCH, 0, 0]).is_err());
        // Trailing garbage is rejected.
        let mut p = WireRequest::Ping.encode();
        p.push(0);
        assert!(WireRequest::decode(&p).is_err());
        assert!(WireResponse::decode(&[tag::OK, 42]).is_err());
    }

    #[test]
    fn hello_and_traced_round_trip() {
        let hello = WireRequest::Hello {
            extensions: EXT_TRACE,
        };
        assert_eq!(WireRequest::decode(&hello.encode()).unwrap(), hello);
        let reply = WireResponse::Hello {
            extensions: EXT_TRACE,
        };
        assert_eq!(WireResponse::decode(&reply.encode()).unwrap(), reply);
        let traced = WireRequest::Traced {
            trace: 0xDEAD_BEEF_0123_4567,
            parent: 0x0BAD_F00D,
            inner: Box::new(WireRequest::Op {
                tag: tag::GREPZ,
                dict: "corpus".into(),
                text: vec![0x50, 0x44, 0x5A, 0x53, 0x00],
                timeout_ms: 250,
            }),
        };
        assert_eq!(WireRequest::decode(&traced.encode()).unwrap(), traced);
    }

    #[test]
    fn traced_wrapper_rejects_nesting_and_truncation() {
        let nested = WireRequest::Traced {
            trace: 1,
            parent: 2,
            inner: Box::new(WireRequest::Traced {
                trace: 3,
                parent: 4,
                inner: Box::new(WireRequest::Ping),
            }),
        };
        assert!(WireRequest::decode(&nested.encode()).is_err());
        let wrapped_hello = WireRequest::Traced {
            trace: 1,
            parent: 2,
            inner: Box::new(WireRequest::Hello { extensions: 0 }),
        };
        assert!(WireRequest::decode(&wrapped_hello.encode()).is_err());
        // Truncated inner request: clean error, never a panic.
        let good = WireRequest::Traced {
            trace: 1,
            parent: 2,
            inner: Box::new(WireRequest::Ping),
        }
        .encode();
        for cut in 1..good.len() {
            assert!(WireRequest::decode(&good[..cut]).is_err());
        }
    }

    /// The extension must not move a single byte of the existing
    /// encoding: these are the exact frames a pre-trace peer emits,
    /// written out by hand from the protocol comment.
    #[test]
    fn legacy_frames_are_bit_identical() {
        let op = WireRequest::Op {
            tag: tag::MATCH,
            dict: "d".into(),
            text: b"ab".to_vec(),
            timeout_ms: 7,
        };
        assert_eq!(
            op.encode(),
            vec![2, 0, 0, 0, 1, b'd', 0, 0, 0, 2, b'a', b'b', 0, 0, 0, 7]
        );
        let publish = WireRequest::Publish {
            name: "d".into(),
            patterns: vec![b"x".to_vec()],
        };
        assert_eq!(
            publish.encode(),
            vec![1, 0, 0, 0, 1, b'd', 0, 0, 0, 1, 0, 0, 0, 1, b'x']
        );
        assert_eq!(WireRequest::Ping.encode(), vec![7]);
        assert_eq!(WireRequest::Metrics.encode(), vec![6]);
        assert_eq!(WireRequest::Stats.encode(), vec![9]);
        assert_eq!(WireRequest::Dicts.encode(), vec![10]);
        assert_eq!(WireResponse::Pong.encode(), vec![0x80, 6]);
        let err = WireResponse::Error {
            code: 3,
            message: "no".into(),
        };
        assert_eq!(err.encode(), vec![0x81, 3, 0, 0, 0, 2, b'n', b'o']);
        let hits = WireResponse::Hits {
            version: 1,
            hits: vec![Hit {
                pos: 5,
                id: 2,
                len: 3,
            }],
        };
        assert_eq!(
            hits.encode(),
            vec![
                0x80, 2, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 5, 0, 0, 0, 2, 0,
                0, 0, 3
            ]
        );
    }
}
