//! In-process mixed-workload selftest behind `pardict serve --selftest`.
//!
//! Drives the full serving stack — registry, batched engine, admission
//! control, metrics, and a TCP loopback round trip — with a seeded
//! workload from `pardict-workloads`, verifying a sample of every
//! operation family against independent oracles and exercising a
//! mid-run dictionary hot-swap. Returns the metrics report on success so
//! the CLI can print it.

use crate::engine::{Engine, EngineConfig};
use crate::metrics::Metrics;
use crate::registry::{DictVersion, Registry};
use crate::server::{Client, Server};
use crate::types::{OpRequest, Reply, Request, ServiceError};
use crate::wire;
use pardict_core::{AhoCorasick, Dictionary};
use pardict_pram::{Pram, SplitMix64};
use pardict_workloads::{random_dictionary, text_with_planted_matches, Alphabet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Selftest knobs.
#[derive(Debug, Clone)]
pub struct SelftestOptions {
    /// Total requests the client threads issue (≥ 1000 per the serving
    /// acceptance bar).
    pub requests: usize,
    /// Engine worker threads.
    pub workers: usize,
    /// Client driver threads.
    pub clients: usize,
    /// Workload seed.
    pub seed: u64,
}

impl Default for SelftestOptions {
    fn default() -> Self {
        Self {
            requests: 1200,
            workers: EngineConfig::default().workers,
            clients: 8,
            seed: 0xDEC0_DE42,
        }
    }
}

/// Run the selftest; returns a human-readable summary + metrics report.
///
/// # Errors
/// A description of the first failed verification or infrastructure step.
#[allow(clippy::too_many_lines)]
pub fn run(opts: &SelftestOptions) -> Result<String, String> {
    let metrics = Arc::new(Metrics::default());
    let registry = Arc::new(Registry::new(Arc::clone(&metrics)));
    let engine = Engine::new(
        EngineConfig {
            workers: opts.workers.max(1),
            queue_depth: 4096,
            max_batch: 32,
            seq_threshold: 512,
            // Well below the largest selftest texts so the streaming lane
            // gets exercised and verified too.
            stream_threshold: 1024,
        },
        Arc::clone(&registry),
        Arc::clone(&metrics),
    );

    // --- publish round: v1 of "corpus", plus an identical-content "aux"
    // dictionary that must come from the preprocessing cache.
    let alpha = Alphabet::dna();
    let pats_v1 = random_dictionary(opts.seed, 24, 3, 10, alpha);
    let pats_v2 = random_dictionary(opts.seed ^ 0x5A5A, 24, 3, 10, alpha);
    let out1 = registry
        .publish("corpus", pats_v1.clone())
        .map_err(|e| format!("publish corpus v1: {e}"))?;
    if out1.version != 1 || out1.cache_hit {
        return Err(format!("unexpected v1 outcome: {out1:?}"));
    }
    let out_aux = registry
        .publish("aux", pats_v1.clone())
        .map_err(|e| format!("publish aux: {e}"))?;
    if !out_aux.cache_hit {
        return Err("identical-content republish missed the cache".into());
    }

    // Independent oracles per version, for sampled verification.
    let v1 = registry.current("corpus").expect("corpus v1");
    let oracle_v1 = Arc::new(AhoCorasick::build(&Dictionary::new(
        v1.pre.patterns().to_vec(),
    )));

    // Pre-swap sanity: a synchronous match must report version 1.
    let pre = engine.call(Request::new(OpRequest::Match {
        dict: "corpus".into(),
        text: text_with_planted_matches(opts.seed ^ 1, &pats_v1, 2000, 20, alpha),
    }));
    match &pre.result {
        Ok(Reply::Match { version: 1, .. }) => {}
        other => return Err(format!("pre-swap match: expected v1 reply, got {other:?}")),
    }

    // --- mixed workload from client threads, hot-swap at the halfway mark.
    let issued = Arc::new(AtomicUsize::new(0));
    let swapped = Arc::new(AtomicUsize::new(0));
    let halfway = opts.requests / 2;
    let failures: Arc<std::sync::Mutex<Vec<String>>> = Arc::new(std::sync::Mutex::new(Vec::new()));

    std::thread::scope(|s| {
        for c in 0..opts.clients.max(1) {
            let engine = engine.clone();
            let registry = Arc::clone(&registry);
            let issued = Arc::clone(&issued);
            let swapped = Arc::clone(&swapped);
            let failures = Arc::clone(&failures);
            let oracle_v1 = Arc::clone(&oracle_v1);
            let v1 = Arc::clone(&v1);
            let pats_v1 = pats_v1.clone();
            let pats_v2 = pats_v2.clone();
            s.spawn(move || {
                let mut rng = SplitMix64::new(opts.seed ^ (c as u64 + 1).wrapping_mul(0x9E37));
                let mut fail = |msg: String| {
                    failures.lock().expect("failures poisoned").push(msg);
                };
                loop {
                    let i = issued.fetch_add(1, Ordering::Relaxed);
                    if i >= opts.requests {
                        break;
                    }
                    // Exactly one thread performs the hot swap, mid-run.
                    if i >= halfway && swapped.swap(1, Ordering::SeqCst) == 0 {
                        if let Err(e) = registry.publish("corpus", pats_v2.clone()) {
                            fail(format!("hot-swap publish failed: {e}"));
                        }
                    }
                    let n = if rng.next_u64().is_multiple_of(4) {
                        64
                    } else {
                        1500
                    };
                    let text = text_with_planted_matches(
                        opts.seed ^ ((i as u64) << 8),
                        &pats_v1,
                        n,
                        15,
                        Alphabet::dna(),
                    );
                    let roll = rng.next_u64() % 100;
                    let op = if roll < 45 {
                        OpRequest::Match {
                            dict: "corpus".into(),
                            text: text.clone(),
                        }
                    } else if roll < 62 {
                        OpRequest::Grep {
                            dict: "corpus".into(),
                            text: text.clone(),
                        }
                    } else if roll < 75 {
                        OpRequest::Compress { text: text.clone() }
                    } else if roll < 88 {
                        OpRequest::Parse {
                            dict: "corpus".into(),
                            text: text.clone(),
                        }
                    } else {
                        // Grep lane: search the compressed form of the same
                        // text, multi-block so boundary stitching is live
                        // while the hot swap happens underneath.
                        let cfg = pardict_stream::StreamConfig::with_block_size(256);
                        let (container, _) = pardict_stream::compress_stream(
                            &Pram::seq(),
                            &mut &text[..],
                            Vec::new(),
                            &cfg,
                        )
                        .expect("selftest compress for grep lane");
                        OpRequest::GrepContainer {
                            dict: "corpus".into(),
                            container,
                        }
                    };
                    let resp = engine.call(Request::new(op));
                    match resp.result {
                        Err(ServiceError::Unparseable) => {} // legitimate for parse
                        Err(e) => fail(format!("request {i} failed: {e}")),
                        Ok(reply) => {
                            if let Some(v) = reply.version() {
                                if v != 1 && v != 2 {
                                    fail(format!("request {i}: impossible version {v}"));
                                }
                            }
                            // Sampled deep verification (~1 in 8); container
                            // grep is always verified — it is the new lane.
                            if i.is_multiple_of(8) || matches!(reply, Reply::GrepContainer { .. }) {
                                verify_reply(&reply, &text, &oracle_v1, &v1, i, &mut fail);
                            }
                        }
                    }
                }
            });
        }
    });

    let failures = Arc::try_unwrap(failures)
        .map_err(|_| "failure log still shared".to_string())?
        .into_inner()
        .map_err(|_| "failure log poisoned".to_string())?;
    if let Some(first) = failures.first() {
        return Err(format!(
            "{} verification failures; first: {first}",
            failures.len()
        ));
    }

    // Post-swap: a fresh match must now see version 2.
    let post = engine.call(Request::new(OpRequest::Match {
        dict: "corpus".into(),
        text: text_with_planted_matches(opts.seed ^ 2, &pats_v2, 2000, 20, alpha),
    }));
    match &post.result {
        Ok(Reply::Match { version: 2, .. }) => {}
        other => return Err(format!("post-swap match: expected v2 reply, got {other:?}")),
    }

    // Admission control: already-expired deadlines must be rejected.
    for _ in 0..3 {
        let resp = engine.call(Request {
            op: OpRequest::Compress {
                text: b"deadline probe".to_vec(),
            },
            deadline: Some(std::time::Instant::now() - Duration::from_millis(1)),
            trace: None,
        });
        if !matches!(resp.result, Err(ServiceError::DeadlineExceeded)) {
            return Err(format!("expired deadline not rejected: {:?}", resp.result));
        }
    }

    // TCP loopback: one full wire round trip against the same engine.
    let mut server =
        Server::start(engine.clone(), "127.0.0.1:0").map_err(|e| format!("server start: {e}"))?;
    {
        let mut client =
            Client::connect(server.addr()).map_err(|e| format!("client connect: {e}"))?;
        client.ping().map_err(|e| format!("ping: {e}"))?;
        let resp = client
            .op(wire::tag::MATCH, "corpus", b"ACGTACGTACGT", 1000)
            .map_err(|e| format!("wire match: {e}"))?
            .map_err(|e| format!("wire match rejected: {e}"))?;
        if !matches!(resp, wire::WireResponse::Hits { version: 2, .. }) {
            return Err(format!("wire match: expected v2 hits, got {resp:?}"));
        }
        let report = client.metrics().map_err(|e| format!("wire metrics: {e}"))?;
        if !report.contains("pardict-service metrics") {
            return Err("wire metrics report missing header".into());
        }
    }
    server.stop();
    engine.shutdown();

    // --- closing assertions on the counters the run must have moved.
    if metrics.batches.get() == 0 {
        return Err("no batches executed".into());
    }
    if metrics.cache_hits.get() == 0 {
        return Err("no preprocessing cache hits".into());
    }
    if metrics.deadline_expired.get() < 3 {
        return Err("deadline rejections not recorded".into());
    }
    if metrics.grep_lane.get() == 0 {
        return Err("grep lane never exercised".into());
    }
    if metrics.completed.get() < opts.requests as u64 {
        return Err(format!(
            "completed {} < issued {}",
            metrics.completed.get(),
            opts.requests
        ));
    }

    let mut out = String::new();
    out.push_str(&format!(
        "selftest ok: {} requests across {} client threads, {} workers\n",
        opts.requests,
        opts.clients.max(1),
        opts.workers.max(1),
    ));
    out.push_str(
        "hot-swap corpus v1 -> v2 mid-run; every versioned reply was v1 or v2 (never mixed)\n",
    );
    out.push_str("sampled oracle verification: match vs Aho-Corasick, compress roundtrip, parse optimality\n");
    out.push_str(&format!(
        "grep lane: {} compressed-container searches, each checked against whole-text matching\n",
        metrics.grep_lane.get(),
    ));
    out.push_str("TCP loopback: publish/match/metrics round trip ok\n\n");
    out.push_str(&metrics.report());
    Ok(out)
}

/// Verify one sampled reply against an independent oracle.
fn verify_reply(
    reply: &Reply,
    text: &[u8],
    oracle_v1: &AhoCorasick,
    v1: &DictVersion,
    i: usize,
    fail: &mut impl FnMut(String),
) {
    let pram = Pram::seq();
    match reply {
        Reply::Match { version, hits } => {
            // Only version-1 replies can be checked against the v1 oracle;
            // v2 replies were already range-checked above.
            if *version == 1 {
                let expect: Vec<(u64, u32, u32)> = oracle_v1
                    .match_text(text)
                    .iter_hits()
                    .map(|(p, m)| (p as u64, m.id, m.len))
                    .collect();
                let got: Vec<(u64, u32, u32)> = hits.iter().map(|h| (h.pos, h.id, h.len)).collect();
                if got != expect {
                    fail(format!(
                        "request {i}: v1 match disagrees with Aho-Corasick oracle \
                         ({} vs {} hits)",
                        got.len(),
                        expect.len()
                    ));
                }
            }
        }
        Reply::Grep { hits, .. } => {
            // Structural check: every hit must fit inside the text.
            for h in hits {
                if h.pos + u64::from(h.len) > text.len() as u64 {
                    fail(format!("request {i}: grep hit out of bounds"));
                }
            }
        }
        Reply::Compress { payload, .. } => {
            // Large texts come back as a framed stream container, small
            // ones as a bare token stream — the magic tells them apart.
            if pardict_stream::is_container(payload) {
                match pardict_stream::decompress_stream(&pram, &mut &payload[..], Vec::new()) {
                    Err(e) => fail(format!("request {i}: undecodable container: {e}")),
                    Ok((back, summary)) => {
                        if !summary.issues.is_empty() {
                            fail(format!(
                                "request {i}: container reported corrupt blocks: {:?}",
                                summary.issues
                            ));
                        }
                        if back != text {
                            fail(format!("request {i}: streamed roundtrip mismatch"));
                        }
                    }
                }
            } else {
                match pardict_compress::decode_tokens(payload) {
                    Err(e) => fail(format!("request {i}: undecodable tokens: {e:?}")),
                    Ok(tokens) => {
                        let back = pardict_compress::lz1_decompress(
                            &pram,
                            &tokens,
                            crate::engine::LZ1_SEED,
                        );
                        if back != text {
                            fail(format!("request {i}: compress roundtrip mismatch"));
                        }
                    }
                }
            }
        }
        Reply::Parse {
            phrases,
            greedy_phrases,
            ..
        } => {
            if *phrases == 0 && !text.is_empty() {
                fail(format!(
                    "request {i}: empty optimal parse for nonempty text"
                ));
            }
            if let Some(g) = greedy_phrases {
                if g < phrases {
                    fail(format!(
                        "request {i}: greedy ({g}) beat optimal ({phrases})"
                    ));
                }
            }
        }
        Reply::GrepContainer {
            version,
            hits,
            corrupt_blocks,
        } => {
            // The container was built moments ago from pristine bytes.
            if !corrupt_blocks.is_empty() {
                fail(format!(
                    "request {i}: pristine container reported corrupt blocks {corrupt_blocks:?}"
                ));
            }
            for h in hits {
                if h.pos + u64::from(h.len) > text.len() as u64 {
                    fail(format!("request {i}: container-grep hit out of bounds"));
                }
            }
            // Oracle for v1 replies: decompress is the identity here (we
            // still hold the raw text), so compressed-domain search must
            // equal whole-text dictionary matching.
            if *version == 1 {
                let mut expect: Vec<(u64, u32, u32)> = v1
                    .pre
                    .seg
                    .find_all(&pram, text)
                    .into_iter()
                    .map(|(p, m)| (p as u64, m.id, m.len))
                    .collect();
                let mut got: Vec<(u64, u32, u32)> =
                    hits.iter().map(|h| (h.pos, h.id, h.len)).collect();
                expect.sort_unstable();
                got.sort_unstable();
                if got != expect {
                    fail(format!(
                        "request {i}: v1 container grep disagrees with whole-text \
                         dictionary matching ({} vs {} hits)",
                        got.len(),
                        expect.len()
                    ));
                }
            }
        }
    }
}

/// Knobs for the deterministic traced selftest phase
/// (`pardict serve --selftest --trace-out FILE`).
#[derive(Debug, Clone)]
pub struct TraceRunOptions {
    /// Requests to issue (sequentially).
    pub requests: usize,
    /// Workload *and* tracer seed: same seed, byte-identical export.
    pub seed: u64,
    /// Head-sampling rate (0/1 = trace everything).
    pub sample_one_in: u32,
}

impl Default for TraceRunOptions {
    fn default() -> Self {
        Self {
            requests: 64,
            seed: 0xDEC0_DE42,
            sample_one_in: 1,
        }
    }
}

/// Deterministic traced run: a zero-worker engine (inline execution), a
/// logical-tick tracer clock, and a seeded *sequential* workload issued
/// over a TCP loopback with trace-context propagation — so the export
/// exercises the full `HELLO`/`TRACED` wire path and is still
/// byte-identical across runs of one seed.
///
/// Returns `(summary, jsonl export)`.
///
/// # Errors
/// The first failed request or infrastructure step.
#[allow(clippy::too_many_lines)]
pub fn trace_run(opts: &TraceRunOptions) -> Result<(String, String), String> {
    use pardict_trace::{export, Tracer};

    let tracer = Tracer::new(pardict_trace::TraceConfig {
        sample_one_in: opts.sample_one_in,
        seed: opts.seed,
        capacity: 1 << 16,
        deterministic: true,
    });
    let metrics = Arc::new(Metrics::default());
    let registry = Arc::new(Registry::new(Arc::clone(&metrics)));
    let engine = Engine::new_traced(
        EngineConfig {
            workers: 0, // inline: one thread, one deterministic tick order
            queue_depth: 4096,
            max_batch: 8,
            seq_threshold: 512,
            stream_threshold: 1024,
        },
        Arc::clone(&registry),
        Arc::clone(&metrics),
        Some(Arc::clone(&tracer)),
    );

    let alpha = Alphabet::dna();
    let pats = random_dictionary(opts.seed, 24, 3, 10, alpha);
    registry
        .publish("corpus", pats.clone())
        .map_err(|e| format!("trace publish: {e}"))?;

    let server = Server::start(engine.clone(), "127.0.0.1:0")
        .map_err(|e| format!("trace server start: {e}"))?;
    let mut client =
        Client::connect(server.addr()).map_err(|e| format!("trace client connect: {e}"))?;
    let negotiated = client.hello().map_err(|e| format!("trace hello: {e}"))?;
    if negotiated & wire::EXT_TRACE == 0 {
        return Err("tracing engine did not advertise EXT_TRACE".into());
    }

    let mut rng = SplitMix64::new(opts.seed ^ 0x7EAC_E5EE_D000_0001);
    let mut sampled = 0usize;
    for i in 0..opts.requests {
        let n = if rng.next_u64().is_multiple_of(4) {
            64
        } else {
            1500
        };
        let text =
            text_with_planted_matches(opts.seed ^ ((i as u64) << 8), &pats, n, 15, Alphabet::dna());
        let roll = rng.next_u64() % 100;
        let (tag, payload): (u8, Vec<u8>) = if roll < 40 {
            (wire::tag::MATCH, text)
        } else if roll < 60 {
            (wire::tag::GREP, text)
        } else if roll < 75 {
            (wire::tag::COMPRESS, text)
        } else if roll < 85 {
            (wire::tag::PARSE, text)
        } else {
            let cfg = pardict_stream::StreamConfig::with_block_size(256);
            let (container, _) =
                pardict_stream::compress_stream(&Pram::seq(), &mut &text[..], Vec::new(), &cfg)
                    .map_err(|e| format!("trace request {i}: container build: {e}"))?;
            (wire::tag::GREPZ, container)
        };
        let ctx = tracer.begin_trace();
        sampled += usize::from(ctx.is_some());
        let resp = client
            .op_traced(tag, "corpus", &payload, 0, ctx)
            .map_err(|e| format!("trace request {i}: {e}"))?;
        match resp {
            Ok(_) => {}
            Err(ServiceError::Unparseable) => {}
            Err(e) => return Err(format!("trace request {i} rejected: {e}")),
        }
    }

    drop(client);
    drop(server);
    engine.shutdown();

    let spans = tracer.drain();
    let jsonl = export::export_jsonl(&spans);
    let parsed = export::parse_jsonl(&jsonl).map_err(|e| format!("trace export reparse: {e}"))?;
    pardict_trace::view::check_costs(&parsed).map_err(|e| format!("trace cost invariant: {e}"))?;
    pardict_trace::view::check_nesting(&parsed)
        .map_err(|e| format!("trace nesting invariant: {e}"))?;

    let total_work: u64 = parsed
        .iter()
        .filter(|s| s.parent == 0)
        .map(|s| s.work)
        .sum();
    let summary = format!(
        "trace selftest ok: {} requests, {} sampled (1-in-{}), {} spans, {} dropped, \
         root work {}, seed {:#x}\n",
        opts.requests,
        sampled,
        opts.sample_one_in.max(1),
        spans.len(),
        tracer.dropped(),
        total_work,
        opts.seed,
    );
    Ok((summary, jsonl))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_selftest_passes() {
        let opts = SelftestOptions {
            requests: 60,
            workers: 2,
            clients: 3,
            seed: 7,
        };
        let report = run(&opts).expect("selftest should pass");
        assert!(report.contains("selftest ok"));
        assert!(report.contains("pardict-service metrics"));
    }

    #[test]
    fn trace_run_is_byte_identical_per_seed() {
        let opts = TraceRunOptions {
            requests: 24,
            seed: 11,
            sample_one_in: 1,
        };
        let (summary_a, jsonl_a) = trace_run(&opts).expect("trace run a");
        let (summary_b, jsonl_b) = trace_run(&opts).expect("trace run b");
        assert_eq!(summary_a, summary_b);
        assert_eq!(jsonl_a, jsonl_b, "same seed must export identical traces");
        assert!(!jsonl_a.is_empty());
        // A different seed changes the export (ids derive from it).
        let (_, jsonl_c) = trace_run(&TraceRunOptions {
            seed: 12,
            ..opts.clone()
        })
        .expect("trace run c");
        assert_ne!(jsonl_a, jsonl_c);
    }

    #[test]
    fn trace_run_sampling_thins_spans() {
        let full = trace_run(&TraceRunOptions {
            requests: 32,
            seed: 5,
            sample_one_in: 1,
        })
        .expect("full");
        let sampled = trace_run(&TraceRunOptions {
            requests: 32,
            seed: 5,
            sample_one_in: 8,
        })
        .expect("sampled");
        let count = |jsonl: &str| jsonl.lines().count();
        assert!(
            count(&sampled.1) < count(&full.1),
            "1-in-8 sampling must emit fewer spans ({} vs {})",
            count(&sampled.1),
            count(&full.1)
        );
    }
}
