//! Batched execution engine with admission control.
//!
//! Requests enter a bounded queue; worker threads drain up to
//! [`EngineConfig::max_batch`] pending requests at a time and run the whole
//! batch against one thread-local [`Pram::par()`]. Batching is what makes
//! the §3 amortization visible operationally: preprocessing was paid at
//! publish time, so a batch of `k` texts costs `O(Σ nᵢ)` work with each
//! request's exact share attributed through [`Pram::metered`] and returned
//! in its [`ResponseMeta`].
//!
//! Admission control is explicit: a full queue rejects with
//! [`ServiceError::Overloaded`] instead of buffering unboundedly, and a
//! request whose deadline passed while queued is answered
//! [`ServiceError::DeadlineExceeded`] without being executed. Small match
//! requests skip the parallel machinery entirely and run on the
//! preprocessed Aho–Corasick automaton (the sequential fallback lane) —
//! for a text shorter than [`EngineConfig::seq_threshold`] the simulator's
//! parallel constant factors exceed the work saved.

use crate::metrics::Metrics;
use crate::registry::{DictVersion, Registry};
use crate::types::{
    check_text, Hit, Lane, OpRequest, Reply, Request, Response, ResponseMeta, ServiceError,
};
use pardict_compress::{encode_tokens, greedy_parse, lz1_compress, optimal_parse};
use pardict_pram::Pram;
use pardict_trace::Tracer;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Seed for the LZ1 fingerprint family; fixed so compression output is
/// reproducible across runs and replicas (decompression must supply it).
pub const LZ1_SEED: u64 = 0x5EED_1235_9ABC_DEF1;

/// Engine sizing and policy knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads. `0` means no background workers: requests are
    /// executed inline by `wait()`-ing callers (useful for deterministic
    /// tests).
    pub workers: usize,
    /// Bounded queue depth; submissions beyond it are rejected.
    pub queue_depth: usize,
    /// Max requests a worker drains into one batch.
    pub max_batch: usize,
    /// Match texts shorter than this run on the sequential fallback lane.
    pub seq_threshold: usize,
    /// Compress texts larger than this route through the chunked streaming
    /// pipeline (and this value becomes the pipeline's block size), so one
    /// huge payload neither monopolizes a batch nor holds a whole-buffer
    /// parse in memory. The reply payload is then a framed container
    /// rather than a bare token stream — distinguishable by its magic.
    pub stream_threshold: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism()
                .map_or(2, std::num::NonZeroUsize::get)
                .min(8),
            queue_depth: 1024,
            max_batch: 32,
            seq_threshold: 512,
            stream_threshold: pardict_stream::DEFAULT_BLOCK_SIZE,
        }
    }
}

/// One queued request plus its completion slot.
struct Job {
    req: Request,
    enqueued: Instant,
    /// Tracer-clock reading at admission (0 when the request is untraced);
    /// becomes the start of the "request" span so queueing time is visible.
    trace_start: u64,
    ticket: Arc<TicketState>,
}

#[derive(Default)]
struct TicketState {
    slot: Mutex<Option<Response>>,
    cv: Condvar,
}

impl TicketState {
    fn fulfill(&self, resp: Response) {
        *self.slot.lock().expect("ticket poisoned") = Some(resp);
        self.cv.notify_all();
    }
}

/// Handle to one in-flight request.
pub struct Ticket {
    state: Arc<TicketState>,
    engine: Engine,
}

impl Ticket {
    /// Block until the response is ready. With a zero-worker engine this
    /// drains the queue inline on the calling thread.
    #[must_use]
    pub fn wait(self) -> Response {
        loop {
            {
                let mut slot = self.state.slot.lock().expect("ticket poisoned");
                if self.engine.inner.cfg.workers > 0 {
                    while slot.is_none() {
                        slot = self.state.cv.wait(slot).expect("ticket poisoned");
                    }
                }
                if let Some(resp) = slot.take() {
                    return resp;
                }
            }
            // Inline mode: run one batch ourselves and re-check.
            self.engine.run_one_batch_inline();
        }
    }
}

struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct Inner {
    cfg: EngineConfig,
    registry: Arc<Registry>,
    metrics: Arc<Metrics>,
    tracer: Option<Arc<Tracer>>,
    q: Mutex<QueueState>,
    cv: Condvar,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

/// The batched execution engine. Cheap to clone; clones share state.
#[derive(Clone)]
pub struct Engine {
    inner: Arc<Inner>,
}

impl Engine {
    /// Build an engine over `registry`/`metrics` and start its workers.
    #[must_use]
    pub fn new(cfg: EngineConfig, registry: Arc<Registry>, metrics: Arc<Metrics>) -> Self {
        Self::new_traced(cfg, registry, metrics, None)
    }

    /// [`Engine::new`] plus an optional tracer: requests carrying a
    /// [`pardict_trace::TraceCtx`] then emit request → exec → wave spans
    /// with their exact ledger [`pardict_pram::Cost`] attached.
    #[must_use]
    pub fn new_traced(
        cfg: EngineConfig,
        registry: Arc<Registry>,
        metrics: Arc<Metrics>,
        tracer: Option<Arc<Tracer>>,
    ) -> Self {
        let engine = Self {
            inner: Arc::new(Inner {
                cfg: cfg.clone(),
                registry,
                metrics,
                tracer,
                q: Mutex::new(QueueState {
                    jobs: VecDeque::new(),
                    shutdown: false,
                }),
                cv: Condvar::new(),
                workers: Mutex::new(Vec::new()),
            }),
        };
        let mut handles = Vec::with_capacity(cfg.workers);
        for i in 0..cfg.workers {
            let e = engine.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("pardict-worker-{i}"))
                    .spawn(move || e.worker_loop())
                    .expect("spawn worker"),
            );
        }
        *engine.inner.workers.lock().expect("workers poisoned") = handles;
        engine
    }

    /// Engine with default config over fresh registry/metrics.
    #[must_use]
    pub fn with_defaults() -> Self {
        let metrics = Arc::new(Metrics::default());
        let registry = Arc::new(Registry::new(Arc::clone(&metrics)));
        Self::new(EngineConfig::default(), registry, metrics)
    }

    /// The dictionary registry this engine executes against.
    #[must_use]
    pub fn registry(&self) -> &Arc<Registry> {
        &self.inner.registry
    }

    /// The shared metrics sink.
    #[must_use]
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.inner.metrics
    }

    /// The engine configuration.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        &self.inner.cfg
    }

    /// The tracer, when this engine was built with one.
    #[must_use]
    pub fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.inner.tracer.as_ref()
    }

    /// Enqueue a request.
    ///
    /// # Errors
    /// [`ServiceError::Overloaded`] when the queue is full,
    /// [`ServiceError::ShuttingDown`] after [`Engine::shutdown`].
    pub fn submit(&self, req: Request) -> Result<Ticket, ServiceError> {
        let inner = &self.inner;
        let mut q = inner.q.lock().expect("queue poisoned");
        if q.shutdown {
            return Err(ServiceError::ShuttingDown);
        }
        if q.jobs.len() >= inner.cfg.queue_depth {
            inner.metrics.rejected_overloaded.inc();
            return Err(ServiceError::Overloaded);
        }
        let state = Arc::new(TicketState::default());
        let trace_start = match (&inner.tracer, req.trace) {
            (Some(t), Some(_)) => t.now(),
            _ => 0,
        };
        q.jobs.push_back(Job {
            req,
            enqueued: Instant::now(),
            trace_start,
            ticket: Arc::clone(&state),
        });
        inner.metrics.submitted.inc();
        drop(q);
        inner.cv.notify_one();
        Ok(Ticket {
            state,
            engine: self.clone(),
        })
    }

    /// Submit and wait: the synchronous convenience path.
    #[must_use]
    pub fn call(&self, req: Request) -> Response {
        match self.submit(req) {
            Ok(ticket) => ticket.wait(),
            Err(e) => Response::rejected(e),
        }
    }

    /// Stop accepting work, answer everything still queued with
    /// [`ServiceError::ShuttingDown`], and join the workers.
    pub fn shutdown(&self) {
        let drained: Vec<Job> = {
            let mut q = self.inner.q.lock().expect("queue poisoned");
            q.shutdown = true;
            q.jobs.drain(..).collect()
        };
        self.inner.cv.notify_all();
        for job in drained {
            job.ticket
                .fulfill(Response::rejected(ServiceError::ShuttingDown));
        }
        let handles = std::mem::take(&mut *self.inner.workers.lock().expect("workers poisoned"));
        for h in handles {
            let _ = h.join();
        }
    }

    fn worker_loop(&self) {
        loop {
            let batch = {
                let mut q = self.inner.q.lock().expect("queue poisoned");
                loop {
                    if q.shutdown {
                        return;
                    }
                    if !q.jobs.is_empty() {
                        break;
                    }
                    q = self.inner.cv.wait(q).expect("queue poisoned");
                }
                let take = q.jobs.len().min(self.inner.cfg.max_batch);
                q.jobs.drain(..take).collect::<Vec<_>>()
            };
            self.run_batch(batch);
        }
    }

    /// Inline execution used by zero-worker engines: drain one batch on the
    /// calling thread (no-op if the queue is empty).
    fn run_one_batch_inline(&self) {
        let batch = {
            let mut q = self.inner.q.lock().expect("queue poisoned");
            let take = q.jobs.len().min(self.inner.cfg.max_batch);
            q.jobs.drain(..take).collect::<Vec<_>>()
        };
        if !batch.is_empty() {
            self.run_batch(batch);
        }
    }

    /// Execute one drained batch on a fresh `Pram::par()`. One Pram per
    /// batch (not per engine) because the ledger is `Cell`-based and the
    /// context is deliberately `!Sync`.
    fn run_batch(&self, batch: Vec<Job>) {
        let metrics = &self.inner.metrics;
        let batch_size = batch.len() as u32;
        metrics.batches.inc();
        metrics.batched_requests.add(u64::from(batch_size));
        let pram = Pram::par();

        for job in batch {
            let queued = job.enqueued.elapsed();
            let kind = job.req.op.kind();
            let exec_start = Instant::now();

            let outcome = if job.req.deadline.is_some_and(|d| Instant::now() > d) {
                metrics.deadline_expired.inc();
                Err(ServiceError::DeadlineExceeded)
            } else {
                Ok(())
            };

            // A traced request gets a "request" span (opened at admission
            // time, so queueing is visible) with an "exec" child covering
            // the metered execution; the ambient scope lets wave loops in
            // stream/search hang per-wave spans under "exec" without any
            // signature changes down there.
            let tctx = match (&self.inner.tracer, job.req.trace) {
                (Some(t), Some(ctx)) => Some((Arc::clone(t), ctx)),
                _ => None,
            };
            let mut req_span = tctx
                .as_ref()
                .map(|(t, ctx)| t.start_at(*ctx, "request", 0, job.trace_start));

            let (result, cost, lane) = match outcome {
                Err(e) => (Err(e), pardict_pram::Cost::default(), Lane::Batched),
                Ok(()) => {
                    let mut lane = Lane::Batched;
                    // The ambient deadline makes multi-wave operations
                    // (stream compress, container grep) re-check at every
                    // super-step boundary, not only at dequeue.
                    let (result, cost) = if let (Some((t, _)), Some(rs)) = (&tctx, &req_span) {
                        let mut exec_span = t.start(rs.ctx(), "exec", 0);
                        let (r, c) = pardict_trace::with_scope(t, exec_span.ctx(), || {
                            pardict_exec::with_deadline(job.req.deadline, || {
                                pram.metered(|p| self.execute(p, &job.req.op, &mut lane))
                            })
                        });
                        exec_span.set_lane(lane.name());
                        exec_span.finish(c);
                        (r, c)
                    } else {
                        pardict_exec::with_deadline(job.req.deadline, || {
                            pram.metered(|p| self.execute(p, &job.req.op, &mut lane))
                        })
                    };
                    // A deadline that expired *during* execution makes any
                    // result stale — whether a wave boundary cancelled the
                    // op or it ran to completion, the client gave up and is
                    // answered DeadlineExceeded.
                    let result = if job.req.deadline.is_some_and(|d| Instant::now() > d) {
                        metrics.deadline_expired.inc();
                        Err(ServiceError::DeadlineExceeded)
                    } else {
                        result
                    };
                    (result, cost, lane)
                }
            };

            if let Some(mut rs) = req_span.take() {
                rs.set_lane(lane.name());
                rs.finish(cost);
            }

            let exec = exec_start.elapsed();
            match lane {
                Lane::SeqFallback => metrics.seq_fallback.inc(),
                Lane::Stream => metrics.stream_lane.inc(),
                Lane::Grep => metrics.grep_lane.inc(),
                Lane::Batched => {}
            }
            let stats = metrics.op(kind);
            match &result {
                Ok(_) => stats.count.inc(),
                Err(_) => stats.errors.inc(),
            }
            stats.latency_us.record((queued + exec).as_micros() as u64);
            stats.work.record(cost.work);
            stats.depth.record(cost.depth);
            metrics.completed.inc();

            job.ticket.fulfill(Response {
                result,
                meta: ResponseMeta {
                    cost,
                    batch_size,
                    queued,
                    exec,
                    lane,
                },
            });
        }
    }

    /// Run one operation under the batch's Pram, recording which lane
    /// served it.
    fn execute(&self, pram: &Pram, op: &OpRequest, lane: &mut Lane) -> Result<Reply, ServiceError> {
        // Container payloads are binary (length fields, CRCs) — the NUL
        // sentinel check only applies to raw-text operations.
        if !matches!(op, OpRequest::GrepContainer { .. }) {
            check_text(op.text())?;
        }
        match op {
            OpRequest::Match { dict, text } => {
                let dv = self.resolve(dict)?;
                if text.len() < self.inner.cfg.seq_threshold {
                    *lane = Lane::SeqFallback;
                    // Charge the automaton scan to the ledger by hand: the
                    // AC baseline runs outside the Pram combinators.
                    pram.ledger().charge_work(text.len() as u64);
                    pram.ledger().charge_depth(text.len() as u64);
                    let matches = dv.pre.seg.ac_match(text);
                    return Ok(Reply::Match {
                        version: dv.version,
                        hits: to_hits(matches.iter_hits()),
                    });
                }
                // Las Vegas without rebuilding: each segment's Monte
                // Carlo pass is vetted by the exact §3.4 checker; on the
                // (astronomically rare) fingerprint collision, that
                // segment recomputes exactly with its preprocessed
                // automaton instead of rebuilding the matcher.
                let (matches, _fell_back) = dv.pre.seg.match_text_verified(pram, text);
                Ok(Reply::Match {
                    version: dv.version,
                    hits: to_hits(matches.iter_hits()),
                })
            }
            OpRequest::Grep { dict, text } => {
                let dv = self.resolve(dict)?;
                let occs = dv.pre.seg.find_all(pram, text);
                Ok(Reply::Grep {
                    version: dv.version,
                    hits: to_hits(occs.into_iter()),
                })
            }
            OpRequest::Compress { text } => {
                let (payload, phrases) = if text.len() > self.inner.cfg.stream_threshold {
                    // Large payload: chunked block-parallel pipeline. The
                    // reply carries the framed container (starts with the
                    // stream magic), so clients and the selftest can tell
                    // the two encodings apart without a wire change.
                    *lane = Lane::Stream;
                    let cfg = pardict_stream::StreamConfig::with_block_size(
                        self.inner.cfg.stream_threshold.max(1),
                    );
                    let (container, summary) =
                        pardict_stream::compress_stream(pram, &mut &text[..], Vec::new(), &cfg)
                            .map_err(|e| ServiceError::BadRequest(e.to_string()))?;
                    (container, summary.phrases.min(u64::from(u32::MAX)) as u32)
                } else {
                    let tokens = lz1_compress(pram, text, LZ1_SEED);
                    (encode_tokens(&tokens), tokens.len() as u32)
                };
                self.inner
                    .metrics
                    .compress_ratio_pct
                    .record((payload.len() as u64 * 100) / (text.len().max(1) as u64));
                Ok(Reply::Compress { phrases, payload })
            }
            OpRequest::Parse { dict, text } => {
                let dv = self.resolve(dict)?;
                let parse =
                    optimal_parse(pram, &dv.pre.seg, text).ok_or(ServiceError::Unparseable)?;
                let greedy = greedy_parse(pram, &dv.pre.seg, text);
                Ok(Reply::Parse {
                    version: dv.version,
                    phrases: parse.num_phrases() as u32,
                    greedy_phrases: greedy.map(|g| g.num_phrases() as u32),
                })
            }
            OpRequest::GrepContainer { dict, container } => {
                let dv = self.resolve(dict)?;
                *lane = Lane::Grep;
                let mut rdr =
                    pardict_stream::StreamReader::open(std::io::Cursor::new(&container[..]))
                        .map_err(|e| ServiceError::BadRequest(e.to_string()))?;
                let summary = pardict_search::grep_container(
                    pram,
                    &dv.pre.seg,
                    &mut rdr,
                    &pardict_search::GrepConfig::default(),
                )
                .map_err(|e| ServiceError::BadRequest(e.to_string()))?;
                Ok(Reply::GrepContainer {
                    version: dv.version,
                    hits: summary
                        .hits
                        .into_iter()
                        .map(|h| Hit {
                            pos: h.pos,
                            id: h.id,
                            len: h.len,
                        })
                        .collect(),
                    corrupt_blocks: summary.issues.iter().map(|i| i.index).collect(),
                })
            }
        }
    }

    fn resolve(&self, name: &str) -> Result<Arc<DictVersion>, ServiceError> {
        self.inner
            .registry
            .current(name)
            .ok_or_else(|| ServiceError::NoSuchDictionary(name.to_string()))
    }
}

fn to_hits(iter: impl Iterator<Item = (usize, pardict_core::Match)>) -> Vec<Hit> {
    iter.map(|(pos, m)| Hit {
        pos: pos as u64,
        id: m.id,
        len: m.len,
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine_with(workers: usize, queue_depth: usize) -> Engine {
        let metrics = Arc::new(Metrics::default());
        let registry = Arc::new(Registry::new(Arc::clone(&metrics)));
        Engine::new(
            EngineConfig {
                workers,
                queue_depth,
                max_batch: 8,
                seq_threshold: 16,
                stream_threshold: 1 << 16,
            },
            registry,
            metrics,
        )
    }

    fn publish(e: &Engine, name: &str, pats: &[&str]) {
        e.registry()
            .publish(name, pats.iter().map(|s| s.as_bytes().to_vec()).collect())
            .unwrap();
    }

    #[test]
    fn inline_engine_matches() {
        let e = engine_with(0, 64);
        publish(&e, "d", &["ana", "ban"]);
        let resp = e.call(Request::new(OpRequest::Match {
            dict: "d".into(),
            text: b"banana".to_vec(),
        }));
        let reply = resp.result.unwrap();
        match reply {
            Reply::Match { version, hits } => {
                assert_eq!(version, 1);
                assert!(hits.iter().any(|h| h.pos == 0 && h.len == 3)); // "ban"
                assert!(hits.iter().any(|h| h.pos == 1 && h.len == 3)); // "ana"
            }
            other => panic!("unexpected reply {other:?}"),
        }
        assert_eq!(resp.meta.lane, Lane::SeqFallback); // 6 < 16
        assert!(resp.meta.cost.work > 0);
    }

    #[test]
    fn threaded_engine_matches_and_shuts_down() {
        let e = engine_with(2, 64);
        publish(&e, "d", &["abra"]);
        let text = b"abracadabra".repeat(8); // 88 bytes > threshold 16
        let resp = e.call(Request::new(OpRequest::Match {
            dict: "d".into(),
            text,
        }));
        match resp.result.unwrap() {
            Reply::Match { hits, .. } => assert_eq!(hits.len(), 16),
            other => panic!("unexpected reply {other:?}"),
        }
        assert_eq!(resp.meta.lane, Lane::Batched);
        e.shutdown();
        let after = e.submit(Request::new(OpRequest::Compress {
            text: b"x".to_vec(),
        }));
        assert!(matches!(after, Err(ServiceError::ShuttingDown)));
    }

    #[test]
    fn full_queue_rejects_overloaded() {
        let e = engine_with(0, 2);
        publish(&e, "d", &["a"]);
        let mk = || {
            Request::new(OpRequest::Compress {
                text: b"abcabc".to_vec(),
            })
        };
        let t1 = e.submit(mk()).unwrap();
        let _t2 = e.submit(mk()).unwrap();
        assert!(matches!(e.submit(mk()), Err(ServiceError::Overloaded)));
        assert_eq!(e.metrics().rejected_overloaded.get(), 1);
        // Draining makes room again.
        assert!(t1.wait().result.is_ok());
        assert!(e.submit(mk()).is_ok());
    }

    #[test]
    fn expired_deadline_is_rejected_not_executed() {
        let e = engine_with(0, 8);
        let req = Request {
            trace: None,
            op: OpRequest::Compress {
                text: b"abc".to_vec(),
            },
            deadline: Some(Instant::now() - std::time::Duration::from_millis(1)),
        };
        let resp = e.call(req);
        assert!(matches!(resp.result, Err(ServiceError::DeadlineExceeded)));
        assert_eq!(e.metrics().deadline_expired.get(), 1);
    }

    #[test]
    fn deadline_expiring_mid_execution_answers_deadline_exceeded() {
        let metrics = Arc::new(Metrics::default());
        let registry = Arc::new(Registry::new(Arc::clone(&metrics)));
        let e = Engine::new(
            EngineConfig {
                workers: 0,
                queue_depth: 8,
                max_batch: 8,
                seq_threshold: 16,
                stream_threshold: 256, // many small blocks → many waves
            },
            registry,
            metrics,
        );
        // The deadline survives the dequeue check but expires while the
        // multi-wave stream compress runs. Whether a wave-boundary check
        // cancels it mid-flight or it runs to completion, the client gave
        // up — the answer must be DeadlineExceeded, never a stale result.
        let text = b"a deadline is a deadline is a deadline all the way down ".repeat(1 << 14);
        let req = Request {
            trace: None,
            op: OpRequest::Compress { text },
            deadline: Some(Instant::now() + std::time::Duration::from_millis(2)),
        };
        let resp = e.call(req);
        assert!(matches!(resp.result, Err(ServiceError::DeadlineExceeded)));
        assert_eq!(e.metrics().deadline_expired.get(), 1);
    }

    #[test]
    fn unknown_dictionary_and_nul_text_error() {
        let e = engine_with(0, 8);
        let resp = e.call(Request::new(OpRequest::Grep {
            dict: "nope".into(),
            text: b"abc".to_vec(),
        }));
        assert!(matches!(
            resp.result,
            Err(ServiceError::NoSuchDictionary(_))
        ));
        publish(&e, "d", &["a"]);
        let resp = e.call(Request::new(OpRequest::Match {
            dict: "d".into(),
            text: vec![b'a', 0],
        }));
        assert!(matches!(resp.result, Err(ServiceError::BadRequest(_))));
    }

    #[test]
    fn compress_roundtrips_and_parse_counts() {
        let e = engine_with(0, 8);
        publish(&e, "d", &["ab", "ra", "cad", "abra"]);
        let text = b"abracadabra".to_vec();
        let resp = e.call(Request::new(OpRequest::Compress { text: text.clone() }));
        match resp.result.unwrap() {
            Reply::Compress { payload, phrases } => {
                assert!(phrases > 0);
                let tokens = pardict_compress::decode_tokens(&payload).unwrap();
                let pram = Pram::seq();
                assert_eq!(
                    pardict_compress::lz1_decompress(&pram, &tokens, LZ1_SEED),
                    text
                );
            }
            other => panic!("unexpected reply {other:?}"),
        }
        let resp = e.call(Request::new(OpRequest::Parse {
            dict: "d".into(),
            text,
        }));
        match resp.result.unwrap() {
            Reply::Parse {
                phrases,
                greedy_phrases,
                ..
            } => {
                // abra|cad|abra is optimal (3); greedy also terminates.
                assert_eq!(phrases, 3);
                assert!(greedy_phrases.unwrap() >= 3);
            }
            other => panic!("unexpected reply {other:?}"),
        }
        // Unparseable text surfaces the dedicated error.
        let resp = e.call(Request::new(OpRequest::Parse {
            dict: "d".into(),
            text: b"zzz".to_vec(),
        }));
        assert!(matches!(resp.result, Err(ServiceError::Unparseable)));
    }

    #[test]
    fn large_compress_routes_through_stream_lane() {
        let metrics = Arc::new(Metrics::default());
        let registry = Arc::new(Registry::new(Arc::clone(&metrics)));
        let e = Engine::new(
            EngineConfig {
                workers: 0,
                queue_depth: 8,
                max_batch: 8,
                seq_threshold: 16,
                stream_threshold: 256, // tiny, so a 2 KiB text streams
            },
            registry,
            metrics,
        );
        let small = b"tiny text".to_vec();
        let resp = e.call(Request::new(OpRequest::Compress { text: small }));
        assert_eq!(resp.meta.lane, Lane::Batched);

        let text = b"the rain in spain stays mainly in the plain ".repeat(50); // 2200 B
        let resp = e.call(Request::new(OpRequest::Compress { text: text.clone() }));
        assert_eq!(resp.meta.lane, Lane::Stream);
        assert_eq!(e.metrics().stream_lane.get(), 1);
        assert_eq!(e.metrics().compress_ratio_pct.count(), 2);
        match resp.result.unwrap() {
            Reply::Compress { payload, phrases } => {
                assert!(phrases > 0);
                assert!(pardict_stream::is_container(&payload));
                let pram = Pram::seq();
                let (out, summary) =
                    pardict_stream::decompress_stream(&pram, &mut &payload[..], Vec::new())
                        .unwrap();
                assert_eq!(out, text);
                assert!(summary.issues.is_empty());
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }

    #[test]
    fn batches_group_queued_requests() {
        let e = engine_with(0, 64);
        publish(&e, "d", &["aa"]);
        let tickets: Vec<_> = (0..6)
            .map(|_| {
                e.submit(Request::new(OpRequest::Match {
                    dict: "d".into(),
                    text: b"aaaa".to_vec(),
                }))
                .unwrap()
            })
            .collect();
        let sizes: Vec<u32> = tickets
            .into_iter()
            .map(|t| {
                let r = t.wait();
                assert!(r.result.is_ok());
                r.meta.batch_size
            })
            .collect();
        // All six were queued before any wait, so the first inline batch
        // grabbed max_batch=8-capped all 6.
        assert!(sizes.iter().any(|&s| s >= 2), "sizes = {sizes:?}");
        assert!(e.metrics().batches.get() >= 1);
    }
}
