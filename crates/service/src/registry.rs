//! Versioned dictionary registry with hot-swap and a preprocessing cache.
//!
//! The paper's serving story (§3) is *preprocess once, match many*: a
//! dictionary costs `O(d)` work to preprocess and each text then costs
//! `O(n)` work regardless of how many texts follow. The registry is where
//! that amortization lives for a long-running service:
//!
//! * **Named dictionaries.** Tenants publish pattern sets under a name and
//!   route requests by that name.
//! * **Versioned hot-swap.** Re-publishing a name atomically installs a new
//!   [`DictVersion`] behind an `Arc`. In-flight requests that already
//!   resolved the previous version keep using it untouched — every reply
//!   carries the version it was computed against, so callers can tell.
//! * **Preprocessing cache.** Builds are keyed by a content hash of the
//!   pattern set; republishing identical content (same tenant or another)
//!   reuses the finished matcher instead of paying `O(d)` again.

use crate::metrics::Metrics;
use crate::types::ServiceError;
use pardict_core::{AhoCorasick, DictMatcher, Dictionary};
use pardict_pram::{Cost, Pram};
use pardict_store::Store;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, RwLock};

/// Max distinct pattern-set builds retained by the preprocessing cache.
const CACHE_CAP: usize = 32;

/// A fully preprocessed pattern set: the Theorem 3.1 matcher for the
/// batched lane plus an Aho–Corasick automaton for the sequential
/// small-request lane. `AhoCorasick` (built once here) rather than
/// `mp93_baseline` keeps the fallback amortized too — mp93 would rebuild
/// its `O(d)` hash tables on every request.
#[derive(Debug)]
pub struct Preprocessed {
    /// The randomized parallel matcher (Theorem 3.1).
    pub matcher: DictMatcher,
    /// Exact sequential automaton for the fallback lane and verification.
    pub ac: AhoCorasick,
    /// FNV-1a hash of the length-prefixed pattern list.
    pub content_hash: u64,
    /// Ledger cost of the one-time preprocessing.
    pub build_cost: Cost,
}

impl Preprocessed {
    /// The underlying dictionary.
    #[must_use]
    pub fn dictionary(&self) -> &Dictionary {
        self.matcher.dictionary()
    }
}

/// One installed version of a named dictionary.
#[derive(Debug)]
pub struct DictVersion {
    /// Registry name this version is installed under.
    pub name: String,
    /// Monotone per-name version number, starting at 1.
    pub version: u64,
    /// Shared preprocessed state (possibly shared with other names via the
    /// content cache).
    pub pre: Arc<Preprocessed>,
}

/// What [`Registry::publish`] did.
#[derive(Debug, Clone, Copy)]
pub struct PublishOutcome {
    /// Version now current for the name.
    pub version: u64,
    /// True when the preprocessing cache supplied the build.
    pub cache_hit: bool,
    /// Ledger cost of the build (zero-ish attribution on a cache hit —
    /// reported as the original build's cost).
    pub build_cost: Cost,
}

/// Named, versioned dictionary store.
#[derive(Debug)]
pub struct Registry {
    entries: RwLock<HashMap<String, Arc<DictVersion>>>,
    /// Content-hash → preprocessed build; bounded FIFO eviction.
    cache: Mutex<BuildCache>,
    metrics: Arc<Metrics>,
    /// Optional durable backing: when attached, every publish/retire is
    /// logged (and fsync'd) *before* the in-memory swap, so an
    /// acknowledgement implies the change survives a crash. Locked after
    /// `entries` — the write lock serializes publishes, which keeps WAL
    /// order identical to version order.
    store: Mutex<Option<Store>>,
}

#[derive(Debug, Default)]
struct BuildCache {
    by_hash: HashMap<u64, Arc<Preprocessed>>,
    order: Vec<u64>,
}

impl BuildCache {
    fn get(&self, hash: u64) -> Option<Arc<Preprocessed>> {
        self.by_hash.get(&hash).cloned()
    }

    fn insert(&mut self, hash: u64, pre: Arc<Preprocessed>) {
        if self.by_hash.insert(hash, pre).is_none() {
            self.order.push(hash);
            if self.order.len() > CACHE_CAP {
                let evicted = self.order.remove(0);
                self.by_hash.remove(&evicted);
            }
        }
    }
}

/// FNV-1a over the length-prefixed pattern list, so `["ab","c"]` and
/// `["a","bc"]` hash differently.
#[must_use]
pub fn content_hash(patterns: &[Vec<u8>]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |byte: u8| {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for p in patterns {
        for b in (p.len() as u64).to_le_bytes() {
            eat(b);
        }
        for &b in p {
            eat(b);
        }
    }
    h
}

impl Registry {
    /// Empty registry recording into `metrics`.
    #[must_use]
    pub fn new(metrics: Arc<Metrics>) -> Self {
        Self {
            entries: RwLock::new(HashMap::new()),
            cache: Mutex::new(BuildCache::default()),
            metrics,
            store: Mutex::new(None),
        }
    }

    /// Attach a durable store. From here on every accepted publish and
    /// retire is logged to it before the in-memory swap — the caller
    /// normally opens the store, replays its contents through
    /// [`Registry::restore`], then attaches.
    pub fn attach_store(&self, store: Store) {
        *self.store.lock().expect("store poisoned") = Some(store);
    }

    /// True when a durable store is attached.
    #[must_use]
    pub fn has_store(&self) -> bool {
        self.store.lock().expect("store poisoned").is_some()
    }

    fn validate(name: &str, patterns: &[Vec<u8>]) -> Result<(), ServiceError> {
        if name.is_empty() {
            return Err(ServiceError::BadRequest("empty dictionary name".into()));
        }
        if patterns.is_empty() {
            return Err(ServiceError::BadRequest("empty pattern set".into()));
        }
        for (i, p) in patterns.iter().enumerate() {
            if p.is_empty() {
                return Err(ServiceError::BadRequest(format!("pattern {i} is empty")));
            }
            if p.contains(&0) {
                return Err(ServiceError::BadRequest(format!(
                    "pattern {i} contains NUL bytes (reserved for the sentinel)"
                )));
            }
        }
        Ok(())
    }

    /// Build (or fetch from cache) the preprocessed state for `patterns`,
    /// counting one publish plus the cache hit/miss in the metrics.
    fn build(&self, patterns: Vec<Vec<u8>>) -> (Arc<Preprocessed>, bool) {
        self.metrics.publishes.inc();
        let hash = content_hash(&patterns);
        let cached = self.cache.lock().expect("cache poisoned").get(hash);
        match cached {
            Some(pre) => {
                self.metrics.cache_hits.inc();
                (pre, true)
            }
            None => {
                self.metrics.cache_misses.inc();
                let pram = Pram::par();
                let dict = Dictionary::new(patterns);
                // Deterministic per-content seed keeps builds reproducible.
                let seed = hash | 1;
                let (matcher, build_cost) = pram.metered(|p| DictMatcher::build(p, dict, seed));
                let ac = AhoCorasick::build(matcher.dictionary());
                let pre = Arc::new(Preprocessed {
                    matcher,
                    ac,
                    content_hash: hash,
                    build_cost,
                });
                self.cache
                    .lock()
                    .expect("cache poisoned")
                    .insert(hash, Arc::clone(&pre));
                (pre, false)
            }
        }
    }

    /// Publish `patterns` under `name`, returning the installed version.
    ///
    /// Validates before building (`Dictionary::new` panics on empty or
    /// NUL-containing patterns, so the service must reject those here).
    /// The build runs on a thread-local `Pram::par()` and its ledger cost
    /// is recorded in the outcome.
    ///
    /// # Errors
    /// [`ServiceError::BadRequest`] for an empty set, an empty pattern, or
    /// a pattern containing NUL.
    pub fn publish(
        &self,
        name: &str,
        patterns: Vec<Vec<u8>>,
    ) -> Result<PublishOutcome, ServiceError> {
        Self::validate(name, &patterns)?;
        let logged = patterns.clone();
        let (pre, cache_hit) = self.build(patterns);
        let build_cost = pre.build_cost;

        let mut entries = self.entries.write().expect("registry poisoned");
        let version = entries.get(name).map_or(1, |v| v.version + 1);
        // Durability before acknowledgement: the WAL append (fsync'd)
        // must succeed before the swap is visible. On failure nothing
        // changed in memory, so the error reply is truthful.
        if let Some(store) = self.store.lock().expect("store poisoned").as_mut() {
            store
                .log_publish(name, version, &logged)
                .map_err(|e| ServiceError::Storage(e.to_string()))?;
        }
        entries.insert(
            name.to_string(),
            Arc::new(DictVersion {
                name: name.to_string(),
                version,
                pre,
            }),
        );
        Ok(PublishOutcome {
            version,
            cache_hit,
            build_cost,
        })
    }

    /// Reinstall a dictionary recovered from a durable store at its
    /// persisted version, *without* writing a new WAL record. Goes
    /// through the same validation, build cache, and metrics as a live
    /// publish, so the accounting identities keep holding.
    ///
    /// # Errors
    /// [`ServiceError::BadRequest`] if the recovered patterns fail
    /// validation (a tampered-but-CRC-valid store must not panic the
    /// build).
    pub fn restore(
        &self,
        name: &str,
        version: u64,
        patterns: Vec<Vec<u8>>,
    ) -> Result<(), ServiceError> {
        Self::validate(name, &patterns)?;
        let (pre, _) = self.build(patterns);
        self.entries.write().expect("registry poisoned").insert(
            name.to_string(),
            Arc::new(DictVersion {
                name: name.to_string(),
                version,
                pre,
            }),
        );
        Ok(())
    }

    /// Remove `name` from the registry (logging the retire durably
    /// first, when a store is attached). Returns whether it existed.
    ///
    /// # Errors
    /// [`ServiceError::Storage`] if the WAL append fails — the entry
    /// then stays installed.
    pub fn retire(&self, name: &str) -> Result<bool, ServiceError> {
        let mut entries = self.entries.write().expect("registry poisoned");
        if !entries.contains_key(name) {
            return Ok(false);
        }
        if let Some(store) = self.store.lock().expect("store poisoned").as_mut() {
            store
                .log_retire(name)
                .map_err(|e| ServiceError::Storage(e.to_string()))?;
        }
        entries.remove(name);
        self.metrics.retires.inc();
        Ok(true)
    }

    /// `(name, version, content hash)` for every installed dictionary,
    /// sorted by name — what the `dicts` wire op ships so a cluster
    /// router can tell recovered-from-disk state from missing state.
    #[must_use]
    pub fn dict_digests(&self) -> Vec<(String, u64, u64)> {
        let mut out: Vec<(String, u64, u64)> = self
            .entries
            .read()
            .expect("registry poisoned")
            .values()
            .map(|v| (v.name.clone(), v.version, v.pre.content_hash))
            .collect();
        out.sort();
        out
    }

    /// Resolve the current version of `name`. The returned `Arc` pins that
    /// version for the caller even if a publish swaps it out immediately
    /// after — that is the hot-swap guarantee.
    #[must_use]
    pub fn current(&self, name: &str) -> Option<Arc<DictVersion>> {
        self.entries
            .read()
            .expect("registry poisoned")
            .get(name)
            .cloned()
    }

    /// Registered names, unordered.
    #[must_use]
    pub fn names(&self) -> Vec<String> {
        self.entries
            .read()
            .expect("registry poisoned")
            .keys()
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pats(ss: &[&str]) -> Vec<Vec<u8>> {
        ss.iter().map(|s| s.as_bytes().to_vec()).collect()
    }

    #[test]
    fn publish_versions_are_monotone() {
        let reg = Registry::new(Arc::new(Metrics::default()));
        let v1 = reg.publish("d", pats(&["abc", "bc"])).unwrap();
        assert_eq!(v1.version, 1);
        assert!(!v1.cache_hit);
        let v2 = reg.publish("d", pats(&["xyz"])).unwrap();
        assert_eq!(v2.version, 2);
        assert_eq!(reg.current("d").unwrap().version, 2);
    }

    #[test]
    fn identical_content_hits_the_cache_across_names() {
        let m = Arc::new(Metrics::default());
        let reg = Registry::new(Arc::clone(&m));
        reg.publish("a", pats(&["needle", "pin"])).unwrap();
        let out = reg.publish("b", pats(&["needle", "pin"])).unwrap();
        assert!(out.cache_hit);
        assert_eq!(m.cache_hits.get(), 1);
        // Same preprocessed object is shared.
        let a = reg.current("a").unwrap();
        let b = reg.current("b").unwrap();
        assert!(Arc::ptr_eq(&a.pre, &b.pre));
    }

    #[test]
    fn old_version_survives_swap_while_held() {
        let reg = Registry::new(Arc::new(Metrics::default()));
        reg.publish("d", pats(&["old"])).unwrap();
        let held = reg.current("d").unwrap();
        reg.publish("d", pats(&["new"])).unwrap();
        assert_eq!(held.version, 1);
        assert_eq!(held.pre.dictionary().patterns()[0], b"old".to_vec());
        assert_eq!(reg.current("d").unwrap().version, 2);
    }

    #[test]
    fn invalid_pattern_sets_are_rejected_not_panicking() {
        let reg = Registry::new(Arc::new(Metrics::default()));
        assert!(reg.publish("d", vec![]).is_err());
        assert!(reg.publish("d", vec![vec![]]).is_err());
        assert!(reg.publish("d", vec![vec![b'a', 0, b'b']]).is_err());
        assert!(reg.publish("", pats(&["x"])).is_err());
    }

    #[test]
    fn content_hash_respects_boundaries() {
        assert_ne!(
            content_hash(&pats(&["ab", "c"])),
            content_hash(&pats(&["a", "bc"]))
        );
    }
}
