//! Versioned dictionary registry with hot-swap and a preprocessing cache.
//!
//! The paper's serving story (§3) is *preprocess once, match many*: a
//! dictionary costs `O(d)` work to preprocess and each text then costs
//! `O(n)` work regardless of how many texts follow. The registry is where
//! that amortization lives for a long-running service:
//!
//! * **Named dictionaries.** Tenants publish pattern sets under a name and
//!   route requests by that name.
//! * **Versioned hot-swap.** Re-publishing a name atomically installs a new
//!   [`DictVersion`] behind an `Arc`. In-flight requests that already
//!   resolved the previous version keep using it untouched — every reply
//!   carries the version it was computed against, so callers can tell.
//! * **Preprocessing cache.** Builds are keyed by a content hash of the
//!   pattern set; republishing identical content (same tenant or another)
//!   reuses the finished matcher instead of paying `O(d)` again.

use crate::metrics::Metrics;
use crate::types::ServiceError;
use pardict_core::segmented::SegmentBuildStats;
use pardict_core::{
    apply_delta_patterns, chain_identity, list_hash, multiset_identity, DictDelta, SegmentedMatcher,
};
use pardict_pram::{Cost, Pram};
use pardict_store::Store;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, RwLock};

/// Max distinct pattern-set builds retained by the preprocessing cache.
const CACHE_CAP: usize = 32;

/// A fully preprocessed pattern set: canonical segments, each holding the
/// Theorem 3.1 matcher for the batched lane plus an Aho–Corasick
/// automaton for the sequential small-request lane (built once here so
/// the fallback stays amortized too). Segmentation is what makes
/// [`Registry::publish_delta`] cheap: an applied delta rebuilds only the
/// segments its patterns touch and `Arc`-shares the rest, while staying
/// structurally identical to a from-scratch build of the same final set.
#[derive(Debug)]
pub struct Preprocessed {
    /// The segmented randomized parallel matcher (Theorem 3.1 per
    /// segment) plus per-segment exact automata.
    pub seg: SegmentedMatcher,
    /// Commutative multiset identity of the pattern set — chain-updatable
    /// across deltas (`pardict_core::chain_identity`), equal along every
    /// path to the same final set, and what `dicts` digests ship.
    pub content_hash: u64,
    /// Ledger cost of preprocessing every segment.
    pub build_cost: Cost,
}

impl Preprocessed {
    /// The patterns, in global-id order.
    #[must_use]
    pub fn patterns(&self) -> Vec<Vec<u8>> {
        self.seg.patterns()
    }
}

/// One installed version of a named dictionary.
#[derive(Debug)]
pub struct DictVersion {
    /// Registry name this version is installed under.
    pub name: String,
    /// Monotone per-name version number, starting at 1.
    pub version: u64,
    /// Shared preprocessed state (possibly shared with other names via the
    /// content cache).
    pub pre: Arc<Preprocessed>,
}

/// What [`Registry::publish`] did.
#[derive(Debug, Clone, Copy)]
pub struct PublishOutcome {
    /// Version now current for the name.
    pub version: u64,
    /// True when the preprocessing cache supplied the build.
    pub cache_hit: bool,
    /// Ledger cost of the build (zero-ish attribution on a cache hit —
    /// reported as the original build's cost).
    pub build_cost: Cost,
}

/// Named, versioned dictionary store.
#[derive(Debug)]
pub struct Registry {
    entries: RwLock<HashMap<String, Arc<DictVersion>>>,
    /// Content-hash → preprocessed build; bounded FIFO eviction.
    cache: Mutex<BuildCache>,
    metrics: Arc<Metrics>,
    /// Optional durable backing: when attached, every publish/retire is
    /// logged (and fsync'd) *before* the in-memory swap, so an
    /// acknowledgement implies the change survives a crash. Locked after
    /// `entries` — the write lock serializes publishes, which keeps WAL
    /// order identical to version order.
    store: Mutex<Option<Store>>,
}

#[derive(Debug, Default)]
struct BuildCache {
    by_hash: HashMap<u64, Arc<Preprocessed>>,
    order: Vec<u64>,
}

impl BuildCache {
    fn get(&self, hash: u64) -> Option<Arc<Preprocessed>> {
        self.by_hash.get(&hash).cloned()
    }

    fn insert(&mut self, hash: u64, pre: Arc<Preprocessed>) {
        if self.by_hash.insert(hash, pre).is_none() {
            self.order.push(hash);
            if self.order.len() > CACHE_CAP {
                let evicted = self.order.remove(0);
                self.by_hash.remove(&evicted);
            }
        }
    }
}

/// The registry's wire-visible dictionary identity: the commutative
/// multiset hash of the pattern set (see
/// [`pardict_core::multiset_identity`]). Chain-updatable across deltas in
/// `O(|delta|)`, and `["ab","c"]` vs `["a","bc"]` still hash differently
/// because each pattern is hashed length-prefixed. The order-sensitive
/// [`list_hash`] remains the preprocessing-cache key, so permuted lists
/// never share a build.
#[must_use]
pub fn content_hash(patterns: &[Vec<u8>]) -> u64 {
    multiset_identity(patterns)
}

/// What [`Registry::publish_delta`] did.
#[derive(Debug, Clone, Copy)]
pub struct DeltaPublishOutcome {
    /// Version now current for the name.
    pub version: u64,
    /// Segments in the new version.
    pub segments_total: usize,
    /// Segments reused from the parent (or the whole build from cache).
    pub segments_reused: usize,
    /// True when the preprocessing cache supplied the whole build.
    pub cache_hit: bool,
    /// Total preprocessing cost of the new version (reused segments
    /// included at their original cost).
    pub build_cost: Cost,
}

impl Registry {
    /// Empty registry recording into `metrics`.
    #[must_use]
    pub fn new(metrics: Arc<Metrics>) -> Self {
        Self {
            entries: RwLock::new(HashMap::new()),
            cache: Mutex::new(BuildCache::default()),
            metrics,
            store: Mutex::new(None),
        }
    }

    /// Attach a durable store. From here on every accepted publish and
    /// retire is logged to it before the in-memory swap — the caller
    /// normally opens the store, replays its contents through
    /// [`Registry::restore`], then attaches.
    pub fn attach_store(&self, store: Store) {
        *self.store.lock().expect("store poisoned") = Some(store);
    }

    /// True when a durable store is attached.
    #[must_use]
    pub fn has_store(&self) -> bool {
        self.store.lock().expect("store poisoned").is_some()
    }

    fn validate(name: &str, patterns: &[Vec<u8>]) -> Result<(), ServiceError> {
        if name.is_empty() {
            return Err(ServiceError::BadRequest("empty dictionary name".into()));
        }
        if patterns.is_empty() {
            return Err(ServiceError::BadRequest("empty pattern set".into()));
        }
        for (i, p) in patterns.iter().enumerate() {
            if p.is_empty() {
                return Err(ServiceError::BadRequest(format!("pattern {i} is empty")));
            }
            if p.contains(&0) {
                return Err(ServiceError::BadRequest(format!(
                    "pattern {i} contains NUL bytes (reserved for the sentinel)"
                )));
            }
        }
        Ok(())
    }

    /// Build (or fetch from cache) the preprocessed state for `patterns`,
    /// counting one publish plus the cache hit/miss in the metrics.
    fn build(&self, patterns: Vec<Vec<u8>>) -> (Arc<Preprocessed>, bool) {
        self.metrics.publishes.inc();
        let key = list_hash(&patterns);
        let cached = self.cache.lock().expect("cache poisoned").get(key);
        match cached {
            Some(pre) => {
                self.metrics.cache_hits.inc();
                (pre, true)
            }
            None => {
                self.metrics.cache_misses.inc();
                let pram = Pram::par();
                // Segment seeds derive from each segment's content hash,
                // so builds stay reproducible per content.
                let seg = SegmentedMatcher::build(&pram, patterns);
                let pre = Arc::new(Preprocessed {
                    content_hash: seg.identity(),
                    build_cost: seg.build_cost(),
                    seg,
                });
                self.cache
                    .lock()
                    .expect("cache poisoned")
                    .insert(key, Arc::clone(&pre));
                (pre, false)
            }
        }
    }

    /// Publish `patterns` under `name`, returning the installed version.
    ///
    /// Validates before building (`Dictionary::new` panics on empty or
    /// NUL-containing patterns, so the service must reject those here).
    /// The build runs on a thread-local `Pram::par()` and its ledger cost
    /// is recorded in the outcome.
    ///
    /// # Errors
    /// [`ServiceError::BadRequest`] for an empty set, an empty pattern, or
    /// a pattern containing NUL.
    pub fn publish(
        &self,
        name: &str,
        patterns: Vec<Vec<u8>>,
    ) -> Result<PublishOutcome, ServiceError> {
        Self::validate(name, &patterns)?;
        let logged = patterns.clone();
        let (pre, cache_hit) = self.build(patterns);
        let build_cost = pre.build_cost;

        let mut entries = self.entries.write().expect("registry poisoned");
        let version = entries.get(name).map_or(1, |v| v.version + 1);
        // Durability before acknowledgement: the WAL append (fsync'd)
        // must succeed before the swap is visible. On failure nothing
        // changed in memory, so the error reply is truthful.
        if let Some(store) = self.store.lock().expect("store poisoned").as_mut() {
            store
                .log_publish(name, version, &logged)
                .map_err(|e| ServiceError::Storage(e.to_string()))?;
        }
        entries.insert(
            name.to_string(),
            Arc::new(DictVersion {
                name: name.to_string(),
                version,
                pre,
            }),
        );
        Ok(PublishOutcome {
            version,
            cache_hit,
            build_cost,
        })
    }

    /// Publish the next version of `name` as a delta against
    /// `parent_version`, re-preprocessing only the segments the delta
    /// touches (untouched segments are `Arc`-shared with the parent). The
    /// result is structurally identical to a full publish of the
    /// post-delta pattern set — same segments, same seeds, same query
    /// costs, and the chain-updated content identity equals the
    /// from-scratch identity — so caches, digests, and cluster revival
    /// cannot tell the two paths apart. When a store is attached, only
    /// the delta is logged (WAL bytes proportional to the edit, not the
    /// dictionary).
    ///
    /// # Errors
    /// [`ServiceError::NoSuchDictionary`] when `name` is not installed;
    /// [`ServiceError::BadRequest`] for an empty delta, a parent-version
    /// mismatch (including a concurrent publish racing the delta), or a
    /// delta that fails to apply (see [`pardict_core::DeltaError`]);
    /// [`ServiceError::Storage`] if the WAL append fails (nothing is
    /// installed then).
    pub fn publish_delta(
        &self,
        name: &str,
        parent_version: u64,
        delta: &DictDelta,
    ) -> Result<DeltaPublishOutcome, ServiceError> {
        if delta.is_empty() {
            return Err(ServiceError::BadRequest("empty delta".into()));
        }
        let cur = self
            .current(name)
            .ok_or_else(|| ServiceError::NoSuchDictionary(name.to_string()))?;
        if cur.version != parent_version {
            return Err(ServiceError::BadRequest(format!(
                "delta parent version {parent_version} does not match current version {}",
                cur.version
            )));
        }
        let parent_patterns = cur.pre.patterns();
        let (finals, removed_counts) = apply_delta_patterns(&parent_patterns, delta)
            .map_err(|e| ServiceError::BadRequest(e.to_string()))?;
        // O(|delta|) identity chain; equals the scratch identity of the
        // final list by construction (multiset sum).
        let identity = chain_identity(cur.pre.content_hash, delta, &removed_counts);
        debug_assert_eq!(identity, multiset_identity(&finals));

        self.metrics.publishes.inc();
        let key = list_hash(&finals);
        let cached = self.cache.lock().expect("cache poisoned").get(key);
        let (pre, stats, cache_hit) = match cached {
            Some(pre) => {
                self.metrics.cache_hits.inc();
                let n = pre.seg.num_segments();
                (
                    pre,
                    SegmentBuildStats {
                        segments_total: n,
                        segments_reused: n,
                    },
                    true,
                )
            }
            None => {
                self.metrics.cache_misses.inc();
                let pram = Pram::par();
                let (seg, stats) = cur
                    .pre
                    .seg
                    .apply_delta(&pram, delta)
                    .map_err(|e| ServiceError::BadRequest(e.to_string()))?;
                let pre = Arc::new(Preprocessed {
                    content_hash: identity,
                    build_cost: seg.build_cost(),
                    seg,
                });
                self.cache
                    .lock()
                    .expect("cache poisoned")
                    .insert(key, Arc::clone(&pre));
                (pre, stats, false)
            }
        };

        let mut entries = self.entries.write().expect("registry poisoned");
        // Re-check under the write lock: a concurrent publish may have
        // swapped the parent out from under the optimistic build above.
        match entries.get(name) {
            Some(v) if v.version == parent_version => {}
            _ => {
                return Err(ServiceError::BadRequest(format!(
                    "delta parent version {parent_version} was superseded concurrently"
                )))
            }
        }
        let version = parent_version + 1;
        if let Some(store) = self.store.lock().expect("store poisoned").as_mut() {
            store
                .log_delta(name, version, &delta.adds, &delta.removes)
                .map_err(|e| ServiceError::Storage(e.to_string()))?;
        }
        entries.insert(
            name.to_string(),
            Arc::new(DictVersion {
                name: name.to_string(),
                version,
                pre: Arc::clone(&pre),
            }),
        );
        Ok(DeltaPublishOutcome {
            version,
            segments_total: stats.segments_total,
            segments_reused: stats.segments_reused,
            cache_hit,
            build_cost: pre.build_cost,
        })
    }

    /// Reinstall a dictionary recovered from a durable store at its
    /// persisted version, *without* writing a new WAL record. Goes
    /// through the same validation, build cache, and metrics as a live
    /// publish, so the accounting identities keep holding.
    ///
    /// # Errors
    /// [`ServiceError::BadRequest`] if the recovered patterns fail
    /// validation (a tampered-but-CRC-valid store must not panic the
    /// build).
    pub fn restore(
        &self,
        name: &str,
        version: u64,
        patterns: Vec<Vec<u8>>,
    ) -> Result<(), ServiceError> {
        Self::validate(name, &patterns)?;
        let (pre, _) = self.build(patterns);
        self.entries.write().expect("registry poisoned").insert(
            name.to_string(),
            Arc::new(DictVersion {
                name: name.to_string(),
                version,
                pre,
            }),
        );
        Ok(())
    }

    /// Remove `name` from the registry (logging the retire durably
    /// first, when a store is attached). Returns whether it existed.
    ///
    /// # Errors
    /// [`ServiceError::Storage`] if the WAL append fails — the entry
    /// then stays installed.
    pub fn retire(&self, name: &str) -> Result<bool, ServiceError> {
        let mut entries = self.entries.write().expect("registry poisoned");
        if !entries.contains_key(name) {
            return Ok(false);
        }
        if let Some(store) = self.store.lock().expect("store poisoned").as_mut() {
            store
                .log_retire(name)
                .map_err(|e| ServiceError::Storage(e.to_string()))?;
        }
        entries.remove(name);
        self.metrics.retires.inc();
        Ok(true)
    }

    /// `(name, version, content hash)` for every installed dictionary,
    /// sorted by name — what the `dicts` wire op ships so a cluster
    /// router can tell recovered-from-disk state from missing state.
    #[must_use]
    pub fn dict_digests(&self) -> Vec<(String, u64, u64)> {
        let mut out: Vec<(String, u64, u64)> = self
            .entries
            .read()
            .expect("registry poisoned")
            .values()
            .map(|v| (v.name.clone(), v.version, v.pre.content_hash))
            .collect();
        out.sort();
        out
    }

    /// Resolve the current version of `name`. The returned `Arc` pins that
    /// version for the caller even if a publish swaps it out immediately
    /// after — that is the hot-swap guarantee.
    #[must_use]
    pub fn current(&self, name: &str) -> Option<Arc<DictVersion>> {
        self.entries
            .read()
            .expect("registry poisoned")
            .get(name)
            .cloned()
    }

    /// Registered names, unordered.
    #[must_use]
    pub fn names(&self) -> Vec<String> {
        self.entries
            .read()
            .expect("registry poisoned")
            .keys()
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pats(ss: &[&str]) -> Vec<Vec<u8>> {
        ss.iter().map(|s| s.as_bytes().to_vec()).collect()
    }

    #[test]
    fn publish_versions_are_monotone() {
        let reg = Registry::new(Arc::new(Metrics::default()));
        let v1 = reg.publish("d", pats(&["abc", "bc"])).unwrap();
        assert_eq!(v1.version, 1);
        assert!(!v1.cache_hit);
        let v2 = reg.publish("d", pats(&["xyz"])).unwrap();
        assert_eq!(v2.version, 2);
        assert_eq!(reg.current("d").unwrap().version, 2);
    }

    #[test]
    fn identical_content_hits_the_cache_across_names() {
        let m = Arc::new(Metrics::default());
        let reg = Registry::new(Arc::clone(&m));
        reg.publish("a", pats(&["needle", "pin"])).unwrap();
        let out = reg.publish("b", pats(&["needle", "pin"])).unwrap();
        assert!(out.cache_hit);
        assert_eq!(m.cache_hits.get(), 1);
        // Same preprocessed object is shared.
        let a = reg.current("a").unwrap();
        let b = reg.current("b").unwrap();
        assert!(Arc::ptr_eq(&a.pre, &b.pre));
    }

    #[test]
    fn old_version_survives_swap_while_held() {
        let reg = Registry::new(Arc::new(Metrics::default()));
        reg.publish("d", pats(&["old"])).unwrap();
        let held = reg.current("d").unwrap();
        reg.publish("d", pats(&["new"])).unwrap();
        assert_eq!(held.version, 1);
        assert_eq!(held.pre.patterns()[0], b"old".to_vec());
        assert_eq!(reg.current("d").unwrap().version, 2);
    }

    #[test]
    fn invalid_pattern_sets_are_rejected_not_panicking() {
        let reg = Registry::new(Arc::new(Metrics::default()));
        assert!(reg.publish("d", vec![]).is_err());
        assert!(reg.publish("d", vec![vec![]]).is_err());
        assert!(reg.publish("d", vec![vec![b'a', 0, b'b']]).is_err());
        assert!(reg.publish("", pats(&["x"])).is_err());
    }

    #[test]
    fn content_hash_respects_boundaries() {
        assert_ne!(
            content_hash(&pats(&["ab", "c"])),
            content_hash(&pats(&["a", "bc"]))
        );
    }

    #[test]
    fn delta_publish_advances_version_and_matches_full_publish() {
        let m = Arc::new(Metrics::default());
        let reg = Registry::new(Arc::clone(&m));
        reg.publish("d", pats(&["alpha", "beta", "gamma"])).unwrap();
        let delta = pardict_core::DictDelta {
            adds: pats(&["delta"]),
            removes: pats(&["beta"]),
        };
        let out = reg.publish_delta("d", 1, &delta).unwrap();
        assert_eq!(out.version, 2);
        assert_eq!(out.segments_total, 1); // small dict: one segment
        let cur = reg.current("d").unwrap();
        assert_eq!(cur.pre.patterns(), pats(&["alpha", "gamma", "delta"]));
        // A separate full publish of the same final set shares identity
        // and structure (and in fact the cached build).
        let full = Registry::new(Arc::new(Metrics::default()));
        full.publish("d", pats(&["alpha", "gamma", "delta"]))
            .unwrap();
        assert_eq!(
            full.current("d").unwrap().pre.content_hash,
            cur.pre.content_hash
        );
        // Accounting identity holds across the mixed publish paths.
        assert_eq!(m.publishes.get(), m.cache_hits.get() + m.cache_misses.get());
    }

    #[test]
    fn delta_publish_rejects_bad_parents_and_bad_deltas() {
        let reg = Registry::new(Arc::new(Metrics::default()));
        let delta = pardict_core::DictDelta {
            adds: pats(&["x"]),
            removes: vec![],
        };
        assert!(matches!(
            reg.publish_delta("missing", 1, &delta),
            Err(ServiceError::NoSuchDictionary(_))
        ));
        reg.publish("d", pats(&["a", "b"])).unwrap();
        // Wrong parent version.
        assert!(reg.publish_delta("d", 7, &delta).is_err());
        // Empty delta.
        assert!(reg
            .publish_delta("d", 1, &pardict_core::DictDelta::default())
            .is_err());
        // Remove that matches nothing.
        let missing_rm = pardict_core::DictDelta {
            adds: vec![],
            removes: pats(&["zz"]),
        };
        assert!(reg.publish_delta("d", 1, &missing_rm).is_err());
        // Draining the dictionary entirely.
        let drain = pardict_core::DictDelta {
            adds: vec![],
            removes: pats(&["a", "b"]),
        };
        assert!(reg.publish_delta("d", 1, &drain).is_err());
        // Version is unchanged after every rejection.
        assert_eq!(reg.current("d").unwrap().version, 1);
    }
}
