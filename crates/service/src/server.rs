//! TCP front end: a `std::net` listener speaking the [`crate::wire`]
//! protocol, plus a small blocking [`Client`].
//!
//! Thread-per-connection with a nonblocking accept loop so the server can
//! stop promptly; each connection thread decodes frames, drives the shared
//! [`Engine`], and writes one response frame per request frame.

use crate::engine::Engine;
use crate::types::{OpRequest, Request, ServiceError};
use crate::wire::{self, error_from_wire, read_frame, write_frame, WireRequest, WireResponse};
use pardict_trace::{SpanId, TraceCtx, TraceId};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A running TCP server bound to a local address.
pub struct Server {
    engine: Engine,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral port) and start accepting.
    ///
    /// # Errors
    /// Socket bind/configuration failures.
    pub fn start(engine: Engine, addr: impl ToSocketAddrs) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_engine = engine.clone();
        let accept_stop = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name("pardict-accept".into())
            .spawn(move || accept_loop(&listener, &accept_engine, &accept_stop))
            .expect("spawn accept thread");
        Ok(Self {
            engine,
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful with ephemeral ports).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine this server fronts.
    #[must_use]
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Stop accepting connections and join the accept thread. Existing
    /// connections keep serving until their clients disconnect, and the
    /// engine is not shut down — the owner decides that.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: &TcpListener, engine: &Engine, stop: &Arc<AtomicBool>) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let engine = engine.clone();
                // Detached: a connection thread exits on client EOF or I/O
                // error. Joining here would deadlock `stop()` against
                // clients that outlive the server handle.
                let _ = std::thread::Builder::new()
                    .name("pardict-conn".into())
                    .spawn(move || {
                        let _ = serve_connection(stream, &engine);
                    });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
}

/// Serve one connection until EOF or an I/O error.
fn serve_connection(stream: TcpStream, engine: &Engine) -> io::Result<()> {
    let mut reader = stream.try_clone()?;
    let mut writer = stream;
    while let Some(payload) = read_frame(&mut reader)? {
        let resp = match WireRequest::decode(&payload) {
            Err(e) => WireResponse::Error {
                code: ServiceError::BadRequest(String::new()).code(),
                message: format!("malformed request: {e}"),
            },
            Ok(req) => handle(engine, req),
        };
        write_frame(&mut writer, &resp.encode())?;
    }
    Ok(())
}

fn handle(engine: &Engine, req: WireRequest) -> WireResponse {
    // Strip the trace wrapper first: the context only takes effect when
    // this engine actually has a tracer (we advertised EXT_TRACE), but a
    // bare Traced frame from a misconfigured peer still executes cleanly.
    let (trace, req) = match req {
        WireRequest::Traced {
            trace,
            parent,
            inner,
        } => (
            engine.tracer().map(|_| TraceCtx {
                trace: TraceId(trace),
                parent: SpanId(parent),
            }),
            *inner,
        ),
        other => (None, other),
    };
    match req {
        WireRequest::Traced { .. } => unreachable!("decode rejects nested trace wrappers"),
        WireRequest::Hello { .. } => WireResponse::Hello {
            // Delta publish needs no per-engine state, so every modern
            // server advertises it; tracing only when a tracer exists.
            extensions: wire::EXT_DELTA
                | if engine.tracer().is_some() {
                    wire::EXT_TRACE
                } else {
                    0
                },
        },
        WireRequest::Ping => WireResponse::Pong,
        WireRequest::Metrics => WireResponse::MetricsReport(engine.metrics().report()),
        WireRequest::Stats => WireResponse::Stats(engine.metrics().snapshot()),
        WireRequest::Dicts => WireResponse::DictList(engine.registry().dict_digests()),
        WireRequest::Publish { name, patterns } => {
            match engine.registry().publish(&name, patterns) {
                Ok(out) => WireResponse::Published {
                    version: out.version,
                    cache_hit: out.cache_hit,
                },
                Err(e) => WireResponse::Error {
                    code: e.code(),
                    message: e.to_string(),
                },
            }
        }
        WireRequest::PubDelta {
            name,
            parent_version,
            adds,
            removes,
        } => {
            let delta = pardict_core::DictDelta { adds, removes };
            match engine
                .registry()
                .publish_delta(&name, parent_version, &delta)
            {
                Ok(out) => WireResponse::Published {
                    version: out.version,
                    cache_hit: out.cache_hit,
                },
                Err(e) => WireResponse::Error {
                    code: e.code(),
                    message: e.to_string(),
                },
            }
        }
        WireRequest::Op {
            tag,
            dict,
            text,
            timeout_ms,
        } => {
            let op = match tag {
                wire::tag::MATCH => OpRequest::Match { dict, text },
                wire::tag::GREP => OpRequest::Grep { dict, text },
                wire::tag::COMPRESS => OpRequest::Compress { text },
                wire::tag::PARSE => OpRequest::Parse { dict, text },
                wire::tag::GREPZ => OpRequest::GrepContainer {
                    dict,
                    container: text,
                },
                _ => unreachable!("decode only yields op tags"),
            };
            let req = if timeout_ms == 0 {
                Request::new(op)
            } else {
                Request::with_timeout(op, Duration::from_millis(u64::from(timeout_ms)))
            };
            WireResponse::from_engine(&engine.call(req.traced(trace)))
        }
    }
}

/// Connection-behavior knobs for [`Client`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Per-address TCP connect budget; `None` blocks indefinitely.
    pub connect_timeout: Option<Duration>,
    /// Socket read timeout; `None` blocks indefinitely.
    pub read_timeout: Option<Duration>,
    /// Socket write timeout; `None` blocks indefinitely.
    pub write_timeout: Option<Duration>,
    /// On a disconnect-class I/O error (broken pipe, reset, EOF
    /// mid-response), reconnect once and retry the request. Requests are
    /// retried at most once and only on transport failure, never on
    /// timeouts — a timed-out request may still be executing server-side.
    pub reconnect: bool,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            connect_timeout: Some(Duration::from_secs(5)),
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            reconnect: true,
        }
    }
}

/// Blocking wire-protocol client used by tests, `--selftest`, and the
/// cluster router's per-backend connections.
pub struct Client {
    stream: TcpStream,
    addr: SocketAddr,
    cfg: ClientConfig,
    /// Peer extension mask learned from the first `HELLO` exchange;
    /// `None` until negotiated. A legacy peer (clean "unknown request
    /// tag" error) caches as `Some(0)`.
    peer_extensions: Option<u32>,
}

/// Transport failures worth a reconnect: the connection is gone, as
/// opposed to slow (`TimedOut`/`WouldBlock`) or the data being bad.
fn is_disconnect(kind: io::ErrorKind) -> bool {
    matches!(
        kind,
        io::ErrorKind::BrokenPipe
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::NotConnected
            | io::ErrorKind::UnexpectedEof
            | io::ErrorKind::WriteZero
    )
}

impl Client {
    /// Connect to a running server with [`ClientConfig::default`]
    /// timeouts.
    ///
    /// # Errors
    /// Connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connect with explicit timeouts and retry behavior.
    ///
    /// # Errors
    /// Address resolution or connection failures (the error of the last
    /// address tried).
    pub fn connect_with(addr: impl ToSocketAddrs, cfg: ClientConfig) -> io::Result<Self> {
        let mut last = None;
        for candidate in addr.to_socket_addrs()? {
            match open_stream(candidate, &cfg) {
                Ok(stream) => {
                    return Ok(Self {
                        stream,
                        addr: candidate,
                        cfg,
                        peer_extensions: None,
                    })
                }
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "no addresses to connect to")
        }))
    }

    /// The server address this client resolved and connected to.
    #[must_use]
    pub fn peer_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Drop the current connection and dial the same address again.
    ///
    /// # Errors
    /// Connection failures.
    pub fn reconnect(&mut self) -> io::Result<()> {
        self.stream = open_stream(self.addr, &self.cfg)?;
        Ok(())
    }

    fn try_roundtrip(&mut self, payload: &[u8]) -> io::Result<WireResponse> {
        write_frame(&mut self.stream, payload)?;
        let reply = read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed connection")
        })?;
        WireResponse::decode(&reply)
    }

    fn roundtrip(&mut self, req: &WireRequest) -> io::Result<WireResponse> {
        let payload = req.encode();
        match self.try_roundtrip(&payload) {
            Err(e) if self.cfg.reconnect && is_disconnect(e.kind()) => {
                self.reconnect()?;
                self.try_roundtrip(&payload)
            }
            other => other,
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    /// I/O or protocol errors.
    pub fn ping(&mut self) -> io::Result<()> {
        match self.roundtrip(&WireRequest::Ping)? {
            WireResponse::Pong => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Publish a dictionary; returns `(version, cache_hit)`.
    ///
    /// # Errors
    /// I/O errors; service errors surface as `Err(io::Error)` with the
    /// wire message.
    pub fn publish(
        &mut self,
        name: &str,
        patterns: Vec<Vec<u8>>,
    ) -> io::Result<Result<(u64, bool), ServiceError>> {
        match self.roundtrip(&WireRequest::Publish {
            name: name.to_string(),
            patterns,
        })? {
            WireResponse::Published { version, cache_hit } => Ok(Ok((version, cache_hit))),
            WireResponse::Error { code, message } => Ok(Err(error_from_wire(code, &message))),
            other => Err(unexpected(&other)),
        }
    }

    /// Advance `name` from `parent_version` by a delta, shipping bytes
    /// proportional to the delta. Negotiates lazily: a legacy peer
    /// (no [`wire::EXT_DELTA`]) gets a full [`Client::publish`] of
    /// `fallback` instead — same resulting dictionary, legacy frames.
    /// The server may also refuse the delta (parent version superseded,
    /// dictionary missing); with a `fallback` those refusals degrade to
    /// a full publish too, so the call converges either way.
    ///
    /// # Errors
    /// I/O or protocol errors; `Unsupported` when the peer is legacy and
    /// no `fallback` was provided. Service-level failures are in the
    /// inner `Result`.
    pub fn publish_delta(
        &mut self,
        name: &str,
        parent_version: u64,
        delta: &pardict_core::DictDelta,
        fallback: Option<&[Vec<u8>]>,
    ) -> io::Result<Result<(u64, bool), ServiceError>> {
        if self.negotiated()? & wire::EXT_DELTA != 0 {
            let out = match self.roundtrip(&WireRequest::PubDelta {
                name: name.to_string(),
                parent_version,
                adds: delta.adds.clone(),
                removes: delta.removes.clone(),
            })? {
                WireResponse::Published { version, cache_hit } => Ok((version, cache_hit)),
                WireResponse::Error { code, message } => Err(error_from_wire(code, &message)),
                other => return Err(unexpected(&other)),
            };
            match (out, fallback) {
                (Err(_), Some(patterns)) => self.publish(name, patterns.to_vec()),
                (out, _) => Ok(out),
            }
        } else {
            match fallback {
                Some(patterns) => self.publish(name, patterns.to_vec()),
                None => Err(io::Error::new(
                    io::ErrorKind::Unsupported,
                    "peer does not speak delta publish and no fallback was provided",
                )),
            }
        }
    }

    /// Negotiate protocol extensions, caching the peer's mask. A peer
    /// predating `HELLO` answers with a clean "unknown request tag"
    /// error, which caches as mask 0 — never a misparse; `op_traced`
    /// then degrades to plain frames and [`Client::publish_delta`] to
    /// full publishes.
    ///
    /// # Errors
    /// I/O errors only; a legacy peer is not an error.
    pub fn hello(&mut self) -> io::Result<u32> {
        let mask = match self.roundtrip(&WireRequest::Hello {
            extensions: wire::EXT_TRACE | wire::EXT_DELTA,
        })? {
            WireResponse::Hello { extensions } => extensions,
            WireResponse::Error { .. } => 0,
            other => return Err(unexpected(&other)),
        };
        self.peer_extensions = Some(mask);
        Ok(mask)
    }

    /// The cached peer extension mask, negotiating on first use.
    fn negotiated(&mut self) -> io::Result<u32> {
        match self.peer_extensions {
            Some(mask) => Ok(mask),
            None => self.hello(),
        }
    }

    /// Run one operation (`tag::MATCH` … `tag::PARSE`, `tag::GREPZ`).
    ///
    /// # Errors
    /// I/O or protocol errors; service-level failures are in the inner
    /// `Result`.
    pub fn op(
        &mut self,
        tag: u8,
        dict: &str,
        text: &[u8],
        timeout_ms: u32,
    ) -> io::Result<Result<WireResponse, ServiceError>> {
        self.op_traced(tag, dict, text, timeout_ms, None)
    }

    /// [`Client::op`] with optional trace-context propagation. The
    /// context is only wrapped when the peer advertised
    /// [`wire::EXT_TRACE`] (negotiating lazily on first use) — an
    /// untraced or legacy peer gets the bit-identical legacy frame.
    ///
    /// # Errors
    /// I/O or protocol errors; service-level failures are in the inner
    /// `Result`.
    pub fn op_traced(
        &mut self,
        tag: u8,
        dict: &str,
        text: &[u8],
        timeout_ms: u32,
        trace: Option<TraceCtx>,
    ) -> io::Result<Result<WireResponse, ServiceError>> {
        let op = WireRequest::Op {
            tag,
            dict: dict.to_string(),
            text: text.to_vec(),
            timeout_ms,
        };
        let req = match trace {
            Some(ctx) if self.negotiated()? & wire::EXT_TRACE != 0 => WireRequest::Traced {
                trace: ctx.trace.0,
                parent: ctx.parent.0,
                inner: Box::new(op),
            },
            _ => op,
        };
        match self.roundtrip(&req)? {
            WireResponse::Error { code, message } => Ok(Err(error_from_wire(code, &message))),
            ok => Ok(Ok(ok)),
        }
    }

    /// Fetch the plain-text metrics report.
    ///
    /// # Errors
    /// I/O or protocol errors.
    pub fn metrics(&mut self) -> io::Result<String> {
        match self.roundtrip(&WireRequest::Metrics)? {
            WireResponse::MetricsReport(s) => Ok(s),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetch a structured metrics snapshot.
    ///
    /// # Errors
    /// I/O or protocol errors.
    pub fn stats(&mut self) -> io::Result<crate::metrics::MetricsSnapshot> {
        match self.roundtrip(&WireRequest::Stats)? {
            WireResponse::Stats(s) => Ok(s),
            other => Err(unexpected(&other)),
        }
    }

    /// List the server's installed dictionaries as
    /// `(name, version, content hash)` digests, sorted by name.
    ///
    /// # Errors
    /// I/O or protocol errors.
    pub fn dicts(&mut self) -> io::Result<Vec<(String, u64, u64)>> {
        match self.roundtrip(&WireRequest::Dicts)? {
            WireResponse::DictList(d) => Ok(d),
            other => Err(unexpected(&other)),
        }
    }
}

fn open_stream(addr: SocketAddr, cfg: &ClientConfig) -> io::Result<TcpStream> {
    let stream = match cfg.connect_timeout {
        Some(t) => TcpStream::connect_timeout(&addr, t)?,
        None => TcpStream::connect(addr)?,
    };
    stream.set_read_timeout(cfg.read_timeout)?;
    stream.set_write_timeout(cfg.write_timeout)?;
    Ok(stream)
}

fn unexpected(resp: &WireResponse) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("unexpected response: {resp:?}"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::metrics::Metrics;
    use crate::registry::Registry;
    use crate::types::Hit;

    fn test_engine() -> Engine {
        let metrics = Arc::new(Metrics::default());
        let registry = Arc::new(Registry::new(Arc::clone(&metrics)));
        Engine::new(
            EngineConfig {
                workers: 2,
                queue_depth: 64,
                max_batch: 8,
                seq_threshold: 4,
                stream_threshold: 1 << 16,
            },
            registry,
            metrics,
        )
    }

    #[test]
    fn tcp_round_trip_publish_match_metrics() {
        let engine = test_engine();
        let mut server = Server::start(engine.clone(), "127.0.0.1:0").unwrap();
        let mut client = Client::connect(server.addr()).unwrap();

        client.ping().unwrap();
        let (version, cache_hit) = client
            .publish("d", vec![b"ana".to_vec(), b"ban".to_vec()])
            .unwrap()
            .unwrap();
        assert_eq!(version, 1);
        assert!(!cache_hit);

        let resp = client
            .op(wire::tag::MATCH, "d", b"banana", 0)
            .unwrap()
            .unwrap();
        match resp {
            WireResponse::Hits { version, hits } => {
                assert_eq!(version, 1);
                assert!(hits.contains(&Hit {
                    pos: 0,
                    id: 1,
                    len: 3
                }));
            }
            other => panic!("unexpected {other:?}"),
        }

        let err = client
            .op(wire::tag::GREP, "missing", b"abc", 0)
            .unwrap()
            .unwrap_err();
        assert!(matches!(err, ServiceError::NoSuchDictionary(_)));

        // Container grep over the wire: compress a text, search it compressed.
        let text = b"banana bandana";
        let pram = pardict_pram::Pram::seq();
        let cfg = pardict_stream::StreamConfig::with_block_size(4);
        let (container, _) =
            pardict_stream::compress_stream(&pram, &mut &text[..], Vec::new(), &cfg).unwrap();
        let resp = client
            .op(wire::tag::GREPZ, "d", &container, 0)
            .unwrap()
            .unwrap();
        match resp {
            WireResponse::ContainerHits {
                version,
                hits,
                corrupt_blocks,
            } => {
                assert_eq!(version, 1);
                assert!(corrupt_blocks.is_empty());
                // "ana" straddles the 4-byte block boundary at offset 4.
                assert!(hits.contains(&Hit {
                    pos: 3,
                    id: 0,
                    len: 3
                }));
                assert!(hits.contains(&Hit {
                    pos: 7,
                    id: 1,
                    len: 3
                }));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(engine.metrics().grep_lane.get(), 1);

        let report = client.metrics().unwrap();
        assert!(report.contains("pardict-service metrics"));

        server.stop();
        engine.shutdown();
    }

    #[test]
    fn stats_op_ships_a_mergeable_snapshot() {
        let engine = test_engine();
        let mut server = Server::start(engine.clone(), "127.0.0.1:0").unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        client.publish("d", vec![b"aa".to_vec()]).unwrap().unwrap();
        client
            .op(wire::tag::MATCH, "d", b"aaaa", 0)
            .unwrap()
            .unwrap();
        let snap = client.stats().unwrap();
        assert_eq!(snap.publishes, 1);
        assert!(snap.completed >= 1);
        let m = snap.per_op[crate::types::OpKind::Match as usize].clone();
        assert_eq!(m.count, 1);
        assert_eq!(m.latency_us.count, 1);
        server.stop();
        engine.shutdown();
    }

    #[test]
    fn client_reconnects_once_when_the_server_drops_the_connection() {
        // A server that answers exactly one request per connection and
        // then closes it: the second ping lands on a dead socket and must
        // succeed only via the reconnect-then-retry path.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let served = std::thread::spawn(move || {
            let mut conns = 0;
            for _ in 0..2 {
                let (stream, _) = listener.accept().unwrap();
                conns += 1;
                let mut reader = stream.try_clone().unwrap();
                let mut writer = stream;
                let payload = read_frame(&mut reader).unwrap().unwrap();
                assert_eq!(WireRequest::decode(&payload).unwrap(), WireRequest::Ping);
                write_frame(&mut writer, &WireResponse::Pong.encode()).unwrap();
            }
            conns
        });
        let mut client = Client::connect(addr).unwrap();
        client.ping().unwrap();
        client.ping().unwrap();
        assert_eq!(
            served.join().unwrap(),
            2,
            "retry must use a fresh connection"
        );
    }

    #[test]
    fn client_read_timeout_errors_instead_of_hanging_and_is_not_retried() {
        // A listener that accepts but never answers. The ping must come
        // back as a timeout-class error — not hang, and not trigger the
        // reconnect path (the request may still be executing server-side).
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let accepted = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            // Hold the socket open past the client timeout, then count
            // any further connection attempts for 100ms.
            std::thread::sleep(Duration::from_millis(200));
            listener.set_nonblocking(true).unwrap();
            std::thread::sleep(Duration::from_millis(100));
            let retried = listener.accept().is_ok();
            drop(stream);
            retried
        });
        let cfg = ClientConfig {
            read_timeout: Some(Duration::from_millis(50)),
            ..ClientConfig::default()
        };
        let mut client = Client::connect_with(addr, cfg).unwrap();
        let err = client.ping().unwrap_err();
        assert!(
            matches!(
                err.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ),
            "expected a timeout, got {err:?}"
        );
        assert!(!accepted.join().unwrap(), "timeout must not reconnect");
    }
}
