//! # pardict-service — a concurrent dictionary-serving engine
//!
//! The paper's complexity story (§3) is an *amortization* story: dictionary
//! preprocessing costs `O(d)` work once, after which every text costs `O(n)`
//! work — "preprocess once, match many". A one-shot CLI can't exhibit that;
//! a long-running service is the setting where it pays off. This crate is
//! that setting:
//!
//! * [`registry::Registry`] — named, versioned dictionaries with atomic
//!   hot-swap (in-flight requests keep the version they resolved; every
//!   reply names the version it was computed against) and a content-hash
//!   preprocessing cache so republishing identical patterns is free.
//! * [`engine::Engine`] — a bounded submission queue and worker pool that
//!   drains requests in batches onto one [`pardict_pram::Pram::par()`] per
//!   batch, attributing each request's exact ledger [`pardict_pram::Cost`]
//!   via `metered` and returning it in [`types::ResponseMeta`].
//! * Admission control — explicit [`types::ServiceError::Overloaded`]
//!   rejections when the queue is full, per-request deadlines, and a
//!   sequential Aho–Corasick fallback lane for texts too small to amortize
//!   the parallel constant factors.
//! * [`metrics::Metrics`] — lock-free counters and log₂ histograms
//!   (latency, ledger work/depth) with a plain-text report.
//! * [`server::Server`] / [`server::Client`] — a `std::net` TCP front end
//!   speaking the length-prefixed [`wire`] protocol (no external
//!   dependencies), and [`selftest::run`] driving the whole stack with a
//!   seeded mixed workload including a mid-run hot swap.

#![warn(missing_docs)]

pub mod engine;
pub mod metrics;
pub mod registry;
pub mod selftest;
pub mod server;
pub mod types;
pub mod wire;

pub use engine::{Engine, EngineConfig, Ticket};
pub use metrics::{HistogramSnapshot, Metrics, MetricsSnapshot, OpSnapshot};
pub use registry::{DictVersion, PublishOutcome, Registry};
pub use server::{Client, ClientConfig, Server};
pub use types::{
    Hit, Lane, OpKind, OpRequest, Reply, Request, Response, ResponseMeta, ServiceError,
};
