//! The full dictionary matcher (Theorem 3.1) and its Las Vegas driver.

use crate::checker::{check_matches, CheckError};
use crate::dict::{Dictionary, Matches};
use crate::dsm::{substring_match, SubstringMatcher};
use crate::step2::Step2Tables;
use pardict_pram::{Pram, SplitMix64};
use pardict_suffix::SuffixTree;

/// A preprocessed dictionary matcher: Step 1's substring matcher plus
/// Step 2's pattern tables.
///
/// `O(d)`-work preprocessing (up to the two logged doubling/centroid
/// components, see DESIGN.md), then `O(n)`-work `O(log d)`-depth matching
/// per text on constant alphabets.
#[derive(Debug)]
pub struct DictMatcher {
    dict: Dictionary,
    sub: SubstringMatcher,
    tables: Step2Tables,
}

impl DictMatcher {
    /// Preprocess `dict` with fingerprint randomness from `seed`.
    #[must_use]
    pub fn build(pram: &Pram, dict: Dictionary, seed: u64) -> Self {
        Self::build_profiled(pram, dict, seed).0
    }

    /// [`DictMatcher::build`] with per-stage ledger costs — the E1
    /// preprocessing breakdown (suffix tree, separator tree, colored
    /// ancestors, Step-2 tables).
    #[must_use]
    pub fn build_profiled(
        pram: &Pram,
        dict: Dictionary,
        seed: u64,
    ) -> (Self, Vec<(&'static str, pardict_pram::Cost)>) {
        let mut rng = SplitMix64::new(seed);
        let sub_seed = rng.next_u64();
        let mut srng = SplitMix64::new(sub_seed);
        let (st, c_tree) =
            pram.metered(|p| pardict_suffix::SuffixTree::build(p, dict.dhat(), srng.next_u64()));
        let (sub, mut stages) =
            crate::dsm::SubstringMatcher::from_tree_profiled(pram, st, srng.next_u64());
        let (tables, c_tables) =
            pram.metered(|p| Step2Tables::build(p, &dict, sub.tree(), rng.next_u64()));
        let mut profile = vec![("suffix tree", c_tree)];
        profile.append(&mut stages);
        profile.push(("step-2 tables", c_tables));
        (Self { dict, sub, tables }, profile)
    }

    /// The dictionary.
    #[must_use]
    pub fn dictionary(&self) -> &Dictionary {
        &self.dict
    }

    /// The suffix tree of `D̂`.
    #[must_use]
    pub fn tree(&self) -> &SuffixTree {
        self.sub.tree()
    }

    /// The Step-1 substring matcher.
    #[must_use]
    pub fn substring_matcher(&self) -> &SubstringMatcher {
        &self.sub
    }

    /// One Monte Carlo matching pass: `M[i]` for every text position.
    /// Correct with high probability; pair with [`DictMatcher::check`] or
    /// use [`dictionary_match`] for the Las Vegas guarantee.
    #[must_use]
    pub fn match_text(&self, pram: &Pram, text: &[u8]) -> Matches {
        let loci = substring_match(pram, &self.sub, text);
        let inner = pram.map(&loci, |_, &locus| {
            self.tables.longest_pattern(&self.dict, locus)
        });
        Matches::new(inner)
    }

    /// Every pattern occurrence in the text, as `(position, match)` pairs
    /// ordered by position then decreasing length — the classical
    /// "report all occurrences" output, derived from the same `S[i]` loci
    /// in output-sensitive time. Duplicate patterns are reported once
    /// (smallest id). Monte Carlo like [`DictMatcher::match_text`].
    #[must_use]
    pub fn find_all(&self, pram: &Pram, text: &[u8]) -> Vec<(usize, crate::dict::Match)> {
        let loci = substring_match(pram, &self.sub, text);
        let per_pos: Vec<Vec<crate::dict::Match>> = pram.tabulate_costed(loci.len(), |i| {
            let v = self.tables.all_patterns_at(&self.dict, loci[i]);
            let cost = v.len() as u64 + 1;
            (v, cost)
        });
        let mut out = Vec::new();
        for (i, ms) in per_pos.into_iter().enumerate() {
            for m in ms {
                out.push((i, m));
            }
        }
        out
    }

    /// Step 2A only: for every position, the longest *pattern-prefix*
    /// length and a certificate pattern id — the `M` array of §5's static
    /// dictionary compression (which assumes the prefix property, so any
    /// pattern prefix is a dictionary word). Monte Carlo like
    /// [`DictMatcher::match_text`].
    #[must_use]
    pub fn pattern_prefixes(&self, pram: &Pram, text: &[u8]) -> Vec<Option<(u32, u32)>> {
        let loci = substring_match(pram, &self.sub, text);
        pram.map(&loci, |_, &l| self.tables.pattern_prefix(&self.dict, l))
    }

    /// Exact §3.4 verification of a match array for `text`.
    ///
    /// # Errors
    /// Returns the detected inconsistency, if any.
    pub fn check(&self, pram: &Pram, text: &[u8], matches: &Matches) -> Result<(), CheckError> {
        check_matches(pram, &self.dict, self.tree(), text, matches)
    }
}

/// Attempts before declaring the (astronomically unlikely) systematic
/// failure of the Las Vegas loop.
const MAX_ATTEMPTS: u32 = 8;

/// Las Vegas dictionary matching: build, match, verify; re-randomize and
/// retry on a checker failure. Expected `O(d + n)` work overall.
///
/// # Panics
/// Panics if [`MAX_ATTEMPTS`] independent seeds all fail verification —
/// with 61-bit fingerprints this indicates a bug, not bad luck.
#[must_use]
pub fn dictionary_match(pram: &Pram, dict: &Dictionary, text: &[u8], seed: u64) -> Matches {
    let mut rng = SplitMix64::new(seed);
    for attempt in 0..MAX_ATTEMPTS {
        let matcher = DictMatcher::build(pram, dict.clone(), rng.next_u64());
        let matches = matcher.match_text(pram, text);
        match matcher.check(pram, text, &matches) {
            Ok(()) => return matches,
            Err(e) => {
                debug_assert!(false, "checker rejected attempt {attempt}: {e:?}");
            }
        }
    }
    panic!("dictionary_match failed {MAX_ATTEMPTS} Las Vegas attempts");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ac::{brute_force_matches, AhoCorasick};
    use pardict_workloads::{
        dictionary_from_text, markov_text, prefix_heavy_dictionary, random_dictionary,
        text_with_planted_matches, Alphabet,
    };

    fn assert_same(dict: &Dictionary, text: &[u8], got: &Matches) {
        let want = AhoCorasick::build(dict).match_text(text);
        for i in 0..text.len() {
            assert_eq!(
                got.get(i).map(|m| m.len),
                want.get(i).map(|m| m.len),
                "len mismatch at {i}"
            );
            // Ids may differ between equal patterns; lengths + occurrence
            // are the specification.
            if let Some(m) = got.get(i) {
                let p = &dict.patterns()[m.id as usize];
                assert_eq!(p.len() as u32, m.len);
                assert_eq!(
                    &text[i..i + p.len()],
                    p.as_slice(),
                    "claimed pattern at {i}"
                );
            }
        }
    }

    #[test]
    fn matches_aho_corasick_dna() {
        for seed in 0..5u64 {
            let pram = Pram::seq();
            let alpha = Alphabet::dna();
            let dict = Dictionary::new(random_dictionary(seed, 20, 2, 10, alpha));
            let text = text_with_planted_matches(seed + 31, dict.patterns(), 600, 30, alpha);
            let got = dictionary_match(&pram, &dict, &text, seed);
            assert_same(&dict, &text, &got);
        }
    }

    #[test]
    fn matches_aho_corasick_wide_alphabet() {
        for seed in 0..3u64 {
            let pram = Pram::seq();
            let alpha = Alphabet::lowercase();
            let dict = Dictionary::new(prefix_heavy_dictionary(seed, 25, 4, 6, alpha));
            let text = text_with_planted_matches(seed + 7, dict.patterns(), 500, 25, alpha);
            let got = dictionary_match(&pram, &dict, &text, seed);
            assert_same(&dict, &text, &got);
        }
    }

    #[test]
    fn binary_alphabet_dense_matches() {
        let pram = Pram::seq();
        let alpha = Alphabet::binary();
        let dict = Dictionary::new(random_dictionary(11, 10, 1, 7, alpha));
        let text = markov_text(12, 700, alpha);
        let got = dictionary_match(&pram, &dict, &text, 13);
        assert_same(&dict, &text, &got);
    }

    #[test]
    fn single_pattern_and_tiny_texts() {
        let pram = Pram::seq();
        let dict = Dictionary::new(vec![b"aba".to_vec()]);
        let got = dictionary_match(&pram, &dict, b"ababa", 1);
        assert_same(&dict, b"ababa", &got);
        let got = dictionary_match(&pram, &dict, b"x", 1);
        assert!(got.get(0).is_none());
        let got = dictionary_match(&pram, &dict, b"", 1);
        assert!(got.is_empty());
    }

    #[test]
    fn identical_and_nested_patterns() {
        let pram = Pram::seq();
        let dict = Dictionary::new(vec![
            b"ab".to_vec(),
            b"ab".to_vec(),
            b"abab".to_vec(),
            b"b".to_vec(),
            b"ba".to_vec(),
        ]);
        let text = b"abababab";
        let got = dictionary_match(&pram, &dict, text, 3);
        assert_same(&dict, text, &got);
        assert_eq!(got.get(0).unwrap().len, 4);
    }

    #[test]
    fn patterns_sampled_from_text() {
        let pram = Pram::seq();
        let base = markov_text(21, 800, Alphabet::dna());
        let dict = Dictionary::new(dictionary_from_text(22, &base, 15, 3, 20));
        let text = &base[100..700];
        let got = dictionary_match(&pram, &dict, text, 23);
        assert_same(&dict, text, &got);
    }

    #[test]
    fn brute_force_spot_check() {
        let pram = Pram::seq();
        let dict = Dictionary::new(vec![b"aa".to_vec(), b"aab".to_vec(), b"ba".to_vec()]);
        let text = b"aabaaabab";
        let got = dictionary_match(&pram, &dict, text, 5);
        let want = brute_force_matches(&dict, text);
        for i in 0..text.len() {
            assert_eq!(
                got.get(i).map(|m| m.len),
                want.get(i).map(|m| m.len),
                "i={i}"
            );
        }
    }

    #[test]
    fn find_all_reports_every_occurrence() {
        let pram = Pram::seq();
        let alpha = Alphabet::dna();
        let dict = Dictionary::new(random_dictionary(61, 12, 1, 5, alpha));
        let text = text_with_planted_matches(62, dict.patterns(), 300, 35, alpha);
        let matcher = DictMatcher::build(&pram, dict.clone(), 63);
        let mut got = matcher.find_all(&pram, &text);
        got.sort_by_key(|&(i, m)| (i, m.id));
        // Brute-force oracle: every (position, pattern) occurrence.
        let mut want = Vec::new();
        for i in 0..text.len() {
            for (t, p) in dict.patterns().iter().enumerate() {
                if i + p.len() <= text.len() && &text[i..i + p.len()] == p.as_slice() {
                    want.push((
                        i,
                        crate::dict::Match {
                            id: t as u32,
                            len: p.len() as u32,
                        },
                    ));
                }
            }
        }
        want.sort_by_key(|&(i, m)| (i, m.id));
        assert_eq!(got, want);
    }

    #[test]
    fn find_all_expands_duplicate_patterns() {
        let pram = Pram::seq();
        let dict = Dictionary::new(vec![b"ab".to_vec(), b"ab".to_vec(), b"b".to_vec()]);
        let matcher = DictMatcher::build(&pram, dict, 1);
        let hits = matcher.find_all(&pram, b"ab");
        let at0: Vec<u32> = hits
            .iter()
            .filter(|&&(i, _)| i == 0)
            .map(|&(_, m)| m.id)
            .collect();
        assert_eq!(at0, vec![0, 1], "both duplicate ids reported");
    }

    #[test]
    fn matching_work_linear_preprocessing_reported() {
        let pram = Pram::seq();
        let alpha = Alphabet::dna();
        let dict = Dictionary::new(random_dictionary(31, 40, 4, 12, alpha));
        let (matcher, pre_cost) = pram.metered(|p| DictMatcher::build(p, dict.clone(), 32));
        assert!(pre_cost.work > 0 && pre_cost.depth > 0);
        let mut per_char = Vec::new();
        for n in [1usize << 11, 1 << 13, 1 << 15] {
            let text = text_with_planted_matches(n as u64, dict.patterns(), n, 25, alpha);
            let (_, cost) = pram.metered(|p| matcher.match_text(p, &text));
            per_char.push(cost.work as f64 / n as f64);
        }
        assert!(
            per_char[2] < per_char[0] * 1.5 + 4.0,
            "matching work superlinear: {per_char:?}"
        );
    }
}
