//! The previous-best parallel baseline (the [MP93] cost envelope).
//!
//! Muthukrishnan–Palem matched texts with `O(n·√(log m))` work; before
//! that, per-position independent binary search gave `O(n·log m)`. This
//! module implements the latter envelope faithfully: every text position
//! independently binary-searches the longest pattern prefix starting there,
//! with `O(log m)` fingerprint probes into a hash table of all pattern
//! prefixes. It is *depth-optimal but work-suboptimal* — exactly the
//! comparison the paper's Theorem 3.1 improves on, and what experiment E2
//! plots against the work-optimal matcher.

use crate::dict::{Dictionary, Match, Matches};
use pardict_fingerprint::{random_base, PrefixHashes};
use pardict_pram::Pram;
use std::collections::HashMap;

/// Per-position binary-search matcher: `O(d)`-work preprocessing,
/// `O(n log m)`-work matching, `O(log m)` depth. Monte Carlo (same
/// fingerprint regime as the main matcher).
#[must_use]
pub fn mp93_baseline(pram: &Pram, dict: &Dictionary, text: &[u8], seed: u64) -> Matches {
    let base = random_base(seed);
    let dhashes = PrefixHashes::build(pram, dict.dhat(), base);
    let thashes = PrefixHashes::build(pram, text, base);

    // All pattern prefixes, each mapping to the longest complete pattern
    // that is a prefix of it (computed pattern-by-pattern, O(d) total).
    let mut whole: HashMap<(u64, u32), u32> = HashMap::with_capacity(dict.num_patterns());
    pram.ledger().round(dict.num_patterns() as u64);
    for t in 0..dict.num_patterns() {
        let fp = dhashes.substring(dict.offset(t), dict.pattern_len(t));
        whole
            .entry((fp, dict.pattern_len(t) as u32))
            .or_insert(t as u32);
    }
    let mut prefixes: HashMap<(u64, u32), Option<Match>> = HashMap::with_capacity(dict.total_len());
    pram.ledger().round(dict.total_len() as u64);
    for t in 0..dict.num_patterns() {
        let off = dict.offset(t);
        let mut best: Option<Match> = None;
        for l in 1..=dict.pattern_len(t) {
            let fp = dhashes.substring(off, l);
            if let Some(&id) = whole.get(&(fp, l as u32)) {
                best = Some(Match { id, len: l as u32 });
            }
            prefixes.entry((fp, l as u32)).or_insert(best);
        }
    }

    let m = dict.max_pattern_len();
    let n = text.len();
    let inner: Vec<Option<Match>> = pram.tabulate_costed(n, |i| {
        let cap = m.min(n - i);
        let is_prefix =
            |l: usize| -> bool { prefixes.contains_key(&(thashes.substring(i, l), l as u32)) };
        // Binary search the longest pattern prefix at i (prefix-ness is
        // monotone in l).
        let mut ops = 1u64;
        let (mut lo, mut hi) = (0usize, cap);
        while lo < hi {
            let mid = (lo + hi).div_ceil(2);
            ops += 1;
            if is_prefix(mid) {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        if lo == 0 {
            return (None, ops);
        }
        let best = prefixes[&(thashes.substring(i, lo), lo as u32)];
        (best, ops)
    });
    Matches::new(inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ac::AhoCorasick;
    use pardict_pram::ceil_log2;
    use pardict_workloads::{random_dictionary, text_with_planted_matches, Alphabet};

    #[test]
    fn agrees_with_aho_corasick() {
        for seed in 0..5u64 {
            let pram = Pram::seq();
            let alpha = Alphabet::dna();
            let dict = Dictionary::new(random_dictionary(seed, 18, 2, 9, alpha));
            let text = text_with_planted_matches(seed + 3, dict.patterns(), 400, 30, alpha);
            let got = mp93_baseline(&pram, &dict, &text, seed);
            let want = AhoCorasick::build(&dict).match_text(&text);
            for i in 0..text.len() {
                assert_eq!(
                    got.get(i).map(|m| m.len),
                    want.get(i).map(|m| m.len),
                    "seed={seed} i={i}"
                );
            }
        }
    }

    #[test]
    fn work_carries_a_log_factor() {
        // The baseline's matching work per character grows with log m.
        let pram = Pram::seq();
        let alpha = Alphabet::dna();
        let mut per_char = Vec::new();
        for mexp in [3u32, 6, 9] {
            let m = 1usize << mexp;
            let dict = Dictionary::new(random_dictionary(9, 8, m, m, alpha));
            let text = text_with_planted_matches(10, dict.patterns(), 4000, 20, alpha);
            let (_, cost) = pram.metered(|p| mp93_baseline(p, &dict, &text, 11));
            per_char.push(cost.work as f64 / text.len() as f64);
        }
        assert!(
            per_char[2] > per_char[0] + 2.0,
            "expected growing work/char: {per_char:?}"
        );
        let _ = ceil_log2(1);
    }
}
