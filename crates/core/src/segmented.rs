//! Incremental dictionary updates via canonical segmentation.
//!
//! The paper's amortization — preprocess once in `O(d)`, match many — is
//! only as good as the dictionary's stability: one inserted or retired
//! pattern should not cost a full `O(d)` re-preprocessing. The dynamic
//! dictionary-matching line (Amir–Farach adaptive matching, and the
//! small-space multiple-pattern matching of arXiv:1504.06647) prices an
//! update proportional to the patterns touched. This module provides that
//! with a twist the serving layer needs: **rebuild equivalence**.
//!
//! The pattern list is cut into *content-defined segments* — a boundary
//! falls after pattern `p` whenever a mixed hash of `p` hits a fixed
//! residue (expected segment size [`SEGMENT_TARGET`], hard cap
//! [`SEGMENT_CAP`]), so segment boundaries are a pure function of the
//! final pattern list, never of the edit history. Each segment carries its
//! own [`DictMatcher`] and [`AhoCorasick`], seeded from the segment's own
//! content hash. Consequently `build(final)` and
//! `apply_delta(parent, delta)` converge to structurally *identical*
//! matchers: an applied delta rebuilds only the segments whose pattern
//! runs changed (reusing the rest by `Arc`), yet every query — results
//! *and* ledger costs — is indistinguishable from a from-scratch build.
//! That is the oracle `tests/delta.rs` enforces, and what distinguishes
//! this from [`crate::AdaptiveDictMatcher`], whose Bentley–Saxe groups
//! depend on insertion order.
//!
//! Dictionaries of at most [`SINGLE_SEGMENT_MAX`] patterns stay in one
//! segment whose seed equals the classic whole-dictionary seed, so small
//! dictionaries behave bit-identically to a bare [`DictMatcher`].

use crate::ac::AhoCorasick;
use crate::dict::{Dictionary, Match, Matches};
use crate::matcher::DictMatcher;
use pardict_pram::{Cost, Pram};
use std::sync::Arc;

/// Dictionaries with at most this many patterns use a single segment
/// (delta updates then rebuild everything, which is cheap at this size).
pub const SINGLE_SEGMENT_MAX: usize = 64;

/// Expected patterns per segment: a boundary falls after a pattern with
/// probability `1 / SEGMENT_TARGET`.
pub const SEGMENT_TARGET: u64 = 256;

/// Hard cap on patterns per segment (bounds rebuild cost under
/// adversarially boundary-free pattern runs).
pub const SEGMENT_CAP: usize = 1024;

/// A pattern-set edit: `removes` are applied first (each removes *every*
/// occurrence of its exact value and must match at least one pattern),
/// then `adds` are appended in order. Surviving patterns keep their
/// relative order, so pattern ids stay deterministic along any delta
/// chain reaching the same final list.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DictDelta {
    /// Patterns appended after the removes.
    pub adds: Vec<Vec<u8>>,
    /// Exact pattern values to remove (all occurrences each).
    pub removes: Vec<Vec<u8>>,
}

impl DictDelta {
    /// True when the delta edits nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.adds.is_empty() && self.removes.is_empty()
    }
}

/// Why a [`DictDelta`] could not be applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// `removes[index]` matched no pattern in the parent set.
    RemoveMissing {
        /// Index into [`DictDelta::removes`].
        index: usize,
    },
    /// The delta would leave the dictionary empty.
    EmptyResult,
    /// `adds[index]` is empty.
    EmptyAdd {
        /// Index into [`DictDelta::adds`].
        index: usize,
    },
    /// `adds[index]` contains a NUL byte.
    NulAdd {
        /// Index into [`DictDelta::adds`].
        index: usize,
    },
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::RemoveMissing { index } => {
                write!(f, "remove {index} matches no pattern in the parent set")
            }
            Self::EmptyResult => write!(f, "delta would leave the dictionary empty"),
            Self::EmptyAdd { index } => write!(f, "added pattern {index} is empty"),
            Self::NulAdd { index } => write!(f, "added pattern {index} contains NUL"),
        }
    }
}

impl std::error::Error for DeltaError {}

/// FNV-1a over the length-prefixed pattern list — order-*sensitive*, the
/// seed and cache key for one segment (and, for a single-segment
/// dictionary, identical to the classic whole-dictionary content hash).
#[must_use]
pub fn list_hash(patterns: &[Vec<u8>]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |byte: u8| {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for p in patterns {
        for b in (p.len() as u64).to_le_bytes() {
            eat(b);
        }
        for &b in p {
            eat(b);
        }
    }
    h
}

/// Mixed per-pattern hash: drives both segment boundaries and the
/// multiset identity.
#[must_use]
pub fn pattern_identity(pattern: &[u8]) -> u64 {
    // FNV-1a over the length-prefixed pattern, finalized with the
    // SplitMix64 mixer so low bits are usable for boundary residues.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let eat = |acc: u64, byte: u8| (acc ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3);
    for b in (pattern.len() as u64).to_le_bytes() {
        h = eat(h, b);
    }
    for &b in pattern {
        h = eat(h, b);
    }
    let mut z = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Commutative multiset identity of a pattern list: the wrapping sum of
/// [`pattern_identity`] over all patterns. Incrementally maintainable —
/// applying a delta updates it in `O(|delta|)` via [`chain_identity`],
/// and the chained value equals the from-scratch value of the final list,
/// so cache identities and cluster revival skips agree across delta and
/// full-publish paths. Identity of a *multiset*: permutations collide by
/// design (they define the same pattern set, though with permuted ids).
#[must_use]
pub fn multiset_identity(patterns: &[Vec<u8>]) -> u64 {
    patterns
        .iter()
        .fold(0u64, |acc, p| acc.wrapping_add(pattern_identity(p)))
}

/// Update a parent's [`multiset_identity`] by a delta: subtract each
/// removed pattern `count` times, add each added pattern once. Equals
/// `multiset_identity` of the post-delta list.
#[must_use]
pub fn chain_identity(parent: u64, delta: &DictDelta, removed_counts: &[u64]) -> u64 {
    let mut h = parent;
    for (r, &count) in delta.removes.iter().zip(removed_counts) {
        h = h.wrapping_sub(pattern_identity(r).wrapping_mul(count));
    }
    for a in &delta.adds {
        h = h.wrapping_add(pattern_identity(a));
    }
    h
}

/// Apply `delta` to `parent` patterns, returning the final list plus the
/// occurrence count removed per `removes` entry (for [`chain_identity`]).
///
/// # Errors
/// See [`DeltaError`]; on error the parent is untouched (pure function).
pub fn apply_delta_patterns(
    parent: &[Vec<u8>],
    delta: &DictDelta,
) -> Result<(Vec<Vec<u8>>, Vec<u64>), DeltaError> {
    for (i, a) in delta.adds.iter().enumerate() {
        if a.is_empty() {
            return Err(DeltaError::EmptyAdd { index: i });
        }
        if a.contains(&0) {
            return Err(DeltaError::NulAdd { index: i });
        }
    }
    let mut kept: Vec<Vec<u8>> = parent.to_vec();
    let mut counts = Vec::with_capacity(delta.removes.len());
    for (i, r) in delta.removes.iter().enumerate() {
        let before = kept.len();
        kept.retain(|p| p != r);
        let removed = (before - kept.len()) as u64;
        if removed == 0 {
            return Err(DeltaError::RemoveMissing { index: i });
        }
        counts.push(removed);
    }
    kept.extend(delta.adds.iter().cloned());
    if kept.is_empty() {
        return Err(DeltaError::EmptyResult);
    }
    Ok((kept, counts))
}

/// Canonical segment spans of a pattern list: a pure function of the list
/// (see the module docs), so any two paths to the same list cut it the
/// same way.
#[must_use]
pub fn segment_spans(patterns: &[Vec<u8>]) -> Vec<std::ops::Range<usize>> {
    let n = patterns.len();
    if n <= SINGLE_SEGMENT_MAX {
        return std::iter::once(0..n).collect();
    }
    let mut spans = Vec::new();
    let mut start = 0usize;
    for (i, p) in patterns.iter().enumerate() {
        let boundary = pattern_identity(p).is_multiple_of(SEGMENT_TARGET);
        if boundary || i + 1 - start >= SEGMENT_CAP || i + 1 == n {
            spans.push(start..i + 1);
            start = i + 1;
        }
    }
    spans
}

/// One immutable, shareable segment: a run of patterns with its own
/// preprocessed matcher and exact automaton. Pattern ids inside are
/// segment-local; [`SegmentedMatcher`] offsets them by the segment's base.
#[derive(Debug)]
pub struct Segment {
    matcher: DictMatcher,
    ac: AhoCorasick,
    list_hash: u64,
    build_cost: Cost,
}

impl Segment {
    /// Preprocess one segment. The fingerprint seed derives from the
    /// segment's own content hash, so equal-content segments are
    /// bit-identical regardless of how they were reached.
    #[must_use]
    pub fn build(pram: &Pram, patterns: Vec<Vec<u8>>) -> Self {
        let hash = list_hash(&patterns);
        let dict = Dictionary::new(patterns);
        let seed = hash | 1;
        let (matcher, build_cost) = pram.metered(|p| DictMatcher::build(p, dict, seed));
        let ac = AhoCorasick::build(matcher.dictionary());
        Self {
            matcher,
            ac,
            list_hash: hash,
            build_cost,
        }
    }

    /// The segment's Theorem-3.1 matcher (segment-local pattern ids).
    #[must_use]
    pub fn matcher(&self) -> &DictMatcher {
        &self.matcher
    }

    /// The segment's exact automaton (segment-local pattern ids).
    #[must_use]
    pub fn ac(&self) -> &AhoCorasick {
        &self.ac
    }

    /// Order-sensitive content hash of the segment's patterns.
    #[must_use]
    pub fn list_hash(&self) -> u64 {
        self.list_hash
    }

    /// Ledger cost of this segment's preprocessing.
    #[must_use]
    pub fn build_cost(&self) -> Cost {
        self.build_cost
    }

    /// Patterns in this segment.
    #[must_use]
    pub fn patterns(&self) -> &[Vec<u8>] {
        self.matcher.dictionary().patterns()
    }
}

/// How a [`SegmentedMatcher`] assembly went: how much was reused.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SegmentBuildStats {
    /// Segments in the final structure.
    pub segments_total: usize,
    /// Segments reused (by `Arc`) instead of rebuilt.
    pub segments_reused: usize,
}

/// A dictionary preprocessed as canonical segments (see module docs).
///
/// Queries run each segment in base order and merge; a single-segment
/// dictionary delegates directly, with zero overhead over [`DictMatcher`].
#[derive(Debug, Clone)]
pub struct SegmentedMatcher {
    slots: Vec<Slot>,
    identity: u64,
    num_patterns: usize,
    max_pattern_len: usize,
    build_cost: Cost,
}

#[derive(Debug, Clone)]
struct Slot {
    /// Global id of the segment's first pattern.
    base: u32,
    seg: Arc<Segment>,
}

impl SegmentedMatcher {
    /// Preprocess `patterns` from scratch.
    ///
    /// # Panics
    /// Panics on an empty list, an empty pattern, or NUL bytes (validate
    /// first at service boundaries; `Dictionary::new` enforces this).
    #[must_use]
    pub fn build(pram: &Pram, patterns: Vec<Vec<u8>>) -> Self {
        Self::build_with_reuse(pram, patterns, |_| None).0
    }

    /// Preprocess `patterns`, asking `lookup` for an existing segment by
    /// content hash before building one. Reused segments must have been
    /// produced by this module for the same pattern run (the hash is the
    /// contract), which keeps the canonical-structure guarantee.
    #[must_use]
    pub fn build_with_reuse(
        pram: &Pram,
        patterns: Vec<Vec<u8>>,
        mut lookup: impl FnMut(u64) -> Option<Arc<Segment>>,
    ) -> (Self, SegmentBuildStats) {
        assert!(!patterns.is_empty(), "dictionary must not be empty");
        let identity = multiset_identity(&patterns);
        let num_patterns = patterns.len();
        let max_pattern_len = patterns.iter().map(Vec::len).max().unwrap_or(0);
        let spans = segment_spans(&patterns);
        let mut stats = SegmentBuildStats {
            segments_total: spans.len(),
            segments_reused: 0,
        };
        let mut slots = Vec::with_capacity(spans.len());
        let mut build_cost = Cost::default();
        for span in spans {
            let base = span.start as u32;
            let chunk = &patterns[span];
            let hash = list_hash(chunk);
            let seg = match lookup(hash) {
                Some(seg) if seg.patterns() == chunk => {
                    stats.segments_reused += 1;
                    seg
                }
                _ => Arc::new(Segment::build(pram, chunk.to_vec())),
            };
            build_cost = build_cost.plus(seg.build_cost());
            slots.push(Slot { base, seg });
        }
        (
            Self {
                slots,
                identity,
                num_patterns,
                max_pattern_len,
                build_cost,
            },
            stats,
        )
    }

    /// Apply `delta`, reusing this matcher's segments for every pattern
    /// run the edit left untouched. The result is structurally identical
    /// to [`SegmentedMatcher::build`] on the post-delta list.
    ///
    /// # Errors
    /// See [`DeltaError`].
    pub fn apply_delta(
        &self,
        pram: &Pram,
        delta: &DictDelta,
    ) -> Result<(Self, SegmentBuildStats), DeltaError> {
        let (finals, _counts) = apply_delta_patterns(&self.patterns(), delta)?;
        let mut by_hash: std::collections::HashMap<u64, Arc<Segment>> = self
            .slots
            .iter()
            .map(|s| (s.seg.list_hash(), Arc::clone(&s.seg)))
            .collect();
        Ok(Self::build_with_reuse(pram, finals, move |h| {
            by_hash.remove(&h)
        }))
    }

    /// All patterns in global-id order (concatenated segment runs).
    #[must_use]
    pub fn patterns(&self) -> Vec<Vec<u8>> {
        self.slots
            .iter()
            .flat_map(|s| s.seg.patterns().iter().cloned())
            .collect()
    }

    /// Commutative multiset identity of the pattern set (see
    /// [`multiset_identity`]).
    #[must_use]
    pub fn identity(&self) -> u64 {
        self.identity
    }

    /// Number of patterns.
    #[must_use]
    pub fn num_patterns(&self) -> usize {
        self.num_patterns
    }

    /// Number of segments.
    #[must_use]
    pub fn num_segments(&self) -> usize {
        self.slots.len()
    }

    /// Total ledger cost of preprocessing every segment (whether built
    /// now or inherited).
    #[must_use]
    pub fn build_cost(&self) -> Cost {
        self.build_cost
    }

    /// The single segment, when there is exactly one (the fast path).
    fn single(&self) -> Option<&Segment> {
        match self.slots.as_slice() {
            [only] if only.base == 0 => Some(&only.seg),
            _ => None,
        }
    }

    /// Longest pattern at every text position (merged across segments:
    /// longest wins, ties to the smallest global id). Monte Carlo like
    /// [`DictMatcher::match_text`]; verify with
    /// [`SegmentedMatcher::match_text_verified`].
    #[must_use]
    pub fn match_text(&self, pram: &Pram, text: &[u8]) -> Matches {
        if let Some(seg) = self.single() {
            return seg.matcher().match_text(pram, text);
        }
        let mut acc: Vec<Option<Match>> = vec![None; text.len()];
        for slot in &self.slots {
            let m = slot.seg.matcher().match_text(pram, text);
            merge_matches(&mut acc, &m, slot.base);
        }
        Matches::new(acc)
    }

    /// Las Vegas matching without rebuilding: per segment, one Monte Carlo
    /// pass vetted by the exact §3.4 checker, falling back to the
    /// segment's automaton on the (astronomically rare) fingerprint
    /// collision. Returns the merged matches plus whether any segment
    /// fell back.
    #[must_use]
    pub fn match_text_verified(&self, pram: &Pram, text: &[u8]) -> (Matches, bool) {
        if let Some(seg) = self.single() {
            let m = seg.matcher().match_text(pram, text);
            return if seg.matcher().check(pram, text, &m).is_ok() {
                (m, false)
            } else {
                (seg.ac().match_text(text), true)
            };
        }
        let mut acc: Vec<Option<Match>> = vec![None; text.len()];
        let mut fell_back = false;
        for slot in &self.slots {
            let m = slot.seg.matcher().match_text(pram, text);
            let m = if slot.seg.matcher().check(pram, text, &m).is_ok() {
                m
            } else {
                fell_back = true;
                slot.seg.ac().match_text(text)
            };
            merge_matches(&mut acc, &m, slot.base);
        }
        (Matches::new(acc), fell_back)
    }

    /// Exact matching on the per-segment automata (the sequential lane).
    #[must_use]
    pub fn ac_match(&self, text: &[u8]) -> Matches {
        if let Some(seg) = self.single() {
            return seg.ac().match_text(text);
        }
        let mut acc: Vec<Option<Match>> = vec![None; text.len()];
        for slot in &self.slots {
            let m = slot.seg.ac().match_text(text);
            merge_matches(&mut acc, &m, slot.base);
        }
        Matches::new(acc)
    }

    /// Every occurrence as `(position, match)` with global ids, ordered by
    /// position, then decreasing length, then id. Monte Carlo like
    /// [`DictMatcher::find_all`].
    #[must_use]
    pub fn find_all(&self, pram: &Pram, text: &[u8]) -> Vec<(usize, Match)> {
        if let Some(seg) = self.single() {
            return seg.matcher().find_all(pram, text);
        }
        let mut out: Vec<(usize, Match)> = Vec::new();
        for slot in &self.slots {
            out.extend(
                slot.seg
                    .matcher()
                    .find_all(pram, text)
                    .into_iter()
                    .map(|(i, m)| {
                        (
                            i,
                            Match {
                                id: m.id + slot.base,
                                len: m.len,
                            },
                        )
                    }),
            );
        }
        out.sort_by(|a, b| {
            a.0.cmp(&b.0)
                .then(b.1.len.cmp(&a.1.len))
                .then(a.1.id.cmp(&b.1.id))
        });
        out
    }

    /// Per-position longest pattern-*prefix* `(len, global id)` (the `M`
    /// array of §5's static compression), merged across segments like
    /// [`SegmentedMatcher::match_text`].
    #[must_use]
    pub fn pattern_prefixes(&self, pram: &Pram, text: &[u8]) -> Vec<Option<(u32, u32)>> {
        if let Some(seg) = self.single() {
            return seg.matcher().pattern_prefixes(pram, text);
        }
        let mut acc: Vec<Option<(u32, u32)>> = vec![None; text.len()];
        for slot in &self.slots {
            for (i, o) in slot
                .seg
                .matcher()
                .pattern_prefixes(pram, text)
                .into_iter()
                .enumerate()
            {
                if let Some((len, id)) = o {
                    let cand = (len, id + slot.base);
                    acc[i] = Some(match acc[i] {
                        Some(best) if !prefers(cand, best) => best,
                        _ => cand,
                    });
                }
            }
        }
        acc
    }

    /// Length of the longest pattern.
    #[must_use]
    pub fn max_pattern_len(&self) -> usize {
        self.max_pattern_len
    }

    /// Segments in base order, for cache insertion by the serving layer.
    pub fn segments(&self) -> impl Iterator<Item = &Arc<Segment>> {
        self.slots.iter().map(|s| &s.seg)
    }
}

/// Does `(len, id)` candidate `a` beat `b`? Longer wins; ties to the
/// smaller global id.
fn prefers(a: (u32, u32), b: (u32, u32)) -> bool {
    a.0 > b.0 || (a.0 == b.0 && a.1 < b.1)
}

/// Fold a segment's per-position matches (local ids offset by `base`)
/// into the accumulator: longest wins, ties to the smallest global id.
fn merge_matches(acc: &mut [Option<Match>], m: &Matches, base: u32) {
    for (i, om) in m.as_slice().iter().enumerate() {
        if let Some(mm) = om {
            let cand = Match {
                id: mm.id + base,
                len: mm.len,
            };
            acc[i] = Some(match acc[i] {
                Some(best) if !prefers((cand.len, cand.id), (best.len, best.id)) => best,
                _ => cand,
            });
        }
    }
}

/// Matching interface shared by [`DictMatcher`] (one preprocessed set) and
/// [`SegmentedMatcher`] (canonical segments): what the compression parses
/// and compressed-domain grep need from a dictionary.
pub trait PatternScan {
    /// Longest pattern at every text position.
    fn match_text(&self, pram: &Pram, text: &[u8]) -> Matches;
    /// Every occurrence as `(position, match)`.
    fn find_all(&self, pram: &Pram, text: &[u8]) -> Vec<(usize, Match)>;
    /// Per-position longest pattern-prefix `(len, certificate id)`.
    fn pattern_prefixes(&self, pram: &Pram, text: &[u8]) -> Vec<Option<(u32, u32)>>;
    /// Length of the longest pattern.
    fn max_pattern_len(&self) -> usize;
}

impl PatternScan for DictMatcher {
    fn match_text(&self, pram: &Pram, text: &[u8]) -> Matches {
        Self::match_text(self, pram, text)
    }

    fn find_all(&self, pram: &Pram, text: &[u8]) -> Vec<(usize, Match)> {
        Self::find_all(self, pram, text)
    }

    fn pattern_prefixes(&self, pram: &Pram, text: &[u8]) -> Vec<Option<(u32, u32)>> {
        Self::pattern_prefixes(self, pram, text)
    }

    fn max_pattern_len(&self) -> usize {
        self.dictionary().max_pattern_len()
    }
}

impl PatternScan for SegmentedMatcher {
    fn match_text(&self, pram: &Pram, text: &[u8]) -> Matches {
        Self::match_text(self, pram, text)
    }

    fn find_all(&self, pram: &Pram, text: &[u8]) -> Vec<(usize, Match)> {
        Self::find_all(self, pram, text)
    }

    fn pattern_prefixes(&self, pram: &Pram, text: &[u8]) -> Vec<Option<(u32, u32)>> {
        Self::pattern_prefixes(self, pram, text)
    }

    fn max_pattern_len(&self) -> usize {
        Self::max_pattern_len(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pardict_workloads::{random_dictionary, text_with_planted_matches, Alphabet};

    fn pats(ss: &[&str]) -> Vec<Vec<u8>> {
        ss.iter().map(|s| s.as_bytes().to_vec()).collect()
    }

    #[test]
    fn apply_delta_patterns_semantics() {
        let parent = pats(&["a", "b", "a", "c"]);
        let d = DictDelta {
            adds: pats(&["x"]),
            removes: pats(&["a"]),
        };
        let (finals, counts) = apply_delta_patterns(&parent, &d).unwrap();
        assert_eq!(finals, pats(&["b", "c", "x"]));
        assert_eq!(counts, vec![2]);
        // Missing remove is an error.
        let bad = DictDelta {
            adds: vec![],
            removes: pats(&["zz"]),
        };
        assert_eq!(
            apply_delta_patterns(&parent, &bad),
            Err(DeltaError::RemoveMissing { index: 0 })
        );
        // Emptying the dictionary is an error.
        let drain = DictDelta {
            adds: vec![],
            removes: pats(&["a", "b", "c"]),
        };
        assert_eq!(
            apply_delta_patterns(&parent, &drain),
            Err(DeltaError::EmptyResult)
        );
        // Invalid adds are rejected before any work.
        let nul = DictDelta {
            adds: vec![vec![b'a', 0]],
            removes: vec![],
        };
        assert_eq!(
            apply_delta_patterns(&parent, &nul),
            Err(DeltaError::NulAdd { index: 0 })
        );
    }

    #[test]
    fn chain_identity_equals_scratch_identity() {
        let parent = pats(&["foo", "bar", "foo", "baz"]);
        let d = DictDelta {
            adds: pats(&["quux", "bar"]),
            removes: pats(&["foo"]),
        };
        let (finals, counts) = apply_delta_patterns(&parent, &d).unwrap();
        assert_eq!(
            chain_identity(multiset_identity(&parent), &d, &counts),
            multiset_identity(&finals)
        );
    }

    #[test]
    fn segment_spans_are_canonical_and_capped() {
        let alpha = Alphabet::lowercase();
        let patterns = random_dictionary(7, 2000, 2, 8, alpha);
        let spans = segment_spans(&patterns);
        assert_eq!(spans.first().unwrap().start, 0);
        assert_eq!(spans.last().unwrap().end, patterns.len());
        let mut prev_end = 0;
        for s in &spans {
            assert_eq!(s.start, prev_end);
            assert!(s.end - s.start <= SEGMENT_CAP);
            prev_end = s.end;
        }
        assert!(spans.len() > 1, "2000 patterns should cut multiple spans");
        // Small lists are one span.
        assert_eq!(segment_spans(&patterns[..10]).len(), 1);
    }

    #[test]
    fn single_segment_matches_bare_dict_matcher_exactly() {
        let pram = Pram::seq();
        let patterns = pats(&["ana", "ban", "nab", "a"]);
        let seg = SegmentedMatcher::build(&pram, patterns.clone());
        assert_eq!(seg.num_segments(), 1);
        let bare = DictMatcher::build(
            &pram,
            Dictionary::new(patterns.clone()),
            list_hash(&patterns) | 1,
        );
        let text = b"banana nab a ban";
        assert_eq!(seg.match_text(&pram, text), bare.match_text(&pram, text));
        assert_eq!(seg.find_all(&pram, text), bare.find_all(&pram, text));
        assert_eq!(
            seg.pattern_prefixes(&pram, text),
            bare.pattern_prefixes(&pram, text)
        );
    }

    #[test]
    fn delta_equals_scratch_build_results_and_costs() {
        let alpha = Alphabet::dna();
        let patterns = random_dictionary(3, 1500, 2, 9, alpha);
        let pram = Pram::seq();
        let parent = SegmentedMatcher::build(&pram, patterns.clone());
        assert!(parent.num_segments() > 1);
        let delta = DictDelta {
            adds: pats(&["gattaca", "tagg"]),
            removes: vec![patterns[17].clone(), patterns[1251].clone()],
        };
        let (child, stats) = parent.apply_delta(&pram, &delta).unwrap();
        assert!(
            stats.segments_reused > 0 && stats.segments_reused < stats.segments_total,
            "expected partial reuse, got {stats:?}"
        );
        let (finals, _) = apply_delta_patterns(&patterns, &delta).unwrap();
        let scratch = SegmentedMatcher::build(&pram, finals.clone());
        assert_eq!(child.identity(), scratch.identity());
        assert_eq!(child.patterns(), scratch.patterns());
        assert_eq!(child.build_cost(), scratch.build_cost());
        let text = text_with_planted_matches(9, &finals, 800, 40, alpha);
        for p in [Pram::seq(), Pram::par()] {
            let (a, ca) = p.metered(|pr| child.match_text(pr, &text));
            let (b, cb) = p.metered(|pr| scratch.match_text(pr, &text));
            assert_eq!(a, b, "match results must be identical");
            assert_eq!(ca, cb, "query ledger costs must be identical");
            let (fa, cfa) = p.metered(|pr| child.find_all(pr, &text));
            let (fb, cfb) = p.metered(|pr| scratch.find_all(pr, &text));
            assert_eq!(fa, fb);
            assert_eq!(cfa, cfb);
        }
    }

    #[test]
    fn merged_matching_agrees_with_whole_dict_oracle() {
        let alpha = Alphabet::dna();
        let patterns = random_dictionary(11, 1200, 1, 6, alpha);
        let pram = Pram::seq();
        let seg = SegmentedMatcher::build(&pram, patterns.clone());
        assert!(seg.num_segments() > 1);
        let text = text_with_planted_matches(12, &patterns, 600, 50, alpha);
        let oracle = AhoCorasick::build(&Dictionary::new(patterns.clone())).match_text(&text);
        let (got, _) = seg.match_text_verified(&pram, &text);
        let exact = seg.ac_match(&text);
        for i in 0..text.len() {
            assert_eq!(
                got.get(i).map(|m| m.len),
                oracle.get(i).map(|m| m.len),
                "len mismatch at {i}"
            );
            assert_eq!(
                exact.get(i).map(|m| m.len),
                oracle.get(i).map(|m| m.len),
                "ac len mismatch at {i}"
            );
            if let Some(m) = got.get(i) {
                let p = &patterns[m.id as usize];
                assert_eq!(
                    &text[i..i + p.len()],
                    p.as_slice(),
                    "claimed pattern at {i}"
                );
            }
        }
    }
}
