//! Alphabet reductions (Theorems 3.1 and 3.3).
//!
//! Theorem 3.1's proof encodes any constant-size alphabet in binary and
//! matches over {a, b}; Theorem 3.3 first *renames* an unbounded alphabet
//! into a polynomial range. This module provides the binary encoding and
//! the helpers that translate encoded matches back to symbol coordinates.

use crate::dict::{Match, Matches};

/// A binary-encoded string: every original symbol becomes
/// `bits_per_symbol` bytes from {a, b}.
#[derive(Debug, Clone)]
pub struct BinaryEncoded {
    /// The encoded bytes.
    pub data: Vec<u8>,
    /// Bits (encoded bytes) per original symbol.
    pub bits_per_symbol: usize,
}

/// Encode `text` over an alphabet of `sigma` symbols into {a, b}, fixed
/// width `ceil(log2 sigma)` (minimum 1). Symbols are the raw byte values.
#[must_use]
pub fn encode_binary(text: &[u8], sigma: usize) -> BinaryEncoded {
    assert!(sigma >= 2, "need at least two symbols");
    let bits = (usize::BITS - (sigma - 1).leading_zeros()).max(1) as usize;
    let mut data = Vec::with_capacity(text.len() * bits);
    for &c in text {
        for b in (0..bits).rev() {
            data.push(if (c >> b) & 1 == 1 { b'b' } else { b'a' });
        }
    }
    BinaryEncoded {
        data,
        bits_per_symbol: bits,
    }
}

/// Translate matches found on a binary-encoded text back to original
/// coordinates: only matches at symbol boundaries count, and lengths are
/// divided by the symbol width.
#[must_use]
pub fn decode_positions(encoded_matches: &Matches, bits_per_symbol: usize) -> Matches {
    let n = encoded_matches.len() / bits_per_symbol;
    let inner: Vec<Option<Match>> = (0..n)
        .map(|i| {
            encoded_matches.get(i * bits_per_symbol).and_then(|m| {
                // Patterns were encoded with the same width, so their
                // encoded lengths are exact multiples.
                if (m.len as usize).is_multiple_of(bits_per_symbol) {
                    Some(Match {
                        id: m.id,
                        len: (m.len as usize / bits_per_symbol) as u32,
                    })
                } else {
                    None
                }
            })
        })
        .collect();
    Matches::new(inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dict::Dictionary;
    use crate::matcher::dictionary_match;
    use pardict_pram::Pram;
    use pardict_workloads::{random_dictionary, text_with_planted_matches, Alphabet};

    #[test]
    fn encoding_is_fixed_width_ab() {
        let e = encode_binary(&[0, 1, 2, 3], 4);
        assert_eq!(e.bits_per_symbol, 2);
        assert_eq!(e.data, b"aaabbabb");
    }

    #[test]
    fn width_one_for_sigma_two() {
        let e = encode_binary(&[0, 1, 1], 2);
        assert_eq!(e.bits_per_symbol, 1);
        assert_eq!(e.data, b"abb");
    }

    #[test]
    fn binary_reduction_preserves_matches() {
        // Match over a 26-symbol alphabet by encoding to binary, running
        // the full matcher, and decoding — Theorem 3.1's reduction.
        let pram = Pram::seq();
        let alpha = Alphabet::lowercase();
        let patterns = random_dictionary(5, 10, 2, 6, alpha);
        let text = text_with_planted_matches(6, &patterns, 300, 30, alpha);
        let sigma = 256;

        let enc_patterns: Vec<Vec<u8>> = patterns
            .iter()
            .map(|p| encode_binary(p, sigma).data)
            .collect();
        let bits = encode_binary(&text, sigma).bits_per_symbol;
        let enc_text = encode_binary(&text, sigma).data;

        let enc_dict = Dictionary::new(enc_patterns);
        let enc_matches = dictionary_match(&pram, &enc_dict, &enc_text, 7);
        let decoded = decode_positions(&enc_matches, bits);

        let plain_dict = Dictionary::new(patterns);
        let want = crate::ac::AhoCorasick::build(&plain_dict).match_text(&text);
        for i in 0..text.len() {
            assert_eq!(
                decoded.get(i).map(|m| m.len),
                want.get(i).map(|m| m.len),
                "i={i}"
            );
        }
    }
}
