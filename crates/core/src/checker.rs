//! The §3.4 output checker — what makes the matcher Las Vegas.
//!
//! Fingerprint errors are one-sided: a collision can only make two
//! *different* strings look equal, so the Monte Carlo matcher can only
//! over-claim (report a match that is not really there), never under-claim.
//! This checker verifies a claimed match array **exactly** in `O(n)` work
//! and `O(log n)` depth:
//!
//! 1. positions without a match are treated as claiming their own single
//!    character (the paper's "special pointer to the singleton T[i]");
//! 2. every claim's first character is compared with the text directly;
//! 3. every *dominated* position (the paper's `i` dominates `j` iff `i < j`
//!    and `i + L[i] ≥ j + L[j]`) is checked for consistency against a
//!    dominating claim with one exact Lemma 2.6 LCP query on `D̂`;
//! 4. consecutive *dominating* positions are checked pairwise the same way.
//!
//! Lemma 3.4: if all checks pass, every claimed match really occurs.

use crate::dict::{Dictionary, Matches};
use pardict_pram::Pram;
use pardict_suffix::SuffixTree;

/// Why a check failed (for diagnostics and the Las Vegas retry loop).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckError {
    /// Claimed pattern's first character disagrees with the text.
    FirstChar {
        /// Text position of the offending claim.
        pos: usize,
    },
    /// A claimed match extends past the end of the text.
    Overrun {
        /// Text position of the offending claim.
        pos: usize,
    },
    /// A dominated claim disagrees with its dominating claim.
    DominatedMismatch {
        /// Text position of the dominated claim.
        pos: usize,
        /// The dominating position it was checked against.
        against: usize,
    },
    /// Two consecutive dominating claims disagree on their overlap.
    DominatingMismatch {
        /// Text position of the later dominating claim.
        pos: usize,
        /// The earlier dominating position.
        against: usize,
    },
}

/// Verify `matches` against `text` exactly. `O(n)` work, `O(log n)` depth.
///
/// # Errors
/// Returns the first category of inconsistency found.
pub fn check_matches(
    pram: &Pram,
    dict: &Dictionary,
    st: &SuffixTree,
    text: &[u8],
    matches: &Matches,
) -> Result<(), CheckError> {
    let n = text.len();
    assert_eq!(matches.len(), n);

    // Claim at position i: (length, D̂ position of the claimed string), or
    // the singleton character claim (length 1, no D̂ position).
    let claim = |i: usize| -> (usize, Option<usize>) {
        match matches.get(i) {
            Some(m) => (m.len as usize, Some(dict.offset(m.id as usize))),
            None => (1, None),
        }
    };

    // Steps 1–2: bounds + first characters, one wide round.
    let bad: Vec<Option<CheckError>> = pram.tabulate(n, |i| {
        let (len, q) = claim(i);
        if i + len > n {
            return Some(CheckError::Overrun { pos: i });
        }
        if let Some(q) = q {
            if dict.dhat()[q] != text[i] {
                return Some(CheckError::FirstChar { pos: i });
            }
        }
        None
    });
    if let Some(e) = bad.iter().flatten().next() {
        return Err(e.clone());
    }

    // Reaches and prefix arg-maxima.
    let reaches: Vec<(u64, u64)> = pram.tabulate(n, |i| {
        let (len, _) = claim(i);
        ((i + len) as u64, i as u64)
    });
    // Inclusive prefix max by reach (ties: earliest index wins).
    let pm = pram.scan_inclusive(
        &reaches,
        (0u64, u64::MAX),
        |a, b| {
            if b.0 > a.0 {
                b
            } else {
                a
            }
        },
    );

    // Exact equality of the overlap of two claims, via Lemma 2.6 on D̂
    // (claims are substrings of D̂; singleton claims compare directly).
    let consistent = |i: usize, j: usize| -> bool {
        debug_assert!(i < j);
        let (li, qi) = claim(i);
        let (lj, qj) = claim(j);
        let overlap = (i + li).min(j + lj).saturating_sub(j);
        if overlap == 0 {
            return true;
        }
        let delta = j - i;
        match (qi, qj) {
            (Some(qi), Some(qj)) => st.lcp_positions(qi + delta, qj) >= overlap,
            (Some(qi), None) => dict.dhat()[qi + delta] == text[j],
            // A singleton at i cannot overlap j > i.
            (None, _) => true,
        }
    };

    // Step 3: dominated positions vs the prefix-argmax dominator.
    let dom_bad: Vec<Option<CheckError>> = pram.tabulate(n, |j| {
        if j == 0 {
            return None;
        }
        let (lj, _) = claim(j);
        let (best_reach, best_i) = pm[j - 1];
        if best_reach >= (j + lj) as u64 {
            let i = best_i as usize;
            if !consistent(i, j) {
                return Some(CheckError::DominatedMismatch { pos: j, against: i });
            }
        }
        None
    });
    if let Some(e) = dom_bad.iter().flatten().next() {
        return Err(e.clone());
    }

    // Step 4: consecutive dominating positions.
    let dominating: Vec<bool> = pram.tabulate(n, |j| {
        if j == 0 {
            return true;
        }
        let (lj, _) = claim(j);
        pm[j - 1].0 < (j + lj) as u64
    });
    let doms = pram.pack_indices(&dominating);
    let pair_bad: Vec<Option<CheckError>> = pram.tabulate(doms.len().saturating_sub(1), |k| {
        let (i, j) = (doms[k], doms[k + 1]);
        if !consistent(i, j) {
            Some(CheckError::DominatingMismatch { pos: j, against: i })
        } else {
            None
        }
    });
    if let Some(e) = pair_bad.iter().flatten().next() {
        return Err(e.clone());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ac::AhoCorasick;
    use crate::dict::Match;
    use pardict_workloads::{random_dictionary, text_with_planted_matches, Alphabet};

    fn setup(seed: u64) -> (Dictionary, SuffixTree, Vec<u8>, Matches, Pram) {
        let pram = Pram::seq();
        let alpha = Alphabet::dna();
        let dict = Dictionary::new(random_dictionary(seed, 15, 2, 8, alpha));
        let st = SuffixTree::build(&pram, dict.dhat(), seed);
        let text = text_with_planted_matches(seed + 5, dict.patterns(), 400, 30, alpha);
        let matches = AhoCorasick::build(&dict).match_text(&text);
        (dict, st, text, matches, pram)
    }

    #[test]
    fn correct_output_passes() {
        for seed in 0..5 {
            let (dict, st, text, matches, pram) = setup(seed);
            assert_eq!(check_matches(&pram, &dict, &st, &text, &matches), Ok(()));
        }
    }

    #[test]
    fn corrupted_first_char_is_caught() {
        let (dict, st, text, matches, pram) = setup(1);
        // Claim a pattern at a position where its first char differs.
        let mut v = matches.as_slice().to_vec();
        let pat0 = &dict.patterns()[0];
        let bad_pos = (0..text.len() - pat0.len())
            .find(|&i| text[i] != pat0[0])
            .unwrap();
        v[bad_pos] = Some(Match {
            id: 0,
            len: pat0.len() as u32,
        });
        let corrupted = Matches::new(v);
        assert!(matches!(
            check_matches(&pram, &dict, &st, &text, &corrupted),
            Err(CheckError::FirstChar { .. })
        ));
    }

    #[test]
    fn overrun_is_caught() {
        let (dict, st, text, matches, pram) = setup(2);
        let mut v = matches.as_slice().to_vec();
        let n = v.len();
        v[n - 1] = Some(Match {
            id: 0,
            len: dict.pattern_len(0) as u32 + 5,
        });
        // Length is even wrong for the pattern — but overrun fires first.
        let corrupted = Matches::new(v);
        assert!(matches!(
            check_matches(&pram, &dict, &st, &text, &corrupted),
            Err(CheckError::Overrun { .. })
        ));
    }

    #[test]
    fn false_interior_claim_is_caught() {
        // Claim a pattern whose first char matches the text but whose tail
        // does not: must be caught by a domination check.
        for seed in 0..20u64 {
            let (dict, st, text, matches, pram) = setup(seed + 100);
            let mut v = matches.as_slice().to_vec();
            let mut planted = false;
            'outer: for t in 0..dict.num_patterns() {
                let p = &dict.patterns()[t];
                if p.len() < 2 {
                    continue;
                }
                for i in 0..text.len().saturating_sub(p.len()) {
                    let real = &text[i..i + p.len()] == p.as_slice();
                    let first_ok = text[i] == p[0];
                    let claimed_len = v[i].map_or(0, |m| m.len as usize);
                    if !real && first_ok && claimed_len < p.len() {
                        v[i] = Some(Match {
                            id: t as u32,
                            len: p.len() as u32,
                        });
                        planted = true;
                        break 'outer;
                    }
                }
            }
            if !planted {
                continue;
            }
            let corrupted = Matches::new(v);
            let res = check_matches(&pram, &dict, &st, &text, &corrupted);
            assert!(res.is_err(), "seed={seed}: corrupted output accepted");
            let _ = matches;
        }
    }

    #[test]
    fn empty_text_passes() {
        let pram = Pram::seq();
        let dict = Dictionary::new(vec![b"ab".to_vec()]);
        let st = SuffixTree::build(&pram, dict.dhat(), 3);
        let m = Matches::new(Vec::new());
        assert_eq!(check_matches(&pram, &dict, &st, b"", &m), Ok(()));
    }
}
