//! Dictionary and match types.

/// A dictionary of patterns, stored concatenated (the paper's `D̂`).
///
/// No separators are inserted: Step 1 deliberately matches substrings of
/// `D̂` that may span pattern boundaries, and Step 2's *legal lengths*
/// account for the boundaries. Patterns must be non-empty and NUL-free.
#[derive(Debug, Clone)]
pub struct Dictionary {
    patterns: Vec<Vec<u8>>,
    /// Start offset of each pattern in `dhat`, plus a final `d` sentinel.
    offsets: Vec<usize>,
    dhat: Vec<u8>,
    /// For each `D̂` position, the index of the pattern containing it.
    pattern_of: Vec<u32>,
}

impl Dictionary {
    /// Build from patterns.
    ///
    /// # Panics
    /// Panics on an empty dictionary, an empty pattern, or a NUL byte.
    #[must_use]
    pub fn new(patterns: Vec<Vec<u8>>) -> Self {
        assert!(!patterns.is_empty(), "dictionary must not be empty");
        let mut offsets = Vec::with_capacity(patterns.len() + 1);
        let mut dhat = Vec::new();
        let mut pattern_of = Vec::new();
        for (t, p) in patterns.iter().enumerate() {
            assert!(!p.is_empty(), "pattern {t} is empty");
            assert!(p.iter().all(|&c| c != 0), "pattern {t} contains NUL");
            offsets.push(dhat.len());
            dhat.extend_from_slice(p);
            pattern_of.resize(dhat.len(), t as u32);
        }
        offsets.push(dhat.len());
        Self {
            patterns,
            offsets,
            dhat,
            pattern_of,
        }
    }

    /// The patterns.
    #[must_use]
    pub fn patterns(&self) -> &[Vec<u8>] {
        &self.patterns
    }

    /// Number of patterns (`k`).
    #[must_use]
    pub fn num_patterns(&self) -> usize {
        self.patterns.len()
    }

    /// Total size (`d`).
    #[must_use]
    pub fn total_len(&self) -> usize {
        self.dhat.len()
    }

    /// Length of the longest pattern (`m`).
    #[must_use]
    pub fn max_pattern_len(&self) -> usize {
        self.patterns.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// The concatenation `D̂`.
    #[must_use]
    pub fn dhat(&self) -> &[u8] {
        &self.dhat
    }

    /// Start offset of pattern `t` in `D̂`.
    #[must_use]
    pub fn offset(&self, t: usize) -> usize {
        self.offsets[t]
    }

    /// Length of pattern `t`.
    #[must_use]
    pub fn pattern_len(&self, t: usize) -> usize {
        self.offsets[t + 1] - self.offsets[t]
    }

    /// Index of the pattern containing `D̂` position `j`.
    #[must_use]
    pub fn pattern_of(&self, j: usize) -> usize {
        self.pattern_of[j] as usize
    }

    /// True when `j` is the start of a pattern.
    #[must_use]
    pub fn is_pattern_start(&self, j: usize) -> bool {
        j < self.dhat.len() && self.offsets[self.pattern_of(j)] == j
    }

    /// The *cap* of `D̂` position `j`: the pattern length when `j` starts a
    /// pattern, else 0. A suffix-tree node is a dictionary prefix iff some
    /// leaf below it has cap at least the node's depth.
    #[must_use]
    pub fn cap(&self, j: usize) -> usize {
        if self.is_pattern_start(j) {
            self.pattern_len(self.pattern_of(j))
        } else {
            0
        }
    }
}

/// A single match: pattern `id` of length `len` occurring at the queried
/// position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Match {
    /// Pattern index in the dictionary.
    pub id: u32,
    /// Pattern length (redundant with `id`, kept for O(1) access).
    pub len: u32,
}

/// Per-position matching output: `get(i)` is the longest pattern occurring
/// at text position `i`, if any (the paper's `M[i]`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matches {
    inner: Vec<Option<Match>>,
}

impl Matches {
    /// Wrap a per-position vector.
    #[must_use]
    pub fn new(inner: Vec<Option<Match>>) -> Self {
        Self { inner }
    }

    /// Match at position `i`.
    #[must_use]
    pub fn get(&self, i: usize) -> Option<Match> {
        self.inner[i]
    }

    /// Text length covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True for an empty text.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Iterate `(position, match)` over positions with a match.
    pub fn iter_hits(&self) -> impl Iterator<Item = (usize, Match)> + '_ {
        self.inner
            .iter()
            .enumerate()
            .filter_map(|(i, m)| m.map(|mm| (i, mm)))
    }

    /// Raw per-position access.
    #[must_use]
    pub fn as_slice(&self) -> &[Option<Match>] {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_and_caps() {
        let d = Dictionary::new(vec![b"abc".to_vec(), b"de".to_vec(), b"abcd".to_vec()]);
        assert_eq!(d.num_patterns(), 3);
        assert_eq!(d.total_len(), 9);
        assert_eq!(d.dhat(), b"abcdeabcd");
        assert_eq!(d.offset(1), 3);
        assert_eq!(d.pattern_len(1), 2);
        assert_eq!(d.max_pattern_len(), 4);
        assert!(d.is_pattern_start(0));
        assert!(d.is_pattern_start(3));
        assert!(d.is_pattern_start(5));
        assert!(!d.is_pattern_start(1));
        assert_eq!(d.cap(0), 3);
        assert_eq!(d.cap(5), 4);
        assert_eq!(d.cap(6), 0);
        assert_eq!(d.pattern_of(4), 1);
        assert_eq!(d.pattern_of(8), 2);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn rejects_empty_pattern() {
        let _ = Dictionary::new(vec![b"a".to_vec(), Vec::new()]);
    }

    #[test]
    #[should_panic(expected = "NUL")]
    fn rejects_nul() {
        let _ = Dictionary::new(vec![vec![0u8]]);
    }

    #[test]
    fn matches_container() {
        let m = Matches::new(vec![None, Some(Match { id: 1, len: 3 }), None]);
        assert_eq!(m.len(), 3);
        assert_eq!(m.get(1).unwrap().id, 1);
        assert_eq!(m.iter_hits().count(), 1);
    }
}
