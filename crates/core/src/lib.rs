#![warn(missing_docs)]

//! # pardict-core — work-optimal parallel dictionary matching (SPAA'95 §3)
//!
//! Given a dictionary `D = {P₁, …, P_k}` of total size `d`, preprocess it so
//! that a text `T[1..n]` can be matched — for every position, the longest
//! pattern occurring there — in `O(log d)` time and `O(n)` work on the
//! simulated CRCW PRAM (Theorem 3.1).
//!
//! The implementation follows the paper's two-step plan:
//!
//! * **Step 1 — dictionary substring matching** ([`substring_match`]):
//!   compute `S[i]`, the longest substring of the dictionary concatenation
//!   `D̂` starting at each text position, as a locus in the suffix tree of
//!   `D̂`. Anchors every `L = Θ(log d)` positions descend a separator
//!   (centroid) decomposition comparing Karp–Rabin fingerprints (Step 1A,
//!   from [AFM92]); the positions in between are filled right-to-left by
//!   `ExtendLeft` (Step 1B) using the §3.2 *nearest colored ancestors*
//!   structure over Weiner links plus one Lemma 2.6 LCP query each.
//! * **Step 2 — pattern matching** ([`DictMatcher::match_text`]): truncate
//!   `S[i]` to the longest *pattern prefix* `B[i]` (legal-length range
//!   maxima + nearest marked ancestors), then to the longest complete
//!   pattern `M[i]` (a precomputed longest-pattern-prefix table).
//!
//! The result is **Las Vegas**: the Monte Carlo core (fingerprints can only
//! create false *equalities*, hence over-long claims) is vetted by the
//! paper's §3.4 checker ([`checker`]), which is exact; on failure the driver
//! re-randomizes and retries.
//!
//! Baselines: [`AhoCorasick`] (the classical sequential optimum, also the
//! test oracle), [`matching_statistics_seq`] (sequential `S[i]` oracle), and
//! [`mp93_baseline`] (a work-suboptimal per-position matcher reproducing the
//! previous-best `O(n·polylog)` envelope the paper improves on).
//!
//! ```
//! use pardict_pram::Pram;
//! use pardict_core::{dictionary_match, Dictionary};
//!
//! let pram = Pram::seq();
//! let dict = Dictionary::new(vec![b"ab".to_vec(), b"bab".to_vec()]);
//! let m = dictionary_match(&pram, &dict, b"ababab", 42);
//! assert_eq!(m.get(0).unwrap().len, 2); // "ab"
//! assert_eq!(m.get(1).unwrap().len, 3); // "bab"
//! ```

mod ac;
mod adaptive;
mod alphabet;
mod baseline;
pub mod checker;
mod crc;
mod dict;
mod dsm;
mod matcher;
mod mstats;
mod offline;
pub mod segmented;
pub mod single;
mod step2;

pub use ac::{brute_force_matches, AhoCorasick};
pub use adaptive::{AdaptiveDictMatcher, PatternHandle};
pub use alphabet::{decode_positions, encode_binary, BinaryEncoded};
pub use baseline::mp93_baseline;
pub use crc::crc32;
pub use dict::{Dictionary, Match, Matches};
pub use dsm::{substring_match, Locus, SubstringMatcher};
pub use matcher::{dictionary_match, DictMatcher};
pub use mstats::matching_statistics_seq;
pub use offline::dictionary_match_offline;
pub use segmented::{
    apply_delta_patterns, chain_identity, list_hash, multiset_identity, DeltaError, DictDelta,
    PatternScan, Segment, SegmentBuildStats, SegmentedMatcher,
};
