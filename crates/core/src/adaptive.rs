//! Adaptive dictionary matching — the [AF91] extension the paper cites.
//!
//! Amir & Farach's *adaptive dictionary matching* allows patterns to be
//! inserted and deleted between queries. This module provides that API on
//! top of the static Theorem-3.1 matcher via logarithmic reconstruction
//! (Bentley–Saxe): live patterns are partitioned into `O(log k)` groups of
//! geometrically growing sizes, each with its own preprocessed
//! [`DictMatcher`]; an insert merges the smallest groups and rebuilds one
//! matcher (amortized `O(|P| log k)` preprocessing work per inserted
//! character), a delete tombstones its pattern and triggers a full rebuild
//! once half the indexed characters are dead. A query matches against
//! every group and keeps the per-position longest — `O(n log k)` work,
//! the classic adaptive trade-off.

use crate::dict::{Dictionary, Match, Matches};
use crate::matcher::DictMatcher;
use pardict_pram::{Pram, SplitMix64};

/// A handle identifying an inserted pattern (stable across rebuilds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PatternHandle(u64);

/// A dictionary matcher supporting pattern insertion and deletion.
#[derive(Debug)]
pub struct AdaptiveDictMatcher {
    /// All ever-inserted patterns by handle order; dead ones are None.
    patterns: Vec<Option<Vec<u8>>>,
    live_chars: usize,
    dead_chars: usize,
    groups: Vec<Group>,
    rng: SplitMix64,
}

#[derive(Debug)]
struct Group {
    /// Handles (indices into `patterns`) this group indexes, including
    /// possibly-dead ones (filtered at query time).
    members: Vec<u32>,
    /// Total characters indexed by this group's matcher.
    chars: usize,
    matcher: DictMatcher,
    /// Maps the group-local pattern id back to the global handle.
    local_to_handle: Vec<u32>,
}

impl AdaptiveDictMatcher {
    /// An empty adaptive matcher.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            patterns: Vec::new(),
            live_chars: 0,
            dead_chars: 0,
            groups: Vec::new(),
            rng: SplitMix64::new(seed),
        }
    }

    /// Number of live patterns.
    #[must_use]
    pub fn num_patterns(&self) -> usize {
        self.patterns.iter().flatten().count()
    }

    /// Total characters across live patterns.
    #[must_use]
    pub fn total_len(&self) -> usize {
        self.live_chars
    }

    /// Insert a pattern; amortized `O(|P| log k)` preprocessing work.
    pub fn insert(&mut self, pram: &Pram, pattern: Vec<u8>) -> PatternHandle {
        assert!(!pattern.is_empty() && pattern.iter().all(|&c| c != 0));
        let handle = self.patterns.len() as u64;
        self.live_chars += pattern.len();
        self.patterns.push(Some(pattern));

        // Bentley–Saxe merge: gather the trailing run of groups whose
        // combined size stays within 2x of the new total, plus the new
        // pattern, into one rebuilt group.
        let mut members = vec![handle as u32];
        let mut chars = self.patterns[handle as usize].as_ref().unwrap().len();
        while let Some(last) = self.groups.last() {
            if last.chars <= chars {
                chars += last.chars;
                members.extend(self.groups.pop().unwrap().members);
            } else {
                break;
            }
        }
        let group = self.build_group(pram, members);
        self.groups.push(group);
        self.groups.sort_by_key(|g| std::cmp::Reverse(g.chars));
        PatternHandle(handle)
    }

    /// Delete a pattern. O(1) now; triggers a global rebuild once half the
    /// indexed characters are tombstones.
    ///
    /// Returns false when the handle was already deleted.
    pub fn remove(&mut self, pram: &Pram, handle: PatternHandle) -> bool {
        let slot = &mut self.patterns[handle.0 as usize];
        let Some(p) = slot.take() else {
            return false;
        };
        self.live_chars -= p.len();
        self.dead_chars += p.len();
        if self.dead_chars > self.live_chars {
            self.rebuild_all(pram);
        }
        true
    }

    fn rebuild_all(&mut self, pram: &Pram) {
        self.dead_chars = 0;
        let members: Vec<u32> = (0..self.patterns.len() as u32)
            .filter(|&h| self.patterns[h as usize].is_some())
            .collect();
        self.groups.clear();
        if !members.is_empty() {
            let g = self.build_group(pram, members);
            self.groups.push(g);
        }
    }

    fn build_group(&mut self, pram: &Pram, members: Vec<u32>) -> Group {
        let mut live: Vec<u32> = members
            .iter()
            .copied()
            .filter(|&h| self.patterns[h as usize].is_some())
            .collect();
        live.sort_unstable();
        let pats: Vec<Vec<u8>> = live
            .iter()
            .map(|&h| self.patterns[h as usize].clone().unwrap())
            .collect();
        let chars = pats.iter().map(Vec::len).sum();
        let matcher = DictMatcher::build(pram, Dictionary::new(pats), self.rng.next_u64());
        Group {
            members,
            chars,
            matcher,
            local_to_handle: live,
        }
    }

    /// Longest live pattern at every text position (ids are
    /// [`PatternHandle`] values). `O(n · #groups)` work (plus occurrence
    /// enumeration for groups carrying tombstones).
    #[must_use]
    pub fn match_text(&self, pram: &Pram, text: &[u8]) -> Matches {
        let mut best: Vec<Option<Match>> = vec![None; text.len()];
        let mut consider = |i: usize, c: Match| {
            if best[i].is_none_or(|b| b.len < c.len) {
                best[i] = Some(c);
            }
        };
        for g in &self.groups {
            let has_tombstones = g
                .local_to_handle
                .iter()
                .any(|&h| self.patterns[h as usize].is_none());
            if has_tombstones {
                // Enumerate all occurrences and keep the live ones.
                for (i, m) in g.matcher.find_all(pram, text) {
                    if self.is_live(g, m.id) {
                        consider(i, self.to_handle(g, m));
                    }
                }
            } else {
                let m = g.matcher.match_text(pram, text);
                pram.ledger().round(text.len() as u64);
                for i in 0..text.len() {
                    if let Some(top) = m.get(i) {
                        consider(i, self.to_handle(g, top));
                    }
                }
            }
        }
        Matches::new(best)
    }

    fn is_live(&self, g: &Group, local_id: u32) -> bool {
        let h = g.local_to_handle[local_id as usize];
        self.patterns[h as usize].is_some()
    }

    fn to_handle(&self, g: &Group, m: Match) -> Match {
        Match {
            id: g.local_to_handle[m.id as usize],
            len: m.len,
        }
    }

    /// Number of groups (O(log k) by construction).
    #[must_use]
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ac::brute_force_matches;
    use pardict_workloads::{random_dictionary, text_with_planted_matches, Alphabet};

    fn assert_matches_live_oracle(adm: &AdaptiveDictMatcher, pram: &Pram, text: &[u8]) {
        let live: Vec<Vec<u8>> = adm.patterns.iter().flatten().cloned().collect();
        if live.is_empty() {
            return;
        }
        let oracle = brute_force_matches(&Dictionary::new(live), text);
        let got = adm.match_text(pram, text);
        for i in 0..text.len() {
            assert_eq!(
                got.get(i).map(|m| m.len),
                oracle.get(i).map(|m| m.len),
                "position {i}"
            );
            if let Some(m) = got.get(i) {
                // The reported handle's pattern really matches.
                let p = adm.patterns[m.id as usize].as_ref().expect("live handle");
                assert_eq!(&text[i..i + p.len()], p.as_slice());
            }
        }
    }

    #[test]
    fn incremental_inserts() {
        let pram = Pram::seq();
        let mut adm = AdaptiveDictMatcher::new(1);
        let text = b"ushers and fishers";
        adm.insert(&pram, b"she".to_vec());
        assert_matches_live_oracle(&adm, &pram, text);
        adm.insert(&pram, b"hers".to_vec());
        assert_matches_live_oracle(&adm, &pram, text);
        adm.insert(&pram, b"fish".to_vec());
        adm.insert(&pram, b"he".to_vec());
        assert_matches_live_oracle(&adm, &pram, text);
        assert_eq!(adm.num_patterns(), 4);
    }

    #[test]
    fn deletions_and_rebuilds() {
        let pram = Pram::seq();
        let mut adm = AdaptiveDictMatcher::new(2);
        let text = b"abxabyab";
        let h_ab = adm.insert(&pram, b"ab".to_vec());
        let h_abx = adm.insert(&pram, b"abx".to_vec());
        assert_matches_live_oracle(&adm, &pram, text);
        assert!(adm.remove(&pram, h_abx));
        assert!(!adm.remove(&pram, h_abx), "double delete");
        assert_matches_live_oracle(&adm, &pram, text);
        assert!(adm.remove(&pram, h_ab));
        let got = adm.match_text(&pram, text);
        assert!(got.iter_hits().next().is_none(), "all patterns deleted");
    }

    #[test]
    fn tombstoned_longest_falls_back_to_shorter() {
        let pram = Pram::seq();
        let mut adm = AdaptiveDictMatcher::new(3);
        // Same group holds both; delete the longer, the shorter must win.
        let _h1 = adm.insert(&pram, b"ab".to_vec());
        let h2 = adm.insert(&pram, b"abab".to_vec());
        let text = b"ababab";
        assert_eq!(adm.match_text(&pram, text).get(0).unwrap().len, 4);
        adm.remove(&pram, h2);
        assert_matches_live_oracle(&adm, &pram, text);
        assert_eq!(adm.match_text(&pram, text).get(0).unwrap().len, 2);
    }

    #[test]
    fn dead_duplicate_with_live_twin_still_matches() {
        let pram = Pram::seq();
        let mut adm = AdaptiveDictMatcher::new(9);
        let h1 = adm.insert(&pram, b"abc".to_vec());
        let _h2 = adm.insert(&pram, b"abc".to_vec()); // identical twin
        adm.remove(&pram, h1);
        let got = adm.match_text(&pram, b"xabc");
        assert_eq!(got.get(1).map(|m| m.len), Some(3), "live twin must match");
        assert_matches_live_oracle(&adm, &pram, b"xabc");
    }

    #[test]
    fn group_count_stays_logarithmic() {
        let pram = Pram::seq();
        let mut adm = AdaptiveDictMatcher::new(4);
        let pats = random_dictionary(5, 64, 2, 6, Alphabet::dna());
        for p in pats {
            adm.insert(&pram, p);
        }
        assert!(
            adm.num_groups() <= 12,
            "expected O(log k) groups, got {}",
            adm.num_groups()
        );
        let text = text_with_planted_matches(
            6,
            &adm.patterns.iter().flatten().cloned().collect::<Vec<_>>(),
            400,
            30,
            Alphabet::dna(),
        );
        assert_matches_live_oracle(&adm, &pram, &text);
    }

    #[test]
    fn randomized_insert_delete_churn() {
        let pram = Pram::seq();
        let mut adm = AdaptiveDictMatcher::new(7);
        let mut rng = pardict_pram::SplitMix64::new(8);
        let alpha = Alphabet::dna();
        let mut handles = Vec::new();
        let text =
            text_with_planted_matches(9, &random_dictionary(10, 10, 2, 6, alpha), 300, 25, alpha);
        for step in 0..40 {
            if handles.is_empty() || rng.next_below(3) != 0 {
                let len = 1 + rng.next_below(6) as usize;
                let p: Vec<u8> = (0..len).map(|_| alpha.sample(&mut rng)).collect();
                handles.push(adm.insert(&pram, p));
            } else {
                let k = rng.next_below(handles.len() as u64) as usize;
                let h = handles.swap_remove(k);
                adm.remove(&pram, h);
            }
            if step % 5 == 4 {
                assert_matches_live_oracle(&adm, &pram, &text);
            }
        }
    }
}
