//! Single-pattern matching utilities — the KMP lineage the paper's history
//! starts from (§1.2: "within two years of the discovery of the classical
//! linear time string matching algorithm due to Knuth, Morris and Pratt,
//! Aho and Corasick designed a linear time algorithm for dictionary
//! matching").
//!
//! Provides the classical failure function (border array), periodicity
//! helpers, sequential KMP matching, and a parallel single-pattern matcher
//! that simply runs the work-optimal dictionary machinery with `k = 1` —
//! the modern counterpart of Galil's and Vishkin's optimal parallel string
//! matching the paper cites.

use crate::dict::Dictionary;
use crate::matcher::dictionary_match;
use pardict_pram::Pram;

/// The KMP failure function: `border[i]` = length of the longest proper
/// border (prefix = suffix) of `pattern[..=i]`.
#[must_use]
pub fn border_array(pattern: &[u8]) -> Vec<u32> {
    let m = pattern.len();
    let mut border = vec![0u32; m];
    let mut k = 0usize;
    for i in 1..m {
        while k > 0 && pattern[k] != pattern[i] {
            k = border[k - 1] as usize;
        }
        if pattern[k] == pattern[i] {
            k += 1;
        }
        border[i] = k as u32;
    }
    border
}

/// The (shortest) period of a string: the smallest `p ≥ 1` with
/// `s[i] == s[i + p]` for all valid `i`.
#[must_use]
pub fn period(pattern: &[u8]) -> usize {
    if pattern.is_empty() {
        return 0;
    }
    let b = border_array(pattern);
    pattern.len() - *b.last().unwrap() as usize
}

/// True when the string is periodic in the strong sense of string
/// matching: its period is at most half its length (the regime where the
/// classic parallel matchers need the periodicity lemma).
#[must_use]
pub fn is_periodic(pattern: &[u8]) -> bool {
    !pattern.is_empty() && 2 * period(pattern) <= pattern.len()
}

/// Sequential KMP: all occurrence start positions of `pattern` in `text`.
/// `O(n + m)` time.
#[must_use]
pub fn kmp_find_all(pattern: &[u8], text: &[u8]) -> Vec<usize> {
    let m = pattern.len();
    if m == 0 || m > text.len() {
        return Vec::new();
    }
    let border = border_array(pattern);
    let mut out = Vec::new();
    let mut k = 0usize;
    for (i, &c) in text.iter().enumerate() {
        while k > 0 && pattern[k] != c {
            k = border[k - 1] as usize;
        }
        if pattern[k] == c {
            k += 1;
        }
        if k == m {
            out.push(i + 1 - m);
            k = border[m - 1] as usize;
        }
    }
    out
}

/// Parallel single-pattern matching: the `k = 1` special case of Theorem
/// 3.1 (Las Vegas, `O(n)` work, `O(log m)` depth after `O(m)`-ish
/// preprocessing) — the bound Galil/Vishkin pioneered, reached through the
/// general machinery.
#[must_use]
pub fn parallel_find_all(pram: &Pram, pattern: &[u8], text: &[u8], seed: u64) -> Vec<usize> {
    if pattern.is_empty() || pattern.len() > text.len() {
        return Vec::new();
    }
    let dict = Dictionary::new(vec![pattern.to_vec()]);
    let matches = dictionary_match(pram, &dict, text, seed);
    matches.iter_hits().map(|(i, _)| i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pardict_workloads::{fibonacci_word, periodic_text, random_text, Alphabet};

    fn naive_find_all(pattern: &[u8], text: &[u8]) -> Vec<usize> {
        if pattern.is_empty() || pattern.len() > text.len() {
            return Vec::new();
        }
        (0..=text.len() - pattern.len())
            .filter(|&i| &text[i..i + pattern.len()] == pattern)
            .collect()
    }

    #[test]
    fn border_array_classics() {
        assert_eq!(border_array(b"abab"), vec![0, 0, 1, 2]);
        assert_eq!(border_array(b"aaaa"), vec![0, 1, 2, 3]);
        assert_eq!(border_array(b"abcd"), vec![0, 0, 0, 0]);
        assert_eq!(border_array(b"abacaba"), vec![0, 0, 1, 0, 1, 2, 3]);
        assert!(border_array(b"").is_empty());
    }

    #[test]
    fn periods() {
        assert_eq!(period(b"abab"), 2);
        assert_eq!(period(b"aaaa"), 1);
        assert_eq!(period(b"abcd"), 4);
        assert_eq!(period(b"abcab"), 3);
        assert!(is_periodic(b"abab"));
        assert!(is_periodic(b"aaa"));
        assert!(!is_periodic(b"abcab"));
        assert!(!is_periodic(b""));
    }

    #[test]
    fn kmp_matches_naive() {
        let cases: Vec<(&[u8], Vec<u8>)> = vec![
            (b"ab", periodic_text(b"ab", 40)),
            (b"aab", b"aabaabxaab".to_vec()),
            (b"aba", fibonacci_word(200)),
            (b"zzz", random_text(1, 300, Alphabet::dna())),
        ];
        for (pat, text) in cases {
            assert_eq!(
                kmp_find_all(pat, &text),
                naive_find_all(pat, &text),
                "pattern {:?}",
                String::from_utf8_lossy(pat)
            );
        }
    }

    #[test]
    fn parallel_equals_kmp() {
        let pram = Pram::seq();
        let text = fibonacci_word(500);
        for pat in [&b"aba"[..], b"abaab", b"baab", b"zz"] {
            assert_eq!(
                parallel_find_all(&pram, pat, &text, 3),
                kmp_find_all(pat, &text),
                "pattern {:?}",
                String::from_utf8_lossy(pat)
            );
        }
    }

    #[test]
    fn edge_cases() {
        assert!(kmp_find_all(b"", b"abc").is_empty());
        assert!(kmp_find_all(b"abcd", b"ab").is_empty());
        assert_eq!(kmp_find_all(b"a", b"a"), vec![0]);
        let pram = Pram::seq();
        assert!(parallel_find_all(&pram, b"", b"abc", 1).is_empty());
        assert!(parallel_find_all(&pram, b"abcd", b"ab", 1).is_empty());
    }
}
