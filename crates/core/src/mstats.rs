//! Sequential matching statistics: the exact oracle and baseline for
//! Step 1's dictionary *substring* matching.
//!
//! The classic suffix-link walk (McCreight/Chang–Lawler): maintain the
//! locus of the longest dictionary substring starting at the current text
//! position; per position, extend with raw character comparisons, record,
//! follow one suffix link, and re-descend by skip-count. Amortized `O(n)`
//! character comparisons after `O(d)` preprocessing.

use pardict_suffix::SuffixTree;

/// For each text position `i`, the longest substring of the tree's text
/// starting at `T[i]`, as `(length, occurrence position)`.
#[must_use]
pub fn matching_statistics_seq(st: &SuffixTree, text: &[u8]) -> Vec<(u32, u32)> {
    let n = text.len();
    let padded = st.padded();
    // Effective matchable depth: leaves stop before their sentinel.
    let eff = |v: usize| -> usize {
        if st.is_leaf(v) {
            st.str_depth(v) - 1
        } else {
            st.str_depth(v)
        }
    };

    let mut out = Vec::with_capacity(n);
    let mut u = st.root(); // deepest explicit node with depth(u) <= matched
    let mut below: Option<usize> = None; // child on the path when inside an edge
    let mut matched = 0usize;

    for i in 0..n {
        // Extend.
        loop {
            if let Some(b) = below {
                let e = eff(b);
                while matched < e
                    && i + matched < n
                    && padded[st.label_pos(b) + matched] == text[i + matched]
                {
                    matched += 1;
                }
                if matched == st.str_depth(b) {
                    // Fully consumed an internal edge; leaves stop at eff
                    // (their sentinel is unmatchable) and stay `below`.
                    u = b;
                    below = None;
                    continue;
                }
                break;
            }
            if i + matched >= n {
                break;
            }
            match st.child_by_byte(u, text[i + matched]) {
                None => break,
                Some(c) => {
                    below = Some(c);
                    // Loop back to compare along the new edge. The first
                    // character is already known to match.
                }
            }
        }

        let pos = match below.or(if matched > 0 { Some(u) } else { None }) {
            Some(b) => st.label_pos(b) as u32,
            None => 0,
        };
        out.push((matched as u32, pos));

        // Shift to the next position via one suffix link + skip-count.
        if matched > 0 {
            matched -= 1;
            u = st.slink(u);
            below = None;
            while st.str_depth(u) < matched {
                let c = st
                    .child_by_byte(u, text[i + 1 + st.str_depth(u)])
                    .expect("matched substring must exist in the tree");
                if st.str_depth(c) <= matched {
                    u = c;
                } else {
                    below = Some(c);
                    break;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pardict_pram::{Pram, SplitMix64};
    use pardict_workloads::{markov_text, random_text, Alphabet};

    /// Naive longest-substring-at-position oracle.
    fn oracle(dhat: &[u8], text: &[u8]) -> Vec<u32> {
        let n = text.len();
        (0..n)
            .map(|i| {
                let mut best = 0usize;
                for j in 0..dhat.len() {
                    let mut l = 0;
                    while i + l < n && j + l < dhat.len() && text[i + l] == dhat[j + l] {
                        l += 1;
                    }
                    best = best.max(l);
                }
                best as u32
            })
            .collect()
    }

    fn check(dhat: &[u8], text: &[u8]) {
        let pram = Pram::seq();
        let st = SuffixTree::build(&pram, dhat, 7);
        let ms = matching_statistics_seq(&st, text);
        let want = oracle(dhat, text);
        for i in 0..text.len() {
            assert_eq!(ms[i].0, want[i], "i={i}");
            // The reported occurrence must actually match.
            let (l, p) = (ms[i].0 as usize, ms[i].1 as usize);
            assert_eq!(&dhat[p..p + l], &text[i..i + l], "occurrence i={i}");
        }
    }

    #[test]
    fn simple_cases() {
        check(b"banana", b"bananas");
        check(b"banana", b"xyz");
        check(b"abcabc", b"cabcab");
        check(b"aaa", b"aaaaaa");
    }

    #[test]
    fn random_cases() {
        let mut rng = SplitMix64::new(21);
        for _ in 0..5 {
            let dlen = 50 + rng.next_below(100) as usize;
            let tlen = 50 + rng.next_below(200) as usize;
            let dhat = random_text(rng.next_u64(), dlen, Alphabet::dna());
            let text = random_text(rng.next_u64(), tlen, Alphabet::dna());
            check(&dhat, &text);
        }
    }

    #[test]
    fn text_is_substring_of_dictionary() {
        let dhat = markov_text(3, 300, Alphabet::binary());
        let text = dhat[100..200].to_vec();
        let pram = Pram::seq();
        let st = SuffixTree::build(&pram, &dhat, 9);
        let ms = matching_statistics_seq(&st, &text);
        // Position 0 must match the full remaining text.
        assert_eq!(ms[0].0 as usize, text.len());
    }

    #[test]
    fn empty_text() {
        let pram = Pram::seq();
        let st = SuffixTree::build(&pram, b"ab", 1);
        assert!(matching_statistics_seq(&st, b"").is_empty());
    }
}
