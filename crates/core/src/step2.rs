//! Step 2: from the longest dictionary *substring* `S[i]` to the longest
//! *pattern* `M[i]` (§3.1, Steps 2A/2B).
//!
//! * **2A.** `B[i]` = longest prefix of `S[i]` that is a prefix of some
//!   pattern. Every `D̂` position carries a *cap* (its pattern's length if
//!   it starts one, else 0 — the paper's legal lengths); a node's `maxcap`
//!   is a Lemma 2.3 range-maximum over its leaf range, and
//!   `B[i] = min(|S[i]|, bestpfx(locus))` where `bestpfx` is the root-path
//!   maximum of `min(maxcap(v), depth(v))`, precomputed by a work-optimal
//!   rootfix (heavy-path rounds).
//!   The argmax leaf doubles as a *certificate*: a pattern whose prefix of
//!   length `B[i]` equals `S[i][..B[i]]`.
//! * **2B.** `M[i]` = longest complete pattern that is a prefix of the
//!   `B[i]`-prefix. For every `D̂` position `j` inside pattern `t`, `F[j]`
//!   records the longest complete pattern equal to a prefix of
//!   `P_t[..j−off(t)+1]` — marked by fingerprint table lookups (the paper's
//!   Step 2A remark) and spread by a segmented prefix-max scan. Then
//!   `M[i] = F[off(t*) + B[i] − 1]` for the certificate pattern `t*`.

use crate::dict::{Dictionary, Match};
use crate::dsm::Locus;
use pardict_graph::rootfix;
use pardict_pram::Pram;
use pardict_rmq::LinearRmq;
use pardict_suffix::SuffixTree;
use std::collections::HashMap;

/// Preprocessed Step-2 tables.
#[derive(Debug)]
pub(crate) struct Step2Tables {
    /// Per node: path-max of `min(maxcap, depth)` — the longest
    /// pattern-prefix length realizable on the path to this node.
    best_len: Vec<u32>,
    /// Per node: a `D̂` position starting a pattern that certifies
    /// `best_len` (u32::MAX if `best_len == 0`).
    best_cert: Vec<u32>,
    /// Per `D̂` position `j` (inside pattern `t`, prefix length
    /// `l = j − off(t) + 1`): longest complete pattern that is a prefix of
    /// `P_t[..l]`, as (len, id); (0, MAX) if none.
    f_len: Vec<u32>,
    f_pat: Vec<u32>,
    /// For each pattern id: the next pattern with the identical string
    /// (ascending ids; u32::MAX terminates). Lets occurrence enumeration
    /// report every duplicate.
    dup_next: Vec<u32>,
}

impl Step2Tables {
    /// Build from the dictionary and its suffix tree. `O(d)` work,
    /// polylog depth.
    pub(crate) fn build(pram: &Pram, dict: &Dictionary, st: &SuffixTree, seed: u64) -> Self {
        let d = dict.total_len();
        let m_leaves = st.num_leaves();
        let n_nodes = st.num_nodes();

        // Caps in SA order (the sentinel suffix caps at 0).
        let caps_sa: Vec<i64> = pram.tabulate(m_leaves, |k| {
            let pos = st.leaf_pos(k);
            if pos < d {
                dict.cap(pos) as i64
            } else {
                0
            }
        });
        let rmq = LinearRmq::new_max(pram, &caps_sa, seed ^ 0x57E9);

        // Per node: g = min(maxcap, depth) and its certificate.
        let g: Vec<(u32, u32)> = pram.tabulate(n_nodes, |v| {
            let (lo, hi) = st.leaf_range(v);
            let arg = rmq.query(lo, hi);
            let maxcap = caps_sa[arg] as u32;
            let depth = st.str_depth(v).min(
                // Leaves' sentinel char is not matchable.
                if st.is_leaf(v) {
                    st.str_depth(v) - 1
                } else {
                    st.str_depth(v)
                },
            ) as u32;
            let val = maxcap.min(depth);
            if val == 0 {
                (0, u32::MAX)
            } else {
                (val, st.leaf_pos(arg) as u32)
            }
        });

        // Root-path maxima: a work-optimal rootfix over the node forest
        // (heavy-path rounds; the pointer-doubling alternative costs an
        // extra log factor — E12 measures the gap).
        let best: Vec<(u32, u32)> = rootfix(
            pram,
            st.forest(),
            st.tree_lca().tour(),
            &g,
            (0, u32::MAX),
            |a, b| if b.0 > a.0 { b } else { a },
            seed ^ 0xBE57,
        );

        // Complete-pattern table: fingerprints of whole patterns.
        let mut whole: HashMap<(u64, u32), u32> = HashMap::with_capacity(dict.num_patterns());
        pram.ledger().round(dict.num_patterns() as u64);
        for t in 0..dict.num_patterns() {
            let (off, len) = (dict.offset(t), dict.pattern_len(t));
            let fp = st.hashes().substring(off, len);
            whole.entry((fp, len as u32)).or_insert(t as u32);
        }

        // Indicator per D̂ position, then segmented prefix max per pattern.
        let ind: Vec<(u32, u32, u32)> = pram.tabulate(d, |j| {
            let t = dict.pattern_of(j);
            let off = dict.offset(t);
            let l = (j - off + 1) as u32;
            let fp = st.hashes().substring(off, l as usize);
            match whole.get(&(fp, l)) {
                Some(&p) => (t as u32, l, p),
                None => (t as u32, 0, u32::MAX),
            }
        });
        let scanned = pram.scan_inclusive(&ind, (u32::MAX, 0, u32::MAX), |a, b| {
            // New segment resets; within a segment the larger length wins.
            if a.0 != b.0 || b.1 >= a.1 {
                b
            } else {
                a
            }
        });
        let f_len: Vec<u32> = pram.map(&scanned, |_, &(_, l, _)| l);
        let f_pat: Vec<u32> = pram.map(&scanned, |_, &(_, _, p)| p);

        // Duplicate chains: identical patterns share a (fp, len) key.
        let mut groups: HashMap<(u64, u32), u32> = HashMap::new();
        let mut dup_next = vec![u32::MAX; dict.num_patterns()];
        pram.ledger().round(dict.num_patterns() as u64);
        for t in (0..dict.num_patterns()).rev() {
            let (off, len) = (dict.offset(t), dict.pattern_len(t));
            let key = (st.hashes().substring(off, len), len as u32);
            if let Some(&nxt) = groups.get(&key) {
                dup_next[t] = nxt;
            }
            groups.insert(key, t as u32);
        }

        Self {
            best_len: best.iter().map(|&(l, _)| l).collect(),
            best_cert: best.iter().map(|&(_, c)| c).collect(),
            f_len,
            f_pat,
            dup_next,
        }
    }

    /// `B[i]`: longest pattern-prefix length for a substring locus, with
    /// its certificate pattern. O(1).
    pub(crate) fn pattern_prefix(&self, dict: &Dictionary, locus: Locus) -> Option<(u32, u32)> {
        if locus.len == 0 {
            return None;
        }
        let v = locus.below as usize;
        let b = self.best_len[v].min(locus.len);
        if b == 0 {
            return None;
        }
        let cert = self.best_cert[v];
        debug_assert_ne!(cert, u32::MAX);
        let t = dict.pattern_of(cert as usize) as u32;
        Some((b, t))
    }

    /// All complete patterns that occur at a position, longest first, by
    /// walking the `F` chain from `B[i]` downwards and expanding duplicate
    /// groups. O(1) per reported match (output-sensitive).
    pub(crate) fn all_patterns_at(&self, dict: &Dictionary, locus: Locus) -> Vec<Match> {
        let mut out = Vec::new();
        let Some((b, t)) = self.pattern_prefix(dict, locus) else {
            return out;
        };
        let off = dict.offset(t as usize);
        let mut l = b;
        while l >= 1 {
            let j = off + l as usize - 1;
            let len = self.f_len[j];
            if len == 0 {
                break;
            }
            let mut id = self.f_pat[j];
            while id != u32::MAX {
                out.push(Match { id, len });
                id = self.dup_next[id as usize];
            }
            l = len - 1;
        }
        out
    }

    /// `M[i]`: the longest complete pattern from `B[i]` and its
    /// certificate. O(1).
    pub(crate) fn longest_pattern(&self, dict: &Dictionary, locus: Locus) -> Option<Match> {
        let (b, t) = self.pattern_prefix(dict, locus)?;
        let j = dict.offset(t as usize) + b as usize - 1;
        let len = self.f_len[j];
        if len == 0 {
            return None;
        }
        Some(Match {
            id: self.f_pat[j],
            len,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsm::{substring_match, SubstringMatcher};
    use pardict_workloads::{random_dictionary, text_with_planted_matches, Alphabet};

    /// Oracle for B[i]: longest prefix of text[i..] that is a prefix of
    /// some pattern.
    fn oracle_b(dict: &Dictionary, text: &[u8], i: usize) -> usize {
        let mut best = 0;
        for p in dict.patterns() {
            let mut l = 0;
            while l < p.len() && i + l < text.len() && p[l] == text[i + l] {
                l += 1;
            }
            best = best.max(l);
        }
        best
    }

    #[test]
    fn pattern_prefix_matches_oracle() {
        for seed in 0..4u64 {
            let alpha = Alphabet::dna();
            let pram = Pram::seq();
            let dict = Dictionary::new(random_dictionary(seed, 12, 2, 9, alpha));
            let sub = SubstringMatcher::build(&pram, &dict, seed);
            let tables = Step2Tables::build(&pram, &dict, sub.tree(), seed);
            let text = text_with_planted_matches(seed + 9, dict.patterns(), 300, 30, alpha);
            let loci = substring_match(&pram, &sub, &text);
            for i in 0..text.len() {
                let want = oracle_b(&dict, &text, i);
                let got = tables
                    .pattern_prefix(&dict, loci[i])
                    .map_or(0, |(b, _)| b as usize);
                assert_eq!(got, want, "seed={seed} i={i}");
                if let Some((b, t)) = tables.pattern_prefix(&dict, loci[i]) {
                    // Certificate really has this prefix.
                    let p = &dict.patterns()[t as usize];
                    assert_eq!(&p[..b as usize], &text[i..i + b as usize]);
                }
            }
        }
    }
}
