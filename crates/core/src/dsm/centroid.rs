//! Separator (centroid) decomposition of the suffix tree, for Step 1A's
//! anchor descent ([AFM92]'s scheme).
//!
//! The suffix tree is first *binarized*: each node's children (ordered by
//! edge symbol) become a left-leaning chain of virtual nodes, so every
//! separator has at most three neighbours and pieces can be stored inline.
//! A descent step resolves one separator with O(1) work: real separators
//! compare the node label's fingerprint against the text; virtual
//! separators additionally compare the branching symbol against the chain's
//! split symbol. Pieces halve every level, so a descent takes `O(log d)`
//! steps.
//!
//! Construction is sequential divide-and-conquer, `O(N log N)` operations
//! (charged to the ledger); the paper's [AFM92] machinery attains `O(N)` —
//! this is the one knowingly super-linear *preprocessing* component, called
//! out in DESIGN.md and visible in experiment E1.

use pardict_pram::{ceil_log2, Pram};
use pardict_suffix::{sym_code, SuffixTree};

const NONE: u32 = u32::MAX;

/// A separator component: its separator node (in the binarized tree) and
/// the adjacent pieces (via parent, via child 0, via child 1).
#[derive(Debug, Clone, Copy)]
struct Comp {
    sep: u32,
    pieces: [u32; 3],
}

/// The binarized tree plus its centroid decomposition.
#[derive(Debug)]
pub(super) struct CentroidIndex {
    n_real: usize,
    /// Per virtual node (indexed by `b - n_real`): owning real node.
    virt_owner: Vec<u32>,
    /// Per virtual node: the split symbol (code of its left child's edge).
    virt_code: Vec<u16>,
    comps: Vec<Comp>,
    root_comp: u32,
}

impl CentroidIndex {
    pub(super) fn build(pram: &Pram, st: &SuffixTree) -> Self {
        let n_real = st.num_nodes();

        // ---- Binarize ----
        let mut b_parent = vec![NONE; n_real];
        let mut b_child: Vec<[u32; 2]> = vec![[NONE; 2]; n_real];
        let mut virt_owner: Vec<u32> = Vec::new();
        let mut virt_code: Vec<u16> = Vec::new();
        let mut total_children = 0u64;
        for u in 0..n_real {
            let mut kids: Vec<usize> = st.children(u).to_vec();
            total_children += kids.len() as u64;
            kids.sort_unstable_by_key(|&c| st.edge_first_code(c));
            match kids.len() {
                0 => {}
                1 => {
                    b_child[u][0] = kids[0] as u32;
                    b_parent[kids[0]] = u as u32;
                }
                k => {
                    // Chain of k-1 virtual nodes.
                    let mut prev = u as u32;
                    for (idx, &c) in kids.iter().enumerate().take(k - 1) {
                        let v = (n_real + virt_owner.len()) as u32;
                        virt_owner.push(u as u32);
                        virt_code.push(st.edge_first_code(c));
                        b_parent.push(prev);
                        b_child.push([NONE; 2]);
                        if prev == u as u32 {
                            b_child[u][0] = v;
                        } else {
                            b_child[prev as usize][1] = v;
                        }
                        b_child[v as usize][0] = c as u32;
                        b_parent[c] = v;
                        if idx == k - 2 {
                            // Last virtual: right child is the final kid.
                            let last = kids[k - 1];
                            b_child[v as usize][1] = last as u32;
                            b_parent[last] = v;
                        }
                        prev = v;
                    }
                }
            }
        }
        pram.ledger().round(n_real as u64 + total_children);
        let nb = b_parent.len();

        // ---- Centroid decomposition ----
        let mut comps: Vec<Comp> = Vec::with_capacity(nb);
        let mut stamp = vec![0u32; nb];
        let mut size = vec![0u32; nb];
        let mut cur_stamp = 0u32;
        // Work/depth accounting: total touched nodes, levels.
        let mut touched = 0u64;
        let mut max_level = 0u32;

        // Each stack entry: (node list of the piece, backpatch target).
        let root_nodes: Vec<u32> = (0..nb as u32).collect();
        let mut stack: Vec<(Vec<u32>, u32, usize, u32)> = Vec::new(); // (nodes, parent_comp, slot, level)
        let mut root_comp = NONE;
        if nb > 0 {
            stack.push((root_nodes, NONE, 0, 0));
        }

        let neighbors = |b: usize| -> [u32; 3] { [b_parent[b], b_child[b][0], b_child[b][1]] };

        while let Some((nodes, parent_comp, slot, level)) = stack.pop() {
            max_level = max_level.max(level);
            touched += nodes.len() as u64;
            cur_stamp += 1;
            let my = cur_stamp;
            for &v in &nodes {
                stamp[v as usize] = my;
            }
            // Subtree sizes within the piece (iterative post-order from the
            // first node, treating the piece as an unrooted tree).
            let total = nodes.len() as u32;
            let sep = if total == 1 {
                nodes[0]
            } else {
                // BFS order from nodes[0], then reverse accumulate.
                let start = nodes[0];
                let mut order = Vec::with_capacity(nodes.len());
                let mut par = vec![NONE; 0];
                let mut parent_of = std::collections::HashMap::new();
                order.push(start);
                parent_of.insert(start, NONE);
                let mut qi = 0;
                while qi < order.len() {
                    let v = order[qi];
                    qi += 1;
                    for nb in neighbors(v as usize) {
                        if nb != NONE && stamp[nb as usize] == my && !parent_of.contains_key(&nb) {
                            parent_of.insert(nb, v);
                            order.push(nb);
                        }
                    }
                }
                debug_assert_eq!(order.len(), nodes.len(), "piece not connected");
                for &v in &order {
                    size[v as usize] = 1;
                }
                for &v in order.iter().rev() {
                    let p = parent_of[&v];
                    if p != NONE {
                        size[p as usize] += size[v as usize];
                    }
                }
                // Centroid: minimize the largest piece after removal.
                let mut best = start;
                let mut best_max = u32::MAX;
                for &v in &order {
                    let mut mx = total - size[v as usize];
                    for nb in neighbors(v as usize) {
                        if nb != NONE && stamp[nb as usize] == my && parent_of.get(&nb) == Some(&v)
                        {
                            mx = mx.max(size[nb as usize]);
                        }
                    }
                    if mx < best_max {
                        best_max = mx;
                        best = v;
                    }
                }
                par.clear();
                best
            };

            let comp_id = comps.len() as u32;
            comps.push(Comp {
                sep,
                pieces: [NONE; 3],
            });
            if parent_comp == NONE {
                root_comp = comp_id;
            } else {
                comps[parent_comp as usize].pieces[slot] = comp_id;
            }

            // Split into pieces around sep, one per live neighbour.
            stamp[sep as usize] = 0; // remove sep
            for (sidx, nb) in neighbors(sep as usize).into_iter().enumerate() {
                if nb == NONE || stamp[nb as usize] != my {
                    continue;
                }
                // Collect the piece by BFS.
                let mut piece = vec![nb];
                stamp[nb as usize] = 0;
                let mut qi = 0;
                while qi < piece.len() {
                    let v = piece[qi];
                    qi += 1;
                    for nb2 in neighbors(v as usize) {
                        if nb2 != NONE && stamp[nb2 as usize] == my {
                            stamp[nb2 as usize] = 0;
                            piece.push(nb2);
                        }
                    }
                }
                // Re-stamp for child processing happens on pop.
                stack.push((piece, comp_id, sidx, level + 1));
            }
        }
        // Ledger: the build touches `touched` nodes over `max_level` levels;
        // a PRAM implementation runs each level in O(log) rounds.
        pram.ledger().charge_work(touched);
        pram.ledger()
            .charge_depth(u64::from(max_level + 1) * u64::from(ceil_log2(nb.max(2))));

        Self {
            n_real,
            virt_owner,
            virt_code,
            comps,
            root_comp,
        }
    }

    /// Descend the decomposition; returns the deepest explicit node whose
    /// label fingerprint-matches a prefix of `text[i..]`.
    pub(super) fn descend(
        &self,
        st: &SuffixTree,
        qlen: usize,
        i: usize,
        text: &[u8],
        label_matches: &dyn Fn(usize) -> bool,
        ops: &mut u64,
    ) -> usize {
        let mut anchor = st.root();
        if self.root_comp == NONE || qlen == 0 {
            return anchor;
        }
        let mut comp = self.root_comp;
        loop {
            *ops += 1;
            let Comp { sep, pieces } = self.comps[comp as usize];
            let s = sep as usize;
            let dir: usize = if s < self.n_real {
                if label_matches(s) {
                    if st.str_depth(s) > st.str_depth(anchor) {
                        anchor = s;
                    }
                    1 // toward the child chain
                } else {
                    0
                }
            } else {
                let owner = self.virt_owner[s - self.n_real] as usize;
                if label_matches(owner) {
                    if st.str_depth(owner) > st.str_depth(anchor) {
                        anchor = owner;
                    }
                    let pos = i + st.str_depth(owner);
                    if pos >= text.len() {
                        0
                    } else {
                        let qcode = sym_code(text[pos]);
                        let split = self.virt_code[s - self.n_real];
                        match qcode.cmp(&split) {
                            std::cmp::Ordering::Equal => 1,
                            std::cmp::Ordering::Greater => 2,
                            std::cmp::Ordering::Less => 0,
                        }
                    }
                } else {
                    0
                }
            };
            let next = pieces[dir];
            if next == NONE {
                return anchor;
            }
            comp = next;
        }
    }

    /// Number of components (for tests/diagnostics).
    #[cfg(test)]
    #[must_use]
    pub(super) fn num_comps(&self) -> usize {
        self.comps.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pardict_fingerprint::PrefixHashes;
    use pardict_pram::Pram;
    use pardict_workloads::{random_text, Alphabet};

    /// Oracle: deepest explicit node whose label is a prefix of text[i..].
    fn oracle_anchor(st: &SuffixTree, text: &[u8], i: usize) -> usize {
        let mut best = st.root();
        for v in 0..st.num_nodes() {
            let ds = st.str_depth(v);
            if ds == 0 || ds > text.len() - i || ds <= st.str_depth(best) {
                continue;
            }
            if st.is_leaf(v) && st.label_pos(v) + ds > st.text().len() {
                continue; // label includes the sentinel
            }
            let lp = st.label_pos(v);
            if st.text()[lp..lp + ds] == text[i..i + ds] {
                best = v;
            }
        }
        best
    }

    #[test]
    fn descent_finds_deepest_matching_node() {
        let pram = Pram::seq();
        for seed in 0..4u64 {
            let dhat = random_text(seed, 200, Alphabet::dna());
            let st = SuffixTree::build(&pram, &dhat, seed);
            let idx = CentroidIndex::build(&pram, &st);
            assert!(idx.num_comps() > 0);
            let text = random_text(seed + 10, 150, Alphabet::dna());
            let th = PrefixHashes::build(&pram, &text, st.hashes().base());
            for i in 0..text.len() {
                let qlen = text.len() - i;
                let lm = |v: usize| {
                    let ds = st.str_depth(v);
                    ds <= qlen && st.hashes().substring(st.label_pos(v), ds) == th.substring(i, ds)
                };
                let mut ops = 0;
                let got = idx.descend(&st, qlen, i, &text, &lm, &mut ops);
                let want = oracle_anchor(&st, &text, i);
                assert_eq!(
                    st.str_depth(got),
                    st.str_depth(want),
                    "seed={seed} i={i} got={got} want={want}"
                );
                assert!(
                    ops as usize <= 4 * (pardict_pram::ceil_log2(st.num_nodes()) as usize + 2),
                    "descent took {ops} steps"
                );
            }
        }
    }

    #[test]
    fn single_pattern_tree() {
        let pram = Pram::seq();
        let st = SuffixTree::build(&pram, b"ab", 1);
        let idx = CentroidIndex::build(&pram, &st);
        let text = b"ab";
        let th = PrefixHashes::build(&pram, text, st.hashes().base());
        let lm = |v: usize| {
            let ds = st.str_depth(v);
            ds <= 2 && st.hashes().substring(st.label_pos(v), ds) == th.substring(0, ds)
        };
        let mut ops = 0;
        let got = idx.descend(&st, 2, 0, text, &lm, &mut ops);
        assert_eq!(st.str_depth(got), oracle_depth(&st, text));
    }

    fn oracle_depth(st: &SuffixTree, text: &[u8]) -> usize {
        st.str_depth(oracle_anchor(st, text, 0))
    }
}
