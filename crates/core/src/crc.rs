//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the
//! container's per-block and footer checksum. Table-driven, with the table
//! generated at compile time; guaranteed to catch any single-bit flip and
//! any burst shorter than 32 bits, which is exactly the corruption class
//! the per-block records are defending against.

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const TABLE: [u32; 256] = make_table();

/// CRC-32 of `data` (the gzip/zip/PNG polynomial and bit order).
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_check_value() {
        // The canonical CRC-32 test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let data = b"the quick brown fox jumps over the lazy dog".to_vec();
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
