//! Deterministic *offline* dictionary matching.
//!
//! The paper's model is online: the dictionary is preprocessed before the
//! text exists, which forces fingerprints (and the Las Vegas wrapper).
//! When dictionary and text are both in hand, a joint suffix tree of
//! `D̂ · # · T` answers everything deterministically in `O(d + n)` work:
//! each text suffix's longest `D̂`-match is the better of its nearest
//! `D̂`-suffix neighbours in suffix-array order (two monoid scans), the
//! locus is an LCA of two leaves, and Step 2's tables apply unchanged on
//! the joint tree. No randomness, no checker — the batch-mode counterpart
//! a downstream user often wants, and a deterministic cross-check of the
//! online matcher in the test suite.

use crate::dict::{Dictionary, Match, Matches};
use crate::dsm::Locus;
use crate::step2::Step2Tables;
use pardict_pram::Pram;
use pardict_suffix::SuffixTree;

/// Deterministic batch matching: longest pattern at every text position.
///
/// Returns `None` when no separator byte is available (the 255 non-NUL
/// byte values are all used by `D̂` or the text — impossible for any
/// realistic alphabet).
#[must_use]
pub fn dictionary_match_offline(pram: &Pram, dict: &Dictionary, text: &[u8]) -> Option<Matches> {
    let n = text.len();
    if n == 0 {
        return Some(Matches::new(Vec::new()));
    }
    assert!(text.iter().all(|&c| c != 0), "text must be NUL-free");

    // A separator byte unused by both strings (0 is the tree's sentinel).
    let mut used = [false; 256];
    for &c in dict.dhat() {
        used[c as usize] = true;
    }
    for &c in text {
        used[c as usize] = true;
    }
    pram.ledger().round((dict.total_len() + n) as u64);
    let sep = (1u8..=255).find(|&c| !used[c as usize])?;

    // Joint string D̂ · sep · T. The separator is unique, so no common
    // prefix ever crosses it.
    let d = dict.total_len();
    let mut joint = Vec::with_capacity(d + 1 + n);
    joint.extend_from_slice(dict.dhat());
    joint.push(sep);
    joint.extend_from_slice(text);
    // The seed only randomizes internal tie-breaking (list ranking) and the
    // fingerprint table (unused here): outputs are deterministic.
    let st = SuffixTree::build(pram, &joint, 0x000F_F11E);

    // For each SA position, the nearest D̂-suffix (start < d) above/below,
    // with the min-LCP of the gap — two monoid scans over (SA, LCP).
    // Element: (candidate D̂ SA-position or MAX, min lcp since it).
    let up = scan_nearest(pram, &st, d, false);
    let down = scan_nearest(pram, &st, d, true);

    let tables = Step2Tables::build(pram, dict, &st, 0x0FF2);

    // Per text position: best D̂ match length + locus, then Step 2.
    let inner: Vec<Option<Match>> = pram.tabulate(n, |i| {
        let leaf = st.leaf_node(d + 1 + i);
        let k = leaf; // leaves are SA positions
        let (a_pos, a_lcp) = up[k];
        let (b_pos, b_lcp) = down[k];
        let (best_lcp, best_leaf) = if a_lcp >= b_lcp {
            (a_lcp, a_pos)
        } else {
            (b_lcp, b_pos)
        };
        if best_leaf == u32::MAX || best_lcp == 0 {
            return None;
        }
        // Locus of the match: the LCA of the two leaves has string depth
        // exactly best_lcp.
        let v = st.lca(leaf, best_leaf as usize);
        debug_assert_eq!(st.str_depth(v), best_lcp as usize);
        let locus = Locus {
            below: v as u32,
            len: best_lcp,
        };
        tables.longest_pattern(dict, locus)
    });
    Some(Matches::new(inner))
}

/// For every SA position `k`: the nearest SA position with a `D̂` suffix
/// (`sa < d`) strictly before (`rev = false`) or after (`rev = true`) `k`,
/// together with the minimum LCP between them — i.e.
/// `lcp(suffix(sa[k]), suffix(sa[that]))`.
fn scan_nearest(pram: &Pram, st: &SuffixTree, d: usize, rev: bool) -> Vec<(u32, u32)> {
    let m = st.num_leaves();
    // Scan over SA positions carrying (has-D̂-pos, last D̂ pos, min LCP of
    // the steps after it). Build per-position elements in scan direction.
    let idx = |t: usize| if rev { m - 1 - t } else { t };
    let elems: Vec<(u32, u32, u32)> = pram.tabulate(m, |t| {
        let k = idx(t);
        // The LCP step crossed when moving INTO position k from the
        // previous position in scan order.
        let step = if rev {
            if k + 1 < m {
                st.lcp()[k + 1]
            } else {
                0
            }
        } else {
            st.lcp()[k] // lcp[0] = 0: never used as a real step (t = 0)
        };
        let is_dhat = (st.leaf_pos(k)) < d;
        if is_dhat {
            // As a unit run, a D̂ position resets the carry; the step INTO
            // it is irrelevant for anything after it (queries measure from
            // the D̂ position forward). Dropping it here keeps the combine
            // associative.
            (1, k as u32, u32::MAX)
        } else {
            (0, k as u32, step)
        }
    });
    // Inclusive scan: state = (pos, min_lcp). Combining a = state, b = elem:
    // if b is a D̂ suffix: reset to (b, inf). Else extend: min with step.
    let scanned = pram.scan_inclusive(&elems, (0u32, u32::MAX, u32::MAX), |a, b| {
        // (run-contains-a-D̂-pos, last D̂ pos, min steps after it).
        // If the right run has its own D̂ position, its state stands;
        // otherwise the left state extends across the right's steps.
        if b.0 == 1 {
            b
        } else {
            (a.0, a.1, a.2.min(b.2))
        }
    });
    // The state at position t describes the nearest D̂ suffix at-or-before
    // (in scan order) position idx(t) — but we want *strictly* before and
    // the min LCP must include the step into the current position. Shift by
    // one scan step.
    let mut out = vec![(u32::MAX, 0u32); m];
    pram.ledger().round(m as u64);
    for t in 0..m {
        let k = idx(t);
        if t == 0 {
            continue; // nothing strictly before in scan order
        }
        let prev = scanned[t - 1];
        if prev.0 == 0 {
            continue;
        }
        // Min over: the run recorded up to t-1, plus the raw step into t.
        let step = if rev {
            if k + 1 < m {
                st.lcp()[k + 1]
            } else {
                0
            }
        } else {
            st.lcp()[k]
        };
        let lcp = prev.2.min(step);
        out[k] = (prev.1, lcp);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ac::AhoCorasick;
    use pardict_workloads::{
        markov_text, prefix_heavy_dictionary, random_dictionary, text_with_planted_matches,
        Alphabet,
    };

    fn check(dict: &Dictionary, text: &[u8]) {
        let pram = Pram::seq();
        let got = dictionary_match_offline(&pram, dict, text).expect("separator available");
        let want = AhoCorasick::build(dict).match_text(text);
        for i in 0..text.len() {
            assert_eq!(
                got.get(i).map(|m| m.len),
                want.get(i).map(|m| m.len),
                "position {i}"
            );
        }
    }

    #[test]
    fn matches_aho_corasick() {
        for seed in 0..5u64 {
            let alpha = Alphabet::dna();
            let dict = Dictionary::new(random_dictionary(seed, 20, 2, 10, alpha));
            let text = text_with_planted_matches(seed + 7, dict.patterns(), 600, 30, alpha);
            check(&dict, &text);
        }
    }

    #[test]
    fn prefix_heavy_and_wide_alphabet() {
        let alpha = Alphabet::lowercase();
        let dict = Dictionary::new(prefix_heavy_dictionary(3, 25, 4, 6, alpha));
        let text = markov_text(4, 800, alpha);
        check(&dict, &text);
    }

    #[test]
    fn deterministic_across_calls() {
        let pram = Pram::seq();
        let dict = Dictionary::new(vec![b"ab".to_vec(), b"bab".to_vec()]);
        let a = dictionary_match_offline(&pram, &dict, b"ababab").unwrap();
        let b = dictionary_match_offline(&pram, &dict, b"ababab").unwrap();
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn tiny_inputs() {
        let pram = Pram::seq();
        let dict = Dictionary::new(vec![b"x".to_vec()]);
        let got = dictionary_match_offline(&pram, &dict, b"").unwrap();
        assert!(got.is_empty());
        check(&dict, b"x");
        check(&dict, b"y");
    }

    #[test]
    fn no_separator_available_returns_none() {
        // Fill the alphabet: patterns using bytes 1..=255 leave no spare.
        let all: Vec<u8> = (1u8..=255).collect();
        let dict = Dictionary::new(vec![all.clone()]);
        let pram = Pram::seq();
        assert!(dictionary_match_offline(&pram, &dict, &all).is_none());
    }

    #[test]
    fn work_is_linear_in_d_plus_n() {
        let alpha = Alphabet::dna();
        let mut per = Vec::new();
        for n in [1usize << 12, 1 << 14, 1 << 16] {
            let dict = Dictionary::new(random_dictionary(5, 64, 4, 12, alpha));
            let text = text_with_planted_matches(6, dict.patterns(), n, 25, alpha);
            let pram = Pram::seq();
            let (_, cost) = pram.metered(|p| dictionary_match_offline(p, &dict, &text));
            per.push(cost.work as f64 / (n + dict.total_len()) as f64);
        }
        assert!(
            per[2] < per[0] * 1.5 + 4.0,
            "offline work superlinear: {per:?}"
        );
    }
}
