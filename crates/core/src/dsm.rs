//! Step 1: dictionary *substring* matching (§3.1).
//!
//! For every text position `i`, compute `S[i]` — the longest substring of
//! the dictionary concatenation `D̂` that starts at `T[i]` — as a locus in
//! the suffix tree of `D̂`.
//!
//! * **Step 1A (anchors).** Positions `i = (k+1)·L − 1` (one per length-`L`
//!   window, `L = Θ(log d)`) descend a **separator (centroid)
//!   decomposition** of the (binarized) suffix tree. Each separator is
//!   resolved with O(1) Karp–Rabin fingerprint comparisons between a node
//!   path label (a substring of `D̂`) and the corresponding text substring,
//!   so an anchor costs `O(log d)` — the [AFM92] scheme the paper invokes.
//! * **Step 1B (ExtendLeft).** Within each window, `S[i−1]` follows from
//!   `S[i]`: the paper's Observation 2 says the candidate loci have
//!   `T[i−1]`-Weiner-links to ancestors of the current locus, so one
//!   *nearest colored ancestor* query (§3.2; colors = "has an `a`-Weiner
//!   link") plus one **exact** Lemma 2.6 LCP query on `D̂` produce the
//!   answer. A Weiner-link argument shows the residual walk never crosses
//!   more than one full edge, so ExtendLeft is O(1) beyond the Find.
//!
//! With the naive colored-ancestor structure (constant alphabet) the text
//! work is `O(n)` (Theorem 3.1); with the vEB structure it is
//! `O(n log log d)` (Theorem 3.2's regime).

use crate::dict::Dictionary;
use pardict_ancestors::{ColoredAncestors, ColoredAncestorsNaive};
use pardict_fingerprint::PrefixHashes;
use pardict_pram::{ceil_log2, Pram, SplitMix64};
use pardict_suffix::{sym_code, SuffixTree};

mod centroid;

use centroid::CentroidIndex;

/// A locus in the suffix tree of `D̂`: a point at string depth `len` on the
/// path to `below` (`len == 0` means the root; otherwise
/// `depth(parent(below)) < len <= depth(below)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Locus {
    /// The node at or below the point.
    pub below: u32,
    /// The matched length `|S[i]|`.
    pub len: u32,
}

impl Locus {
    /// The empty locus (root).
    #[must_use]
    pub fn root(st: &SuffixTree) -> Self {
        Self {
            below: st.root() as u32,
            len: 0,
        }
    }

    /// A `D̂` position where the matched substring occurs.
    #[must_use]
    pub fn dhat_pos(&self, st: &SuffixTree) -> usize {
        st.label_pos(self.below as usize)
    }

    /// The deepest explicit node whose label is a prefix of the matched
    /// substring (the paper's `u`).
    #[must_use]
    pub fn upper(&self, st: &SuffixTree) -> usize {
        let b = self.below as usize;
        if (self.len as usize) == st.str_depth(b) {
            b
        } else {
            st.parent(b)
        }
    }
}

/// Engine holding one of the two colored-ancestor variants.
#[derive(Debug)]
enum ColoredEngine {
    Naive(ColoredAncestorsNaive),
    Veb(ColoredAncestors),
}

impl ColoredEngine {
    fn find(&self, p: usize, c: u32) -> Option<usize> {
        match self {
            ColoredEngine::Naive(s) => s.find(p, c),
            ColoredEngine::Veb(s) => s.find(p, c),
        }
    }
}

/// Preprocessed Step-1 matcher: suffix tree of `D̂`, separator index, and
/// the colored-ancestor structure over Weiner links.
#[derive(Debug)]
pub struct SubstringMatcher {
    st: SuffixTree,
    centroid: CentroidIndex,
    colored: ColoredEngine,
    /// Number of distinct edge first-symbols (alphabet size of `D̂`).
    num_colors: usize,
}

/// Above this many distinct symbols, the vEB colored-ancestor variant
/// replaces the naive one (Theorem 3.1 vs 3.2 regimes).
const NAIVE_COLOR_LIMIT: usize = 8;

impl SubstringMatcher {
    /// Preprocess a dictionary (Theorem 3.1 preprocessing).
    #[must_use]
    pub fn build(pram: &Pram, dict: &Dictionary, seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let st = SuffixTree::build(pram, dict.dhat(), rng.next_u64());
        Self::from_tree(pram, st, rng.next_u64())
    }

    /// Preprocess from an existing suffix tree of `D̂`.
    #[must_use]
    pub fn from_tree(pram: &Pram, st: SuffixTree, seed: u64) -> Self {
        Self::from_tree_profiled(pram, st, seed).0
    }

    /// [`SubstringMatcher::from_tree`] with per-stage ledger costs
    /// (stage name, cost) — feeds the E1 preprocessing breakdown.
    #[must_use]
    pub fn from_tree_profiled(
        pram: &Pram,
        st: SuffixTree,
        seed: u64,
    ) -> (Self, Vec<(&'static str, pardict_pram::Cost)>) {
        let mut rng = SplitMix64::new(seed);
        let (centroid, c_centroid) = pram.metered(|p| CentroidIndex::build(p, &st));

        // Colors: node y gets color a iff some node x has slink(x) = y and
        // σ(x) starts with a — i.e. wlink(y, a) exists.
        let n_nodes = st.num_nodes();
        let root = st.root();
        let m = st.num_leaves();
        let mut colors: Vec<(usize, u32)> = Vec::new();
        pram.ledger().round(n_nodes as u64);
        for v in 0..n_nodes {
            if v == root || st.str_depth(v) == 0 {
                continue;
            }
            if st.is_leaf(v) && st.leaf_pos(v) == m - 1 {
                continue; // sentinel leaf
            }
            let lp = st.label_pos(v);
            if lp >= st.text().len() {
                continue; // label starts at the sentinel
            }
            let code = u32::from(sym_code(st.text()[lp]));
            colors.push((st.slink(v), code));
        }
        let distinct: std::collections::HashSet<u32> = colors.iter().map(|&(_, c)| c).collect();
        let num_colors = distinct.len();
        let (colored, c_colored) = pram.metered(|p| {
            if num_colors <= NAIVE_COLOR_LIMIT {
                ColoredEngine::Naive(ColoredAncestorsNaive::build(
                    p,
                    st.forest(),
                    &colors,
                    rng.next_u64(),
                ))
            } else {
                ColoredEngine::Veb(ColoredAncestors::build(
                    p,
                    st.forest(),
                    &colors,
                    rng.next_u64(),
                ))
            }
        });
        (
            Self {
                st,
                centroid,
                colored,
                num_colors,
            },
            vec![
                ("separator tree", c_centroid),
                ("colored ancestors", c_colored),
            ],
        )
    }

    /// The suffix tree of `D̂`.
    #[must_use]
    pub fn tree(&self) -> &SuffixTree {
        &self.st
    }

    /// Distinct alphabet symbols seen in `D̂`.
    #[must_use]
    pub fn alphabet_size(&self) -> usize {
        self.num_colors
    }

    /// Effective matchable depth of a node (leaves stop before the
    /// sentinel).
    #[inline]
    fn eff(&self, v: usize) -> usize {
        if self.st.is_leaf(v) {
            self.st.str_depth(v) - 1
        } else {
            self.st.str_depth(v)
        }
    }

    /// Step 1A: locus of the longest `D̂`-substring starting at `text[i]`,
    /// by separator descent. Returns `(locus, ops)`.
    fn anchor(&self, text: &[u8], t_hashes: &PrefixHashes, i: usize) -> (Locus, u64) {
        let st = &self.st;
        let qlen = text.len() - i;
        let mut ops = 1u64;

        // Fingerprint test: does σ(node) prefix-match text[i..]?
        let label_matches = |v: usize| -> bool {
            let ds = st.str_depth(v);
            ds <= qlen && st.hashes().substring(st.label_pos(v), ds) == t_hashes.substring(i, ds)
        };

        let anchor = self
            .centroid
            .descend(st, qlen, i, text, &label_matches, &mut ops);

        // Final refinement: at most one partial edge below the anchor
        // (galloped with fingerprints — the only Monte Carlo step here).
        let mut matched = st.str_depth(anchor);
        let mut below = anchor;
        loop {
            if i + matched >= text.len() {
                break;
            }
            let Some(c) = st.child_by_byte(below, text[i + matched]) else {
                break;
            };
            let edge_lo = st.label_pos(c) + matched;
            let edge_len = self.eff(c) - matched;
            let cap = edge_len.min(qlen - matched);
            // Gallop the common prefix of text[i+matched..] and
            // D̂[edge_lo..] (first char already matches).
            let mut good = 1usize;
            let eq = |l: usize| -> bool {
                st.hashes().substring(edge_lo, l) == t_hashes.substring(i + matched, l)
            };
            if cap > 1 {
                let mut step = 1usize;
                loop {
                    let probe = (good + step).min(cap);
                    ops += 1;
                    if eq(probe) {
                        good = probe;
                        if probe == cap {
                            break;
                        }
                        step *= 2;
                    } else {
                        let (mut lo, mut hi) = (good, probe - 1);
                        while lo < hi {
                            let mid = (lo + hi).div_ceil(2);
                            ops += 1;
                            if eq(mid) {
                                lo = mid;
                            } else {
                                hi = mid - 1;
                            }
                        }
                        good = lo;
                        break;
                    }
                }
            }
            matched += good;
            if good == edge_len && matched < qlen {
                below = c;
                continue;
            }
            below = c;
            break;
        }
        let below = if matched == 0 { st.root() } else { below };
        (
            Locus {
                below: below as u32,
                len: matched as u32,
            },
            ops,
        )
    }

    /// Step 1B: `S[i-1]` from `S[i]` (ExtendLeft). `a = text[i-1]`.
    /// Returns `(locus, ops)`.
    fn extend_left(&self, cur: Locus, a: u8, total_budget: usize) -> (Locus, u64) {
        let st = &self.st;
        let code = u32::from(sym_code(a));
        let len = cur.len as usize;
        // Target string is a · S[i], capped by the remaining text length.
        let total = (1 + len).min(total_budget);
        let pi = cur.dhat_pos(st); // S[i] = D̂[pi .. pi+len]
        let ustar = cur.upper(st);

        let mut ops = 2u64;
        match self.colored.find(ustar, code) {
            Some(ua) => {
                let w = st
                    .wlink(ua, code as pardict_suffix::SymCode)
                    .expect("colored node has the Weiner link");
                // σ(w) = a·σ(ua): a confirmed prefix of the target.
                let (locus, walk_ops) = self.walk_down(w, st.str_depth(w), a, pi, total);
                (locus, ops + walk_ops)
            }
            None => {
                // No explicit node starts with a·…: at most one edge below
                // the root can match.
                ops += 1;
                let (locus, walk_ops) = self.walk_down(st.root(), 0, a, pi, total);
                (locus, ops + walk_ops)
            }
        }
    }

    /// Walk down from a fully matched node `cur` (depth `matched`) along
    /// the target `a · D̂[pi..pi+total-1]`, using **exact** Lemma 2.6 LCP
    /// queries. Provably crosses at most one full edge when entered via a
    /// deepest Weiner-link anchor; the loop is kept for robustness.
    fn walk_down(
        &self,
        mut cur: usize,
        mut matched: usize,
        a: u8,
        pi: usize,
        total: usize,
    ) -> (Locus, u64) {
        let st = &self.st;
        let mut ops = 0u64;
        loop {
            ops += 1;
            if matched == total {
                return (
                    Locus {
                        below: cur as u32,
                        len: matched as u32,
                    },
                    ops,
                );
            }
            let next_char = if matched == 0 {
                a
            } else {
                st.text()[pi + matched - 1]
            };
            let Some(c) = st.child_by_byte(cur, next_char) else {
                return (
                    Locus {
                        below: cur as u32,
                        len: matched as u32,
                    },
                    ops,
                );
            };
            let edge_lo = st.label_pos(c) + matched;
            let edge_len = self.eff(c) - matched;
            let rest = total - matched;
            // First char matches via the child lookup; extend exactly.
            let l = if matched == 0 {
                1 + if rest > 1 && edge_len > 1 {
                    st.lcp_positions(pi, edge_lo + 1)
                        .min(edge_len - 1)
                        .min(rest - 1)
                } else {
                    0
                }
            } else {
                st.lcp_positions(pi + matched - 1, edge_lo)
                    .min(edge_len)
                    .min(rest)
            };
            debug_assert!(l >= 1);
            matched += l;
            if l == edge_len && matched < total {
                cur = c;
                continue;
            }
            return (
                Locus {
                    below: c as u32,
                    len: matched as u32,
                },
                ops,
            );
        }
    }
}

/// Step 1 driver: `S[i]` for every text position.
///
/// Window length `L = Θ(log d)`; each window costs one anchor descent
/// (`O(log d)`) plus `L − 1` ExtendLefts (`O(1)` or `O(log log d)` each), so
/// the total is `O(n)` work (constant alphabet) at `O(log d + L)` depth.
#[must_use]
pub fn substring_match(pram: &Pram, matcher: &SubstringMatcher, text: &[u8]) -> Vec<Locus> {
    let n = text.len();
    if n == 0 {
        return Vec::new();
    }
    assert!(
        text.iter().all(|&c| c != 0),
        "text must be NUL-free (0 is the suffix-tree sentinel)"
    );
    let st = matcher.tree();
    let t_hashes = PrefixHashes::build(pram, text, st.hashes().base());

    let l_win = (ceil_log2(st.text().len().max(2)) as usize).max(1);
    let nblocks = n.div_ceil(l_win);
    let blocks: Vec<Vec<Locus>> = pram.tabulate_costed(nblocks, |b| {
        let lo = b * l_win;
        let hi = ((b + 1) * l_win).min(n);
        let mut ops = 0u64;
        let mut out = vec![Locus { below: 0, len: 0 }; hi - lo];
        let (anchor, a_ops) = matcher.anchor(text, &t_hashes, hi - 1);
        ops += a_ops;
        out[hi - 1 - lo] = anchor;
        let mut cur = anchor;
        for i in (lo..hi - 1).rev() {
            let (loc, e_ops) = matcher.extend_left(cur, text[i], n - i);
            ops += e_ops;
            out[i - lo] = loc;
            cur = loc;
        }
        (out, ops)
    });
    let mut out = Vec::with_capacity(n);
    for b in blocks {
        out.extend(b);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mstats::matching_statistics_seq;
    use pardict_workloads::{
        dictionary_from_text, markov_text, random_dictionary, random_text,
        text_with_planted_matches, Alphabet,
    };

    fn check(dict_patterns: Vec<Vec<u8>>, text: &[u8]) {
        let pram = Pram::seq();
        let dict = Dictionary::new(dict_patterns);
        let matcher = SubstringMatcher::build(&pram, &dict, 41);
        let loci = substring_match(&pram, &matcher, text);
        let ms = matching_statistics_seq(matcher.tree(), text);
        for i in 0..text.len() {
            assert_eq!(
                loci[i].len, ms[i].0,
                "length mismatch at i={i} (got locus {:?}, want len {})",
                loci[i], ms[i].0
            );
            // The locus must describe a real occurrence.
            let (l, p) = (loci[i].len as usize, loci[i].dhat_pos(matcher.tree()));
            assert_eq!(
                &dict.dhat()[p..p + l],
                &text[i..i + l],
                "locus substring mismatch at i={i}"
            );
        }
    }

    #[test]
    fn tiny_cases() {
        check(vec![b"banana".to_vec()], b"bananas");
        check(vec![b"abc".to_vec(), b"cab".to_vec()], b"abcabcab");
        check(vec![b"aa".to_vec()], b"aaaa");
        check(vec![b"xyz".to_vec()], b"abc");
    }

    #[test]
    fn binary_alphabet_uses_naive_colored() {
        let pram = Pram::seq();
        let dict = Dictionary::new(random_dictionary(3, 10, 2, 8, Alphabet::binary()));
        let matcher = SubstringMatcher::build(&pram, &dict, 5);
        assert!(matcher.alphabet_size() <= 2);
        let text = random_text(9, 300, Alphabet::binary());
        let loci = substring_match(&pram, &matcher, &text);
        let ms = matching_statistics_seq(matcher.tree(), &text);
        for i in 0..text.len() {
            assert_eq!(loci[i].len, ms[i].0, "i={i}");
        }
    }

    #[test]
    fn wide_alphabet_uses_veb_colored() {
        let pram = Pram::seq();
        let dict = Dictionary::new(random_dictionary(4, 12, 3, 10, Alphabet::lowercase()));
        let matcher = SubstringMatcher::build(&pram, &dict, 6);
        assert!(matcher.alphabet_size() > 8);
        let text = random_text(10, 400, Alphabet::lowercase());
        check(dict.patterns().to_vec(), &text);
    }

    #[test]
    fn planted_matches_and_substring_texts() {
        let alpha = Alphabet::dna();
        for seed in 0..3u64 {
            let patterns = random_dictionary(seed, 15, 2, 12, alpha);
            let text = text_with_planted_matches(seed + 50, &patterns, 400, 30, alpha);
            check(patterns, &text);
        }
        // Text drawn from the dictionary itself: long matches.
        let base = markov_text(77, 600, Alphabet::dna());
        let patterns = dictionary_from_text(78, &base, 10, 5, 40);
        let text = base[50..450].to_vec();
        check(patterns, &text);
    }

    #[test]
    fn repetitive_dictionary() {
        let d = vec![
            b"abab".to_vec(),
            b"baba".to_vec(),
            b"aabb".to_vec(),
            b"bbbb".to_vec(),
        ];
        let text = b"abababababbbababbbbaabba".to_vec();
        check(d, &text);
    }

    #[test]
    fn matching_work_is_linear_in_text() {
        let alpha = Alphabet::dna();
        let dict = Dictionary::new(random_dictionary(7, 50, 4, 16, alpha));
        let pram = Pram::seq();
        let matcher = SubstringMatcher::build(&pram, &dict, 8);
        let mut per_char = Vec::new();
        for n in [1usize << 11, 1 << 13, 1 << 15] {
            let text = text_with_planted_matches(n as u64, dict.patterns(), n, 20, alpha);
            let (_, cost) = pram.metered(|p| substring_match(p, &matcher, &text));
            per_char.push(cost.work as f64 / n as f64);
        }
        assert!(
            per_char[2] < per_char[0] * 1.5 + 4.0,
            "substring matching work superlinear: {per_char:?}"
        );
    }
}
