//! Aho–Corasick: the classical sequential dictionary matcher [AC75].
//!
//! The paper's historical baseline ("linear time, hence optimal…
//! inherently sequential"). Serves three roles here: the sequential
//! performance baseline in the benches, the exact oracle that every
//! parallel result is tested against, and the reference implementation of
//! the problem statement itself (longest pattern at each position).

use crate::dict::{Dictionary, Match, Matches};

/// Aho–Corasick automaton (goto/fail/output).
#[derive(Debug)]
pub struct AhoCorasick {
    /// goto[state][byte] — dense transition table after BFS completion.
    goto_: Vec<[u32; 256]>,
    /// Longest pattern ending at this state (id, len), if any — following
    /// output links is pre-collapsed into a single "deepest output" entry.
    out: Vec<Option<Match>>,
    /// Output link: deepest proper suffix state with an output.
    out_link: Vec<u32>,
}

const ROOT: u32 = 0;

impl AhoCorasick {
    /// Build the automaton in `O(d · σ)` time (dense tables).
    #[must_use]
    #[allow(clippy::needless_range_loop)] // byte values double as table indices
    pub fn build(dict: &Dictionary) -> Self {
        let mut goto_: Vec<[u32; 256]> = vec![[u32::MAX; 256]];
        let mut out: Vec<Option<Match>> = vec![None];
        let mut depth: Vec<u32> = vec![0];

        // Trie phase.
        for (t, p) in dict.patterns().iter().enumerate() {
            let mut s = ROOT;
            for &c in p {
                let nxt = goto_[s as usize][c as usize];
                s = if nxt == u32::MAX {
                    goto_.push([u32::MAX; 256]);
                    out.push(None);
                    depth.push(depth[s as usize] + 1);
                    let ns = (goto_.len() - 1) as u32;
                    goto_[s as usize][c as usize] = ns;
                    ns
                } else {
                    nxt
                };
            }
            let m = Match {
                id: t as u32,
                len: p.len() as u32,
            };
            // Identical patterns share a state; keep the smallest id.
            if out[s as usize].is_none() {
                out[s as usize] = Some(m);
            }
        }

        // BFS phase: fail links, completed goto, output links.
        let n = goto_.len();
        let mut fail = vec![ROOT; n];
        let mut out_link = vec![ROOT; n];
        let mut queue = std::collections::VecDeque::new();
        for c in 0..256 {
            let s = goto_[ROOT as usize][c];
            if s == u32::MAX {
                goto_[ROOT as usize][c] = ROOT;
            } else {
                fail[s as usize] = ROOT;
                queue.push_back(s);
            }
        }
        while let Some(s) = queue.pop_front() {
            let f = fail[s as usize];
            out_link[s as usize] = if out[f as usize].is_some() {
                f
            } else {
                out_link[f as usize]
            };
            for c in 0..256 {
                let t = goto_[s as usize][c];
                if t == u32::MAX {
                    goto_[s as usize][c] = goto_[f as usize][c];
                } else {
                    fail[t as usize] = goto_[f as usize][c];
                    queue.push_back(t);
                }
            }
        }

        Self {
            goto_,
            out,
            out_link,
        }
    }

    /// Longest pattern occurring at every text position (the problem's
    /// `M[i]`). Sequential; `O(n + occ)` where `occ` is the number of
    /// pattern occurrences enumerated through output links.
    #[must_use]
    pub fn match_text(&self, text: &[u8]) -> Matches {
        let n = text.len();
        let mut best: Vec<Option<Match>> = vec![None; n];
        let mut s = ROOT;
        for (e, &c) in text.iter().enumerate() {
            s = self.goto_[s as usize][c as usize];
            // Enumerate all patterns ending at e via the output chain.
            let mut v = s;
            loop {
                if let Some(m) = self.out[v as usize] {
                    let start = e + 1 - m.len as usize;
                    if best[start].is_none_or(|b| b.len < m.len) {
                        best[start] = Some(m);
                    }
                }
                if v == ROOT {
                    break;
                }
                v = self.out_link[v as usize];
                if v == ROOT && self.out[ROOT as usize].is_none() {
                    break;
                }
            }
        }
        Matches::new(best)
    }

    /// Number of automaton states.
    #[must_use]
    pub fn num_states(&self) -> usize {
        self.goto_.len()
    }
}

/// Brute-force oracle: longest pattern at each position by direct
/// comparison. `O(n · k · m)` — tests only.
#[must_use]
pub fn brute_force_matches(dict: &Dictionary, text: &[u8]) -> Matches {
    let n = text.len();
    let mut best: Vec<Option<Match>> = vec![None; n];
    for i in 0..n {
        for (t, p) in dict.patterns().iter().enumerate() {
            if i + p.len() <= n && &text[i..i + p.len()] == p.as_slice() {
                let m = Match {
                    id: t as u32,
                    len: p.len() as u32,
                };
                if best[i].is_none_or(|b| {
                    (b.len, std::cmp::Reverse(b.id)) < (m.len, std::cmp::Reverse(m.id))
                }) {
                    best[i] = Some(m);
                }
            }
        }
    }
    Matches::new(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pardict_workloads::{random_dictionary, text_with_planted_matches, Alphabet};

    fn lens(m: &Matches) -> Vec<Option<u32>> {
        m.as_slice().iter().map(|o| o.map(|mm| mm.len)).collect()
    }

    #[test]
    fn simple_overlapping_patterns() {
        let d = Dictionary::new(vec![b"he".to_vec(), b"she".to_vec(), b"hers".to_vec()]);
        let ac = AhoCorasick::build(&d);
        let m = ac.match_text(b"ushers");
        // "she" at 1, "hers" at 2 ("he" at 2 is shorter).
        assert_eq!(m.get(1), Some(Match { id: 1, len: 3 }));
        assert_eq!(m.get(2), Some(Match { id: 2, len: 4 }));
        assert_eq!(m.get(0), None);
        assert_eq!(lens(&m), lens(&brute_force_matches(&d, b"ushers")));
    }

    #[test]
    fn longest_wins_at_same_start() {
        let d = Dictionary::new(vec![b"a".to_vec(), b"ab".to_vec(), b"abc".to_vec()]);
        let ac = AhoCorasick::build(&d);
        let m = ac.match_text(b"abcab");
        assert_eq!(m.get(0).unwrap().len, 3);
        assert_eq!(m.get(3).unwrap().len, 2);
        assert_eq!(m.get(1), None);
        assert_eq!(m.get(4), None);
    }

    #[test]
    fn no_matches() {
        let d = Dictionary::new(vec![b"xyz".to_vec()]);
        let ac = AhoCorasick::build(&d);
        let m = ac.match_text(b"aaaa");
        assert!(m.iter_hits().next().is_none());
    }

    #[test]
    fn matches_brute_force_on_random_inputs() {
        for seed in 0..5u64 {
            let alpha = Alphabet::dna();
            let dict = random_dictionary(seed, 20, 1, 6, alpha);
            let d = Dictionary::new(dict);
            let text = text_with_planted_matches(seed + 100, d.patterns(), 500, 25, alpha);
            let ac = AhoCorasick::build(&d);
            assert_eq!(
                lens(&ac.match_text(&text)),
                lens(&brute_force_matches(&d, &text)),
                "seed={seed}"
            );
        }
    }

    #[test]
    fn empty_text() {
        let d = Dictionary::new(vec![b"a".to_vec()]);
        let ac = AhoCorasick::build(&d);
        assert!(ac.match_text(b"").is_empty());
    }
}
