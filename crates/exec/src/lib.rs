#![warn(missing_docs)]

//! # pardict-exec — the PRAM super-step executor
//!
//! The paper's cost model is a sequence of *rounds of wide steps*: each
//! super-step runs many independent slots at once and is charged the
//! **sum of slot work** and the **maximum of slot depths** on the CRCW
//! PRAM ledger. Before this crate existed, that discipline was hand-rolled
//! five times across the workspace (stream writer, stream reader, search
//! grep, service engine, cluster scatter) — five copies of the same
//! scoped-thread fan-out, `Mode::Seq`/`Mode::Par` branch, ledger charge,
//! and trace-span wiring. This crate is the single implementation they all
//! route through.
//!
//! ## Vocabulary
//!
//! * A **slot** is one independent unit of a wave (one block to decode,
//!   one buffer to match). Slots run on private sequential contexts and
//!   return their own [`Cost`] — usually via [`Pram::metered`].
//! * A **super-step** ([`Wave::superstep`]) runs one batch of slots —
//!   concurrently when the orchestrating [`Pram`] is parallel — and
//!   charges the caller's ledger once: Σ work, max depth. Seq and par
//!   orchestration therefore charge *identically*, which is the
//!   workspace-wide mode-independence oracle.
//! * A **wave** ([`Wave`]) is one round of the engine's outer loop: one or
//!   more super-steps plus any serial stitching between them, wrapped in
//!   exactly one ambient trace span (`pardict_trace::scoped_span`) that is
//!   attributed the wave's full ledger delta on [`Wave::finish`].
//!
//! ## Pipelining
//!
//! [`run_waves`] drives a *source → stage → sink* loop. In barrier mode
//! each wave completes before the next is fetched. In pipelined mode the
//! stage super-step of wave *k+1* overlaps the sink of wave *k* (and the
//! source fetch of wave *k+1* overlaps the stage of wave *k*), holding at
//! most one extra wave of stage output resident. Crucially, **all ledger
//! charges happen on the orchestrating thread in the same order as the
//! barrier schedule** (stage *k*, sink *k*, stage *k+1*, …): pipelining
//! changes wall-clock time, never work, depth, or span attribution.
//!
//! ## Deadlines
//!
//! [`with_deadline`] installs an ambient deadline for the current thread;
//! every [`Wave::open`] checks it, so long multi-wave operations notice an
//! expired deadline at the next super-step boundary and abort with
//! [`Cancelled`] instead of computing a result nobody is waiting for.

use pardict_pram::{Cost, Mode, Pram};
use std::cell::Cell;
use std::fmt;
use std::time::Instant;

/// An operation was cancelled at a super-step boundary because the
/// ambient deadline (see [`with_deadline`]) had passed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled;

impl fmt::Display for Cancelled {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cancelled at a super-step boundary: deadline exceeded")
    }
}

impl std::error::Error for Cancelled {}

thread_local! {
    static DEADLINE: Cell<Option<Instant>> = const { Cell::new(None) };
}

/// Run `f` with `deadline` installed as the current thread's ambient
/// deadline; [`Wave::open`] (and explicit [`check_deadline`] calls) fail
/// with [`Cancelled`] once it has passed. Nests: the previous deadline is
/// restored on exit, including on panic.
pub fn with_deadline<R>(deadline: Option<Instant>, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Instant>);
    impl Drop for Restore {
        fn drop(&mut self) {
            DEADLINE.with(|d| d.set(self.0));
        }
    }
    let _restore = Restore(DEADLINE.with(|d| d.replace(deadline)));
    f()
}

/// Check the ambient deadline without opening a wave.
///
/// # Errors
/// [`Cancelled`] when a deadline is installed and has passed.
pub fn check_deadline() -> Result<(), Cancelled> {
    if DEADLINE.with(Cell::get).is_some_and(|d| Instant::now() > d) {
        Err(Cancelled)
    } else {
        Ok(())
    }
}

/// The default number of slots per wave: one per hardware thread, capped
/// at 16 so a wave's resident memory stays bounded on wide machines.
#[must_use]
pub fn default_wave_width() -> usize {
    std::thread::available_parallelism()
        .map_or(4, std::num::NonZeroUsize::get)
        .min(16)
}

/// Run `slot` over `items`, concurrently when `par` (and there is more
/// than one item). Returns each slot's output with its self-reported cost;
/// nothing is charged here — that is the caller's ([`Wave`]'s) job.
fn run_slots<I, T, F>(par: bool, items: Vec<I>, slot: &F) -> Vec<(T, Cost)>
where
    I: Send,
    T: Send,
    F: Fn(usize, I) -> (T, Cost) + Sync,
{
    if par && items.len() > 1 {
        std::thread::scope(|s| {
            let handles: Vec<_> = items
                .into_iter()
                .enumerate()
                .map(|(k, item)| s.spawn(move || slot(k, item)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("wave slot worker panicked"))
                .collect()
        })
    } else {
        items
            .into_iter()
            .enumerate()
            .map(|(k, item)| slot(k, item))
            .collect()
    }
}

/// Always-parallel, ledger-free fan-out: run `f` over `items` on scoped
/// threads and return the outputs in item order. This is the scatter
/// primitive for I/O-bound callers with no [`Pram`] in scope (the cluster
/// router); cost-accounted compute belongs in [`Wave::superstep`] instead.
pub fn fan_out<I, T, F>(items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(usize, I) -> T + Sync,
{
    if items.len() > 1 {
        let f = &f;
        std::thread::scope(|s| {
            let handles: Vec<_> = items
                .into_iter()
                .enumerate()
                .map(|(k, item)| s.spawn(move || f(k, item)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("fan-out worker panicked"))
                .collect()
        })
    } else {
        items
            .into_iter()
            .enumerate()
            .map(|(k, item)| f(k, item))
            .collect()
    }
}

/// A zero-width wave: a serial section that should appear in traces like
/// any other wave (store recovery, compaction). The span is inert unless
/// the caller installed an ambient scope; it records on drop, or with an
/// explicit cost via [`pardict_trace::ScopedSpan::finish`].
#[must_use]
pub fn section(name: &'static str, index: u64) -> pardict_trace::ScopedSpan {
    pardict_trace::scoped_span(name, index)
}

/// One open wave: the ledger snapshot and ambient trace span for one
/// round of an engine's outer loop. Obtain with [`Wave::open`], run one or
/// more [`superstep`]s (plus [`serial`] stitch rounds), then [`finish`] to
/// attribute the wave's ledger delta to its span.
///
/// [`superstep`]: Wave::superstep
/// [`serial`]: Wave::serial
/// [`finish`]: Wave::finish
pub struct Wave<'p> {
    pram: &'p Pram,
    span: pardict_trace::ScopedSpan,
    before: Cost,
}

impl<'p> Wave<'p> {
    /// Open a wave: check the ambient deadline, snapshot the ledger, and
    /// open the per-wave trace span (`name` disambiguated by `index`,
    /// conventionally the wave's first slot index).
    ///
    /// # Errors
    /// [`Cancelled`] when the ambient deadline has passed — the
    /// super-step-boundary cancellation point.
    pub fn open(pram: &'p Pram, name: &'static str, index: u64) -> Result<Self, Cancelled> {
        check_deadline()?;
        Ok(Self {
            pram,
            span: pardict_trace::scoped_span(name, index),
            before: pram.cost(),
        })
    }

    /// The orchestrating context this wave charges.
    #[must_use]
    pub fn pram(&self) -> &'p Pram {
        self.pram
    }

    /// Run one super-step: every slot concurrently when the orchestrating
    /// context is parallel, each on its own terms (slots meter themselves,
    /// typically on a private `Pram::seq()`), then charge the caller's
    /// ledger exactly once — Σ slot work, max slot depth.
    pub fn superstep<I, T, F>(&self, items: Vec<I>, slot: F) -> Vec<T>
    where
        I: Send,
        T: Send,
        F: Fn(usize, I) -> (T, Cost) + Sync,
    {
        let slots = run_slots(self.pram.mode() == Mode::Par, items, &slot);
        self.charge(slots.iter().map(|(_, c)| *c));
        slots.into_iter().map(|(t, _)| t).collect()
    }

    /// Charge one already-run super-step: Σ work, max depth. Used by the
    /// pipelined driver, whose stage ran on a worker thread.
    fn charge(&self, costs: impl Iterator<Item = Cost>) {
        let (work, depth) = costs.fold((0u64, 0u64), |(w, d), c| (w + c.work, d.max(c.depth)));
        self.pram.ledger().charge_work(work);
        self.pram.ledger().charge_depth(depth);
    }

    /// Charge one serial round of `width` work between super-steps (e.g.
    /// the overlap-stitch copy in grep: sequential by necessity, O(wave
    /// bytes), one round).
    pub fn serial(&self, width: u64) {
        self.pram.ledger().round(width);
    }

    /// Close the wave: its span is attributed everything charged to the
    /// ledger since [`Wave::open`].
    pub fn finish(self) {
        let cost = self.pram.cost().since(self.before);
        self.span.finish(cost);
    }
}

/// Drive a full wave loop: `source` fetches the next wave's slot inputs
/// (serial, e.g. seekable I/O), `stage` is the per-slot super-step
/// function, and `sink` consumes each wave's stage outputs inside the
/// wave's span (serial stitching plus further [`Wave::superstep`]s).
///
/// With `pipelined` false this is the barrier schedule: source *k*, stage
/// *k*, sink *k*, source *k+1*, … With `pipelined` true, source *k+1*
/// overlaps stage *k* and stage *k+1* overlaps sink *k*, with the stage
/// running on one scoped worker thread (fanning out its slots when the
/// context is parallel). Both schedules make **identical ledger charges in
/// identical order** — stage *k* charged, then sink *k*'s charges, then
/// stage *k+1* — and record identical per-wave spans, so costs and traces
/// cannot tell the modes apart; only wall-clock can.
///
/// A `source` error observed while wave *k* is in flight is deferred until
/// wave *k* has been fully processed (matching the barrier order of
/// events); a `sink` error surfaces immediately and wins over a deferred
/// `source` error from the following wave.
///
/// # Errors
/// Whatever `source`/`sink` raise, plus [`Cancelled`] (converted into `E`)
/// when the ambient deadline expires at a wave boundary.
pub fn run_waves<I, M, E, FSrc, FStage, FSink>(
    pram: &Pram,
    name: &'static str,
    pipelined: bool,
    mut source: FSrc,
    stage: FStage,
    mut sink: FSink,
) -> Result<(), E>
where
    I: Send,
    M: Send,
    E: From<Cancelled>,
    FSrc: FnMut() -> Result<Option<(u64, Vec<I>)>, E>,
    FStage: Fn(usize, I) -> (M, Cost) + Sync,
    FSink: FnMut(&Wave<'_>, Vec<M>) -> Result<(), E>,
{
    if !pipelined {
        while let Some((index, items)) = source()? {
            let wave = Wave::open(pram, name, index)?;
            let outs = wave.superstep(items, &stage);
            sink(&wave, outs)?;
            wave.finish();
        }
        return Ok(());
    }
    let par = pram.mode() == Mode::Par;
    let stage = &stage;
    std::thread::scope(move |s| {
        let Some(first) = source()? else {
            return Ok(());
        };
        let spawn_stage = move |(index, items): (u64, Vec<I>)| {
            s.spawn(move || (index, run_slots(par, items, stage)))
        };
        let mut inflight = spawn_stage(first);
        loop {
            // Fetch wave k+1 while wave k's stage is in flight; defer any
            // error until wave k is fully processed and charged.
            let next = source();
            let (index, slots) = inflight.join().expect("wave stage worker panicked");
            let wave = Wave::open(pram, name, index)?;
            wave.charge(slots.iter().map(|(_, c)| *c));
            let outs: Vec<M> = slots.into_iter().map(|(m, _)| m).collect();
            let upcoming = match next {
                Ok(Some(w)) => Ok(Some(spawn_stage(w))),
                Ok(None) => Ok(None),
                Err(e) => Err(e),
            };
            sink(&wave, outs)?;
            wave.finish();
            match upcoming? {
                Some(h) => inflight = h,
                None => return Ok(()),
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pardict_trace::{TraceConfig, Tracer};
    use std::sync::Arc;
    use std::time::Duration;

    fn slot_cost(w: u64, d: u64) -> Cost {
        Cost { work: w, depth: d }
    }

    #[test]
    fn superstep_charges_sum_work_max_depth() {
        for pram in [Pram::seq(), Pram::par()] {
            let wave = Wave::open(&pram, "test-wave", 0).unwrap();
            let outs = wave.superstep(vec![1u64, 2, 3], |k, x| {
                (x * 10, slot_cost(x, (k as u64) + 1))
            });
            assert_eq!(outs, vec![10, 20, 30]);
            wave.finish();
            let cost = pram.cost();
            assert_eq!(cost.work, 6, "sum of slot work");
            assert_eq!(cost.depth, 3, "max of slot depths");
        }
    }

    /// The pipelined schedule must charge exactly what the barrier
    /// schedule charges, deliver waves to the sink in order, and yield the
    /// same outputs — under both orchestration modes.
    #[test]
    fn pipelined_and_barrier_waves_are_cost_identical() {
        let run = |pram: &Pram, pipelined: bool| -> (Vec<u64>, Cost) {
            let waves: Vec<(u64, Vec<u64>)> = (0..5u64)
                .map(|w| (w * 3, (0..3).map(|i| w * 3 + i).collect()))
                .collect();
            let mut feed = waves.into_iter();
            let mut seen = Vec::new();
            let (_, cost) = pram.metered(|p| {
                run_waves::<u64, u64, Cancelled, _, _, _>(
                    p,
                    "test-wave",
                    pipelined,
                    || Ok(feed.next()),
                    |_, x| (x + 1, slot_cost(x + 1, x % 4)),
                    |wave, outs| {
                        wave.serial(outs.len() as u64);
                        seen.extend(outs);
                        Ok(())
                    },
                )
                .unwrap();
            });
            (seen, cost)
        };
        let (seq_b, seq_b_cost) = run(&Pram::seq(), false);
        let (seq_p, seq_p_cost) = run(&Pram::seq(), true);
        let (par_b, par_b_cost) = run(&Pram::par(), false);
        let (par_p, par_p_cost) = run(&Pram::par(), true);
        assert_eq!(seq_b, (1..=15).collect::<Vec<u64>>());
        assert_eq!(seq_b, seq_p);
        assert_eq!(seq_b, par_b);
        assert_eq!(seq_b, par_p);
        assert_eq!(seq_b_cost, seq_p_cost, "pipelining must not change cost");
        assert_eq!(seq_b_cost, par_b_cost, "mode must not change cost");
        assert_eq!(seq_b_cost, par_p_cost);
    }

    /// A source error seen while a wave is in flight surfaces only after
    /// that wave is fully processed, so both schedules leave the same
    /// ledger behind on the error path.
    #[test]
    fn source_errors_are_deferred_past_the_inflight_wave() {
        let run = |pipelined: bool| -> (Vec<u64>, Cost, bool) {
            let pram = Pram::par();
            let mut calls = 0u64;
            let mut seen = Vec::new();
            let (errored, cost) = pram.metered(|p| {
                let r = run_waves::<u64, u64, TestErr, _, _, _>(
                    p,
                    "test-wave",
                    pipelined,
                    || {
                        calls += 1;
                        match calls {
                            1 => Ok(Some((0, vec![5, 6]))),
                            _ => Err(TestErr),
                        }
                    },
                    |_, x| (x, slot_cost(x, 1)),
                    |_, outs| {
                        seen.extend(outs);
                        Ok(())
                    },
                );
                r.is_err()
            });
            (seen, cost, errored)
        };
        let (b_seen, b_cost, b_err) = run(false);
        let (p_seen, p_cost, p_err) = run(true);
        assert!(b_err && p_err);
        assert_eq!(b_seen, vec![5, 6], "wave 0 must complete before the error");
        assert_eq!(b_seen, p_seen);
        assert_eq!(b_cost, p_cost, "error paths must charge identically");
    }

    #[derive(Debug, PartialEq)]
    struct TestErr;
    impl From<Cancelled> for TestErr {
        fn from(_: Cancelled) -> Self {
            TestErr
        }
    }

    #[test]
    fn expired_deadline_cancels_at_the_wave_boundary() {
        let pram = Pram::seq();
        let past = Instant::now() - Duration::from_millis(1);
        let r = with_deadline(Some(past), || Wave::open(&pram, "test-wave", 0));
        assert_eq!(r.err(), Some(Cancelled));
        // Without a deadline (and outside with_deadline) waves open freely.
        assert!(Wave::open(&pram, "test-wave", 0).is_ok());
        let future = Instant::now() + Duration::from_secs(3600);
        assert!(with_deadline(Some(future), check_deadline).is_ok());
        // The previous ambient deadline is restored on exit.
        with_deadline(Some(past), || {
            assert!(check_deadline().is_err());
            with_deadline(None, || assert!(check_deadline().is_ok()));
            assert!(check_deadline().is_err());
        });
    }

    #[test]
    fn fan_out_preserves_item_order() {
        let got = fan_out((0..8u64).collect(), |k, x| {
            assert_eq!(k as u64, x);
            x * x
        });
        assert_eq!(got, (0..8u64).map(|x| x * x).collect::<Vec<_>>());
        assert_eq!(fan_out(Vec::<u64>::new(), |_, x: u64| x), Vec::<u64>::new());
    }

    /// One span per wave, named as the site chose, attributed the wave's
    /// ledger delta — and identical between barrier and pipelined runs.
    #[test]
    fn each_wave_records_one_ambient_span() {
        let spans_of = |pipelined: bool| {
            let t = Tracer::new(TraceConfig {
                sample_one_in: 1,
                capacity: 64,
                deterministic: true,
                seed: 7,
            });
            let t = Arc::new(t);
            let ctx = t.begin_trace().expect("sampled");
            let pram = Pram::seq();
            pardict_trace::with_scope(&t, ctx, || {
                let mut feed = (0..3u64)
                    .map(|w| (w, vec![w]))
                    .collect::<Vec<_>>()
                    .into_iter();
                run_waves::<u64, u64, Cancelled, _, _, _>(
                    &pram,
                    "exec-wave",
                    pipelined,
                    || Ok(feed.next()),
                    |_, x| (x, slot_cost(7, 2)),
                    |_, _| Ok(()),
                )
                .unwrap();
            });
            t.drain()
        };
        for pipelined in [false, true] {
            let spans = spans_of(pipelined);
            assert_eq!(spans.len(), 3, "pipelined={pipelined}");
            assert!(spans.iter().all(|s| s.name == "exec-wave"));
            assert!(spans.iter().all(|s| s.cost == slot_cost(7, 2)));
        }
    }
}
