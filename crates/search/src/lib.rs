//! `pardict-search`: block-parallel dictionary matching over compressed
//! PDZS containers — grep the compressed data without materializing the
//! underlying text.
//!
//! The paper's two halves meet here: a preprocessed §3 [`DictMatcher`]
//! (Theorem 3.1, matcher reuse across requests) is run over the blockwise
//! §4 LZ1 container produced by `pardict-stream`. The setting is the one
//! studied by Gawrychowski (*Pattern matching in Lempel-Ziv compressed
//! strings*, arXiv:1104.4203) and inverted by
//! Fischer–Gagie–Gawrychowski–Kociumaka (*Approximating LZ77 via
//! Small-Space Multiple-Pattern Matching*, arXiv:1504.06647): because the
//! container restricts every back-reference to a block-local window,
//! each block decodes independently, and searching compressed data reduces
//! to decode-and-match per block plus overlap stitching at boundaries.
//!
//! ## How a match is never lost or double-counted
//!
//! Each block's search buffer is the block's decoded bytes prefixed by an
//! **overlap tail**: the last `max_pattern_len() − 1` bytes of the
//! preceding buffer. A pattern occurrence is reported by exactly the block
//! containing its **last** byte — hits ending inside the tail were already
//! reported by an earlier block, and a hit ending past the buffer cannot
//! be detected yet. Tails accumulate across blocks, so the scheme is
//! correct even when patterns are longer than whole blocks (a hit may
//! straddle many boundaries).
//!
//! ## Accounting
//!
//! Blocks are processed in waves, mirroring `pardict-stream`'s wave
//! discipline: each wave is two PRAM super-steps (decode, then match),
//! each block running on a private sequential context, with the caller's
//! ledger charged Σ work and max depth per super-step. At most one wave of
//! blocks plus the overlap tail is resident, and a range query decodes
//! only the covering blocks plus overlap — both properties the tests
//! assert through the ledger.
//!
//! Corrupt blocks are skipped and reported ([`pardict_stream::BlockIssue`])
//! with matches suppressed only in the affected span; [`GrepConfig::strict`]
//! turns the first corrupt block into a hard error instead.

#![warn(missing_docs)]

mod grep;

pub use grep::{grep_container, grep_range, GrepConfig, GrepHit, GrepSummary};

// Re-exported so downstream callers can name the matcher type without
// depending on pardict-core directly.
pub use pardict_core::DictMatcher;
