//! The grep engine: wave-parallel decode + match with overlap stitching.

use pardict_core::PatternScan;
use pardict_pram::{Cost, Pram};
use pardict_stream::{decode_block, BlockEntry, BlockIssue, StreamError, StreamReader};
use std::io::{Read, Seek};

/// One pattern occurrence in the decoded stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GrepHit {
    /// Byte offset of the occurrence in the original (uncompressed) text.
    pub pos: u64,
    /// Pattern index in the dictionary.
    pub id: u32,
    /// Pattern length.
    pub len: u32,
}

/// What one grep run over a container produced.
#[derive(Debug, Clone, Default)]
pub struct GrepSummary {
    /// Every occurrence, ordered by position then decreasing length.
    pub hits: Vec<GrepHit>,
    /// Blocks decoded and searched (covering blocks only, not the whole
    /// container).
    pub blocks_searched: u64,
    /// Corrupt blocks skipped; matches are suppressed only in the spans
    /// these blocks cover (plus any overlap reaching into a neighbor).
    pub issues: Vec<BlockIssue>,
    /// Ledger cost attributed to this run (wave-aggregated).
    pub cost: Cost,
}

/// Grep policy knobs.
#[derive(Debug, Clone)]
pub struct GrepConfig {
    /// Blocks decoded and matched concurrently per wave; bounds resident
    /// memory at roughly one wave of decoded blocks plus the overlap tail
    /// (two waves while pipelining keeps a decode in flight).
    pub wave: usize,
    /// When set, the first corrupt block aborts the run with
    /// [`StreamError::CorruptBlock`] instead of being skipped-and-reported.
    pub strict: bool,
    /// Overlap wave *k+1*'s decode with wave *k*'s match (two-stage
    /// pipelining through the super-step executor). Never changes hits,
    /// issues, or ledger costs — only wall-clock time.
    pub pipeline: bool,
}

impl Default for GrepConfig {
    fn default() -> Self {
        Self {
            wave: pardict_exec::default_wave_width(),
            strict: false,
            pipeline: true,
        }
    }
}

impl GrepConfig {
    /// Make the first corrupt block a hard error.
    #[must_use]
    pub fn strict(mut self) -> Self {
        self.strict = true;
        self
    }

    /// Disable pipelining: each wave fully matches before the next decodes.
    #[must_use]
    pub fn barrier(mut self) -> Self {
        self.pipeline = false;
        self
    }
}

/// A block fetched from the container, not yet decoded. A fetch-level
/// block failure (header mismatch, lenient mode) rides in `payload` so
/// the slot still occupies its wave position and is reported in order.
struct Fetched {
    index: usize,
    start: u64,
    entry: BlockEntry,
    payload: Result<Vec<u8>, BlockIssue>,
}

/// One decoded wave slot: where the block starts, and its bytes or the
/// issue that stopped it (`at_fetch` distinguishes a fetch failure from a
/// decode failure — fetch issues are reported first within a wave).
struct DecodedSlot {
    start: u64,
    data: Result<Vec<u8>, (BlockIssue, bool)>,
}

/// Decode one fetched slot on a private sequential context — the stage
/// function of the grep pipeline, run inside a [`pardict_exec::Wave`]
/// super-step.
fn decode_slot(f: Fetched) -> (DecodedSlot, Cost) {
    match f.payload {
        Ok(payload) => {
            let p = Pram::seq();
            let (out, cost) = p.metered(|p| decode_block(p, f.index as u64, &f.entry, payload));
            (
                DecodedSlot {
                    start: f.start,
                    data: out.map_err(|issue| (issue, false)),
                },
                cost,
            )
        }
        Err(issue) => (
            DecodedSlot {
                start: f.start,
                data: Err((issue, true)),
            },
            Cost::default(),
        ),
    }
}

/// One block's search buffer: the overlap tail prefixed to the decoded
/// block, with the global offset of the buffer's first byte.
struct SearchBuf {
    /// Global offset of the block's first raw byte (hits ending at or
    /// before this were an earlier block's responsibility).
    block_start: u64,
    /// Global offset of `bytes[0]` (`block_start − tail length`).
    buf_start: u64,
    bytes: Vec<u8>,
}

/// Match one stitched search buffer on a private sequential context —
/// slot function of the match super-step.
fn match_buf<M: PatternScan>(matcher: &M, b: &SearchBuf) -> (Vec<GrepHit>, Cost) {
    let p = Pram::seq();
    let (occs, cost) = p.metered(|p| matcher.find_all(p, &b.bytes));
    let hits = occs
        .into_iter()
        .map(|(pos, m)| GrepHit {
            pos: b.buf_start + pos as u64,
            id: m.id,
            len: m.len,
        })
        // A hit ending inside the tail belongs to an earlier block;
        // keeping only hits that end past the block start makes each
        // occurrence the responsibility of exactly one block.
        .filter(|h| h.pos + u64::from(h.len) > b.block_start)
        .collect();
    (hits, cost)
}

/// Report every dictionary occurrence in the container's decoded stream,
/// without materializing that stream.
///
/// Equivalent to decompressing and running [`DictMatcher::find_all`], but
/// with at most one wave of blocks resident; see the crate docs for the
/// stitching and accounting scheme.
///
/// # Errors
/// Structural container failures always abort; block-local corruption
/// aborts only under [`GrepConfig::strict`] and is otherwise reported in
/// the summary with matches suppressed in the affected span.
pub fn grep_container<R: Read + Seek, M: PatternScan + Sync>(
    pram: &Pram,
    matcher: &M,
    rdr: &mut StreamReader<R>,
    cfg: &GrepConfig,
) -> Result<GrepSummary, StreamError> {
    let len = rdr.len();
    grep_range(pram, matcher, rdr, 0, len, cfg)
}

/// Like [`grep_container`], but report only occurrences **starting** in
/// `start..end`, decoding only the covering blocks plus the overlap needed
/// to detect hits that straddle out of the range.
///
/// # Errors
/// [`StreamError::RangeOutOfBounds`] for ranges past the end; otherwise
/// as [`grep_container`].
pub fn grep_range<R: Read + Seek, M: PatternScan + Sync>(
    pram: &Pram,
    matcher: &M,
    rdr: &mut StreamReader<R>,
    start: u64,
    end: u64,
    cfg: &GrepConfig,
) -> Result<GrepSummary, StreamError> {
    let len = rdr.len();
    if start > end || end > len {
        return Err(StreamError::RangeOutOfBounds { start, end, len });
    }
    let before = pram.cost();
    let mut summary = GrepSummary::default();
    if start == end {
        return Ok(summary);
    }
    let m = matcher.max_pattern_len() as u64;
    // A hit starting at `end − 1` extends at most `m` bytes; cover that
    // far so straddling hits are detected, but never past the stream.
    let cover_end = (end - 1).saturating_add(m).min(len);
    let blocks = rdr.index().covering(start, cover_end);

    // The overlap tail carried into the next block: the last `m − 1`
    // bytes seen so far (accumulating across blocks shorter than `m − 1`).
    let mut tail: Vec<u8> = Vec::new();
    let wave_size = cfg.wave.max(1);
    let strict = cfg.strict;
    let mut next = blocks.start;
    let blocks_end = blocks.end;
    pardict_exec::run_waves(
        pram,
        "search-wave",
        cfg.pipeline,
        // Source: fetch one wave of compressed payloads sequentially
        // (seekable I/O is serial). Under pipelining this overlaps the
        // previous wave's decode stage.
        || {
            if next >= blocks_end {
                return Ok(None);
            }
            let wave_end = (next + wave_size).min(blocks_end);
            let mut fetched = Vec::with_capacity(wave_end - next);
            for i in next..wave_end {
                let entry = rdr.index().entries[i];
                let start_i = rdr.index().block_start(i);
                let payload = match rdr.raw_block(i) {
                    Ok(p) => Ok(p),
                    Err(StreamError::CorruptBlock { index, kind }) => {
                        if strict {
                            return Err(StreamError::CorruptBlock { index, kind });
                        }
                        Err(BlockIssue {
                            index,
                            raw_len: entry.raw_len,
                            kind,
                        })
                    }
                    Err(e) => return Err(e),
                };
                fetched.push(Fetched {
                    index: i,
                    start: start_i,
                    entry,
                    payload,
                });
            }
            let first = next as u64;
            next = wave_end;
            Ok(Some((first, fetched)))
        },
        // Stage (super-step 1): decode the wave's slots.
        |_, f| decode_slot(f),
        // Sink: stitch the wave's buffers and run the match super-step.
        |wave, slots: Vec<DecodedSlot>| {
            // Fetch-level issues surface before decode issues, in block
            // order — the reporting order the serial engine had.
            for s in &slots {
                if let Err((issue, true)) = &s.data {
                    summary.issues.push(*issue);
                }
            }
            // Stitch: build each block's search buffer (tail ++ block) and
            // advance the tail. Sequential by necessity — the tail chains —
            // but O(wave bytes), charged as one round.
            let mut bufs = Vec::with_capacity(slots.len());
            let mut copied = 0u64;
            for s in slots {
                match s.data {
                    Ok(bytes) => {
                        let mut buf = Vec::with_capacity(tail.len() + bytes.len());
                        buf.extend_from_slice(&tail);
                        buf.extend_from_slice(&bytes);
                        copied += buf.len() as u64;
                        let keep = buf.len().min(m.saturating_sub(1) as usize);
                        tail = buf[buf.len() - keep..].to_vec();
                        bufs.push(SearchBuf {
                            block_start: s.start,
                            buf_start: s.start - (buf.len() - bytes.len()) as u64,
                            bytes: buf,
                        });
                    }
                    Err((issue, at_fetch)) => {
                        if strict {
                            return Err(StreamError::CorruptBlock {
                                index: issue.index,
                                kind: issue.kind,
                            });
                        }
                        if !at_fetch {
                            summary.issues.push(issue);
                        }
                        // The overlap into the successor is gone with the
                        // block; matches resume cleanly at the next boundary.
                        tail.clear();
                    }
                }
            }
            wave.serial(copied);
            summary.blocks_searched += bufs.len() as u64;

            // Super-step 2: match the wave.
            for hits in wave.superstep(bufs, |_, b: SearchBuf| match_buf(matcher, &b)) {
                summary
                    .hits
                    .extend(hits.into_iter().filter(|h| h.pos >= start && h.pos < end));
            }
            Ok(())
        },
    )?;

    // Blocks report by *hit end*, so a straddling hit surfaces after
    // same-position hits from the previous block; restore the canonical
    // position-then-decreasing-length order.
    summary.hits.sort_by(|a, b| {
        a.pos
            .cmp(&b.pos)
            .then(b.len.cmp(&a.len))
            .then(a.id.cmp(&b.id))
    });
    pram.ledger().round(summary.hits.len() as u64);
    summary.cost = pram.cost().since(before);
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pardict_core::{DictMatcher, Dictionary};
    use pardict_stream::{compress_stream, StreamConfig};

    fn pack(data: &[u8], block_size: usize) -> Vec<u8> {
        let pram = Pram::seq();
        let cfg = StreamConfig {
            block_size,
            max_in_flight: 4,
        };
        compress_stream(&pram, &mut &data[..], Vec::new(), &cfg)
            .unwrap()
            .0
    }

    fn matcher(patterns: &[&str]) -> DictMatcher {
        let dict = Dictionary::new(patterns.iter().map(|p| p.as_bytes().to_vec()).collect());
        DictMatcher::build(&Pram::seq(), dict, 0xFEED)
    }

    fn oracle(matcher: &DictMatcher, text: &[u8]) -> Vec<GrepHit> {
        let pram = Pram::seq();
        let mut hits: Vec<GrepHit> = matcher
            .find_all(&pram, text)
            .into_iter()
            .map(|(pos, m)| GrepHit {
                pos: pos as u64,
                id: m.id,
                len: m.len,
            })
            .collect();
        hits.sort_by(|a, b| {
            a.pos
                .cmp(&b.pos)
                .then(b.len.cmp(&a.len))
                .then(a.id.cmp(&b.id))
        });
        hits
    }

    #[test]
    fn hits_match_the_uncompressed_oracle() {
        let text = b"she sells sea shells by the sea shore ushers hush ".repeat(8);
        let m = matcher(&["he", "she", "sea", "shells", "hers"]);
        for block_size in [7, 16, 64, 512] {
            let packed = pack(&text, block_size);
            let pram = Pram::seq();
            let mut rdr = StreamReader::open(std::io::Cursor::new(&packed)).unwrap();
            let got = grep_container(&pram, &m, &mut rdr, &GrepConfig::default()).unwrap();
            assert_eq!(got.hits, oracle(&m, &text), "block_size {block_size}");
            assert!(got.issues.is_empty());
        }
    }

    #[test]
    fn pattern_longer_than_block_straddles_many_boundaries() {
        // An 11-byte pattern over 4-byte blocks: every hit spans ≥ 2
        // boundaries and must survive the accumulated tail.
        let text = b"xxabracadabraxyxabracadabrazz".to_vec();
        let m = matcher(&["abracadabra", "xy"]);
        let packed = pack(&text, 4);
        let pram = Pram::seq();
        let mut rdr = StreamReader::open(std::io::Cursor::new(&packed)).unwrap();
        let got = grep_container(&pram, &m, &mut rdr, &GrepConfig::default()).unwrap();
        assert_eq!(got.hits, oracle(&m, &text));
        assert!(got.hits.iter().any(|h| h.len == 11));
    }

    #[test]
    fn range_grep_reports_only_hits_starting_in_range() {
        let text = b"banana banana banana banana ".repeat(10);
        let m = matcher(&["ban", "ana", "nan"]);
        let packed = pack(&text, 32);
        let pram = Pram::seq();
        let mut rdr = StreamReader::open(std::io::Cursor::new(&packed)).unwrap();
        let all = oracle(&m, &text);
        for (a, b) in [(0u64, 10u64), (30, 95), (100, 101), (5, 5)] {
            let got = grep_range(&pram, &m, &mut rdr, a, b, &GrepConfig::default()).unwrap();
            let expect: Vec<GrepHit> = all
                .iter()
                .copied()
                .filter(|h| h.pos >= a && h.pos < b)
                .collect();
            assert_eq!(got.hits, expect, "range {a}..{b}");
        }
        assert!(matches!(
            grep_range(
                &pram,
                &m,
                &mut rdr,
                0,
                text.len() as u64 + 1,
                &GrepConfig::default()
            ),
            Err(StreamError::RangeOutOfBounds { .. })
        ));
    }

    #[test]
    fn seq_and_par_agree_on_hits_and_ledger() {
        let text = b"the cat sat on the mat with another cat and a rat ".repeat(40);
        let m = matcher(&["cat", "at ", "the", "rat"]);
        let packed = pack(&text, 256);
        let cfg = GrepConfig {
            wave: 3,
            strict: false,
            pipeline: true,
        };
        let mut rdr = StreamReader::open(std::io::Cursor::new(&packed)).unwrap();
        let seq = Pram::seq();
        let (a, ca) = seq.metered(|p| grep_container(p, &m, &mut rdr, &cfg).unwrap());
        let par = Pram::par();
        let (b, cb) = par.metered(|p| grep_container(p, &m, &mut rdr, &cfg).unwrap());
        assert_eq!(a.hits, b.hits);
        assert_eq!(ca, cb, "ledger attribution must be mode-independent");
    }

    #[test]
    fn strict_mode_fails_on_corruption_lenient_reports() {
        let text = b"one potato two potato three potato four ".repeat(30);
        let m = matcher(&["potato", "two"]);
        let mut packed = pack(&text, 128);
        let target = {
            let rdr = StreamReader::open(std::io::Cursor::new(&packed)).unwrap();
            let e = rdr.index().entries[3];
            e.offset as usize + pardict_stream::format::RECORD_HEADER_LEN
        };
        packed[target] ^= 0x08;
        let pram = Pram::seq();
        let mut rdr = StreamReader::open(std::io::Cursor::new(&packed)).unwrap();

        let lenient = grep_container(&pram, &m, &mut rdr, &GrepConfig::default()).unwrap();
        assert_eq!(lenient.issues.len(), 1);
        assert_eq!(lenient.issues[0].index, 3);
        // Every hit that does not intersect block 3's byte span must
        // survive: ends before the span, or starts at/after its end (the
        // successor needs no tail for those).
        let s3 = 3 * 128u64;
        let e3 = 4 * 128u64;
        let survivors: Vec<GrepHit> = oracle(&m, &text)
            .into_iter()
            .filter(|h| h.pos + u64::from(h.len) <= s3 || h.pos >= e3)
            .collect();
        for h in &survivors {
            assert!(
                lenient.hits.contains(h),
                "lost hit {h:?} outside corrupt span"
            );
        }

        assert!(matches!(
            grep_container(&pram, &m, &mut rdr, &GrepConfig::default().strict()),
            Err(StreamError::CorruptBlock { index: 3, .. })
        ));
    }
}
