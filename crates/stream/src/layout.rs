//! A byte-accurate structural map of a container — the mutation-friendly
//! raw-record view.
//!
//! [`StreamReader`](crate::StreamReader) deliberately hides file offsets:
//! callers address decoded bytes, not container bytes. Fault-injection
//! harnesses need the opposite — "where, in the file, is block 3's
//! payload?" — so they can flip exactly one bit of a payload, truncate a
//! record mid-header, or damage one footer entry and then assert the
//! reader degrades exactly as documented. [`ContainerLayout`] walks a
//! *well-formed* container once and returns every region as a byte
//! [`Range`] into the original buffer. It validates only what it needs to
//! walk safely (magic, record framing, trailer magic); semantic checks
//! (CRCs, offset chaining) stay in [`StreamReader::open`].
//!
//! [`StreamReader::open`]: crate::StreamReader::open

use crate::error::StreamError;
use crate::format::{
    parse_header, parse_record_tail, RecordHeader, END_OF_BLOCKS, FOOTER_ENTRY_LEN, HEADER_LEN,
    METHOD_LZ1, METHOD_STORED, RECORD_HEADER_LEN, TRAILER_LEN,
};
use std::ops::Range;

/// Byte spans of one block record inside a container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordSpan {
    /// Block index in stream order.
    pub index: usize,
    /// Span of the inline 13-byte record header.
    pub header: Range<usize>,
    /// Span of the compressed payload (may be empty only in theory — the
    /// writer never emits empty blocks).
    pub payload: Range<usize>,
    /// The parsed inline header.
    pub record: RecordHeader,
}

impl RecordSpan {
    /// Span of the whole record (header + payload).
    #[must_use]
    pub fn whole(&self) -> Range<usize> {
        self.header.start..self.payload.end
    }
}

/// Byte spans of every structural region of a well-formed container.
///
/// Produced by [`ContainerLayout::parse`]; consumed by fault planners that
/// need to aim mutations at specific format features.
#[derive(Debug, Clone)]
pub struct ContainerLayout {
    /// Span of the fixed 16-byte header.
    pub header: Range<usize>,
    /// Raw block size recorded in the header.
    pub block_size: u64,
    /// Per-block record spans, in stream order.
    pub records: Vec<RecordSpan>,
    /// Offset of the 1-byte end-of-blocks marker.
    pub end_marker: usize,
    /// Span of the index footer (all entries).
    pub footer: Range<usize>,
    /// Span of each 24-byte footer entry, in block order.
    pub footer_entries: Vec<Range<usize>>,
    /// Span of the fixed 24-byte trailer.
    pub trailer: Range<usize>,
}

impl ContainerLayout {
    /// Walk `bytes` as a container and map every region.
    ///
    /// Framing is taken from the *inline* record headers (forward walk),
    /// then cross-checked against the trailer's footer offset and block
    /// count, so the layout is unambiguous on any container the writer
    /// produces.
    ///
    /// # Errors
    /// Any [`StreamError`] describing the first structural defect found;
    /// this function is meant for clean containers, so callers treat an
    /// error as "not a valid subject for fault planning".
    pub fn parse(bytes: &[u8]) -> Result<Self, StreamError> {
        let block_size = parse_header(bytes.get(..HEADER_LEN).ok_or(StreamError::Truncated)?)?;
        let mut pos = HEADER_LEN;
        let mut records = Vec::new();
        loop {
            let method = *bytes.get(pos).ok_or(StreamError::Truncated)?;
            if method == END_OF_BLOCKS {
                break;
            }
            if method != METHOD_LZ1 && method != METHOD_STORED {
                return Err(StreamError::CorruptHeader("unknown block method"));
            }
            let tail: &[u8; RECORD_HEADER_LEN - 1] = bytes
                .get(pos + 1..pos + RECORD_HEADER_LEN)
                .ok_or(StreamError::Truncated)?
                .try_into()
                .expect("sized slice");
            let record = parse_record_tail(method, tail);
            let payload_start = pos + RECORD_HEADER_LEN;
            let payload_end = payload_start + record.comp_len as usize;
            if payload_end > bytes.len() {
                return Err(StreamError::Truncated);
            }
            records.push(RecordSpan {
                index: records.len(),
                header: pos..payload_start,
                payload: payload_start..payload_end,
                record,
            });
            pos = payload_end;
        }
        let end_marker = pos;
        let footer_start = end_marker + 1;
        let footer_end = footer_start + records.len() * FOOTER_ENTRY_LEN;
        let trailer_end = footer_end + TRAILER_LEN;
        if trailer_end != bytes.len() {
            return Err(StreamError::CorruptFooter("regions do not tile the file"));
        }
        let trailer: &[u8; TRAILER_LEN] = &bytes[footer_end..trailer_end]
            .try_into()
            .expect("sized slice");
        let (footer_offset, num_blocks, _) = crate::format::parse_trailer(trailer)?;
        if footer_offset != footer_start as u64 || num_blocks != records.len() as u64 {
            return Err(StreamError::CorruptFooter("trailer disagrees with walk"));
        }
        let footer_entries = (0..records.len())
            .map(|i| footer_start + i * FOOTER_ENTRY_LEN..footer_start + (i + 1) * FOOTER_ENTRY_LEN)
            .collect();
        Ok(ContainerLayout {
            header: 0..HEADER_LEN,
            block_size,
            records,
            end_marker,
            footer: footer_start..footer_end,
            footer_entries,
            trailer: footer_end..trailer_end,
        })
    }

    /// Number of blocks.
    #[must_use]
    pub fn num_blocks(&self) -> usize {
        self.records.len()
    }

    /// Decoded start offset of block `i` (blocks before the last hold
    /// exactly [`block_size`](Self::block_size) raw bytes).
    #[must_use]
    pub fn raw_start(&self, i: usize) -> usize {
        (self.block_size as usize) * i
    }

    /// Decoded byte range block `i` covers.
    #[must_use]
    pub fn raw_range(&self, i: usize) -> Range<usize> {
        let start = self.raw_start(i);
        start..start + self.records[i].record.raw_len as usize
    }

    /// Offset of field `field` within footer entry `i` — see
    /// [`FooterField`] for the entry layout.
    #[must_use]
    pub fn footer_field(&self, i: usize, field: FooterField) -> usize {
        self.footer_entries[i].start + field.offset()
    }
}

/// Named fields of a 24-byte footer entry, for aiming precise mutations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FooterField {
    /// File offset of the record (u64 at +0).
    Offset,
    /// Raw length (u32 at +8).
    RawLen,
    /// Payload length (u32 at +12).
    CompLen,
    /// Payload CRC-32 (u32 at +16).
    Crc,
    /// Method byte (+20).
    Method,
}

impl FooterField {
    /// Byte offset of the field within its entry.
    #[must_use]
    pub fn offset(self) -> usize {
        match self {
            FooterField::Offset => 0,
            FooterField::RawLen => 8,
            FooterField::CompLen => 12,
            FooterField::Crc => 16,
            FooterField::Method => 20,
        }
    }
}

/// Reassemble a container from a layout whose records have been edited —
/// the inverse of [`ContainerLayout::parse`] for fault planners that swap
/// or rewrite whole records. Offsets, the footer, its CRC, and the trailer
/// are all recomputed from `records`, so the result is structurally
/// self-consistent even when payload bytes are not what their CRCs claim.
///
/// Each element of `records` is `(record_header, payload_bytes)` in the
/// desired stream order.
#[must_use]
pub fn assemble_container(block_size: u64, records: &[(RecordHeader, &[u8])]) -> Vec<u8> {
    use crate::format::{encode_footer, encode_header, encode_record_header, encode_trailer};
    let mut out = Vec::new();
    out.extend_from_slice(&encode_header(block_size));
    let mut entries = Vec::with_capacity(records.len());
    for (rh, payload) in records {
        entries.push(crate::format::BlockEntry {
            offset: out.len() as u64,
            raw_len: rh.raw_len,
            comp_len: rh.comp_len,
            crc: rh.crc,
            method: rh.method,
        });
        out.extend_from_slice(&encode_record_header(rh));
        out.extend_from_slice(payload);
    }
    out.push(END_OF_BLOCKS);
    let footer_offset = out.len() as u64;
    let footer = encode_footer(&entries);
    let footer_crc = pardict_core::crc32(&footer);
    out.extend_from_slice(&footer);
    out.extend_from_slice(&encode_trailer(
        footer_offset,
        entries.len() as u64,
        footer_crc,
    ));
    out
}

/// Re-frame blocks `range` of a well-formed container as a standalone
/// container holding the same compressed payloads.
///
/// The slice is byte-for-byte a valid container: every block but the last
/// of the *original* holds exactly `block_size` raw bytes, so any
/// contiguous prefix-free range keeps that invariant, and block payloads
/// are block-local (copy sources never cross blocks), so they decode
/// unchanged at their new indexes. The decoded slice equals decoded bytes
/// `block_size * range.start ..` of the original. This is the unit of
/// work a shard router fans out: each shard greps its slice as an
/// ordinary container and positions are rebased by the caller.
///
/// # Errors
/// Any [`StreamError`] from [`ContainerLayout::parse`], or
/// [`StreamError::RangeOutOfBounds`] (in block units) when `range` is
/// empty or exceeds the block count.
pub fn slice_container(bytes: &[u8], range: Range<usize>) -> Result<Vec<u8>, StreamError> {
    let layout = ContainerLayout::parse(bytes)?;
    if range.start >= range.end || range.end > layout.num_blocks() {
        return Err(StreamError::RangeOutOfBounds {
            start: range.start as u64,
            end: range.end as u64,
            len: layout.num_blocks() as u64,
        });
    }
    let records: Vec<(RecordHeader, &[u8])> = layout.records[range]
        .iter()
        .map(|r| (r.record, &bytes[r.payload.clone()]))
        .collect();
    Ok(assemble_container(layout.block_size, &records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::{compress_stream, StreamConfig};
    use pardict_pram::Pram;

    fn sample(block: usize, text: &[u8]) -> Vec<u8> {
        let pram = Pram::seq();
        let (bytes, _) = compress_stream(
            &pram,
            &mut &text[..],
            Vec::new(),
            &StreamConfig::with_block_size(block),
        )
        .unwrap();
        bytes
    }

    #[test]
    fn layout_tiles_the_container_exactly() {
        let text: Vec<u8> = b"abcdefgh".repeat(100);
        let bytes = sample(128, &text);
        let l = ContainerLayout::parse(&bytes).unwrap();
        assert_eq!(l.num_blocks(), text.len().div_ceil(128));
        assert_eq!(l.header, 0..HEADER_LEN);
        let mut pos = HEADER_LEN;
        for r in &l.records {
            assert_eq!(r.header.start, pos);
            assert_eq!(r.header.len(), RECORD_HEADER_LEN);
            assert_eq!(r.payload.start, r.header.end);
            assert_eq!(r.payload.len(), r.record.comp_len as usize);
            pos = r.payload.end;
        }
        assert_eq!(l.end_marker, pos);
        assert_eq!(bytes[l.end_marker], END_OF_BLOCKS);
        assert_eq!(l.footer.start, l.end_marker + 1);
        assert_eq!(l.footer.len(), l.num_blocks() * FOOTER_ENTRY_LEN);
        assert_eq!(l.trailer.end, bytes.len());
        assert_eq!(l.raw_range(0), 0..128);
        let last = l.num_blocks() - 1;
        assert_eq!(l.raw_range(last).end, text.len());
    }

    #[test]
    fn assemble_is_parse_inverse_on_clean_containers() {
        let text: Vec<u8> = b"swap me around, swap me around! ".repeat(40);
        let bytes = sample(64, &text);
        let l = ContainerLayout::parse(&bytes).unwrap();
        let records: Vec<(RecordHeader, &[u8])> = l
            .records
            .iter()
            .map(|r| (r.record, &bytes[r.payload.clone()]))
            .collect();
        let rebuilt = assemble_container(l.block_size, &records);
        assert_eq!(rebuilt, bytes, "identity reassembly must be byte-exact");
    }

    #[test]
    fn slice_is_a_valid_container_decoding_the_right_bytes() {
        let text: Vec<u8> = b"the quick brown fox jumps over the lazy dog. ".repeat(30);
        let bytes = sample(64, &text);
        let l = ContainerLayout::parse(&bytes).unwrap();
        let n = l.num_blocks();
        assert!(n >= 4, "need a multi-block sample");
        let pram = Pram::seq();
        for (a, b) in [(0, n), (0, 2), (1, 3), (n - 2, n), (n - 1, n)] {
            let slice = slice_container(&bytes, a..b).unwrap();
            let mut rd = crate::StreamReader::open(std::io::Cursor::new(slice)).unwrap();
            let (decoded, issues) = rd.read_all(&pram).unwrap();
            assert!(issues.is_empty());
            let want = &text[64 * a..(64 * b).min(text.len())];
            assert_eq!(decoded, want, "slice {a}..{b} decodes the wrong bytes");
        }
        // Full-range slice is the identity.
        assert_eq!(slice_container(&bytes, 0..n).unwrap(), bytes);
        // Degenerate and out-of-range requests are rejected.
        assert!(slice_container(&bytes, 2..2).is_err());
        assert!(slice_container(&bytes, 0..n + 1).is_err());
    }

    #[test]
    fn parse_rejects_truncation_and_garbage() {
        let bytes = sample(64, &b"some text some text some text".repeat(16));
        assert!(ContainerLayout::parse(&bytes[..bytes.len() - 3]).is_err());
        assert!(ContainerLayout::parse(&bytes[..10]).is_err());
        assert!(ContainerLayout::parse(b"not a container at all").is_err());
    }
}
