//! Error vocabulary for the container format.
//!
//! Two severities exist by design. A [`StreamError`] is *structural*: the
//! container's framing itself cannot be trusted (bad magic, truncated
//! trailer, footer checksum failure), so decoding stops. A [`BlockIssue`]
//! is *local*: one block's payload failed its checksum or decode, but the
//! framing around it is intact, so a lenient decoder skips the block,
//! records the issue with its index, and keeps going — the
//! skip-and-report contract that block independence buys.

use std::fmt;

/// What went wrong inside one block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IssueKind {
    /// The payload's CRC-32 does not match its record.
    Checksum,
    /// The payload's LZ1 token stream failed to decode.
    BadTokens,
    /// The decoded payload's length disagrees with the recorded raw length.
    LengthMismatch,
    /// The record names an unknown compression method.
    BadMethod,
    /// The inline record header disagrees with the index footer entry.
    HeaderMismatch,
}

impl fmt::Display for IssueKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IssueKind::Checksum => write!(f, "checksum mismatch"),
            IssueKind::BadTokens => write!(f, "undecodable token payload"),
            IssueKind::LengthMismatch => write!(f, "decoded length mismatch"),
            IssueKind::BadMethod => write!(f, "unknown compression method"),
            IssueKind::HeaderMismatch => write!(f, "record header disagrees with index"),
        }
    }
}

/// One corrupt-but-skippable block, reported instead of aborting the
/// stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockIssue {
    /// Zero-based block index within the container.
    pub index: u64,
    /// Raw (uncompressed) bytes the block claimed to hold — the size of
    /// the gap a lenient decode leaves.
    pub raw_len: u32,
    /// What the decoder caught.
    pub kind: IssueKind,
}

impl fmt::Display for BlockIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "block {}: {} ({} raw bytes skipped)",
            self.index, self.kind, self.raw_len
        )
    }
}

/// A structural failure: the container cannot be (fully) decoded.
#[derive(Debug)]
pub enum StreamError {
    /// Underlying reader/writer failure.
    Io(std::io::Error),
    /// The input does not begin with the container magic.
    NotAContainer,
    /// The container names a format version this build does not speak.
    UnsupportedVersion(u8),
    /// The fixed header is malformed (reserved bytes set, bad block size).
    CorruptHeader(&'static str),
    /// The input ended inside a record, footer, or trailer.
    Truncated,
    /// The index footer or trailer fails validation.
    CorruptFooter(&'static str),
    /// A block failed in strict mode (lenient decoders report a
    /// [`BlockIssue`] instead).
    CorruptBlock {
        /// Zero-based block index.
        index: u64,
        /// What the decoder caught.
        kind: IssueKind,
    },
    /// The operation was cancelled at a wave boundary because the caller's
    /// ambient deadline ([`pardict_exec::with_deadline`]) expired.
    Cancelled,
    /// A requested byte range lies outside the decoded stream.
    RangeOutOfBounds {
        /// Requested start offset.
        start: u64,
        /// Requested end offset (exclusive).
        end: u64,
        /// Total decoded length of the stream.
        len: u64,
    },
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Io(e) => write!(f, "i/o error: {e}"),
            StreamError::NotAContainer => write!(f, "not a pardict stream container"),
            StreamError::UnsupportedVersion(v) => {
                write!(f, "unsupported container version {v}")
            }
            StreamError::CorruptHeader(why) => write!(f, "corrupt header: {why}"),
            StreamError::Truncated => write!(f, "container truncated"),
            StreamError::CorruptFooter(why) => write!(f, "corrupt index footer: {why}"),
            StreamError::CorruptBlock { index, kind } => write!(f, "block {index}: {kind}"),
            StreamError::Cancelled => write!(f, "cancelled: deadline exceeded"),
            StreamError::RangeOutOfBounds { start, end, len } => {
                write!(
                    f,
                    "range {start}..{end} out of bounds (stream is {len} bytes)"
                )
            }
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StreamError {
    fn from(e: std::io::Error) -> Self {
        StreamError::Io(e)
    }
}

impl From<pardict_exec::Cancelled> for StreamError {
    fn from(_: pardict_exec::Cancelled) -> Self {
        StreamError::Cancelled
    }
}

impl From<StreamError> for std::io::Error {
    fn from(e: StreamError) -> Self {
        match e {
            StreamError::Io(io) => io,
            other => std::io::Error::new(std::io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}
