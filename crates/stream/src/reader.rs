//! Decoding: a forward streaming decoder (`Read`-only sources, bounded
//! memory, skip-and-report error recovery) and a seekable random-access
//! reader that loads the index footer and decodes only the blocks
//! covering a requested byte range.

use crate::error::{BlockIssue, IssueKind, StreamError};
use crate::format::{
    parse_footer, parse_header, parse_record_tail, parse_trailer, BlockEntry, StreamIndex,
    END_OF_BLOCKS, FOOTER_ENTRY_LEN, HEADER_LEN, METHOD_LZ1, METHOD_STORED, RECORD_HEADER_LEN,
    TRAILER_LEN,
};
use crate::writer::STREAM_SEED;
use pardict_compress::{decode_tokens, lz1_decompress};
use pardict_core::crc32;
use pardict_pram::{Cost, Pram};
use std::io::{Read, Seek, SeekFrom, Write};

/// True when `data` begins with the container magic — the auto-detection
/// hook for CLI/service layers choosing between token-stream and
/// container decoding.
#[must_use]
pub fn is_container(data: &[u8]) -> bool {
    data.len() >= 4 && data[..4] == crate::format::MAGIC
}

/// What one finished decompression run produced.
#[derive(Debug, Clone, Default)]
pub struct DecompressSummary {
    /// Decoded bytes emitted (corrupt blocks excluded).
    pub bytes: u64,
    /// Blocks decoded successfully.
    pub blocks: u64,
    /// Corrupt blocks skipped and reported.
    pub issues: Vec<BlockIssue>,
    /// Ledger cost attributed to this run.
    pub cost: Cost,
}

/// Decode one validated payload into raw bytes.
fn decode_payload(
    pram: &Pram,
    index: u64,
    method: u8,
    raw_len: u32,
    payload: Vec<u8>,
) -> Result<Vec<u8>, BlockIssue> {
    let issue = |kind| BlockIssue {
        index,
        raw_len,
        kind,
    };
    match method {
        METHOD_STORED => {
            pram.ledger().round(payload.len() as u64);
            if payload.len() as u64 == u64::from(raw_len) {
                Ok(payload)
            } else {
                Err(issue(IssueKind::LengthMismatch))
            }
        }
        METHOD_LZ1 => {
            let tokens = decode_tokens(&payload).map_err(|_| issue(IssueKind::BadTokens))?;
            let out = lz1_decompress(pram, &tokens, STREAM_SEED ^ index);
            if out.len() as u64 == u64::from(raw_len) {
                Ok(out)
            } else {
                Err(issue(IssueKind::LengthMismatch))
            }
        }
        _ => Err(issue(IssueKind::BadMethod)),
    }
}

/// Verify a record's checksum, then decode it.
fn check_and_decode(
    pram: &Pram,
    index: u64,
    method: u8,
    raw_len: u32,
    crc: u32,
    payload: Vec<u8>,
) -> Result<Vec<u8>, BlockIssue> {
    pram.ledger().round(payload.len() as u64); // checksum pass
    if crc32(&payload) != crc {
        return Err(BlockIssue {
            index,
            raw_len,
            kind: IssueKind::Checksum,
        });
    }
    decode_payload(pram, index, method, raw_len, payload)
}

/// Decode one fetched payload (see [`StreamReader::raw_block`]) against its
/// index entry: checksum verification followed by decompression.
///
/// Separating the fetch from the decode lets callers fetch payloads from a
/// seekable source sequentially and decode them on independent contexts —
/// the hook `pardict-search` uses for its parallel decode waves.
///
/// # Errors
/// A [`BlockIssue`] naming block `index` on checksum, token, length, or
/// method failures.
pub fn decode_block(
    pram: &Pram,
    index: u64,
    entry: &BlockEntry,
    payload: Vec<u8>,
) -> Result<Vec<u8>, BlockIssue> {
    check_and_decode(pram, index, entry.method, entry.raw_len, entry.crc, payload)
}

/// One block's outcome from [`StreamReader::block_iter`]: block-local
/// corruption is carried *inside* the item (`data: Err(..)`) so iteration
/// can continue, while structural failures abort the iterator itself.
#[derive(Debug, Clone)]
pub struct DecodedBlock {
    /// Zero-based block index.
    pub index: usize,
    /// Global offset of the block's first raw byte in the decoded stream.
    pub start: u64,
    /// Decoded bytes, or the issue that prevented decoding this block.
    pub data: Result<Vec<u8>, BlockIssue>,
}

/// Iterator over decoded blocks of a [`StreamReader`]; see
/// [`StreamReader::block_iter`].
pub struct BlockIter<'a, 'p, R: Read + Seek> {
    rdr: &'a mut StreamReader<R>,
    pram: &'p Pram,
    next: usize,
    end: usize,
}

impl<R: Read + Seek> Iterator for BlockIter<'_, '_, R> {
    type Item = Result<DecodedBlock, StreamError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.next >= self.end {
            return None;
        }
        let i = self.next;
        self.next += 1;
        let start = self.rdr.index.block_start(i);
        let entry = self.rdr.entry(i);
        let data = match self.rdr.raw_block(i) {
            Ok(payload) => decode_block(self.pram, i as u64, &entry, payload),
            Err(StreamError::CorruptBlock { index, kind }) => Err(BlockIssue {
                index,
                raw_len: entry.raw_len,
                kind,
            }),
            Err(e) => return Some(Err(e)),
        };
        Some(Ok(DecodedBlock {
            index: i,
            start,
            data,
        }))
    }
}

fn read_exact_or_truncated<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<(), StreamError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            StreamError::Truncated
        } else {
            StreamError::Io(e)
        }
    })
}

enum DecoderState {
    Start,
    Blocks,
    Done,
}

/// A `std::io::Read` adapter decoding a container from any forward-only
/// byte source with bounded memory: at most one decoded block is resident.
///
/// Corrupt blocks are skipped and reported through [`issues`] by default
/// (block independence makes the rest of the stream decodable); strict
/// mode turns the first corrupt block into a read error instead.
///
/// [`issues`]: StreamDecompressor::issues
pub struct StreamDecompressor<'p, R: Read> {
    pram: &'p Pram,
    inner: R,
    state: DecoderState,
    block: Vec<u8>,
    block_pos: usize,
    next_index: u64,
    blocks_ok: u64,
    issues: Vec<BlockIssue>,
    strict: bool,
}

impl<'p, R: Read> StreamDecompressor<'p, R> {
    /// Lenient decoder: corrupt blocks are skipped and reported.
    pub fn new(pram: &'p Pram, inner: R) -> Self {
        Self {
            pram,
            inner,
            state: DecoderState::Start,
            block: Vec::new(),
            block_pos: 0,
            next_index: 0,
            blocks_ok: 0,
            issues: Vec::new(),
            strict: false,
        }
    }

    /// Make the first corrupt block a hard read error.
    #[must_use]
    pub fn strict(mut self) -> Self {
        self.strict = true;
        self
    }

    /// Corrupt blocks encountered so far (index, size, cause).
    #[must_use]
    pub fn issues(&self) -> &[BlockIssue] {
        &self.issues
    }

    /// Blocks decoded successfully so far.
    #[must_use]
    pub fn blocks_decoded(&self) -> u64 {
        self.blocks_ok
    }

    /// Advance to the next decodable block; `Ok(false)` at end of blocks.
    fn next_block(&mut self) -> Result<bool, StreamError> {
        loop {
            if matches!(self.state, DecoderState::Start) {
                let mut header = [0u8; HEADER_LEN];
                read_exact_or_truncated(&mut self.inner, &mut header)?;
                parse_header(&header)?;
                self.state = DecoderState::Blocks;
            }
            let mut method = [0u8; 1];
            read_exact_or_truncated(&mut self.inner, &mut method)?;
            if method[0] == END_OF_BLOCKS {
                self.state = DecoderState::Done;
                return Ok(false);
            }
            let mut tail = [0u8; RECORD_HEADER_LEN - 1];
            read_exact_or_truncated(&mut self.inner, &mut tail)?;
            let rec = parse_record_tail(method[0], &tail);
            let mut payload = vec![0u8; rec.comp_len as usize];
            read_exact_or_truncated(&mut self.inner, &mut payload)?;
            let index = self.next_index;
            self.next_index += 1;
            match check_and_decode(self.pram, index, rec.method, rec.raw_len, rec.crc, payload) {
                Ok(block) => {
                    self.block = block;
                    self.block_pos = 0;
                    self.blocks_ok += 1;
                    return Ok(true);
                }
                Err(issue) => {
                    if self.strict {
                        return Err(StreamError::CorruptBlock {
                            index: issue.index,
                            kind: issue.kind,
                        });
                    }
                    self.issues.push(issue);
                    // Framing is intact (payload was length-prefixed), so
                    // continue with the next record.
                }
            }
        }
    }
}

impl<R: Read> Read for StreamDecompressor<'_, R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        loop {
            if self.block_pos < self.block.len() {
                let n = (self.block.len() - self.block_pos).min(buf.len());
                buf[..n].copy_from_slice(&self.block[self.block_pos..self.block_pos + n]);
                self.block_pos += n;
                return Ok(n);
            }
            match self.state {
                DecoderState::Done => return Ok(0),
                _ => {
                    if !self.next_block()? {
                        return Ok(0);
                    }
                }
            }
        }
    }
}

/// Pump a container from `reader` into `writer` with bounded memory,
/// skipping and reporting corrupt blocks.
///
/// # Errors
/// Structural failures ([`StreamError`]) abort; block-local corruption is
/// returned in the summary instead.
pub fn decompress_stream<R: Read + ?Sized, W: Write>(
    pram: &Pram,
    reader: &mut R,
    mut writer: W,
) -> Result<(W, DecompressSummary), StreamError> {
    let before = pram.cost();
    let mut dec = StreamDecompressor::new(pram, reader);
    let mut bytes = 0u64;
    let mut chunk = vec![0u8; 1 << 16];
    loop {
        let n = dec.read(&mut chunk).map_err(|e| {
            // Recover the StreamError shape for callers.
            StreamError::Io(e)
        })?;
        if n == 0 {
            break;
        }
        writer.write_all(&chunk[..n])?;
        bytes += n as u64;
    }
    let summary = DecompressSummary {
        bytes,
        blocks: dec.blocks_decoded(),
        issues: dec.issues().to_vec(),
        cost: pram.cost().since(before),
    };
    Ok((writer, summary))
}

/// Random-access reader over a seekable container: loads and verifies the
/// index footer once, then serves any byte range by decoding only the
/// covering blocks — O(1) seek-to-block via the fixed raw block size.
pub struct StreamReader<R: Read + Seek> {
    inner: R,
    index: StreamIndex,
}

impl<R: Read + Seek> StreamReader<R> {
    /// Open a container: parse header and trailer, load the footer, and
    /// cross-validate the whole frame structure (entry chaining, block
    /// sizes, footer checksum, end-of-blocks marker), so that any
    /// single-bit corruption of the metadata is caught here and any
    /// corruption of a payload is caught by that block's CRC on read.
    ///
    /// # Errors
    /// [`StreamError`] on any structural inconsistency.
    pub fn open(mut inner: R) -> Result<Self, StreamError> {
        let file_len = inner.seek(SeekFrom::End(0))?;
        inner.seek(SeekFrom::Start(0))?;
        let mut header = [0u8; HEADER_LEN];
        let got = {
            // Tolerate sub-header files for a precise NotAContainer signal.
            let mut filled = 0;
            while filled < HEADER_LEN {
                let n = inner.read(&mut header[filled..])?;
                if n == 0 {
                    break;
                }
                filled += n;
            }
            filled
        };
        let block_size = parse_header(&header[..got])?;

        let min_len = (HEADER_LEN + 1 + TRAILER_LEN) as u64;
        if file_len < min_len {
            return Err(StreamError::Truncated);
        }
        inner.seek(SeekFrom::Start(file_len - TRAILER_LEN as u64))?;
        let mut trailer = [0u8; TRAILER_LEN];
        read_exact_or_truncated(&mut inner, &mut trailer)?;
        let (footer_off, num_blocks, footer_crc) = parse_trailer(&trailer)?;

        let footer_len = num_blocks
            .checked_mul(FOOTER_ENTRY_LEN as u64)
            .ok_or(StreamError::CorruptFooter("block count overflow"))?;
        if footer_off < (HEADER_LEN + 1) as u64
            || footer_off
                .checked_add(footer_len)
                .and_then(|x| x.checked_add(TRAILER_LEN as u64))
                != Some(file_len)
        {
            return Err(StreamError::CorruptFooter("offsets do not tile the file"));
        }
        inner.seek(SeekFrom::Start(footer_off - 1))?;
        let mut marker = [0u8; 1];
        read_exact_or_truncated(&mut inner, &mut marker)?;
        if marker[0] != END_OF_BLOCKS {
            return Err(StreamError::CorruptFooter("missing end-of-blocks marker"));
        }
        let mut footer = vec![0u8; footer_len as usize];
        read_exact_or_truncated(&mut inner, &mut footer)?;
        if crc32(&footer) != footer_crc {
            return Err(StreamError::CorruptFooter("footer checksum mismatch"));
        }
        let entries = parse_footer(&footer)?;

        // Entries must chain exactly from the header to the end marker.
        let mut expect = HEADER_LEN as u64;
        for (i, e) in entries.iter().enumerate() {
            if e.offset != expect {
                return Err(StreamError::CorruptFooter("entry offsets do not chain"));
            }
            expect = e.offset + (RECORD_HEADER_LEN as u64) + u64::from(e.comp_len);
            let last = i + 1 == entries.len();
            if (!last && u64::from(e.raw_len) != block_size)
                || (last && (e.raw_len == 0 || u64::from(e.raw_len) > block_size))
            {
                return Err(StreamError::CorruptFooter("block sizes violate layout"));
            }
            if e.method == METHOD_STORED && e.comp_len != e.raw_len {
                return Err(StreamError::CorruptFooter("stored block length mismatch"));
            }
            if e.method != METHOD_LZ1 && e.method != METHOD_STORED {
                return Err(StreamError::CorruptFooter("unknown block method"));
            }
        }
        if expect + 1 != footer_off {
            return Err(StreamError::CorruptFooter("blocks do not reach the footer"));
        }

        Ok(Self {
            inner,
            index: StreamIndex {
                block_size,
                entries,
            },
        })
    }

    /// The validated block index.
    #[must_use]
    pub fn index(&self) -> &StreamIndex {
        &self.index
    }

    /// Total decoded length of the stream.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.index.total_raw()
    }

    /// True when the stream decodes to zero bytes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn entry(&self, i: usize) -> BlockEntry {
        self.index.entries[i]
    }

    /// Fetch block `i`'s *compressed* payload without decoding it, after
    /// verifying the inline record header against the footer entry. Pair
    /// with [`decode_block`] (free function) to decode on any context —
    /// possibly a different one per block, in parallel.
    ///
    /// # Errors
    /// [`StreamError::CorruptBlock`] with [`IssueKind::HeaderMismatch`]
    /// when the inline header disagrees with the index; I/O errors pass
    /// through.
    pub fn raw_block(&mut self, i: usize) -> Result<Vec<u8>, StreamError> {
        let e = self.entry(i);
        self.inner.seek(SeekFrom::Start(e.offset))?;
        let mut rec = [0u8; RECORD_HEADER_LEN];
        read_exact_or_truncated(&mut self.inner, &mut rec)?;
        let tail: [u8; RECORD_HEADER_LEN - 1] = rec[1..].try_into().expect("record tail");
        if parse_record_tail(rec[0], &tail) != e.record_header() {
            return Err(StreamError::CorruptBlock {
                index: i as u64,
                kind: IssueKind::HeaderMismatch,
            });
        }
        let mut payload = vec![0u8; e.comp_len as usize];
        read_exact_or_truncated(&mut self.inner, &mut payload)?;
        Ok(payload)
    }

    /// Decode block `i` alone, verifying its inline record header against
    /// the footer entry and its payload against the CRC.
    ///
    /// # Errors
    /// [`StreamError::CorruptBlock`] naming the block on any mismatch.
    pub fn read_block(&mut self, pram: &Pram, i: usize) -> Result<Vec<u8>, StreamError> {
        let e = self.entry(i);
        let payload = self.raw_block(i)?;
        decode_block(pram, i as u64, &e, payload).map_err(|issue| StreamError::CorruptBlock {
            index: issue.index,
            kind: issue.kind,
        })
    }

    /// Iterate the decoded blocks `range`, in order. Block-local corruption
    /// is reported inside the yielded [`DecodedBlock`]; structural failures
    /// abort the iteration with an `Err` item.
    ///
    /// # Panics
    /// When `range.end` exceeds the number of blocks.
    pub fn block_iter_range<'a, 'p>(
        &'a mut self,
        pram: &'p Pram,
        range: std::ops::Range<usize>,
    ) -> BlockIter<'a, 'p, R> {
        assert!(
            range.end <= self.index.num_blocks(),
            "block range {range:?} exceeds {} blocks",
            self.index.num_blocks()
        );
        BlockIter {
            rdr: self,
            pram,
            next: range.start,
            end: range.end,
        }
    }

    /// Iterate every decoded block of the container, in order — the
    /// per-block API `read_all` and `pardict-search` are built on.
    pub fn block_iter<'a, 'p>(&'a mut self, pram: &'p Pram) -> BlockIter<'a, 'p, R> {
        let n = self.index.num_blocks();
        self.block_iter_range(pram, 0..n)
    }

    /// Decode blocks `blocks` in waves through the shared super-step
    /// executor: payloads are fetched serially from the seekable source,
    /// then each wave of [`pardict_exec::default_wave_width`] blocks
    /// decodes as one super-step under a `decode-wave` span — concurrently
    /// when `pram` is parallel, charged Σ work / max depth either way.
    /// Fetch-level block corruption (header mismatch) is carried into the
    /// slot as its [`BlockIssue`] so `sink` sees every block exactly once,
    /// in order; structural failures abort.
    fn decode_waves(
        &mut self,
        pram: &Pram,
        blocks: std::ops::Range<usize>,
        mut sink: impl FnMut(DecodedBlock) -> Result<(), StreamError>,
    ) -> Result<(), StreamError> {
        let width = pardict_exec::default_wave_width().max(1);
        let mut next = blocks.start;
        let end = blocks.end;
        pardict_exec::run_waves(
            pram,
            "decode-wave",
            false,
            || {
                if next >= end {
                    return Ok(None);
                }
                let first = next;
                let hi = (next + width).min(end);
                let mut items = Vec::with_capacity(hi - next);
                for i in next..hi {
                    let entry = self.entry(i);
                    let start = self.index.block_start(i);
                    let payload = match self.raw_block(i) {
                        Ok(p) => Ok(p),
                        Err(StreamError::CorruptBlock { index, kind }) => Err(BlockIssue {
                            index,
                            raw_len: entry.raw_len,
                            kind,
                        }),
                        Err(e) => return Err(e),
                    };
                    items.push((i, start, entry, payload));
                }
                next = hi;
                Ok(Some((first as u64, items)))
            },
            |_, (i, start, entry, payload)| {
                let seq = Pram::seq();
                let (data, cost) = seq.metered(|p| match payload {
                    Ok(pl) => decode_block(p, i as u64, &entry, pl),
                    Err(issue) => Err(issue),
                });
                (
                    DecodedBlock {
                        index: i,
                        start,
                        data,
                    },
                    cost,
                )
            },
            |_, outs| {
                for b in outs {
                    sink(b)?;
                }
                Ok(())
            },
        )
    }

    /// Decode exactly the bytes `start..end` of the original stream,
    /// touching only the covering blocks (decoded in parallel waves under
    /// a parallel context).
    ///
    /// # Errors
    /// [`StreamError::RangeOutOfBounds`] for ranges past the end;
    /// [`StreamError::CorruptBlock`] when a covering block is corrupt (a
    /// partial range cannot be silently patched).
    pub fn read_range(
        &mut self,
        pram: &Pram,
        start: u64,
        end: u64,
    ) -> Result<Vec<u8>, StreamError> {
        let len = self.len();
        if start > end || end > len {
            return Err(StreamError::RangeOutOfBounds { start, end, len });
        }
        if start == end {
            return Ok(Vec::new());
        }
        let blocks = self.index.covering(start, end);
        let first_start = self.index.block_start(blocks.start);
        let mut out = Vec::with_capacity((end - start) as usize);
        self.decode_waves(pram, blocks, |block| {
            let data = block.data.map_err(|issue| StreamError::CorruptBlock {
                index: issue.index,
                kind: issue.kind,
            })?;
            out.extend_from_slice(&data);
            Ok(())
        })?;
        let lo = (start - first_start) as usize;
        let hi = (end - first_start) as usize;
        out.drain(hi..);
        out.drain(..lo);
        Ok(out)
    }

    /// Decode the whole stream leniently: corrupt blocks are skipped and
    /// reported alongside the concatenation of every good block. Blocks
    /// decode in parallel waves under a parallel context.
    ///
    /// # Errors
    /// Only I/O failures; corruption is reported, not raised.
    pub fn read_all(&mut self, pram: &Pram) -> Result<(Vec<u8>, Vec<BlockIssue>), StreamError> {
        let mut out = Vec::new();
        let mut issues = Vec::new();
        let n = self.index.num_blocks();
        self.decode_waves(pram, 0..n, |block| {
            match block.data {
                Ok(bytes) => out.extend_from_slice(&bytes),
                Err(issue) => issues.push(issue),
            }
            Ok(())
        })?;
        Ok((out, issues))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::{compress_stream, StreamConfig};

    fn pack(data: &[u8], block_size: usize) -> Vec<u8> {
        let pram = Pram::seq();
        let cfg = StreamConfig {
            block_size,
            max_in_flight: 4,
        };
        compress_stream(&pram, &mut &data[..], Vec::new(), &cfg)
            .unwrap()
            .0
    }

    #[test]
    fn streaming_roundtrip() {
        let data = b"she sells sea shells by the sea shore ".repeat(50);
        let packed = pack(&data, 300);
        let pram = Pram::seq();
        let (out, summary) = decompress_stream(&pram, &mut &packed[..], Vec::new()).unwrap();
        assert_eq!(out, data);
        assert!(summary.issues.is_empty());
        assert_eq!(summary.bytes, data.len() as u64);
        assert_eq!(summary.blocks, data.len().div_ceil(300) as u64);
    }

    #[test]
    fn seekable_roundtrip_and_ranges() {
        let data: Vec<u8> = (0..5000u32)
            .flat_map(|i| [(i % 251 + 1) as u8, b'x'])
            .collect();
        let packed = pack(&data, 512);
        let pram = Pram::seq();
        let mut rdr = StreamReader::open(std::io::Cursor::new(&packed)).unwrap();
        assert_eq!(rdr.len(), data.len() as u64);
        let (all, issues) = rdr.read_all(&pram).unwrap();
        assert_eq!(all, data);
        assert!(issues.is_empty());
        for (a, b) in [(0u64, 10u64), (511, 513), (1000, 3000), (9990, 10000)] {
            assert_eq!(
                rdr.read_range(&pram, a, b).unwrap(),
                &data[a as usize..b as usize],
                "range {a}..{b}"
            );
        }
        assert_eq!(rdr.read_range(&pram, 5, 5).unwrap(), Vec::<u8>::new());
        assert!(matches!(
            rdr.read_range(&pram, 0, data.len() as u64 + 1),
            Err(StreamError::RangeOutOfBounds { .. })
        ));
    }

    #[test]
    fn block_iter_yields_every_block_in_order() {
        let data: Vec<u8> = (0..3000u32)
            .flat_map(|i| [(i % 199 + 1) as u8, b'k'])
            .collect(); // 6000 bytes
        let packed = pack(&data, 700); // 9 blocks, last partial
        let pram = Pram::seq();
        let mut rdr = StreamReader::open(std::io::Cursor::new(&packed)).unwrap();

        let raw_lens: Vec<u32> = rdr.index().entries.iter().map(|e| e.raw_len).collect();
        let mut rebuilt = Vec::new();
        for (expect, item) in rdr.block_iter(&pram).enumerate() {
            let block = item.unwrap();
            assert_eq!(block.index, expect);
            assert_eq!(block.start, 700 * expect as u64);
            let bytes = block.data.unwrap();
            assert_eq!(bytes.len() as u64, u64::from(raw_lens[expect]));
            rebuilt.extend_from_slice(&bytes);
        }
        assert_eq!(rebuilt, data);

        // Ranged iteration decodes exactly the requested blocks.
        let middle: Vec<_> = rdr
            .block_iter_range(&pram, 3..5)
            .map(|b| b.unwrap())
            .collect();
        assert_eq!(middle.len(), 2);
        assert_eq!(middle[0].index, 3);
        assert_eq!(middle[1].start, 2800);
        assert_eq!(
            middle.iter().fold(Vec::new(), |mut acc, b| {
                acc.extend_from_slice(b.data.as_ref().unwrap());
                acc
            }),
            &data[2100..3500]
        );
    }

    #[test]
    fn block_iter_carries_corruption_inside_the_item() {
        let data = b"yet another rainy day in the glasshouse ".repeat(60);
        let mut packed = pack(&data, 480); // 5 blocks
        let target = {
            let rdr = StreamReader::open(std::io::Cursor::new(&packed)).unwrap();
            let e = rdr.index().entries[2];
            e.offset as usize + RECORD_HEADER_LEN
        };
        packed[target] ^= 0x10;
        let pram = Pram::seq();
        let mut rdr = StreamReader::open(std::io::Cursor::new(&packed)).unwrap();
        let blocks: Vec<_> = rdr.block_iter(&pram).map(|b| b.unwrap()).collect();
        assert_eq!(blocks.len(), 5, "corruption must not end iteration");
        for b in &blocks {
            if b.index == 2 {
                let issue = b.data.as_ref().unwrap_err();
                assert_eq!(issue.index, 2);
            } else {
                assert!(b.data.is_ok(), "block {} should decode", b.index);
            }
        }
        // raw_block + decode_block compose to the same outcome as read_block.
        let e = rdr.index().entries[1];
        let payload = rdr.raw_block(1).unwrap();
        assert_eq!(
            decode_block(&pram, 1, &e, payload).unwrap(),
            rdr.read_block(&pram, 1).unwrap()
        );
    }

    #[test]
    fn range_reads_touch_only_covering_blocks() {
        let data = b"abcdefgh".repeat(4096); // 32 KiB
        let packed = pack(&data, 2048); // 16 blocks
        let pram_full = Pram::seq();
        let mut rdr = StreamReader::open(std::io::Cursor::new(&packed)).unwrap();
        let (_, full_cost) = pram_full.metered(|p| rdr.read_all(p).unwrap());
        let pram_range = Pram::seq();
        let (_, range_cost) = pram_range.metered(|p| rdr.read_range(p, 4096, 6000).unwrap());
        // One covering block out of 16: work must be a small fraction.
        assert!(
            range_cost.work * 8 < full_cost.work,
            "range decode did not stay block-local: {} vs {}",
            range_cost.work,
            full_cost.work
        );
    }

    #[test]
    fn payload_corruption_is_skipped_and_reported() {
        let data = b"round and round the ragged rock the ragged rascal ran ".repeat(40);
        let mut packed = pack(&data, 512);
        // Corrupt one byte well inside the middle of the block section.
        let mid = HEADER_LEN + (packed.len() - HEADER_LEN - TRAILER_LEN) / 2;
        packed[mid] ^= 0x40;
        let pram = Pram::seq();
        let mut rdr = StreamReader::open(std::io::Cursor::new(&packed)).unwrap();
        let (out, issues) = rdr.read_all(&pram).unwrap();
        assert_eq!(issues.len(), 1, "exactly one block must be reported");
        let lost = u64::from(issues[0].raw_len);
        assert_eq!(out.len() as u64 + lost, data.len() as u64);
        // Strict streaming decode refuses instead.
        let mut strict = StreamDecompressor::new(&pram, &packed[..]).strict();
        let mut sink = Vec::new();
        assert!(std::io::copy(&mut strict, &mut sink).is_err());
    }

    #[test]
    fn truncation_is_detected() {
        let data = b"twelve drummers drumming ".repeat(30);
        let packed = pack(&data, 256);
        let pram = Pram::seq();
        // Any truncation breaks the seekable open (trailer/footer gone or
        // offsets no longer tile the file).
        for cut in [packed.len() - 1, packed.len() - TRAILER_LEN - 2, 40, 17, 3] {
            let sliced = &packed[..cut];
            let opened = StreamReader::open(std::io::Cursor::new(sliced));
            assert!(opened.is_err(), "cut at {cut} must not open cleanly");
        }
        // Cuts inside the block section must fail the streaming decode too.
        for cut in [40, 17, 3] {
            let sliced = &packed[..cut];
            assert!(
                decompress_stream(&pram, &mut &sliced[..], Vec::new()).is_err(),
                "cut at {cut} must not stream cleanly"
            );
        }
        // Cuts inside the index region leave the block section intact, so
        // the forward streaming decode still yields the exact data.
        let sliced = &packed[..packed.len() - TRAILER_LEN - 2];
        let (out, summary) = decompress_stream(&pram, &mut &sliced[..], Vec::new()).unwrap();
        assert_eq!(out, data);
        assert!(summary.issues.is_empty());
    }
}
